#ifndef CDIBOT_CHAOS_FAULT_INJECTOR_H_
#define CDIBOT_CHAOS_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "chaos/fault_plan.h"
#include "common/rng.h"
#include "common/status.h"
#include "event/event.h"
#include "telemetry/metric_series.h"

namespace cdibot::chaos {

/// Counters for every fault the injector actually fired.
struct ChaosStats {
  uint64_t events_seen = 0;
  uint64_t duplicates_injected = 0;
  uint64_t reorders_applied = 0;
  uint64_t delays_applied = 0;
  uint64_t events_dropped = 0;
  uint64_t batches_dropped = 0;
  uint64_t events_malformed = 0;
  uint64_t clock_skews_applied = 0;
  uint64_t metric_points_corrupted = 0;
  uint64_t io_failures_injected = 0;
};

/// The corrupted view of a clean event stream, plus the bookkeeping the
/// differential suite needs to judge the pipeline's reaction.
struct InjectedStream {
  /// What the consumer actually receives, in arrival order.
  std::vector<RawEvent> arrivals;
  /// The collector-side delivery manifest: how many events were SENT per
  /// target (clean counts, before any in-flight fault). A receiver that
  /// sees fewer than announced has a detectable collector gap — the
  /// mechanism the paper's Case 7 (silent zero-power telemetry) calls for.
  std::map<std::string, uint64_t> announced;
  /// Targets hit by at least one lossy fault (dropped, malformed, skewed).
  /// The differential suite asserts exactly these VMs end up degraded.
  std::set<std::string> affected_targets;
  ChaosStats stats;
};

/// ChaosInjector applies a FaultPlan to telemetry deterministically: the
/// same (plan, clean input) pair always produces the same corrupted output.
/// One injector = one seeded random stream, so interleaving calls is also
/// reproducible as long as call order is fixed.
///
/// When the plan is empty every entry point is a structural no-op; the
/// bench/chaos_overhead microbench pins that the disabled injector costs
/// nothing on the hot path.
class ChaosInjector {
 public:
  explicit ChaosInjector(FaultPlan plan);

  bool enabled() const { return plan_.enabled(); }
  const FaultPlan& plan() const { return plan_; }
  const ChaosStats& stats() const { return stats_; }

  /// Corrupts a clean event stream according to the plan. Drops, malforms,
  /// skews, and duplicates happen first; then arrival order is perturbed
  /// (reorder/delay) by sort-key displacement, so every surviving event
  /// moves at most plan-bounded positions.
  InjectedStream ApplyToEvents(std::vector<RawEvent> clean);

  /// Replaces metric points with NaN/Inf per the plan's kNanMetric /
  /// kInfMetric specs (the collector-bug telemetry of the paper's Case 7).
  void ApplyToMetricSeries(MetricSeries* series);

  /// Corrupts serialized bytes the way torn writes and partial syncs do:
  /// truncation at a random offset, random byte flips, or a deleted line.
  /// Used against checkpoint and event-log files on disk.
  std::string CorruptText(std::string text);

  /// Reads `path`, corrupts it, and writes it back in place (plain
  /// non-atomic write — this IS the torn write).
  Status CorruptFile(const std::string& path);

  /// Returns Unavailable with the plan's kIoFailure probability, OK
  /// otherwise. Storage layers call this before real I/O so RetryPolicy
  /// paths can be driven deterministically.
  Status MaybeFailIo(std::string_view op);

 private:
  /// Mutates one field so ValidateRawEvent rejects the event.
  void Malform(RawEvent* ev);

  FaultPlan plan_;
  Rng rng_;
  ChaosStats stats_;
};

}  // namespace cdibot::chaos

#endif  // CDIBOT_CHAOS_FAULT_INJECTOR_H_
