#include "chaos/quarantine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace cdibot::chaos {
namespace {

// Process-wide quarantine counters ("chaos.quarantine.total" plus one per
// reason). Sink instances keep their own per-instance state because it is
// what checkpoints persist and what per-engine data-quality annotation
// reads; the registry mirror is the live, process-lifetime view statusz
// reports (restores deliberately do not re-count into it — those events
// were already observed by this or a previous process).
obs::Counter& QuarantineTotalCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("chaos.quarantine.total");
  return *c;
}

obs::Counter& QuarantineReasonCounter(QuarantineReason reason) {
  static obs::Counter* counters[kNumQuarantineReasons] = {};
  static std::once_flag once;
  std::call_once(once, [] {
    for (int i = 0; i < kNumQuarantineReasons; ++i) {
      const std::string name =
          "chaos.quarantine." +
          std::string(QuarantineReasonToString(
              static_cast<QuarantineReason>(i)));
      counters[i] = obs::MetricsRegistry::Global().GetCounter(name);
    }
  });
  return *counters[static_cast<int>(reason)];
}

}  // namespace

std::string_view QuarantineReasonToString(QuarantineReason reason) {
  switch (reason) {
    case QuarantineReason::kEmptyName:
      return "empty_name";
    case QuarantineReason::kEmptyTarget:
      return "empty_target";
    case QuarantineReason::kBadSeverity:
      return "bad_severity";
    case QuarantineReason::kNegativeExpire:
      return "negative_expire";
    case QuarantineReason::kBadDurationAttr:
      return "bad_duration_attr";
    case QuarantineReason::kMalformedRow:
      return "malformed_row";
    case QuarantineReason::kNonFiniteMetric:
      return "non_finite_metric";
  }
  return "unknown";
}

std::optional<QuarantineReason> ValidateRawEvent(const RawEvent& event) {
  if (event.name.empty()) return QuarantineReason::kEmptyName;
  if (event.target.empty()) return QuarantineReason::kEmptyTarget;
  const int level = static_cast<int>(event.level);
  if (level < 1 || level > kNumSeverityLevels) {
    return QuarantineReason::kBadSeverity;
  }
  if (event.expire_interval.IsNegative()) {
    return QuarantineReason::kNegativeExpire;
  }
  if (event.attrs.count("duration_ms") > 0) {
    auto logged = event.LoggedDuration();
    if (!logged.ok() || logged->IsNegative()) {
      return QuarantineReason::kBadDurationAttr;
    }
  }
  return std::nullopt;
}

std::optional<QuarantineReason> ValidateEventView(const EventRef& event) {
  if (event.name().empty()) return QuarantineReason::kEmptyName;
  if (event.target().empty()) return QuarantineReason::kEmptyTarget;
  const int level = event.level_ordinal();
  if (level < 1 || level > kNumSeverityLevels) {
    return QuarantineReason::kBadSeverity;
  }
  if (event.expire_ms() < 0) return QuarantineReason::kNegativeExpire;
  // Canonical rows encode either a valid duration_ms or none at all, so
  // only overflow rows (verbatim attrs) can carry a bad one. Overflow rows
  // are about to be quarantined anyway, so the map lookup is off the hot
  // path.
  if (event.has_extra_attrs()) {
    const auto& attrs = event.rows()->extra_attrs(event.row());
    if (attrs.count("duration_ms") > 0 &&
        event.LoggedDurationMsOrNeg() < 0) {
      return QuarantineReason::kBadDurationAttr;
    }
  }
  return std::nullopt;
}

void QuarantineSink::Quarantine(const RawEvent& event,
                                QuarantineReason reason) {
  QuarantineTotalCounter().Increment();
  QuarantineReasonCounter(reason).Increment();
  // A poisoned stream quarantines thousands of events; surface a sample,
  // not a flood.
  CDIBOT_LOG_EVERY_N(Warning, 256)
      << "quarantined event (" << QuarantineReasonToString(reason)
      << "): " << event.ToString();
  std::lock_guard<std::mutex> lock(mu_);
  ++by_reason_[static_cast<int>(reason)];
  ++total_;
  if (!event.target.empty()) ++by_target_[event.target];
  if (samples_.size() < kMaxSamples) samples_.push_back(event);
}

void QuarantineSink::QuarantineRow(std::string_view context,
                                   QuarantineReason reason) {
  QuarantineTotalCounter().Increment();
  QuarantineReasonCounter(reason).Increment();
  CDIBOT_LOG_EVERY_N(Warning, 256)
      << "quarantined row (" << QuarantineReasonToString(reason)
      << ") from " << context;
  std::lock_guard<std::mutex> lock(mu_);
  ++by_reason_[static_cast<int>(reason)];
  ++total_;
}

uint64_t QuarantineSink::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t QuarantineSink::count(QuarantineReason reason) const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_reason_[static_cast<int>(reason)];
}

uint64_t QuarantineSink::count_for_target(const std::string& target) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_target_.find(target);
  return it == by_target_.end() ? 0 : it->second;
}

std::map<std::string, uint64_t> QuarantineSink::counts_by_target() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_target_;
}

std::vector<uint64_t> QuarantineSink::CountsByReason() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<uint64_t>(by_reason_,
                               by_reason_ + kNumQuarantineReasons);
}

void QuarantineSink::MergeCountsByReason(
    const std::vector<uint64_t>& counts) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n =
      std::min<size_t>(counts.size(), kNumQuarantineReasons);
  for (size_t i = 0; i < n; ++i) {
    by_reason_[i] += counts[i];
    total_ += counts[i];
  }
}

void QuarantineSink::RestoreTargetCount(const std::string& target,
                                        uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  by_target_[target] += count;
}

uint64_t QuarantineSink::ExtractTargetCount(const std::string& target) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_target_.find(target);
  if (it == by_target_.end()) return 0;
  const uint64_t count = it->second;
  by_target_.erase(it);
  return count;
}

std::vector<RawEvent> QuarantineSink::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

std::string QuarantineSink::Summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out =
      StrFormat("quarantined %llu", static_cast<unsigned long long>(total_));
  if (total_ == 0) return out;
  out += " (";
  bool first = true;
  for (int i = 0; i < kNumQuarantineReasons; ++i) {
    if (by_reason_[i] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += QuarantineReasonToString(static_cast<QuarantineReason>(i));
    out += StrFormat("=%llu", static_cast<unsigned long long>(by_reason_[i]));
  }
  out += ")";
  return out;
}

}  // namespace cdibot::chaos
