#include "chaos/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cdibot::chaos {
namespace {

const FaultSpec* FindSpec(const FaultPlan& plan, FaultKind kind) {
  for (const FaultSpec& spec : plan.faults) {
    if (spec.kind == kind) return &spec;
  }
  return nullptr;
}

}  // namespace

ChaosInjector::ChaosInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {}

InjectedStream ChaosInjector::ApplyToEvents(std::vector<RawEvent> clean) {
  // Batch-level span + counter: amortized over the whole stream, so the
  // disabled-injector hot path stays a branch (chaos_overhead pins this).
  TRACE_SPAN("chaos.apply_to_events");
  static obs::Counter* events_seen =
      obs::MetricsRegistry::Global().GetCounter("chaos.events_seen");
  events_seen->Add(clean.size());
  InjectedStream out;
  stats_.events_seen += clean.size();
  for (const RawEvent& ev : clean) {
    if (!ev.target.empty()) ++out.announced[ev.target];
  }
  if (!enabled()) {
    out.arrivals = std::move(clean);
    out.stats = stats_;
    return out;
  }

  const FaultSpec* drop = FindSpec(plan_, FaultKind::kDrop);
  const FaultSpec* drop_batch = FindSpec(plan_, FaultKind::kDropBatch);
  const FaultSpec* malform = FindSpec(plan_, FaultKind::kMalform);
  const FaultSpec* skew = FindSpec(plan_, FaultKind::kClockSkew);
  const FaultSpec* duplicate = FindSpec(plan_, FaultKind::kDuplicate);
  const FaultSpec* reorder = FindSpec(plan_, FaultKind::kReorder);
  const FaultSpec* delay = FindSpec(plan_, FaultKind::kDelay);

  // Pass 1: content faults, walking the clean stream in order. Lossy faults
  // record the victim's target in `affected_targets` BEFORE mutation, since
  // malformed events may lose the very field that names the target.
  std::vector<RawEvent> delivered;
  delivered.reserve(clean.size());
  size_t batch_drop_remaining = 0;
  for (RawEvent& ev : clean) {
    if (batch_drop_remaining > 0) {
      --batch_drop_remaining;
      ++stats_.events_dropped;
      out.affected_targets.insert(ev.target);
      continue;
    }
    if (drop_batch != nullptr && rng_.Bernoulli(drop_batch->probability)) {
      // This event starts a collector outage: it and the next burst-1
      // arrivals vanish together.
      batch_drop_remaining = drop_batch->burst > 0 ? drop_batch->burst - 1 : 0;
      ++stats_.batches_dropped;
      ++stats_.events_dropped;
      out.affected_targets.insert(ev.target);
      continue;
    }
    if (drop != nullptr && rng_.Bernoulli(drop->probability)) {
      ++stats_.events_dropped;
      out.affected_targets.insert(ev.target);
      continue;
    }
    if (malform != nullptr && rng_.Bernoulli(malform->probability)) {
      out.affected_targets.insert(ev.target);
      Malform(&ev);
      ++stats_.events_malformed;
    }
    if (skew != nullptr && rng_.Bernoulli(skew->probability)) {
      out.affected_targets.insert(ev.target);
      const int64_t max_ms = std::max<int64_t>(1, skew->magnitude.millis());
      ev.time += Duration::Millis(rng_.UniformInt(-max_ms, max_ms));
      ++stats_.clock_skews_applied;
    }
    delivered.push_back(std::move(ev));
    if (duplicate != nullptr && rng_.Bernoulli(duplicate->probability)) {
      const size_t copies = std::max<size_t>(1, duplicate->burst);
      for (size_t c = 0; c < copies; ++c) {
        delivered.push_back(delivered.back());
        ++stats_.duplicates_injected;
      }
    }
  }

  // Pass 2: arrival-order perturbation. Each delivered event gets a sort key
  // of its position plus an optional forward displacement; a stable sort on
  // the keys then realizes all displacements at once. kReorder moves an
  // event up to `burst` positions; kDelay converts extra arrival latency to
  // positions at one position per minute (the generators emit roughly
  // per-minute telemetry), so a 30-minute delay slides the event ~30
  // arrivals back.
  if (reorder != nullptr || delay != nullptr) {
    std::vector<std::pair<uint64_t, size_t>> keys;
    keys.reserve(delivered.size());
    for (size_t i = 0; i < delivered.size(); ++i) {
      uint64_t key = i;
      if (reorder != nullptr && rng_.Bernoulli(reorder->probability)) {
        const int64_t horizon =
            std::max<int64_t>(1, static_cast<int64_t>(reorder->burst));
        key += static_cast<uint64_t>(rng_.UniformInt(1, horizon));
        ++stats_.reorders_applied;
      }
      if (delay != nullptr && rng_.Bernoulli(delay->probability)) {
        const int64_t max_positions =
            std::max<int64_t>(1, delay->magnitude.millis() / 60000);
        key += static_cast<uint64_t>(rng_.UniformInt(1, max_positions));
        ++stats_.delays_applied;
      }
      keys.emplace_back(key, i);
    }
    std::stable_sort(keys.begin(), keys.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    out.arrivals.reserve(delivered.size());
    for (const auto& [key, index] : keys) {
      out.arrivals.push_back(std::move(delivered[index]));
    }
  } else {
    out.arrivals = std::move(delivered);
  }

  out.stats = stats_;
  return out;
}

void ChaosInjector::ApplyToMetricSeries(MetricSeries* series) {
  if (series == nullptr || !enabled()) return;
  const FaultSpec* nan_spec = FindSpec(plan_, FaultKind::kNanMetric);
  const FaultSpec* inf_spec = FindSpec(plan_, FaultKind::kInfMetric);
  if (nan_spec == nullptr && inf_spec == nullptr) return;
  for (MetricPoint& point : series->points) {
    if (nan_spec != nullptr && rng_.Bernoulli(nan_spec->probability)) {
      point.value = std::numeric_limits<double>::quiet_NaN();
      ++stats_.metric_points_corrupted;
      continue;
    }
    if (inf_spec != nullptr && rng_.Bernoulli(inf_spec->probability)) {
      point.value = rng_.Bernoulli(0.5)
                        ? std::numeric_limits<double>::infinity()
                        : -std::numeric_limits<double>::infinity();
      ++stats_.metric_points_corrupted;
    }
  }
}

std::string ChaosInjector::CorruptText(std::string text) {
  if (text.empty()) return text;
  switch (rng_.UniformInt(0, 2)) {
    case 0: {
      // Torn write: the tail never hit the disk.
      const size_t keep = static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(text.size()) - 1));
      text.resize(keep);
      break;
    }
    case 1: {
      // Bit rot: flip a handful of random bytes.
      const int flips = static_cast<int>(rng_.UniformInt(
          1, std::max<int64_t>(1, static_cast<int64_t>(text.size()) / 64)));
      for (int i = 0; i < flips; ++i) {
        const size_t at = static_cast<size_t>(
            rng_.UniformInt(0, static_cast<int64_t>(text.size()) - 1));
        text[at] = static_cast<char>(text[at] ^ (1 << rng_.UniformInt(0, 7)));
      }
      break;
    }
    default: {
      // Lost record: delete one whole line.
      std::vector<std::string> lines = StrSplit(text, '\n');
      if (lines.size() > 1) {
        const size_t victim = static_cast<size_t>(
            rng_.UniformInt(0, static_cast<int64_t>(lines.size()) - 1));
        lines.erase(lines.begin() + static_cast<ptrdiff_t>(victim));
        text = StrJoin(lines, "\n");
      } else {
        text.clear();
      }
      break;
    }
  }
  return text;
}

Status ChaosInjector::CorruptFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(StrFormat("cannot open %s", path.c_str()));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  in.close();
  std::string corrupted = CorruptText(buffer.str());
  std::ofstream outf(path, std::ios::binary | std::ios::trunc);
  if (!outf) {
    return Status::Unavailable(StrFormat("cannot rewrite %s", path.c_str()));
  }
  outf << corrupted;
  outf.close();
  if (!outf) {
    return Status::Unavailable(StrFormat("write failed on %s", path.c_str()));
  }
  return Status::OK();
}

Status ChaosInjector::MaybeFailIo(std::string_view op) {
  if (!enabled()) return Status::OK();
  const FaultSpec* io = FindSpec(plan_, FaultKind::kIoFailure);
  if (io == nullptr || !rng_.Bernoulli(io->probability)) return Status::OK();
  ++stats_.io_failures_injected;
  static obs::Counter* io_faults =
      obs::MetricsRegistry::Global().GetCounter("chaos.io_faults_injected");
  io_faults->Increment();
  return Status::Unavailable(StrFormat("injected I/O failure during %.*s",
                                       static_cast<int>(op.size()),
                                       op.data()));
}

void ChaosInjector::Malform(RawEvent* ev) {
  switch (rng_.UniformInt(0, 4)) {
    case 0:
      ev->name.clear();
      break;
    case 1:
      ev->target.clear();
      break;
    case 2:
      // Severity ordinal outside [1, kNumSeverityLevels]: 0 or 9.
      ev->level = static_cast<Severity>(rng_.Bernoulli(0.5) ? 0 : 9);
      break;
    case 3:
      ev->expire_interval = Duration::Millis(-1) - ev->expire_interval;
      break;
    default:
      ev->attrs["duration_ms"] = "garbage";
      break;
  }
}

}  // namespace cdibot::chaos
