#ifndef CDIBOT_CHAOS_FAULT_PLAN_H_
#define CDIBOT_CHAOS_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.h"

namespace cdibot::chaos {

/// The fault taxonomy of the chaos harness. Two families:
///
///  * Lossless delivery faults — the substrate mangles HOW telemetry
///    arrives but not WHAT happened: duplicated deliveries, reordering,
///    delayed arrival. A correct pipeline must produce bit-identical CDI
///    under these (the resolver dedups and is arrival-order invariant, and
///    the damage integral is a union, so re-delivery is a no-op).
///
///  * Lossy faults — information is destroyed: silently dropped events,
///    dropped collector batches, field corruption, clock skew on the event
///    timestamp, NaN/Inf metric points. A correct pipeline must keep
///    running and flag every affected VM as degraded instead of silently
///    reporting a wrong-but-confident CDI (the paper's Case 7: a broken
///    collector reads zero power and emits nothing — downstream must notice
///    the gap, not celebrate the quiet day).
enum class FaultKind : int {
  // Lossless delivery faults.
  kDuplicate = 0,   ///< deliver extra copies of an event
  kReorder = 1,     ///< swap the event with a nearby later arrival
  kDelay = 2,       ///< hold the event back and deliver it late
  // Lossy faults.
  kDrop = 3,        ///< silently lose one event
  kDropBatch = 4,   ///< lose a contiguous run of arrivals (collector outage)
  kMalform = 5,     ///< corrupt one field so validation quarantines it
  kClockSkew = 6,   ///< shift the event timestamp (alters ground truth)
  kNanMetric = 7,   ///< metric point becomes NaN
  kInfMetric = 8,   ///< metric point becomes +/-Inf
  // Transient faults (recoverable by retry, so not lossy).
  kIoFailure = 9,   ///< storage I/O returns Unavailable
};

std::string_view FaultKindToString(FaultKind kind);

/// True for kinds that destroy or alter information (the second family).
bool FaultKindIsLossy(FaultKind kind);

/// One scripted fault: a kind, a per-event (or per-point) firing
/// probability, and kind-specific parameters.
struct FaultSpec {
  FaultKind kind = FaultKind::kDuplicate;
  /// Probability that the fault fires on any given event / metric point.
  double probability = 0.0;
  /// kDuplicate: extra copies per firing. kDropBatch: length of the dropped
  /// run. kReorder: how many positions forward the event may move.
  size_t burst = 1;
  /// kDelay: maximum extra arrival delay. kClockSkew: maximum absolute
  /// timestamp shift.
  Duration magnitude = Duration::Minutes(1);
};

/// A deterministic, seed-driven fault script. The same plan applied to the
/// same clean stream always yields the same corrupted stream, so every
/// chaos test is reproducible from (plan name, seed) alone.
struct FaultPlan {
  std::string name = "clean";
  uint64_t seed = 0;
  std::vector<FaultSpec> faults;

  bool enabled() const { return !faults.empty(); }
  /// True when any scripted fault can destroy information; the differential
  /// suite requires bit-exact CDI for non-lossy plans and degraded-flagged
  /// deviation for lossy ones.
  bool lossy() const;

  FaultPlan& Add(FaultSpec spec) {
    faults.push_back(spec);
    return *this;
  }
};

/// Preset plans — the corpus the differential suite and the supervisor
/// simulations draw from.
FaultPlan CleanPlan();
FaultPlan DuplicationPlan(uint64_t seed, double p = 0.15, size_t copies = 2);
FaultPlan ReorderPlan(uint64_t seed, double p = 0.3, size_t horizon = 32);
FaultPlan DelayPlan(uint64_t seed, double p = 0.2,
                    Duration max_delay = Duration::Minutes(30));
FaultPlan MixedLosslessPlan(uint64_t seed);
FaultPlan DropPlan(uint64_t seed, double p = 0.1);
FaultPlan CollectorOutagePlan(uint64_t seed, double p = 0.01,
                              size_t burst = 25);
FaultPlan MalformPlan(uint64_t seed, double p = 0.1);
FaultPlan ClockSkewPlan(uint64_t seed, double p = 0.05,
                        Duration max_skew = Duration::Hours(2));
FaultPlan MetricCorruptionPlan(uint64_t seed, double nan_p = 0.02,
                               double inf_p = 0.01);
FaultPlan MixedLossyPlan(uint64_t seed);
FaultPlan FlakyIoPlan(uint64_t seed, double p = 0.5);

/// Overload presets for the flow-control suite.
///
/// SurgeBurstPlan multiplies the stream `factor`x by duplicating every
/// event (p = 1, burst = factor - 1). Lossless by construction: the
/// resolver dedups redeliveries, so a pipeline that keeps up under the
/// surge must still produce bit-identical CDI — what the surge actually
/// stresses is the admission path (queue depth, shed policy, memory
/// ceiling).
FaultPlan SurgeBurstPlan(uint64_t seed, size_t factor = 10);
/// SlowConsumerPlan models a consumer that cannot keep up: heavy delivery
/// delay plus deep reordering. Lossless; stresses watermark hysteresis and
/// the retention of late arrivals.
FaultPlan SlowConsumerPlan(uint64_t seed);
/// FlappingSinkPlan models a disk that mostly fails: I/O attempts return
/// Unavailable with probability `p`. Drives the checkpoint store's retry
/// path into the circuit breaker (trip on consecutive failures, recover
/// via half-open probes once the flapping stops).
FaultPlan FlappingSinkPlan(uint64_t seed, double p = 0.7);

}  // namespace cdibot::chaos

#endif  // CDIBOT_CHAOS_FAULT_PLAN_H_
