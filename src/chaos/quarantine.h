#ifndef CDIBOT_CHAOS_QUARANTINE_H_
#define CDIBOT_CHAOS_QUARANTINE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "event/event.h"
#include "event/event_view.h"

namespace cdibot::chaos {

/// Why an input was diverted to quarantine instead of entering the CDI
/// pipeline. The taxonomy mirrors what production telemetry actually
/// produces under collector bugs: structurally broken events, impossible
/// field values, and rows that did not survive (de)serialization.
enum class QuarantineReason : int {
  kEmptyName = 0,       ///< event with no name; can never resolve
  kEmptyTarget = 1,     ///< event with no VM/NC target; unroutable
  kBadSeverity = 2,     ///< severity ordinal outside [1, kNumSeverityLevels]
  kNegativeExpire = 3,  ///< negative expire interval; nonsensical period
  kBadDurationAttr = 4, ///< duration_ms attribute present but unparseable
  kMalformedRow = 5,    ///< storage row that failed CSV/schema parsing
  kNonFiniteMetric = 6, ///< NaN/Inf metric point from a collector
};

inline constexpr int kNumQuarantineReasons = 7;

std::string_view QuarantineReasonToString(QuarantineReason reason);

/// Structural validation of a raw event before it enters the pipeline.
/// Returns the first defect found, or nullopt for a well-formed event.
/// This is intentionally stricter than what every downstream stage needs
/// today: a malformed event is diverted once, at the edge, instead of
/// failing an arbitrary later stage (the pre-quarantine behavior was that
/// one bad severity ordinal aborted the whole VM's daily CDI).
std::optional<QuarantineReason> ValidateRawEvent(const RawEvent& event);

/// Zero-copy twin of ValidateRawEvent: same checks in the same order
/// against an event view, without materializing the event. For every
/// possible event the two return the same reason (or both none), so the
/// view-based pipeline quarantines exactly what the owning one did.
std::optional<QuarantineReason> ValidateEventView(const EventRef& event);

/// Thread-safe sink for malformed inputs: counts per reason and per target,
/// and keeps a capped sample of the offending events for debugging. The
/// streaming engine owns one and consults it when annotating per-VM
/// DataQuality; storage loaders feed it malformed rows.
class QuarantineSink {
 public:
  /// Events retained verbatim for post-mortems; beyond this only counters
  /// grow, so a poisoned stream cannot exhaust memory.
  static constexpr size_t kMaxSamples = 16;

  QuarantineSink() = default;

  /// Records one quarantined event.
  void Quarantine(const RawEvent& event, QuarantineReason reason);

  /// Records a quarantined storage row that never became an event (e.g. a
  /// truncated CSV line). `context` names the file or stream it came from.
  void QuarantineRow(std::string_view context, QuarantineReason reason);

  uint64_t total() const;
  uint64_t count(QuarantineReason reason) const;
  /// Quarantined events attributed to `target` (rows without a parseable
  /// target are only in the totals).
  uint64_t count_for_target(const std::string& target) const;
  std::map<std::string, uint64_t> counts_by_target() const;

  /// Per-reason counters indexed by QuarantineReason ordinal (size
  /// kNumQuarantineReasons). Used to persist counters into checkpoints.
  std::vector<uint64_t> CountsByReason() const;
  /// Restores counters from a checkpoint (adds onto current counts; the
  /// per-target map is restored separately via RestoreTargetCount).
  void MergeCountsByReason(const std::vector<uint64_t>& counts);
  void RestoreTargetCount(const std::string& target, uint64_t count);
  /// Removes and returns the per-target counter for `target` (0 when
  /// absent). Inverse of RestoreTargetCount: only the per-target map is
  /// touched — the reason-keyed and total counters stay, since they count
  /// what THIS sink diverted. Used by shard-rebalance state handoff to
  /// move a VM's quarantine attribution to its new owner.
  uint64_t ExtractTargetCount(const std::string& target);

  /// Up to kMaxSamples earliest quarantined events.
  std::vector<RawEvent> samples() const;

  /// One-line human summary, e.g. "quarantined 12 (bad_severity=9 ...)".
  std::string Summary() const;

 private:
  mutable std::mutex mu_;
  uint64_t by_reason_[kNumQuarantineReasons] = {};
  uint64_t total_ = 0;
  std::map<std::string, uint64_t> by_target_;
  std::vector<RawEvent> samples_;
};

}  // namespace cdibot::chaos

#endif  // CDIBOT_CHAOS_QUARANTINE_H_
