#include "chaos/net_chaos.h"

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/socket_transport.h"

namespace cdibot::chaos {

namespace {

struct NetChaosMetrics {
  obs::Counter* truncated;
  obs::Counter* corrupted;
  obs::Counter* resets;
  obs::Counter* duplicates;
  obs::Counter* delays;
  obs::Counter* outbound_dropped;
  obs::Counter* inbound_dropped;
};

const NetChaosMetrics& Metrics() {
  static const NetChaosMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    return NetChaosMetrics{
        .truncated = reg.GetCounter("chaos.net.truncated"),
        .corrupted = reg.GetCounter("chaos.net.corrupted"),
        .resets = reg.GetCounter("chaos.net.resets"),
        .duplicates = reg.GetCounter("chaos.net.duplicates"),
        .delays = reg.GetCounter("chaos.net.delays"),
        .outbound_dropped = reg.GetCounter("chaos.net.outbound_dropped"),
        .inbound_dropped = reg.GetCounter("chaos.net.inbound_dropped"),
    };
  }();
  return m;
}

/// Per-shard fault stream, shared across every connection the shard ever
/// gets: reconnect must not rewind the dice.
struct ShardDice {
  std::mutex mu;
  Rng rng;
  explicit ShardDice(uint64_t seed) : rng(seed) {}
};

/// All shards' dice, owned by the decorator closure.
struct DiceTable {
  std::mutex mu;
  uint64_t seed = 0;
  std::map<size_t, std::shared_ptr<ShardDice>> per_shard;

  std::shared_ptr<ShardDice> For(size_t shard) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = per_shard.find(shard);
    if (it != per_shard.end()) return it->second;
    // SplitMix-style per-shard seeding keeps shard streams unrelated.
    auto dice = std::make_shared<ShardDice>(
        seed ^ (0x9E3779B97F4A7C15ULL * (shard + 1)));
    per_shard.emplace(shard, dice);
    return dice;
  }
};

/// The fault-injecting Transport decorator. Wraps the coordinator side of
/// one shard connection; mangles Sends at the byte level through SendRaw
/// and swallows Recvs whole. Every decision comes from the shard's dice.
class ChaosTransport final : public shard::Transport {
 public:
  ChaosTransport(std::unique_ptr<shard::SocketTransport> inner,
                 NetFaultPlan plan, std::shared_ptr<ShardDice> dice)
      : inner_(std::move(inner)), plan_(std::move(plan)),
        dice_(std::move(dice)) {}

  Status Send(std::string frame) override {
    enum class Fate { kClean, kTruncate, kCorrupt, kReset, kDuplicate, kDrop };
    Fate fate = Fate::kClean;
    bool delay = false;
    int64_t delay_ms = 0;
    size_t cut = 0;
    size_t flip_index = 0;
    uint8_t flip_mask = 1;
    const std::string wire = shard::EncodeWireFrame(frame);
    {
      std::lock_guard<std::mutex> lock(dice_->mu);
      Rng& rng = dice_->rng;
      if (rng.Bernoulli(plan_.delay_probability)) {
        delay = true;
        delay_ms = rng.UniformInt(0, plan_.max_delay.millis());
      }
      // One destructive fate per frame, drawn in fixed order so the fault
      // stream is stable under plan tweaks to later probabilities.
      if (rng.Bernoulli(plan_.outbound_drop_probability)) {
        fate = Fate::kDrop;
      } else if (rng.Bernoulli(plan_.reset_probability)) {
        fate = Fate::kReset;
      } else if (rng.Bernoulli(plan_.truncate_probability)) {
        fate = Fate::kTruncate;
        cut = static_cast<size_t>(
            rng.UniformInt(1, static_cast<int64_t>(wire.size()) - 1));
      } else if (rng.Bernoulli(plan_.corrupt_probability) &&
                 wire.size() > shard::kWireHeaderBytes) {
        fate = Fate::kCorrupt;
        flip_index = static_cast<size_t>(
            rng.UniformInt(static_cast<int64_t>(shard::kWireHeaderBytes),
                           static_cast<int64_t>(wire.size()) - 1));
        flip_mask = static_cast<uint8_t>(1u << rng.UniformInt(0, 7));
      } else if (rng.Bernoulli(plan_.duplicate_probability)) {
        fate = Fate::kDuplicate;
      }
    }
    // Each injected fault also drops an instant event into the trace (when
    // tracing is on), so a merged fleet trace shows the chaos pins right on
    // the RPC spans they sabotaged.
    if (delay) {
      Metrics().delays->Increment();
      obs::RecordInstant("chaos.net.delay");
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    switch (fate) {
      case Fate::kClean:
        return inner_->Send(std::move(frame));
      case Fate::kDrop:
        // The partition ate it, but the kernel said the write succeeded.
        Metrics().outbound_dropped->Increment();
        obs::RecordInstant("chaos.net.outbound_drop");
        return Status::OK();
      case Fate::kReset:
        Metrics().resets->Increment();
        obs::RecordInstant("chaos.net.reset");
        inner_->Close();
        return Status::Unavailable("chaos: connection reset");
      case Fate::kTruncate: {
        // A prefix of the frame, then the connection dies: the peer's
        // assembler is left mid-frame and must report a torn frame.
        Metrics().truncated->Increment();
        obs::RecordInstant("chaos.net.truncate");
        static_cast<void>(
            inner_->SendRaw(std::string_view(wire).substr(0, cut)));
        inner_->Close();
        return Status::Unavailable("chaos: connection reset mid-frame");
      }
      case Fate::kCorrupt: {
        // One flipped bit past the length prefix; the peer's CRC check
        // must reject the frame and tear the connection down.
        Metrics().corrupted->Increment();
        obs::RecordInstant("chaos.net.corrupt");
        std::string damaged = wire;
        damaged[flip_index] =
            static_cast<char>(static_cast<uint8_t>(damaged[flip_index]) ^
                              flip_mask);
        return inner_->SendRaw(damaged);
      }
      case Fate::kDuplicate: {
        Metrics().duplicates->Increment();
        obs::RecordInstant("chaos.net.duplicate");
        std::string copy = frame;
        CDIBOT_RETURN_IF_ERROR(inner_->Send(std::move(frame)));
        return inner_->Send(std::move(copy));
      }
    }
    return Status::Internal("unreachable");
  }

  StatusOr<std::string> Recv(const Deadline& deadline) override {
    while (true) {
      auto frame_or = inner_->Recv(deadline);
      if (!frame_or.ok()) return frame_or;
      bool swallow = false;
      {
        std::lock_guard<std::mutex> lock(dice_->mu);
        swallow = dice_->rng.Bernoulli(plan_.inbound_drop_probability);
      }
      if (!swallow) return frame_or;
      Metrics().inbound_dropped->Increment();
      obs::RecordInstant("chaos.net.inbound_drop");
    }
  }

  void Close() override { inner_->Close(); }
  bool closed() const override { return inner_->closed(); }
  size_t inbound_depth() const override { return inner_->inbound_depth(); }

 private:
  const std::unique_ptr<shard::SocketTransport> inner_;
  const NetFaultPlan plan_;
  const std::shared_ptr<ShardDice> dice_;
};

}  // namespace

NetFaultPlan NetFaultPlan::Clean() { return NetFaultPlan{}; }

NetFaultPlan NetFaultPlan::TornFrames(uint64_t seed) {
  NetFaultPlan plan;
  plan.name = "torn-frames";
  plan.seed = seed;
  plan.truncate_probability = 0.05;
  return plan;
}

NetFaultPlan NetFaultPlan::FlippedBits(uint64_t seed) {
  NetFaultPlan plan;
  plan.name = "flipped-bits";
  plan.seed = seed;
  plan.corrupt_probability = 0.05;
  return plan;
}

NetFaultPlan NetFaultPlan::Resets(uint64_t seed) {
  NetFaultPlan plan;
  plan.name = "resets";
  plan.seed = seed;
  plan.reset_probability = 0.04;
  return plan;
}

NetFaultPlan NetFaultPlan::FlakyDelivery(uint64_t seed) {
  NetFaultPlan plan;
  plan.name = "flaky-delivery";
  plan.seed = seed;
  plan.duplicate_probability = 0.08;
  plan.delay_probability = 0.10;
  plan.max_delay = Duration::Millis(2);
  return plan;
}

NetFaultPlan NetFaultPlan::Partition(uint64_t seed) {
  NetFaultPlan plan;
  plan.name = "partition";
  plan.seed = seed;
  plan.outbound_drop_probability = 0.04;
  plan.inbound_drop_probability = 0.04;
  return plan;
}

NetFaultPlan NetFaultPlan::HostileNetwork(uint64_t seed) {
  NetFaultPlan plan;
  plan.name = "hostile-network";
  plan.seed = seed;
  plan.truncate_probability = 0.02;
  plan.corrupt_probability = 0.02;
  plan.reset_probability = 0.02;
  plan.duplicate_probability = 0.04;
  plan.delay_probability = 0.05;
  plan.max_delay = Duration::Millis(2);
  plan.outbound_drop_probability = 0.02;
  plan.inbound_drop_probability = 0.02;
  return plan;
}

shard::SocketDecorator MakeChaosDecorator(NetFaultPlan plan) {
  if (!plan.enabled()) return nullptr;
  auto table = std::make_shared<DiceTable>();
  table->seed = plan.seed;
  return [plan = std::move(plan), table](
             std::unique_ptr<shard::SocketTransport> inner,
             size_t shard_index) -> std::unique_ptr<shard::Transport> {
    return std::make_unique<ChaosTransport>(std::move(inner), plan,
                                            table->For(shard_index));
  };
}

}  // namespace cdibot::chaos
