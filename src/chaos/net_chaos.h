#ifndef CDIBOT_CHAOS_NET_CHAOS_H_
#define CDIBOT_CHAOS_NET_CHAOS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/time.h"
#include "shard/host.h"

namespace cdibot::chaos {

/// A deterministic, seed-driven script of network faults applied to the
/// coordinator side of every shard connection. Complements FaultPlan (which
/// mangles telemetry *content*): this layer mangles the *wire* under the
/// shard protocol — torn frames, flipped bits, resets, duplicated frames,
/// asymmetric partitions — and a correct fleet must still converge to
/// bit-identical CDI, because every fault here is either detected (CRC,
/// framing) or idempotent to retry (session dedup).
///
/// Faults are drawn per operation from a per-shard Rng whose state survives
/// reconnects, so a whole chaos run is a pure function of (plan, seed).
///
/// Note the deliberate asymmetry: outbound frames (coordinator -> worker)
/// can be truncated, corrupted and dropped at the byte level; inbound
/// frames (worker -> coordinator) can only be swallowed whole. Corrupting
/// an inbound payload AFTER the inner transport verified its CRC would
/// model a fault no real network can produce below a checksummed stream —
/// and would rightly break bit-identity.
struct NetFaultPlan {
  std::string name = "clean";
  uint64_t seed = 0;

  /// Send: write only a prefix of the wire frame, then reset the
  /// connection — the peer sees a torn frame (EOF mid-frame).
  double truncate_probability = 0.0;
  /// Send: flip one bit somewhere past the length prefix (payload or CRC
  /// trailer), so the peer's CRC check must reject the frame. The length
  /// prefix is spared deliberately: corrupting it stalls the peer waiting
  /// for bytes that never come, which models a hang, not a detectable
  /// fault.
  double corrupt_probability = 0.0;
  /// Send: reset the connection without writing anything.
  double reset_probability = 0.0;
  /// Send: deliver the frame twice (the worker's session dedup must make
  /// the copy a no-op).
  double duplicate_probability = 0.0;
  /// Send: hold the frame back up to max_delay before writing it.
  double delay_probability = 0.0;
  Duration max_delay = Duration::Millis(2);
  /// Send: silently drop the frame but report success — one half of an
  /// asymmetric partition (the coordinator believes it spoke).
  double outbound_drop_probability = 0.0;
  /// Recv: swallow a fully delivered frame — the other half (the worker
  /// believes it answered). The caller's per-attempt timeout turns this
  /// into a retry of the same request id.
  double inbound_drop_probability = 0.0;

  bool enabled() const {
    return truncate_probability > 0 || corrupt_probability > 0 ||
           reset_probability > 0 || duplicate_probability > 0 ||
           delay_probability > 0 || outbound_drop_probability > 0 ||
           inbound_drop_probability > 0;
  }

  /// Presets, roughly ordered by hostility.
  static NetFaultPlan Clean();
  static NetFaultPlan TornFrames(uint64_t seed);
  static NetFaultPlan FlippedBits(uint64_t seed);
  static NetFaultPlan Resets(uint64_t seed);
  static NetFaultPlan FlakyDelivery(uint64_t seed);  // duplicates + delays
  static NetFaultPlan Partition(uint64_t seed);      // both drop directions
  /// Everything at once: torn frames + flipped bits + resets + duplicates
  /// + delays + an asymmetric partition. The acceptance gauntlet.
  static NetFaultPlan HostileNetwork(uint64_t seed);
};

/// Builds a transport decorator for ShardTopologyOptions::transport_decorator
/// that applies `plan` to every connection the coordinator dials. The
/// returned decorator owns the per-shard Rng state, so it must be installed
/// on exactly one coordinator per deterministic run.
shard::SocketDecorator MakeChaosDecorator(NetFaultPlan plan);

}  // namespace cdibot::chaos

#endif  // CDIBOT_CHAOS_NET_CHAOS_H_
