#include "chaos/fault_plan.h"

#include <algorithm>

namespace cdibot::chaos {
namespace {

FaultPlan NamedPlan(std::string name, uint64_t seed) {
  FaultPlan plan;
  plan.name = std::move(name);
  plan.seed = seed;
  return plan;
}

}  // namespace

std::string_view FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kReorder:
      return "reorder";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDropBatch:
      return "drop_batch";
    case FaultKind::kMalform:
      return "malform";
    case FaultKind::kClockSkew:
      return "clock_skew";
    case FaultKind::kNanMetric:
      return "nan_metric";
    case FaultKind::kInfMetric:
      return "inf_metric";
    case FaultKind::kIoFailure:
      return "io_failure";
  }
  return "unknown";
}

bool FaultKindIsLossy(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDuplicate:
    case FaultKind::kReorder:
    case FaultKind::kDelay:
    case FaultKind::kIoFailure:
      return false;
    case FaultKind::kDrop:
    case FaultKind::kDropBatch:
    case FaultKind::kMalform:
    case FaultKind::kClockSkew:
    case FaultKind::kNanMetric:
    case FaultKind::kInfMetric:
      return true;
  }
  return true;
}

bool FaultPlan::lossy() const {
  return std::any_of(faults.begin(), faults.end(), [](const FaultSpec& f) {
    return FaultKindIsLossy(f.kind);
  });
}

FaultPlan CleanPlan() { return NamedPlan("clean", 0); }

FaultPlan DuplicationPlan(uint64_t seed, double p, size_t copies) {
  FaultPlan plan = NamedPlan("duplication", seed);
  plan.Add({.kind = FaultKind::kDuplicate, .probability = p, .burst = copies});
  return plan;
}

FaultPlan ReorderPlan(uint64_t seed, double p, size_t horizon) {
  FaultPlan plan = NamedPlan("reorder", seed);
  plan.Add({.kind = FaultKind::kReorder, .probability = p, .burst = horizon});
  return plan;
}

FaultPlan DelayPlan(uint64_t seed, double p, Duration max_delay) {
  FaultPlan plan = NamedPlan("delay", seed);
  plan.Add(
      {.kind = FaultKind::kDelay, .probability = p, .magnitude = max_delay});
  return plan;
}

FaultPlan MixedLosslessPlan(uint64_t seed) {
  FaultPlan plan = NamedPlan("mixed_lossless", seed);
  plan.Add({.kind = FaultKind::kDuplicate, .probability = 0.1, .burst = 3})
      .Add({.kind = FaultKind::kReorder, .probability = 0.25, .burst = 16})
      .Add({.kind = FaultKind::kDelay,
            .probability = 0.15,
            .magnitude = Duration::Minutes(45)});
  return plan;
}

FaultPlan DropPlan(uint64_t seed, double p) {
  FaultPlan plan = NamedPlan("drop", seed);
  plan.Add({.kind = FaultKind::kDrop, .probability = p});
  return plan;
}

FaultPlan CollectorOutagePlan(uint64_t seed, double p, size_t burst) {
  FaultPlan plan = NamedPlan("collector_outage", seed);
  plan.Add({.kind = FaultKind::kDropBatch, .probability = p, .burst = burst});
  return plan;
}

FaultPlan MalformPlan(uint64_t seed, double p) {
  FaultPlan plan = NamedPlan("malform", seed);
  plan.Add({.kind = FaultKind::kMalform, .probability = p});
  return plan;
}

FaultPlan ClockSkewPlan(uint64_t seed, double p, Duration max_skew) {
  FaultPlan plan = NamedPlan("clock_skew", seed);
  plan.Add(
      {.kind = FaultKind::kClockSkew, .probability = p, .magnitude = max_skew});
  return plan;
}

FaultPlan MetricCorruptionPlan(uint64_t seed, double nan_p, double inf_p) {
  FaultPlan plan = NamedPlan("metric_corruption", seed);
  plan.Add({.kind = FaultKind::kNanMetric, .probability = nan_p})
      .Add({.kind = FaultKind::kInfMetric, .probability = inf_p});
  return plan;
}

FaultPlan FlakyIoPlan(uint64_t seed, double p) {
  FaultPlan plan = NamedPlan("flaky_io", seed);
  plan.Add({.kind = FaultKind::kIoFailure, .probability = p});
  return plan;
}

FaultPlan SurgeBurstPlan(uint64_t seed, size_t factor) {
  FaultPlan plan = NamedPlan("surge_burst", seed);
  const size_t copies = factor > 1 ? factor - 1 : 0;
  if (copies > 0) {
    plan.Add(
        {.kind = FaultKind::kDuplicate, .probability = 1.0, .burst = copies});
  }
  return plan;
}

FaultPlan SlowConsumerPlan(uint64_t seed) {
  FaultPlan plan = NamedPlan("slow_consumer", seed);
  plan.Add({.kind = FaultKind::kDelay,
            .probability = 0.6,
            .magnitude = Duration::Hours(2)})
      .Add({.kind = FaultKind::kReorder, .probability = 0.5, .burst = 64});
  return plan;
}

FaultPlan FlappingSinkPlan(uint64_t seed, double p) {
  FaultPlan plan = NamedPlan("flapping_sink", seed);
  plan.Add({.kind = FaultKind::kIoFailure, .probability = p});
  return plan;
}

FaultPlan MixedLossyPlan(uint64_t seed) {
  FaultPlan plan = NamedPlan("mixed_lossy", seed);
  plan.Add({.kind = FaultKind::kDrop, .probability = 0.05})
      .Add({.kind = FaultKind::kMalform, .probability = 0.05})
      .Add({.kind = FaultKind::kDropBatch, .probability = 0.005, .burst = 12})
      .Add({.kind = FaultKind::kDuplicate, .probability = 0.05, .burst = 2})
      .Add({.kind = FaultKind::kReorder, .probability = 0.1, .burst = 8});
  return plan;
}

}  // namespace cdibot::chaos
