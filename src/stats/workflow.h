#ifndef CDIBOT_STATS_WORKFLOW_H_
#define CDIBOT_STATS_WORKFLOW_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "stats/posthoc.h"
#include "stats/tests.h"

namespace cdibot::stats {

/// Options for the Fig.-10 hypothesis-test workflow.
struct WorkflowOptions {
  /// Significance level for every decision in the workflow.
  double alpha = 0.05;
  /// Groups smaller than this skip the normality test and are treated as
  /// non-normal (too few points to establish normality at all).
  size_t min_normality_n = 8;
  /// Groups with min_normality_n <= n < this use Shapiro-Wilk (the better
  /// small-sample test); n >= this use D'Agostino's K^2.
  size_t dagostino_min_n = 20;
  /// Bonferroni-adjust Dunn's pairwise p-values.
  bool bonferroni_dunn = true;
};

/// Full outcome of the paper's hypothesis-test workflow (Fig. 10):
/// distribution and variance checks, the selected omnibus test, and — when
/// the omnibus is significant with more than two groups — the selected
/// post-hoc analysis.
struct WorkflowResult {
  /// Whether every group passed the normality check.
  bool all_normal = false;
  /// Whether Levene accepted variance homogeneity (meaningful only when
  /// all_normal).
  bool equal_variances = false;
  /// Per-group normality results (empty entries for groups below the
  /// minimum size, which count as non-normal).
  std::vector<TestResult> normality;
  TestResult variance_test;
  TestResult omnibus;
  bool omnibus_significant = false;
  /// Post-hoc method actually run ("" when skipped).
  std::string posthoc_method;
  std::vector<PairwiseResult> posthoc;
};

/// Runs the complete Fig.-10 decision procedure on `groups`:
///
///   normal + equal variances   -> one-way ANOVA, then Tukey HSD
///                                 (equal sizes) or Tukey-Kramer
///   normal + unequal variances -> Welch's ANOVA, then Games-Howell
///   non-normal                 -> Kruskal-Wallis, then Dunn
///
/// Post-hoc analysis runs only when the omnibus test is significant and
/// there are more than two groups (Sec. VI-D). Requires >= 2 groups with
/// n >= 2 each.
StatusOr<WorkflowResult> RunHypothesisWorkflow(
    const std::vector<Sample>& groups, const WorkflowOptions& options = {});

}  // namespace cdibot::stats

#endif  // CDIBOT_STATS_WORKFLOW_H_
