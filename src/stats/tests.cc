#include "stats/tests.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/distributions.h"

namespace cdibot::stats {
namespace {

Status ValidateGroups(const std::vector<Sample>& groups, size_t min_n) {
  if (groups.size() < 2) {
    return Status::InvalidArgument("need at least 2 groups");
  }
  for (const Sample& g : groups) {
    if (g.size() < min_n) {
      return Status::InvalidArgument("every group needs n >= " +
                                     std::to_string(min_n));
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<TestResult> DAgostinoK2Test(const Sample& x) {
  const auto n = static_cast<double>(x.size());
  if (x.size() < 8) {
    return Status::InvalidArgument("D'Agostino K^2 needs n >= 8");
  }
  CDIBOT_ASSIGN_OR_RETURN(const double g1, Skewness(x));
  CDIBOT_ASSIGN_OR_RETURN(const double g2, ExcessKurtosis(x));
  const double b2 = g2 + 3.0;  // raw kurtosis

  // Skewness transform (D'Agostino 1970).
  const double y = g1 * std::sqrt((n + 1.0) * (n + 3.0) / (6.0 * (n - 2.0)));
  const double beta2 = 3.0 * (n * n + 27.0 * n - 70.0) * (n + 1.0) *
                       (n + 3.0) /
                       ((n - 2.0) * (n + 5.0) * (n + 7.0) * (n + 9.0));
  const double w2 = -1.0 + std::sqrt(2.0 * (beta2 - 1.0));
  const double delta = 1.0 / std::sqrt(std::log(std::sqrt(w2)));
  const double alpha = std::sqrt(2.0 / (w2 - 1.0));
  const double ya = y / alpha;
  const double z1 = delta * std::log(ya + std::sqrt(ya * ya + 1.0));

  // Kurtosis transform (Anscombe & Glynn 1983).
  const double eb2 = 3.0 * (n - 1.0) / (n + 1.0);
  const double vb2 = 24.0 * n * (n - 2.0) * (n - 3.0) /
                     ((n + 1.0) * (n + 1.0) * (n + 3.0) * (n + 5.0));
  const double xx = (b2 - eb2) / std::sqrt(vb2);
  const double sqrt_beta1 =
      6.0 * (n * n - 5.0 * n + 2.0) / ((n + 7.0) * (n + 9.0)) *
      std::sqrt(6.0 * (n + 3.0) * (n + 5.0) / (n * (n - 2.0) * (n - 3.0)));
  const double a = 6.0 + 8.0 / sqrt_beta1 *
                             (2.0 / sqrt_beta1 +
                              std::sqrt(1.0 + 4.0 / (sqrt_beta1 * sqrt_beta1)));
  const double term =
      (1.0 - 2.0 / a) / (1.0 + xx * std::sqrt(2.0 / (a - 4.0)));
  const double z2 = ((1.0 - 2.0 / (9.0 * a)) - std::cbrt(term)) /
                    std::sqrt(2.0 / (9.0 * a));

  const double k2 = z1 * z1 + z2 * z2;
  CDIBOT_ASSIGN_OR_RETURN(const double p, ChiSquaredSf(k2, 2.0));
  return TestResult{.method = "D'Agostino K^2",
                    .statistic = k2,
                    .df1 = 2.0,
                    .df2 = 0.0,
                    .p_value = p};
}

StatusOr<TestResult> ShapiroWilkTest(const Sample& x) {
  const size_t n = x.size();
  if (n < 3 || n > 5000) {
    return Status::InvalidArgument("Shapiro-Wilk needs 3 <= n <= 5000");
  }
  Sample sorted = x;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.front() == sorted.back()) {
    return Status::FailedPrecondition("degenerate sample");
  }
  const auto nd = static_cast<double>(n);

  // Expected normal order statistics m_i (Blom approximation) and their
  // normalization.
  std::vector<double> m(n);
  double m_norm2 = 0.0;
  for (size_t i = 0; i < n; ++i) {
    CDIBOT_ASSIGN_OR_RETURN(
        m[i], NormalQuantile((static_cast<double>(i) + 1.0 - 0.375) /
                             (nd + 0.25)));
    m_norm2 += m[i] * m[i];
  }

  // Royston's polynomial-corrected coefficients a_i.
  std::vector<double> a(n);
  const double u = 1.0 / std::sqrt(nd);
  if (n == 3) {
    a[0] = -std::sqrt(0.5);
    a[2] = std::sqrt(0.5);
    a[1] = 0.0;
  } else {
    const double c_n = m[n - 1] / std::sqrt(m_norm2);
    const double a_n = c_n + 0.221157 * u - 0.147981 * u * u -
                       2.071190 * u * u * u + 4.434685 * u * u * u * u -
                       2.706056 * u * u * u * u * u;
    double a_n1 = 0.0;
    size_t tail = 1;  // coefficients fixed at each end
    double phi_num = m_norm2 - 2.0 * m[n - 1] * m[n - 1];
    double phi_den = 1.0 - 2.0 * a_n * a_n;
    if (n > 5) {
      const double c_n1 = m[n - 2] / std::sqrt(m_norm2);
      a_n1 = c_n1 + 0.042981 * u - 0.293762 * u * u -
             1.752461 * u * u * u + 5.682633 * u * u * u * u -
             3.582633 * u * u * u * u * u;
      tail = 2;
      phi_num -= 2.0 * m[n - 2] * m[n - 2];
      phi_den -= 2.0 * a_n1 * a_n1;
    }
    const double phi = phi_num / phi_den;
    const double sqrt_phi = std::sqrt(phi);
    for (size_t i = 0; i < n; ++i) a[i] = m[i] / sqrt_phi;
    a[n - 1] = a_n;
    a[0] = -a_n;
    if (tail == 2) {
      a[n - 2] = a_n1;
      a[1] = -a_n1;
    }
  }

  // W = (sum a_i x_(i))^2 / SS.
  double mean = 0.0;
  for (double v : sorted) mean += v;
  mean /= nd;
  double numerator = 0.0;
  double ss = 0.0;
  for (size_t i = 0; i < n; ++i) {
    numerator += a[i] * sorted[i];
    ss += (sorted[i] - mean) * (sorted[i] - mean);
  }
  const double w = numerator * numerator / ss;

  // Royston's normalizing transformation for the p-value.
  double p = 1.0;
  if (n == 3) {
    // Exact for n = 3.
    p = 6.0 / M_PI * (std::asin(std::sqrt(w)) - std::asin(std::sqrt(0.75)));
    p = std::min(1.0, std::max(0.0, p));
  } else if (n <= 11) {
    const double gamma = -2.273 + 0.459 * nd;
    const double wt = -std::log(gamma - std::log(1.0 - w));
    const double mu = 0.5440 - 0.39978 * nd + 0.025054 * nd * nd -
                      0.0006714 * nd * nd * nd;
    const double sigma = std::exp(1.3822 - 0.77857 * nd +
                                  0.062767 * nd * nd -
                                  0.0020322 * nd * nd * nd);
    p = NormalSf((wt - mu) / sigma);
  } else {
    const double ln_n = std::log(nd);
    const double wt = std::log(1.0 - w);
    const double mu = -1.5861 - 0.31082 * ln_n - 0.083751 * ln_n * ln_n +
                      0.0038915 * ln_n * ln_n * ln_n;
    const double sigma =
        std::exp(-0.4803 - 0.082676 * ln_n + 0.0030302 * ln_n * ln_n);
    p = NormalSf((wt - mu) / sigma);
  }

  return TestResult{.method = "Shapiro-Wilk",
                    .statistic = w,
                    .df1 = nd,
                    .df2 = 0.0,
                    .p_value = p};
}

StatusOr<TestResult> LeveneTest(const std::vector<Sample>& groups) {
  CDIBOT_RETURN_IF_ERROR(ValidateGroups(groups, 2));
  std::vector<Sample> deviations;
  deviations.reserve(groups.size());
  for (const Sample& g : groups) {
    CDIBOT_ASSIGN_OR_RETURN(const double med, Median(g));
    Sample z;
    z.reserve(g.size());
    for (double v : g) z.push_back(std::abs(v - med));
    deviations.push_back(std::move(z));
  }
  CDIBOT_ASSIGN_OR_RETURN(TestResult anova, OneWayAnova(deviations));
  anova.method = "Levene (Brown-Forsythe)";
  return anova;
}

StatusOr<TestResult> OneWayAnova(const std::vector<Sample>& groups) {
  CDIBOT_RETURN_IF_ERROR(ValidateGroups(groups, 2));
  const auto k = static_cast<double>(groups.size());
  double total_n = 0.0;
  double grand_sum = 0.0;
  for (const Sample& g : groups) {
    total_n += static_cast<double>(g.size());
    for (double v : g) grand_sum += v;
  }
  const double grand_mean = grand_sum / total_n;

  double ss_between = 0.0;
  double ss_within = 0.0;
  for (const Sample& g : groups) {
    CDIBOT_ASSIGN_OR_RETURN(const double m, Mean(g));
    ss_between += static_cast<double>(g.size()) * (m - grand_mean) *
                  (m - grand_mean);
    for (double v : g) ss_within += (v - m) * (v - m);
  }
  const double df1 = k - 1.0;
  const double df2 = total_n - k;
  if (df2 <= 0.0) return Status::InvalidArgument("not enough observations");
  if (ss_within <= 0.0) {
    // All groups are internally constant; any between-group difference is
    // infinitely significant, identical groups are not.
    const double p = ss_between > 0.0 ? 0.0 : 1.0;
    return TestResult{.method = "one-way ANOVA",
                      .statistic = ss_between > 0.0
                                       ? std::numeric_limits<double>::infinity()
                                       : 0.0,
                      .df1 = df1,
                      .df2 = df2,
                      .p_value = p};
  }
  const double f = (ss_between / df1) / (ss_within / df2);
  CDIBOT_ASSIGN_OR_RETURN(const double p, FSf(f, df1, df2));
  return TestResult{.method = "one-way ANOVA",
                    .statistic = f,
                    .df1 = df1,
                    .df2 = df2,
                    .p_value = p};
}

StatusOr<TestResult> WelchAnova(const std::vector<Sample>& groups) {
  CDIBOT_RETURN_IF_ERROR(ValidateGroups(groups, 2));
  const auto k = static_cast<double>(groups.size());
  std::vector<double> w(groups.size());
  std::vector<double> means(groups.size());
  double w_total = 0.0;
  for (size_t i = 0; i < groups.size(); ++i) {
    CDIBOT_ASSIGN_OR_RETURN(means[i], Mean(groups[i]));
    CDIBOT_ASSIGN_OR_RETURN(const double var, Variance(groups[i]));
    if (var <= 0.0) {
      return Status::FailedPrecondition(
          "Welch ANOVA needs positive within-group variance");
    }
    w[i] = static_cast<double>(groups[i].size()) / var;
    w_total += w[i];
  }
  double weighted_mean = 0.0;
  for (size_t i = 0; i < groups.size(); ++i) {
    weighted_mean += w[i] * means[i];
  }
  weighted_mean /= w_total;

  double a = 0.0;
  for (size_t i = 0; i < groups.size(); ++i) {
    a += w[i] * (means[i] - weighted_mean) * (means[i] - weighted_mean);
  }
  a /= (k - 1.0);

  double lambda = 0.0;
  for (size_t i = 0; i < groups.size(); ++i) {
    const double t = 1.0 - w[i] / w_total;
    lambda += t * t / (static_cast<double>(groups[i].size()) - 1.0);
  }
  const double b = 1.0 + 2.0 * (k - 2.0) / (k * k - 1.0) * lambda;
  const double f = a / b;
  const double df1 = k - 1.0;
  const double df2 = (k * k - 1.0) / (3.0 * lambda);
  CDIBOT_ASSIGN_OR_RETURN(const double p, FSf(f, df1, df2));
  return TestResult{.method = "Welch's ANOVA",
                    .statistic = f,
                    .df1 = df1,
                    .df2 = df2,
                    .p_value = p};
}

StatusOr<TestResult> KruskalWallisTest(const std::vector<Sample>& groups) {
  CDIBOT_RETURN_IF_ERROR(ValidateGroups(groups, 1));
  Sample pooled;
  for (const Sample& g : groups) {
    pooled.insert(pooled.end(), g.begin(), g.end());
  }
  const auto n = static_cast<double>(pooled.size());
  if (n < 3) return Status::InvalidArgument("Kruskal-Wallis needs N >= 3");
  const std::vector<double> ranks = MidRanks(pooled);

  double h = 0.0;
  size_t offset = 0;
  for (const Sample& g : groups) {
    double rank_sum = 0.0;
    for (size_t i = 0; i < g.size(); ++i) rank_sum += ranks[offset + i];
    offset += g.size();
    h += rank_sum * rank_sum / static_cast<double>(g.size());
  }
  h = 12.0 / (n * (n + 1.0)) * h - 3.0 * (n + 1.0);

  // Tie correction: 1 - sum(t^3 - t) / (N^3 - N).
  Sample sorted = pooled;
  std::sort(sorted.begin(), sorted.end());
  double tie_sum = 0.0;
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
    const auto t = static_cast<double>(j - i + 1);
    tie_sum += t * t * t - t;
    i = j + 1;
  }
  const double correction = 1.0 - tie_sum / (n * n * n - n);
  if (correction <= 0.0) {
    return Status::FailedPrecondition("all observations are tied");
  }
  h /= correction;

  const double df = static_cast<double>(groups.size()) - 1.0;
  CDIBOT_ASSIGN_OR_RETURN(const double p, ChiSquaredSf(h, df));
  return TestResult{.method = "Kruskal-Wallis H",
                    .statistic = h,
                    .df1 = df,
                    .df2 = 0.0,
                    .p_value = p};
}

}  // namespace cdibot::stats
