#include "stats/special_functions.h"

#include <cmath>

namespace cdibot::stats {
namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;
constexpr double kTiny = 1e-300;

// Series representation of P(a, x), valid and fast for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Continued-fraction representation of Q(a, x), valid for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

// Lentz continued fraction for the incomplete beta.
double BetaContinuedFraction(double x, double a, double b) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double LogGamma(double x) { return std::lgamma(x); }

StatusOr<double> RegularizedGammaP(double a, double x) {
  if (!(a > 0.0) || x < 0.0) {
    return Status::InvalidArgument("RegularizedGammaP needs a > 0, x >= 0");
  }
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

StatusOr<double> RegularizedGammaQ(double a, double x) {
  if (!(a > 0.0) || x < 0.0) {
    return Status::InvalidArgument("RegularizedGammaQ needs a > 0, x >= 0");
  }
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

StatusOr<double> RegularizedBeta(double x, double a, double b) {
  if (!(a > 0.0) || !(b > 0.0)) {
    return Status::InvalidArgument("RegularizedBeta needs a, b > 0");
  }
  if (x < 0.0 || x > 1.0) {
    return Status::InvalidArgument("RegularizedBeta needs x in [0, 1]");
  }
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  // Use the symmetry relation so the continued fraction converges fast.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(x, a, b) / a;
  }
  return 1.0 - front * BetaContinuedFraction(1.0 - x, b, a) / b;
}

}  // namespace cdibot::stats
