#include "stats/distributions.h"

#include <cmath>

#include "stats/special_functions.h"

namespace cdibot::stats {
namespace {

constexpr double kSqrt2 = 1.4142135623730951;
constexpr double kInvSqrt2Pi = 0.3989422804014327;

// CDF of the range of k independent standard normals:
//   W_k(x) = k * Int phi(z) * [Phi(z) - Phi(z - x)]^{k-1} dz
// evaluated by composite Simpson over z in [-9, 9] (the phi(z) factor makes
// the tails negligible at double precision).
double NormalRangeCdf(double x, int k) {
  if (x <= 0.0) return 0.0;
  constexpr double kLo = -9.0;
  constexpr double kHi = 9.0;
  constexpr int kSteps = 960;  // must be even for Simpson
  const double h = (kHi - kLo) / kSteps;
  auto f = [x, k](double z) {
    const double inner = NormalCdf(z) - NormalCdf(z - x);
    if (inner <= 0.0) return 0.0;
    return NormalPdf(z) * std::pow(inner, k - 1);
  };
  double sum = f(kLo) + f(kHi);
  for (int i = 1; i < kSteps; ++i) {
    sum += f(kLo + i * h) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  const double integral = sum * h / 3.0;
  const double w = static_cast<double>(k) * integral;
  return std::min(1.0, std::max(0.0, w));
}

}  // namespace

double NormalPdf(double x) {
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / kSqrt2); }

double NormalSf(double x) { return 0.5 * std::erfc(x / kSqrt2); }

StatusOr<double> NormalQuantile(double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    return Status::InvalidArgument("NormalQuantile needs p in (0, 1)");
  }
  // Acklam's rational approximation with one Halley refinement step.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // Halley refinement for full double accuracy.
  const double e = NormalCdf(x) - p;
  const double u = e / NormalPdf(x);
  x -= u / (1.0 + x * u / 2.0);
  return x;
}

StatusOr<double> ChiSquaredCdf(double x, double df) {
  if (!(df > 0.0)) return Status::InvalidArgument("df must be > 0");
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(df / 2.0, x / 2.0);
}

StatusOr<double> ChiSquaredSf(double x, double df) {
  if (!(df > 0.0)) return Status::InvalidArgument("df must be > 0");
  if (x <= 0.0) return 1.0;
  return RegularizedGammaQ(df / 2.0, x / 2.0);
}

StatusOr<double> StudentTCdf(double t, double df) {
  if (!(df > 0.0)) return Status::InvalidArgument("df must be > 0");
  const double x = df / (df + t * t);
  CDIBOT_ASSIGN_OR_RETURN(const double ib,
                          RegularizedBeta(x, df / 2.0, 0.5));
  return t >= 0.0 ? 1.0 - 0.5 * ib : 0.5 * ib;
}

StatusOr<double> StudentTTwoSidedP(double t, double df) {
  if (!(df > 0.0)) return Status::InvalidArgument("df must be > 0");
  const double x = df / (df + t * t);
  return RegularizedBeta(x, df / 2.0, 0.5);
}

StatusOr<double> FCdf(double x, double df1, double df2) {
  if (!(df1 > 0.0) || !(df2 > 0.0)) {
    return Status::InvalidArgument("F df must be > 0");
  }
  if (x <= 0.0) return 0.0;
  return RegularizedBeta(df1 * x / (df1 * x + df2), df1 / 2.0, df2 / 2.0);
}

StatusOr<double> FSf(double x, double df1, double df2) {
  if (!(df1 > 0.0) || !(df2 > 0.0)) {
    return Status::InvalidArgument("F df must be > 0");
  }
  if (x <= 0.0) return 1.0;
  return RegularizedBeta(df2 / (df2 + df1 * x), df2 / 2.0, df1 / 2.0);
}

StatusOr<double> StudentizedRangeCdf(double q, int k, double df) {
  if (k < 2) return Status::InvalidArgument("studentized range needs k >= 2");
  if (!(df > 0.0)) return Status::InvalidArgument("df must be > 0");
  if (q <= 0.0) return 0.0;

  // Large df: the chi scale concentrates at 1, so P(Q <= q) -> W_k(q).
  if (df > 2000.0) return NormalRangeCdf(q, k);

  // Outer integral over the scale u = chi_df / sqrt(df), density
  //   g(u) = C * u^{df-1} * exp(-df u^2 / 2),
  //   log C = (df/2) log(df) + (1 - df/2) log(2) - lgamma(df/2).
  const double log_c = 0.5 * df * std::log(df) +
                       (1.0 - 0.5 * df) * std::log(2.0) - LogGamma(df / 2.0);
  // Integration window: the density's mass lies within ~10 relative sigma
  // of 1; sigma of u is about 1/sqrt(2 df).
  const double sigma = 1.0 / std::sqrt(2.0 * df);
  const double lo = std::max(1e-8, 1.0 - 10.0 * sigma);
  const double hi = 1.0 + 12.0 * sigma;
  constexpr int kSteps = 256;  // even
  const double h = (hi - lo) / kSteps;
  auto f = [&](double u) {
    const double log_g =
        log_c + (df - 1.0) * std::log(u) - 0.5 * df * u * u;
    return std::exp(log_g) * NormalRangeCdf(q * u, k);
  };
  double sum = f(lo) + f(hi);
  for (int i = 1; i < kSteps; ++i) {
    sum += f(lo + i * h) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  double cdf = sum * h / 3.0;
  // For small df the density has a heavy right tail beyond the window; add
  // it assuming W ~ its value at hi (upper bound is 1, so this slightly
  // overestimates; the tail mass is < 1e-8 for df >= 3).
  if (df < 3.0) {
    CDIBOT_ASSIGN_OR_RETURN(const double tail_mass,
                            ChiSquaredSf(df * hi * hi, df));
    cdf += tail_mass * NormalRangeCdf(q * hi, k);
  }
  return std::min(1.0, std::max(0.0, cdf));
}

StatusOr<double> StudentizedRangeSf(double q, int k, double df) {
  CDIBOT_ASSIGN_OR_RETURN(const double cdf, StudentizedRangeCdf(q, k, df));
  return 1.0 - cdf;
}

}  // namespace cdibot::stats
