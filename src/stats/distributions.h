#ifndef CDIBOT_STATS_DISTRIBUTIONS_H_
#define CDIBOT_STATS_DISTRIBUTIONS_H_

#include "common/statusor.h"

namespace cdibot::stats {

/// Standard normal CDF Phi(x).
double NormalCdf(double x);

/// Standard normal survival function 1 - Phi(x), computed accurately in the
/// tail via erfc.
double NormalSf(double x);

/// Standard normal quantile Phi^{-1}(p) for p in (0, 1) (Acklam's
/// rational approximation, |relative error| < 1.15e-9).
StatusOr<double> NormalQuantile(double p);

/// Standard normal density phi(x).
double NormalPdf(double x);

/// Chi-squared CDF with df > 0 degrees of freedom.
StatusOr<double> ChiSquaredCdf(double x, double df);
/// Chi-squared upper tail.
StatusOr<double> ChiSquaredSf(double x, double df);

/// Student-t CDF with df > 0.
StatusOr<double> StudentTCdf(double t, double df);
/// Two-sided Student-t p-value P(|T| >= |t|).
StatusOr<double> StudentTTwoSidedP(double t, double df);

/// F-distribution CDF with df1, df2 > 0.
StatusOr<double> FCdf(double x, double df1, double df2);
/// F-distribution upper tail (the ANOVA p-value).
StatusOr<double> FSf(double x, double df1, double df2);

/// CDF of the studentized range distribution: P(Q <= q) for the range of
/// `k` independent standard normals divided by an independent chi estimate
/// with `df` degrees of freedom. This is the reference distribution of the
/// Tukey HSD / Tukey-Kramer / Games-Howell statistics. Computed by direct
/// numerical quadrature of the classical double integral (the same
/// formulation as R's ptukey); accuracy ~1e-6, ample for significance
/// decisions. Requires k >= 2, df > 0, q >= 0.
StatusOr<double> StudentizedRangeCdf(double q, int k, double df);

/// Upper tail of the studentized range distribution.
StatusOr<double> StudentizedRangeSf(double q, int k, double df);

}  // namespace cdibot::stats

#endif  // CDIBOT_STATS_DISTRIBUTIONS_H_
