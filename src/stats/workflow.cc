#include "stats/workflow.h"

namespace cdibot::stats {

StatusOr<WorkflowResult> RunHypothesisWorkflow(
    const std::vector<Sample>& groups, const WorkflowOptions& options) {
  if (groups.size() < 2) {
    return Status::InvalidArgument("workflow needs at least 2 groups");
  }
  WorkflowResult result;

  // Step 1: per-group normality — Shapiro-Wilk for small samples,
  // D'Agostino K^2 for larger ones (Fig. 10: the choice of tests varies
  // with the number of samples).
  result.all_normal = true;
  result.normality.resize(groups.size());
  for (size_t i = 0; i < groups.size(); ++i) {
    if (groups[i].size() < options.min_normality_n) {
      result.all_normal = false;
      continue;
    }
    auto normality = groups[i].size() < options.dagostino_min_n
                         ? ShapiroWilkTest(groups[i])
                         : DAgostinoK2Test(groups[i]);
    if (!normality.ok()) {
      // Degenerate (e.g. constant) samples are certainly not normal.
      result.all_normal = false;
      continue;
    }
    result.normality[i] = normality.value();
    if (normality->SignificantAt(options.alpha)) result.all_normal = false;
  }

  // Step 2: variance homogeneity (only informs the normal branch but is
  // always reported).
  auto levene = LeveneTest(groups);
  if (levene.ok()) {
    result.variance_test = levene.value();
    result.equal_variances = !levene->SignificantAt(options.alpha);
  } else {
    result.equal_variances = false;
  }

  // Step 3: omnibus selection.
  if (result.all_normal && result.equal_variances) {
    CDIBOT_ASSIGN_OR_RETURN(result.omnibus, OneWayAnova(groups));
  } else if (result.all_normal) {
    CDIBOT_ASSIGN_OR_RETURN(result.omnibus, WelchAnova(groups));
  } else {
    CDIBOT_ASSIGN_OR_RETURN(result.omnibus, KruskalWallisTest(groups));
  }
  result.omnibus_significant = result.omnibus.SignificantAt(options.alpha);

  // Step 4: post-hoc only for a significant omnibus with > 2 groups.
  if (!result.omnibus_significant || groups.size() <= 2) return result;

  if (result.all_normal && result.equal_variances) {
    bool equal_sizes = true;
    for (const Sample& g : groups) {
      if (g.size() != groups.front().size()) equal_sizes = false;
    }
    if (equal_sizes) {
      result.posthoc_method = "Tukey HSD";
      CDIBOT_ASSIGN_OR_RETURN(result.posthoc, TukeyHsd(groups));
    } else {
      result.posthoc_method = "Tukey-Kramer";
      CDIBOT_ASSIGN_OR_RETURN(result.posthoc, TukeyKramer(groups));
    }
  } else if (result.all_normal) {
    result.posthoc_method = "Games-Howell";
    CDIBOT_ASSIGN_OR_RETURN(result.posthoc, GamesHowell(groups));
  } else {
    result.posthoc_method = "Dunn";
    CDIBOT_ASSIGN_OR_RETURN(result.posthoc,
                            DunnTest(groups, options.bonferroni_dunn));
  }
  return result;
}

}  // namespace cdibot::stats
