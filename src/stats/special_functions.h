#ifndef CDIBOT_STATS_SPECIAL_FUNCTIONS_H_
#define CDIBOT_STATS_SPECIAL_FUNCTIONS_H_

#include "common/statusor.h"

namespace cdibot::stats {

/// log Gamma(x) for x > 0 (thin wrapper over std::lgamma, kept here so all
/// numeric kernels route through one audited surface).
double LogGamma(double x);

/// Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a),
/// for a > 0, x >= 0. Series expansion for x < a + 1, continued fraction
/// otherwise (Numerical Recipes 6.2). Absolute accuracy ~1e-12.
StatusOr<double> RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
StatusOr<double> RegularizedGammaQ(double a, double x);

/// Regularized incomplete beta I_x(a, b) for a, b > 0 and x in [0, 1],
/// via the Lentz continued fraction (Numerical Recipes 6.4).
StatusOr<double> RegularizedBeta(double x, double a, double b);

}  // namespace cdibot::stats

#endif  // CDIBOT_STATS_SPECIAL_FUNCTIONS_H_
