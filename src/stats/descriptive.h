#ifndef CDIBOT_STATS_DESCRIPTIVE_H_
#define CDIBOT_STATS_DESCRIPTIVE_H_

#include <vector>

#include "common/statusor.h"

namespace cdibot::stats {

/// Sample of observations. All descriptive helpers take a const ref and do
/// not modify the input.
using Sample = std::vector<double>;

/// Arithmetic mean. Requires a non-empty sample.
StatusOr<double> Mean(const Sample& x);

/// Unbiased sample variance (n - 1 denominator). Requires n >= 2.
StatusOr<double> Variance(const Sample& x);

/// Sample standard deviation. Requires n >= 2.
StatusOr<double> StdDev(const Sample& x);

/// Median (average of the two middle order statistics for even n).
/// Requires a non-empty sample.
StatusOr<double> Median(const Sample& x);

/// Quantile via linear interpolation of order statistics (type-7, the
/// default of R and NumPy). Requires non-empty sample and p in [0, 1].
StatusOr<double> Quantile(const Sample& x, double p);

/// Sample skewness g1 = m3 / m2^{3/2} (biased moment form). Requires n >= 3
/// and non-degenerate variance.
StatusOr<double> Skewness(const Sample& x);

/// Sample excess kurtosis g2 = m4 / m2^2 - 3. Requires n >= 4 and
/// non-degenerate variance.
StatusOr<double> ExcessKurtosis(const Sample& x);

/// Midranks: ranks 1..n with ties receiving the average of their positions
/// (the transform behind Kruskal-Wallis and Dunn). Output is parallel to
/// the input.
std::vector<double> MidRanks(const Sample& x);

/// Exponentially weighted moving average of a series with smoothing factor
/// alpha in (0, 1]; used to produce the paper's "smoothed" annual curves.
StatusOr<std::vector<double>> Ewma(const std::vector<double>& series,
                                   double alpha);

}  // namespace cdibot::stats

#endif  // CDIBOT_STATS_DESCRIPTIVE_H_
