#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace cdibot::stats {

StatusOr<double> Mean(const Sample& x) {
  if (x.empty()) return Status::InvalidArgument("Mean needs n >= 1");
  return std::accumulate(x.begin(), x.end(), 0.0) /
         static_cast<double>(x.size());
}

StatusOr<double> Variance(const Sample& x) {
  if (x.size() < 2) return Status::InvalidArgument("Variance needs n >= 2");
  CDIBOT_ASSIGN_OR_RETURN(const double m, Mean(x));
  double ss = 0.0;
  for (double v : x) ss += (v - m) * (v - m);
  return ss / static_cast<double>(x.size() - 1);
}

StatusOr<double> StdDev(const Sample& x) {
  CDIBOT_ASSIGN_OR_RETURN(const double var, Variance(x));
  return std::sqrt(var);
}

StatusOr<double> Median(const Sample& x) { return Quantile(x, 0.5); }

StatusOr<double> Quantile(const Sample& x, double p) {
  if (x.empty()) return Status::InvalidArgument("Quantile needs n >= 1");
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("Quantile needs p in [0, 1]");
  }
  Sample sorted = x;
  std::sort(sorted.begin(), sorted.end());
  const double h = p * (static_cast<double>(sorted.size()) - 1.0);
  const auto lo = static_cast<size_t>(std::floor(h));
  const auto hi = std::min(sorted.size() - 1, lo + 1);
  const double frac = h - std::floor(h);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

namespace {

// Central moments m2, m3, m4 about the mean (biased, /n).
Status CentralMoments(const Sample& x, double* m2, double* m3, double* m4) {
  if (x.empty()) return Status::InvalidArgument("empty sample");
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  double s2 = 0.0, s3 = 0.0, s4 = 0.0;
  for (double v : x) {
    const double d = v - mean;
    const double d2 = d * d;
    s2 += d2;
    s3 += d2 * d;
    s4 += d2 * d2;
  }
  const auto n = static_cast<double>(x.size());
  *m2 = s2 / n;
  *m3 = s3 / n;
  *m4 = s4 / n;
  return Status::OK();
}

}  // namespace

StatusOr<double> Skewness(const Sample& x) {
  if (x.size() < 3) return Status::InvalidArgument("Skewness needs n >= 3");
  double m2, m3, m4;
  CDIBOT_RETURN_IF_ERROR(CentralMoments(x, &m2, &m3, &m4));
  if (m2 <= 0.0) return Status::FailedPrecondition("degenerate sample");
  return m3 / std::pow(m2, 1.5);
}

StatusOr<double> ExcessKurtosis(const Sample& x) {
  if (x.size() < 4) {
    return Status::InvalidArgument("ExcessKurtosis needs n >= 4");
  }
  double m2, m3, m4;
  CDIBOT_RETURN_IF_ERROR(CentralMoments(x, &m2, &m3, &m4));
  if (m2 <= 0.0) return Status::FailedPrecondition("degenerate sample");
  return m4 / (m2 * m2) - 3.0;
}

std::vector<double> MidRanks(const Sample& x) {
  const size_t n = x.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&x](size_t a, size_t b) { return x[a] < x[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && x[order[j + 1]] == x[order[i]]) ++j;
    // Positions i..j (0-based) share the average 1-based rank.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 +
                       1.0;
    for (size_t t = i; t <= j; ++t) ranks[order[t]] = avg;
    i = j + 1;
  }
  return ranks;
}

StatusOr<std::vector<double>> Ewma(const std::vector<double>& series,
                                   double alpha) {
  if (!(alpha > 0.0) || alpha > 1.0) {
    return Status::InvalidArgument("Ewma needs alpha in (0, 1]");
  }
  std::vector<double> out;
  out.reserve(series.size());
  double acc = 0.0;
  bool first = true;
  for (double v : series) {
    acc = first ? v : alpha * v + (1.0 - alpha) * acc;
    first = false;
    out.push_back(acc);
  }
  return out;
}

}  // namespace cdibot::stats
