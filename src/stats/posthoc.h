#ifndef CDIBOT_STATS_POSTHOC_H_
#define CDIBOT_STATS_POSTHOC_H_

#include <vector>

#include "common/statusor.h"
#include "stats/descriptive.h"

namespace cdibot::stats {

/// One pairwise comparison from a post-hoc analysis.
struct PairwiseResult {
  /// Indexes of the compared groups in the input vector.
  size_t group_a = 0;
  size_t group_b = 0;
  /// Test statistic (studentized range q, or z for Dunn).
  double statistic = 0.0;
  /// Error degrees of freedom used for this pair (0 for Dunn).
  double df = 0.0;
  double p_value = 1.0;

  bool SignificantAt(double alpha) const { return p_value < alpha; }
};

/// Tukey's HSD (ref. [44]): all-pairs comparison after a significant ANOVA
/// with equal group sizes, using the studentized range distribution.
/// Requires >= 2 groups of identical size n >= 2.
StatusOr<std::vector<PairwiseResult>> TukeyHsd(
    const std::vector<Sample>& groups);

/// Tukey-Kramer (ref. [45]): the HSD generalization to unequal group sizes.
/// Requires >= 2 groups, each n >= 2. With equal sizes it coincides with
/// TukeyHsd.
StatusOr<std::vector<PairwiseResult>> TukeyKramer(
    const std::vector<Sample>& groups);

/// Games-Howell (ref. [47]): pairwise comparisons without the equal-variance
/// assumption; per-pair Welch-Satterthwaite degrees of freedom. Requires
/// >= 2 groups, each n >= 2, with positive variances.
StatusOr<std::vector<PairwiseResult>> GamesHowell(
    const std::vector<Sample>& groups);

/// Dunn's multiple comparison on ranks (ref. [49]), the post-hoc companion
/// of Kruskal-Wallis. Two-sided normal p-values; `bonferroni` multiplies by
/// the number of pairs (capped at 1).
StatusOr<std::vector<PairwiseResult>> DunnTest(
    const std::vector<Sample>& groups, bool bonferroni = true);

}  // namespace cdibot::stats

#endif  // CDIBOT_STATS_POSTHOC_H_
