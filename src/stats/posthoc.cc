#include "stats/posthoc.h"

#include <algorithm>
#include <cmath>

#include "stats/distributions.h"

namespace cdibot::stats {
namespace {

Status ValidateGroups(const std::vector<Sample>& groups, size_t min_n) {
  if (groups.size() < 2) {
    return Status::InvalidArgument("need at least 2 groups");
  }
  for (const Sample& g : groups) {
    if (g.size() < min_n) {
      return Status::InvalidArgument("every group needs n >= " +
                                     std::to_string(min_n));
    }
  }
  return Status::OK();
}

// Pooled within-group mean square (the ANOVA MSE) and its df.
Status PooledMse(const std::vector<Sample>& groups, double* mse, double* df) {
  double ss = 0.0;
  double n_total = 0.0;
  for (const Sample& g : groups) {
    double m = 0.0;
    for (double v : g) m += v;
    m /= static_cast<double>(g.size());
    for (double v : g) ss += (v - m) * (v - m);
    n_total += static_cast<double>(g.size());
  }
  *df = n_total - static_cast<double>(groups.size());
  if (*df <= 0.0) return Status::InvalidArgument("not enough observations");
  if (ss <= 0.0) {
    return Status::FailedPrecondition(
        "zero within-group variance; studentized range undefined");
  }
  *mse = ss / *df;
  return Status::OK();
}

}  // namespace

StatusOr<std::vector<PairwiseResult>> TukeyHsd(
    const std::vector<Sample>& groups) {
  CDIBOT_RETURN_IF_ERROR(ValidateGroups(groups, 2));
  const size_t n0 = groups.front().size();
  for (const Sample& g : groups) {
    if (g.size() != n0) {
      return Status::InvalidArgument(
          "Tukey HSD needs equal group sizes; use TukeyKramer");
    }
  }
  return TukeyKramer(groups);  // Kramer reduces to HSD for equal sizes
}

StatusOr<std::vector<PairwiseResult>> TukeyKramer(
    const std::vector<Sample>& groups) {
  CDIBOT_RETURN_IF_ERROR(ValidateGroups(groups, 2));
  double mse = 0.0, df = 0.0;
  CDIBOT_RETURN_IF_ERROR(PooledMse(groups, &mse, &df));
  const int k = static_cast<int>(groups.size());

  std::vector<double> means(groups.size());
  for (size_t i = 0; i < groups.size(); ++i) {
    CDIBOT_ASSIGN_OR_RETURN(means[i], Mean(groups[i]));
  }

  std::vector<PairwiseResult> out;
  for (size_t i = 0; i < groups.size(); ++i) {
    for (size_t j = i + 1; j < groups.size(); ++j) {
      const double ni = static_cast<double>(groups[i].size());
      const double nj = static_cast<double>(groups[j].size());
      const double se =
          std::sqrt(mse / 2.0 * (1.0 / ni + 1.0 / nj));
      const double q = std::abs(means[i] - means[j]) / se;
      CDIBOT_ASSIGN_OR_RETURN(const double p,
                              StudentizedRangeSf(q, k, df));
      out.push_back(PairwiseResult{
          .group_a = i, .group_b = j, .statistic = q, .df = df, .p_value = p});
    }
  }
  return out;
}

StatusOr<std::vector<PairwiseResult>> GamesHowell(
    const std::vector<Sample>& groups) {
  CDIBOT_RETURN_IF_ERROR(ValidateGroups(groups, 2));
  const int k = static_cast<int>(groups.size());
  std::vector<double> means(groups.size());
  std::vector<double> vars(groups.size());
  for (size_t i = 0; i < groups.size(); ++i) {
    CDIBOT_ASSIGN_OR_RETURN(means[i], Mean(groups[i]));
    CDIBOT_ASSIGN_OR_RETURN(vars[i], Variance(groups[i]));
    if (vars[i] <= 0.0) {
      return Status::FailedPrecondition(
          "Games-Howell needs positive group variances");
    }
  }

  std::vector<PairwiseResult> out;
  for (size_t i = 0; i < groups.size(); ++i) {
    for (size_t j = i + 1; j < groups.size(); ++j) {
      const double ni = static_cast<double>(groups[i].size());
      const double nj = static_cast<double>(groups[j].size());
      const double vi = vars[i] / ni;
      const double vj = vars[j] / nj;
      const double se2 = vi + vj;
      // Welch-Satterthwaite per-pair degrees of freedom.
      const double df = se2 * se2 /
                        (vi * vi / (ni - 1.0) + vj * vj / (nj - 1.0));
      const double q = std::abs(means[i] - means[j]) / std::sqrt(se2 / 2.0);
      CDIBOT_ASSIGN_OR_RETURN(const double p, StudentizedRangeSf(q, k, df));
      out.push_back(PairwiseResult{
          .group_a = i, .group_b = j, .statistic = q, .df = df, .p_value = p});
    }
  }
  return out;
}

StatusOr<std::vector<PairwiseResult>> DunnTest(
    const std::vector<Sample>& groups, bool bonferroni) {
  CDIBOT_RETURN_IF_ERROR(ValidateGroups(groups, 1));
  Sample pooled;
  for (const Sample& g : groups) {
    pooled.insert(pooled.end(), g.begin(), g.end());
  }
  const auto n = static_cast<double>(pooled.size());
  const std::vector<double> ranks = MidRanks(pooled);

  // Mean rank per group.
  std::vector<double> mean_rank(groups.size());
  size_t offset = 0;
  for (size_t g = 0; g < groups.size(); ++g) {
    double sum = 0.0;
    for (size_t i = 0; i < groups[g].size(); ++i) sum += ranks[offset + i];
    offset += groups[g].size();
    mean_rank[g] = sum / static_cast<double>(groups[g].size());
  }

  // Tie correction term sum(t^3 - t) / (12 (N - 1)).
  Sample sorted = pooled;
  std::sort(sorted.begin(), sorted.end());
  double tie_sum = 0.0;
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
    const auto t = static_cast<double>(j - i + 1);
    tie_sum += t * t * t - t;
    i = j + 1;
  }
  const double tie_term = tie_sum / (12.0 * (n - 1.0));
  const double base_var = n * (n + 1.0) / 12.0 - tie_term;
  if (base_var <= 0.0) {
    return Status::FailedPrecondition("all observations are tied");
  }

  const double num_pairs =
      static_cast<double>(groups.size() * (groups.size() - 1) / 2);
  std::vector<PairwiseResult> out;
  for (size_t a = 0; a < groups.size(); ++a) {
    for (size_t b = a + 1; b < groups.size(); ++b) {
      const double na = static_cast<double>(groups[a].size());
      const double nb = static_cast<double>(groups[b].size());
      const double se = std::sqrt(base_var * (1.0 / na + 1.0 / nb));
      const double z = std::abs(mean_rank[a] - mean_rank[b]) / se;
      double p = 2.0 * NormalSf(z);
      if (bonferroni) p = std::min(1.0, p * num_pairs);
      out.push_back(PairwiseResult{
          .group_a = a, .group_b = b, .statistic = z, .df = 0.0,
          .p_value = p});
    }
  }
  return out;
}

}  // namespace cdibot::stats
