#ifndef CDIBOT_STATS_TESTS_H_
#define CDIBOT_STATS_TESTS_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "stats/descriptive.h"

namespace cdibot::stats {

/// Outcome of a single statistical test.
struct TestResult {
  /// Human-readable test name, e.g. "one-way ANOVA".
  std::string method;
  /// Test statistic (F, H, K^2, ...).
  double statistic = 0.0;
  /// Degrees of freedom (df2 is 0 for single-df-family tests).
  double df1 = 0.0;
  double df2 = 0.0;
  double p_value = 1.0;

  bool SignificantAt(double alpha) const { return p_value < alpha; }
};

/// D'Agostino's K^2 omnibus normality test (the "omnibus test for
/// normality" of ref. [41]): combines z-transformed skewness and kurtosis
/// into a statistic that is chi-squared with 2 df under normality.
/// Requires n >= 8.
StatusOr<TestResult> DAgostinoK2Test(const Sample& x);

/// Shapiro-Wilk normality test (Royston's AS R94 approximation): the
/// standard small-sample normality check. W in (0, 1]; small W rejects
/// normality. Requires 3 <= n <= 5000 and a non-degenerate sample.
/// Accuracy of the p-value approximation: ~1e-3, ample for the workflow's
/// branch decisions.
StatusOr<TestResult> ShapiroWilkTest(const Sample& x);

/// Brown-Forsythe variant of Levene's test for homogeneity of variances
/// (median-centered absolute deviations run through a one-way ANOVA).
/// Requires >= 2 groups, each with n >= 2.
StatusOr<TestResult> LeveneTest(const std::vector<Sample>& groups);

/// Classical one-way ANOVA (ref. [43]). Requires >= 2 groups, each n >= 2,
/// and a non-zero within-group variance.
StatusOr<TestResult> OneWayAnova(const std::vector<Sample>& groups);

/// Welch's heteroscedastic ANOVA (ref. [46]): does not assume equal
/// variances. Requires >= 2 groups, each n >= 2, with positive variances.
StatusOr<TestResult> WelchAnova(const std::vector<Sample>& groups);

/// Kruskal-Wallis H test (ref. [48]) with tie correction. Requires >= 2
/// groups, each n >= 1, and at least one pair of distinct values overall.
StatusOr<TestResult> KruskalWallisTest(const std::vector<Sample>& groups);

}  // namespace cdibot::stats

#endif  // CDIBOT_STATS_TESTS_H_
