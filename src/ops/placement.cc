#include "ops/placement.h"

#include <algorithm>

namespace cdibot {
namespace {

// Whether a VM of `type` may land on an NC with `arch` hosting `resident`
// types. Homogeneous NCs host one type (Fig. 7 a/b); hybrid NCs host both
// (Fig. 7 c).
bool ArchitectureAccepts(DeploymentArch arch, VmType vm_type,
                         const std::vector<VmType>& resident_types) {
  if (arch == DeploymentArch::kHybrid) return true;
  for (VmType t : resident_types) {
    if (t != vm_type) return false;
  }
  return true;
}

}  // namespace

StatusOr<int> PlacementScheduler::FreeCores(const std::string& nc_id) const {
  CDIBOT_ASSIGN_OR_RETURN(const NcInfo nc, topology_->FindNc(nc_id));
  int used = 0;
  for (const std::string& vm_id : topology_->VmsOnNc(nc_id)) {
    CDIBOT_ASSIGN_OR_RETURN(const VmInfo vm, topology_->FindVm(vm_id));
    used += vm.core_end - vm.core_begin;
  }
  return nc.num_cores - used;
}

StatusOr<PlacementDecision> PlacementScheduler::ChooseWithUsage(
    const VmInfo& vm, const std::map<std::string, int>& extra_usage) const {
  const int needed = vm.core_end - vm.core_begin;
  std::vector<PlacementDecision> feasible;

  for (const NcInfo& nc : topology_->ncs()) {
    if (nc.nc_id == vm.nc_id) continue;  // must actually move
    if (platform_->IsLocked(nc.nc_id) ||
        platform_->IsDecommissioned(nc.nc_id)) {
      continue;
    }
    std::vector<VmType> resident_types;
    for (const std::string& other : topology_->VmsOnNc(nc.nc_id)) {
      CDIBOT_ASSIGN_OR_RETURN(const VmInfo info, topology_->FindVm(other));
      resident_types.push_back(info.type);
    }
    if (!ArchitectureAccepts(nc.arch, vm.type, resident_types)) continue;

    CDIBOT_ASSIGN_OR_RETURN(int free, FreeCores(nc.nc_id));
    auto extra = extra_usage.find(nc.nc_id);
    if (extra != extra_usage.end()) free -= extra->second;
    if (free < needed) continue;

    feasible.push_back(PlacementDecision{.vm_id = vm.vm_id,
                                         .source_nc = vm.nc_id,
                                         .destination_nc = nc.nc_id,
                                         .destination_free_cores =
                                             free - needed});
  }
  if (feasible.empty()) {
    return Status::ResourceExhausted("no feasible destination for " +
                                     vm.vm_id);
  }
  // Worst-fit: keep the most headroom; ties by NC id for determinism.
  std::sort(feasible.begin(), feasible.end(),
            [](const PlacementDecision& a, const PlacementDecision& b) {
              if (a.destination_free_cores != b.destination_free_cores) {
                return a.destination_free_cores > b.destination_free_cores;
              }
              return a.destination_nc < b.destination_nc;
            });
  return feasible.front();
}

StatusOr<PlacementDecision> PlacementScheduler::ChooseDestination(
    const std::string& vm_id) const {
  CDIBOT_ASSIGN_OR_RETURN(const VmInfo vm, topology_->FindVm(vm_id));
  return ChooseWithUsage(vm, {});
}

StatusOr<std::vector<PlacementDecision>> PlacementScheduler::PlanEvacuation(
    const std::string& nc_id) const {
  CDIBOT_RETURN_IF_ERROR(topology_->FindNc(nc_id).status());
  std::vector<PlacementDecision> plan;
  std::map<std::string, int> extra_usage;
  for (const std::string& vm_id : topology_->VmsOnNc(nc_id)) {
    CDIBOT_ASSIGN_OR_RETURN(const VmInfo vm, topology_->FindVm(vm_id));
    CDIBOT_ASSIGN_OR_RETURN(PlacementDecision decision,
                            ChooseWithUsage(vm, extra_usage));
    extra_usage[decision.destination_nc] += vm.core_end - vm.core_begin;
    plan.push_back(std::move(decision));
  }
  return plan;
}

}  // namespace cdibot
