#ifndef CDIBOT_OPS_ACTIONS_H_
#define CDIBOT_OPS_ACTIONS_H_

#include <string>
#include <string_view>

#include "common/statusor.h"

namespace cdibot {

/// The operation actions of Table III, grouped by type.
enum class ActionType : int {
  // VM operations.
  kLiveMigration = 0,   ///< migrate a VM without shutdown
  kInPlaceReboot = 1,   ///< reboot a VM on the same NC
  kColdMigration = 2,   ///< reboot and migrate a VM
  // NC software repair.
  kDiskClean = 3,
  kMemoryCompaction = 4,
  kProcessRepair = 5,
  // NC hardware repair.
  kDeviceDisable = 6,
  kRepairRequest = 7,   ///< create a ticket to IDC engineers
  kFpgaSoftRepair = 8,
  // NC control.
  kNcReboot = 9,
  kNcLock = 10,         ///< halt VM creation/migration onto the NC
  kNcDecommission = 11,
  /// No-op control arm for A/B tests (Sec. VI-D).
  kNullAction = 12,
};

/// Coarse action category (the row groups of Table III).
enum class ActionCategory : int {
  kVmOperation = 0,
  kNcSoftwareRepair = 1,
  kNcHardwareRepair = 2,
  kNcControl = 3,
  kNone = 4,
};

std::string_view ActionTypeToString(ActionType t);
StatusOr<ActionType> ActionTypeFromString(std::string_view name);
ActionCategory CategoryOf(ActionType t);

/// Whether the action moves or restarts the VM itself (these conflict with
/// each other on the same target: a VM cannot be live-migrated and
/// cold-migrated at once).
bool IsVmDisruptive(ActionType t);

/// Whether the action restarts or removes the whole NC (these supersede
/// per-VM actions on resident VMs).
bool IsNcDisruptive(ActionType t);

}  // namespace cdibot

#endif  // CDIBOT_OPS_ACTIONS_H_
