#ifndef CDIBOT_OPS_OPERATION_PLATFORM_H_
#define CDIBOT_OPS_OPERATION_PLATFORM_H_

#include <set>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "common/time.h"
#include "ops/actions.h"
#include "rules/rule_engine.h"

namespace cdibot {

/// A concrete action to execute on a target.
struct ActionRequest {
  ActionType type = ActionType::kNullAction;
  std::string target;       ///< VM id for VM operations, NC id otherwise
  std::string source_rule;  ///< rule that triggered it (for audit)
  int priority = 0;         ///< higher executes first
  TimePoint submitted_at;
};

/// Terminal state of a submitted action.
enum class ActionOutcome : int {
  kExecuted = 0,
  /// Dropped by conflict resolution (a conflicting action on the same
  /// target won).
  kDiscardedConflict = 1,
  /// Dropped because the target NC is locked or decommissioned and the
  /// action would place load on it.
  kDiscardedLocked = 2,
};

/// Audit record for one submitted action.
struct ActionRecord {
  ActionRequest request;
  ActionOutcome outcome = ActionOutcome::kExecuted;
};

/// Operation Platform (Sec. II-E): the single chokepoint through which all
/// operation actions flow. It orders submitted actions by priority,
/// discards conflicting ones, and maintains the NC lock / decommission
/// state machine that Example 1 and Case 5 rely on.
///
/// Conflict policy within one Submit batch, per target:
///  * at most one VM-disruptive action per VM (highest priority wins;
///    registration order breaks ties);
///  * an NC-disruptive action on a host discards VM-disruptive actions
///    whose VM resides on that host (callers pass the vm->nc mapping);
///  * duplicate (type, target) pairs collapse to one.
class OperationPlatform {
 public:
  OperationPlatform() = default;

  /// Converts a rule match into requests. Unknown action names fail with
  /// NotFound. `target_for_action` decides per action whether the VM or
  /// its host NC is the target: VM operations target the match's target;
  /// NC-scoped actions target `nc_id`.
  StatusOr<std::vector<ActionRequest>> RequestsFromMatch(
      const RuleMatch& match, const std::string& nc_id) const;

  /// Submits a batch: resolves conflicts, executes survivors in priority
  /// order, and returns the audit records (executed first, then discarded).
  /// `vm_to_nc` maps VM targets to their hosts for cross-target conflicts.
  std::vector<ActionRecord> Submit(
      std::vector<ActionRequest> requests,
      const std::map<std::string, std::string>& vm_to_nc);

  /// NC lock state machine.
  bool IsLocked(const std::string& nc_id) const;
  bool IsDecommissioned(const std::string& nc_id) const;
  /// Manually unlock (repair finished, Example 1's end state).
  void Unlock(const std::string& nc_id);

  /// Every executed action, in execution order.
  const std::vector<ActionRecord>& history() const { return history_; }

  /// Count of executed actions of a given type.
  size_t ExecutedCount(ActionType type) const;

 private:
  void Execute(const ActionRequest& request);

  std::set<std::string> locked_ncs_;
  std::set<std::string> decommissioned_ncs_;
  std::vector<ActionRecord> history_;
};

}  // namespace cdibot

#endif  // CDIBOT_OPS_OPERATION_PLATFORM_H_
