#include "ops/operation_platform.h"

#include <algorithm>
#include <map>

#include "obs/metrics.h"

namespace cdibot {

StatusOr<std::vector<ActionRequest>> OperationPlatform::RequestsFromMatch(
    const RuleMatch& match, const std::string& nc_id) const {
  std::vector<ActionRequest> out;
  out.reserve(match.actions.size());
  for (const ActionSpec& spec : match.actions) {
    CDIBOT_ASSIGN_OR_RETURN(const ActionType type,
                            ActionTypeFromString(spec.action));
    ActionRequest req;
    req.type = type;
    req.target = CategoryOf(type) == ActionCategory::kVmOperation
                     ? match.target
                     : nc_id;
    req.source_rule = match.rule_name;
    req.priority = spec.priority;
    req.submitted_at = match.time;
    out.push_back(std::move(req));
  }
  return out;
}

std::vector<ActionRecord> OperationPlatform::Submit(
    std::vector<ActionRequest> requests,
    const std::map<std::string, std::string>& vm_to_nc) {
  // Priority order (stable: submission order breaks ties).
  std::stable_sort(requests.begin(), requests.end(),
                   [](const ActionRequest& a, const ActionRequest& b) {
                     return a.priority > b.priority;
                   });

  std::vector<ActionRecord> records;
  records.reserve(requests.size());
  std::set<std::pair<int, std::string>> seen;      // (type, target) dedup
  std::set<std::string> vm_disrupted;              // VMs already claimed
  std::set<std::string> nc_disrupted;              // NCs being rebooted etc.

  for (ActionRequest& req : requests) {
    ActionRecord record{.request = req, .outcome = ActionOutcome::kExecuted};

    const auto key =
        std::make_pair(static_cast<int>(req.type), req.target);
    if (!seen.insert(key).second) {
      record.outcome = ActionOutcome::kDiscardedConflict;
      records.push_back(std::move(record));
      continue;
    }

    if (CategoryOf(req.type) == ActionCategory::kVmOperation) {
      auto host_it = vm_to_nc.find(req.target);
      const std::string host =
          host_it == vm_to_nc.end() ? "" : host_it->second;
      if (IsVmDisruptive(req.type)) {
        if (vm_disrupted.count(req.target) > 0 ||
            (!host.empty() && nc_disrupted.count(host) > 0)) {
          record.outcome = ActionOutcome::kDiscardedConflict;
          records.push_back(std::move(record));
          continue;
        }
        vm_disrupted.insert(req.target);
      }
      // Migrations need a destination: with the fleet locked down they
      // cannot run. (In-place reboot is allowed on a locked host.)
      if ((req.type == ActionType::kLiveMigration ||
           req.type == ActionType::kColdMigration) &&
          !host.empty() && IsDecommissioned(host)) {
        record.outcome = ActionOutcome::kDiscardedLocked;
        records.push_back(std::move(record));
        continue;
      }
    } else {
      if (IsNcDisruptive(req.type)) {
        nc_disrupted.insert(req.target);
      }
      if (IsDecommissioned(req.target) &&
          req.type != ActionType::kNcDecommission) {
        record.outcome = ActionOutcome::kDiscardedLocked;
        records.push_back(std::move(record));
        continue;
      }
    }

    Execute(req);
    records.push_back(std::move(record));
  }
  static obs::Counter* executed =
      obs::MetricsRegistry::Global().GetCounter("ops.actions_executed");
  static obs::Counter* discarded =
      obs::MetricsRegistry::Global().GetCounter("ops.actions_discarded");
  for (const ActionRecord& rec : records) {
    if (rec.outcome == ActionOutcome::kExecuted) {
      executed->Increment();
    } else {
      discarded->Increment();
    }
  }
  return records;
}

void OperationPlatform::Execute(const ActionRequest& request) {
  switch (request.type) {
    case ActionType::kNcLock:
      locked_ncs_.insert(request.target);
      break;
    case ActionType::kNcDecommission:
      decommissioned_ncs_.insert(request.target);
      locked_ncs_.insert(request.target);
      break;
    default:
      break;  // other actions only leave an audit record in this model
  }
  history_.push_back(
      ActionRecord{.request = request, .outcome = ActionOutcome::kExecuted});
}

bool OperationPlatform::IsLocked(const std::string& nc_id) const {
  return locked_ncs_.count(nc_id) > 0;
}

bool OperationPlatform::IsDecommissioned(const std::string& nc_id) const {
  return decommissioned_ncs_.count(nc_id) > 0;
}

void OperationPlatform::Unlock(const std::string& nc_id) {
  locked_ncs_.erase(nc_id);
}

size_t OperationPlatform::ExecutedCount(ActionType type) const {
  size_t count = 0;
  for (const ActionRecord& rec : history_) {
    if (rec.request.type == type &&
        rec.outcome == ActionOutcome::kExecuted) {
      ++count;
    }
  }
  return count;
}

}  // namespace cdibot
