#ifndef CDIBOT_OPS_PLACEMENT_H_
#define CDIBOT_OPS_PLACEMENT_H_

#include <map>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "ops/operation_platform.h"
#include "telemetry/topology.h"

namespace cdibot {

/// A chosen migration destination.
struct PlacementDecision {
  std::string vm_id;
  std::string source_nc;
  std::string destination_nc;
  /// Free cores remaining on the destination after placing the VM.
  int destination_free_cores = 0;
};

/// PlacementScheduler answers the question the Operation Platform's
/// migrations leave open: WHERE does an evacuated VM go? It models the
/// scheduling constraints the paper's cases revolve around:
///
///  * capacity — the destination must have enough free physical cores for
///    the VM's allocation (Case 6 is exactly what happens when this
///    bookkeeping is wrong);
///  * locks — locked or decommissioned NCs accept no new VMs (Example 1
///    locks the faulty host for the repair duration);
///  * architecture — dedicated VMs only land on hosts whose deployment
///    architecture accepts them (homogeneous-dedicated, or hybrid);
///    shared VMs likewise (Case 5's pools);
///  * spread — among feasible hosts, pick the one with the most free cores
///    (worst-fit keeps headroom for elasticity), ties broken by NC id.
class PlacementScheduler {
 public:
  /// `topology` and `platform` are borrowed and must outlive the scheduler.
  /// The platform supplies the NC lock state.
  PlacementScheduler(const FleetTopology* topology,
                     const OperationPlatform* platform)
      : topology_(topology), platform_(platform) {}

  /// Chooses a destination for `vm_id`, excluding its current host.
  /// Returns ResourceExhausted when no feasible destination exists.
  StatusOr<PlacementDecision> ChooseDestination(
      const std::string& vm_id) const;

  /// Plans destinations for every VM on `nc_id` (the nc_down_prediction /
  /// Example 1 evacuation). Decisions account for the capacity consumed by
  /// earlier decisions in the same plan. Returns ResourceExhausted if any
  /// VM cannot be placed (no partial plans: evacuation is all-or-nothing).
  StatusOr<std::vector<PlacementDecision>> PlanEvacuation(
      const std::string& nc_id) const;

  /// Free cores currently available on `nc_id` (capacity minus the cores of
  /// resident VMs). NotFound for unknown NCs.
  StatusOr<int> FreeCores(const std::string& nc_id) const;

 private:
  StatusOr<PlacementDecision> ChooseWithUsage(
      const VmInfo& vm, const std::map<std::string, int>& extra_usage) const;

  const FleetTopology* topology_;
  const OperationPlatform* platform_;
};

}  // namespace cdibot

#endif  // CDIBOT_OPS_PLACEMENT_H_
