#ifndef CDIBOT_OPS_PRIORITIZER_H_
#define CDIBOT_OPS_PRIORITIZER_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "event/event.h"
#include "ops/actions.h"
#include "weights/event_weights.h"

namespace cdibot {

/// A VM awaiting an operation, with the events currently active on it.
struct PendingVm {
  std::string vm_id;
  std::vector<ResolvedEvent> active_events;
};

/// A prioritized operation decision for one VM.
struct PrioritizedOperation {
  std::string vm_id;
  /// The ongoing damage rate: the maximum active event weight (the CDI
  /// accrues at this rate per unit time while the issue persists), so
  /// operating on this VM first yields the largest CDI improvement.
  double damage_rate = 0.0;
  /// The most severe active event driving the decision.
  std::string driving_event;
  /// The action selected for the damage level.
  ActionType action = ActionType::kRepairRequest;
};

/// Operation-platform optimization of Sec. VIII-C: uses CDI event weights
/// to (a) order pending VM operations so the migration that "more
/// positively influences overall CDI" runs first, and (b) choose the action
/// aggressiveness by severity — low-severity issues file a ticket,
/// mid-severity issues schedule a live migration, and fatal damage
/// cold-migrates immediately.
class OperationPrioritizer {
 public:
  struct Options {
    /// Damage rate at or above which a live migration is scheduled instead
    /// of a ticket.
    double migrate_threshold = 0.5;
    /// Damage rate at or above which the VM is cold-migrated (the issue is
    /// already service-affecting at full weight).
    double cold_migrate_threshold = 1.0;
  };

  /// `weights` must outlive the prioritizer. Thresholds must satisfy
  /// 0 < migrate_threshold <= cold_migrate_threshold.
  static StatusOr<OperationPrioritizer> Create(
      const EventWeightModel* weights, Options options);
  static StatusOr<OperationPrioritizer> Create(
      const EventWeightModel* weights) {
    return Create(weights, Options());
  }

  /// Scores one VM: damage rate, driving event, and the selected action.
  /// VMs with no active events score 0 and get kNullAction.
  StatusOr<PrioritizedOperation> Score(const PendingVm& vm) const;

  /// Scores all VMs and returns them ordered by descending damage rate
  /// (ties by vm_id for determinism) — the execution order for the
  /// operation platform.
  StatusOr<std::vector<PrioritizedOperation>> Rank(
      const std::vector<PendingVm>& vms) const;

 private:
  OperationPrioritizer(const EventWeightModel* weights, Options options)
      : weights_(weights), options_(options) {}

  const EventWeightModel* weights_;
  Options options_;
};

}  // namespace cdibot

#endif  // CDIBOT_OPS_PRIORITIZER_H_
