#include "ops/actions.h"

namespace cdibot {

std::string_view ActionTypeToString(ActionType t) {
  switch (t) {
    case ActionType::kLiveMigration:
      return "live_migration";
    case ActionType::kInPlaceReboot:
      return "in_place_reboot";
    case ActionType::kColdMigration:
      return "cold_migration";
    case ActionType::kDiskClean:
      return "disk_clean";
    case ActionType::kMemoryCompaction:
      return "memory_compaction";
    case ActionType::kProcessRepair:
      return "process_repair";
    case ActionType::kDeviceDisable:
      return "device_disable";
    case ActionType::kRepairRequest:
      return "repair_request";
    case ActionType::kFpgaSoftRepair:
      return "fpga_soft_repair";
    case ActionType::kNcReboot:
      return "nc_reboot";
    case ActionType::kNcLock:
      return "nc_lock";
    case ActionType::kNcDecommission:
      return "nc_decommission";
    case ActionType::kNullAction:
      return "null_action";
  }
  return "?";
}

StatusOr<ActionType> ActionTypeFromString(std::string_view name) {
  static constexpr ActionType kAll[] = {
      ActionType::kLiveMigration,  ActionType::kInPlaceReboot,
      ActionType::kColdMigration,  ActionType::kDiskClean,
      ActionType::kMemoryCompaction, ActionType::kProcessRepair,
      ActionType::kDeviceDisable,  ActionType::kRepairRequest,
      ActionType::kFpgaSoftRepair, ActionType::kNcReboot,
      ActionType::kNcLock,         ActionType::kNcDecommission,
      ActionType::kNullAction,
  };
  for (ActionType t : kAll) {
    if (ActionTypeToString(t) == name) return t;
  }
  return Status::NotFound("unknown action: " + std::string(name));
}

ActionCategory CategoryOf(ActionType t) {
  switch (t) {
    case ActionType::kLiveMigration:
    case ActionType::kInPlaceReboot:
    case ActionType::kColdMigration:
      return ActionCategory::kVmOperation;
    case ActionType::kDiskClean:
    case ActionType::kMemoryCompaction:
    case ActionType::kProcessRepair:
      return ActionCategory::kNcSoftwareRepair;
    case ActionType::kDeviceDisable:
    case ActionType::kRepairRequest:
    case ActionType::kFpgaSoftRepair:
      return ActionCategory::kNcHardwareRepair;
    case ActionType::kNcReboot:
    case ActionType::kNcLock:
    case ActionType::kNcDecommission:
      return ActionCategory::kNcControl;
    case ActionType::kNullAction:
      return ActionCategory::kNone;
  }
  return ActionCategory::kNone;
}

bool IsVmDisruptive(ActionType t) {
  return t == ActionType::kLiveMigration || t == ActionType::kInPlaceReboot ||
         t == ActionType::kColdMigration;
}

bool IsNcDisruptive(ActionType t) {
  return t == ActionType::kNcReboot || t == ActionType::kNcDecommission;
}

}  // namespace cdibot
