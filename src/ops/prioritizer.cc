#include "ops/prioritizer.h"

#include <algorithm>

namespace cdibot {

StatusOr<OperationPrioritizer> OperationPrioritizer::Create(
    const EventWeightModel* weights, Options options) {
  if (weights == nullptr) {
    return Status::InvalidArgument("weights must not be null");
  }
  if (!(options.migrate_threshold > 0.0) ||
      options.migrate_threshold > options.cold_migrate_threshold) {
    return Status::InvalidArgument(
        "need 0 < migrate_threshold <= cold_migrate_threshold");
  }
  return OperationPrioritizer(weights, options);
}

StatusOr<PrioritizedOperation> OperationPrioritizer::Score(
    const PendingVm& vm) const {
  PrioritizedOperation op;
  op.vm_id = vm.vm_id;
  for (const ResolvedEvent& ev : vm.active_events) {
    CDIBOT_ASSIGN_OR_RETURN(const double w, weights_->WeightFor(ev));
    if (w > op.damage_rate) {
      op.damage_rate = w;
      op.driving_event = ev.name;
    }
  }
  if (op.damage_rate <= 0.0) {
    op.action = ActionType::kNullAction;
  } else if (op.damage_rate >= options_.cold_migrate_threshold) {
    op.action = ActionType::kColdMigration;
  } else if (op.damage_rate >= options_.migrate_threshold) {
    op.action = ActionType::kLiveMigration;
  } else {
    op.action = ActionType::kRepairRequest;
  }
  return op;
}

StatusOr<std::vector<PrioritizedOperation>> OperationPrioritizer::Rank(
    const std::vector<PendingVm>& vms) const {
  std::vector<PrioritizedOperation> out;
  out.reserve(vms.size());
  for (const PendingVm& vm : vms) {
    CDIBOT_ASSIGN_OR_RETURN(PrioritizedOperation op, Score(vm));
    out.push_back(std::move(op));
  }
  std::sort(out.begin(), out.end(),
            [](const PrioritizedOperation& a, const PrioritizedOperation& b) {
              if (a.damage_rate != b.damage_rate) {
                return a.damage_rate > b.damage_rate;
              }
              return a.vm_id < b.vm_id;
            });
  return out;
}

}  // namespace cdibot
