#include "sim/fleet.h"

#include "common/rng.h"
#include "common/strings.h"

namespace cdibot {

StatusOr<Fleet> Fleet::Build(const FleetSpec& spec) {
  if (spec.regions < 1 || spec.azs_per_region < 1 ||
      spec.clusters_per_az < 1 || spec.ncs_per_cluster < 1 ||
      spec.vms_per_nc < 1) {
    return Status::InvalidArgument("fleet counts must be >= 1");
  }
  if (spec.hybrid_fraction < 0.0 || spec.hybrid_fraction > 1.0 ||
      spec.gen2_fraction < 0.0 || spec.gen2_fraction > 1.0) {
    return Status::InvalidArgument("fractions must be in [0, 1]");
  }

  Rng rng(spec.seed);
  FleetTopology topo;
  for (int r = 0; r < spec.regions; ++r) {
    for (int a = 0; a < spec.azs_per_region; ++a) {
      for (int c = 0; c < spec.clusters_per_az; ++c) {
        const std::string region = StrFormat("r%d", r);
        const std::string az = StrFormat("r%d-az%d", r, a);
        const std::string cluster = StrFormat("r%d-az%d-c%d", r, a, c);
        CDIBOT_RETURN_IF_ERROR(topo.AddCluster(region, az, cluster));
        for (int n = 0; n < spec.ncs_per_cluster; ++n) {
          NcInfo nc;
          nc.nc_id = StrFormat("%s-nc%03d", cluster.c_str(), n);
          nc.cluster_id = cluster;
          const bool hybrid = rng.Bernoulli(spec.hybrid_fraction);
          nc.arch = hybrid ? DeploymentArch::kHybrid
                           : DeploymentArch::kHomogeneous;
          nc.model = rng.Bernoulli(spec.gen2_fraction) ? "gen2" : "gen3";
          nc.num_cores = 104;
          CDIBOT_RETURN_IF_ERROR(topo.AddNc(nc));

          // Homogeneous NCs alternate between all-dedicated and all-shared
          // pools (Fig. 7 a/b); hybrid NCs split their cores (Fig. 7 c).
          const bool homogeneous_dedicated = !hybrid && n % 2 == 0;
          int next_core = 0;
          for (int v = 0; v < spec.vms_per_nc; ++v) {
            VmInfo vm;
            vm.vm_id = StrFormat("%s-vm%02d", nc.nc_id.c_str(), v);
            vm.nc_id = nc.nc_id;
            if (hybrid) {
              vm.type = v % 2 == 0 ? VmType::kDedicated : VmType::kShared;
            } else {
              vm.type = homogeneous_dedicated ? VmType::kDedicated
                                              : VmType::kShared;
            }
            const int cores = vm.type == VmType::kDedicated ? 8 : 4;
            vm.core_begin = next_core;
            vm.core_end = next_core + cores;
            next_core += cores;
            CDIBOT_RETURN_IF_ERROR(topo.AddVm(vm));
          }
        }
      }
    }
  }
  return Fleet(spec, std::move(topo));
}

StatusOr<std::vector<VmServiceInfo>> Fleet::ServiceInfos(
    const Interval& window) const {
  if (window.empty()) {
    return Status::InvalidArgument("service window must be non-empty");
  }
  std::vector<VmServiceInfo> out;
  out.reserve(topology_.num_vms());
  for (const VmInfo& vm : topology_.vms()) {
    CDIBOT_ASSIGN_OR_RETURN(auto dims, topology_.DimsForVm(vm.vm_id));
    out.push_back(VmServiceInfo{.vm_id = vm.vm_id,
                                .dims = std::move(dims),
                                .service_period = window});
  }
  return out;
}

StatusOr<std::vector<VmServiceInfo>> Fleet::ServiceInfosWhere(
    const Interval& window, const std::string& dim,
    const std::string& value) const {
  CDIBOT_ASSIGN_OR_RETURN(std::vector<VmServiceInfo> all,
                          ServiceInfos(window));
  std::vector<VmServiceInfo> out;
  for (VmServiceInfo& info : all) {
    auto it = info.dims.find(dim);
    if (it != info.dims.end() && it->second == value) {
      out.push_back(std::move(info));
    }
  }
  return out;
}

}  // namespace cdibot
