#include "sim/churn.h"

namespace cdibot {

StatusOr<std::vector<VmServiceInfo>> ChurnedServiceInfos(
    const Fleet& fleet, const Interval& day, const ChurnSpec& spec,
    Rng* rng) {
  if (spec.created_fraction < 0.0 || spec.created_fraction > 1.0 ||
      spec.released_fraction < 0.0 || spec.released_fraction > 1.0) {
    return Status::InvalidArgument("churn fractions must be in [0, 1]");
  }
  CDIBOT_ASSIGN_OR_RETURN(std::vector<VmServiceInfo> infos,
                          fleet.ServiceInfos(day));
  std::vector<VmServiceInfo> out;
  out.reserve(infos.size());
  for (VmServiceInfo& info : infos) {
    TimePoint start = day.start;
    TimePoint end = day.end;
    if (rng->Bernoulli(spec.created_fraction)) {
      start = day.start +
              Duration::Millis(rng->UniformInt(0, day.length().millis() - 1));
    }
    if (rng->Bernoulli(spec.released_fraction)) {
      const int64_t lo = start.millis() - day.start.millis();
      end = day.start +
            Duration::Millis(rng->UniformInt(lo, day.length().millis() - 1));
    }
    if (end - start < spec.min_service) continue;
    info.service_period = Interval(start, end);
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace cdibot
