#ifndef CDIBOT_SIM_INCIDENTS_H_
#define CDIBOT_SIM_INCIDENTS_H_

#include <string>

#include "common/statusor.h"
#include "sim/scenario.h"

namespace cdibot {

/// Scripted replays of the paper's incidents and cases. Each injector
/// writes raw events into the log for the affected subset of the fleet;
/// running the daily CDI job afterwards reproduces the corresponding
/// figure.

/// Fig. 5, incident 20240425: an availability-zone outage takes down every
/// VM in `az` for `outage`. Emits nc_down (unavailability) plus api_error
/// noise. Visible in CDI-U, AIR, and DP.
Status InjectAzOutage(const Fleet& fleet, const std::string& az,
                      const Interval& outage, FaultInjector* injector,
                      EventLog* log);

/// Fig. 5, incident 20240702: network access abnormalities in `az` — heavy
/// packet loss everywhere and a fraction of VMs fully unreachable.
/// Visible in CDI-U/CDI-P, AIR, and DP.
Status InjectNetworkOutage(const Fleet& fleet, const std::string& az,
                           const Interval& outage, double unreachable_fraction,
                           FaultInjector* injector, EventLog* log, Rng* rng);

/// Fig. 5, incident 20250107: a purchase/modify control-plane outage in
/// `region`. Existing VMs keep running — only control-plane events are
/// emitted, so AIR and DP stay flat while CDI-C spikes (the paper's key
/// demonstration).
Status InjectControlPlaneOutage(const Fleet& fleet, const std::string& region,
                                const Interval& outage,
                                FaultInjector* injector, EventLog* log);

/// Case 5 / Fig. 8: the hybrid-deployment defect — CPU contention episodes
/// on shared+dedicated core-overlap, but ONLY on hybrid NCs of the
/// defective machine model. `intensity` scales episodes per affected VM
/// for the day.
Status InjectHybridContentionDefect(const Fleet& fleet, TimePoint day_start,
                                    const std::string& defective_model,
                                    double intensity, FaultInjector* injector,
                                    EventLog* log, Rng* rng);

/// Case 6 / Fig. 9(a): scheduling-data corruption in one cluster causes
/// vm_allocation_failed episodes for a fraction of its VMs during the day.
Status InjectAllocationBug(const Fleet& fleet, const std::string& cluster,
                           TimePoint day_start, double affected_fraction,
                           FaultInjector* injector, EventLog* log, Rng* rng);

/// Case 7 / Fig. 9(b): normal TDP monitoring emits inspect_cpu_power_tdp
/// episodes at `rate` per VM-day; during a collector outage the measured
/// power reads zero and NO events are emitted. Call with rate = 0 to model
/// the broken-collector days.
Status InjectTdpMonitoring(const Fleet& fleet, TimePoint day_start,
                           double rate, FaultInjector* injector,
                           EventLog* log);

}  // namespace cdibot

#endif  // CDIBOT_SIM_INCIDENTS_H_
