#include "sim/cloudbot_loop.h"

#include <algorithm>
#include <optional>
#include <set>

#include "common/logging.h"
#include "common/strings.h"
#include "obs/fleet.h"
#include "obs/metrics.h"
#include "obs/statusz.h"
#include "obs/trace.h"
#include "ops/placement.h"
#include "storage/checkpoint_store.h"

namespace cdibot {
namespace {

// One in-flight NIC incident on a VM.
struct Incident {
  std::string vm_id;
  std::string nc_id;
  TimePoint start;
  TimePoint natural_end;  // when it would end without intervention
  TimePoint actual_end;   // truncated by automation when it acts
  bool migrated = false;
};

RawEvent MakeEvent(const std::string& name, TimePoint time,
                   const std::string& target, Severity level,
                   Duration expire = Duration::Hours(1)) {
  // Every event the simulated day emits passes through here, so this is
  // the telemetry-generation tap for statusz.
  static obs::Counter* emitted = obs::MetricsRegistry::Global().GetCounter(
      "telemetry.events_emitted");
  emitted->Increment();
  RawEvent ev;
  ev.name = name;
  ev.time = time;
  ev.target = target;
  ev.level = level;
  ev.expire_interval = expire;
  return ev;
}

}  // namespace

StatusOr<AutomationLoopResult> RunAutomationDay(
    const Fleet& fleet, TimePoint day_start, const EventCatalog& catalog,
    const EventWeightModel& weights, const AutomationLoopOptions& options,
    Rng* rng, dataflow::ExecContext ctx) {
  if (options.tick.millis() <= 0) {
    return Status::InvalidArgument("tick must be positive");
  }
  if (options.flow_control && !options.streaming_cdi) {
    return Status::InvalidArgument("flow_control requires streaming_cdi");
  }
  if (options.watchdog_recovery &&
      (!options.flow_control || !options.supervise_streaming)) {
    return Status::InvalidArgument(
        "watchdog_recovery requires flow_control and supervise_streaming");
  }
  const bool fleet_obs =
      options.fleet_statusz || !options.merged_trace_path.empty();
  if (fleet_obs &&
      (!options.sharded_cdi ||
       options.shard_transport != shard::ShardTransportMode::kSocketProcess)) {
    return Status::InvalidArgument(
        "fleet_statusz/merged_trace_path require sharded_cdi over "
        "kSocketProcess: same-process shard modes share the coordinator's "
        "obs registry, so a fleet merge would double-count every metric");
  }
  // Tracing for the run when a trace path is requested; restored on exit so
  // a caller-enabled tracer is left untouched. A merged fleet trace needs
  // the coordinator side traced too, not just the workers.
  const bool tracer_was_enabled = obs::Tracer::Global().enabled();
  const bool want_tracing = !options.trace_json_path.empty() ||
                            !options.merged_trace_path.empty();
  if (want_tracing) obs::Tracer::Global().Enable();
  // Held in an optional so the day span can be closed before the trace file
  // is written (a still-open span would be missing from the export).
  std::optional<obs::ScopedSpan> day_span;
  day_span.emplace("sim.automation_day");
  const Interval day(day_start, day_start + Duration::Days(1));

  // --- Plan the day's incidents ---------------------------------------------
  std::vector<Incident> incidents;
  for (const VmInfo& vm : fleet.topology().vms()) {
    if (!rng->Bernoulli(options.incident_probability)) continue;
    Incident inc;
    inc.vm_id = vm.vm_id;
    inc.nc_id = vm.nc_id;
    // Start early enough that the natural course fits the day (keeps the
    // on/off comparison apples-to-apples).
    const int64_t latest_start =
        day.end.millis() - options.natural_duration_mean.millis() * 2;
    inc.start = TimePoint::FromMillis(
        rng->UniformInt(day.start.millis(),
                        std::max(day.start.millis() + 1, latest_start)));
    const double hours = std::max(
        0.25, rng->Normal(options.natural_duration_mean.hours(),
                          options.natural_duration_mean.hours() / 4.0));
    inc.natural_end = inc.start + Duration::Millis(static_cast<int64_t>(
                                      hours * 3600.0 * 1000.0));
    if (day.end < inc.natural_end) inc.natural_end = day.end;
    inc.actual_end = inc.natural_end;
    incidents.push_back(std::move(inc));
  }
  // Process the day in event-time order. The loop's clock (sim_now, the
  // watchdog's heartbeat source) is the frontier of incident end times;
  // handling incidents in fleet-topology order would let one late-ending
  // incident freeze that frontier for the rest of the day.
  std::stable_sort(incidents.begin(), incidents.end(),
                   [](const Incident& a, const Incident& b) {
                     return a.start < b.start;
                   });

  CDIBOT_ASSIGN_OR_RETURN(RuleEngine engine, RuleEngine::BuiltIn());
  OperationPlatform platform;
  PlacementScheduler scheduler(&fleet.topology(), &platform);
  AutomationLoopResult result;
  result.incidents = incidents.size();

  CDIBOT_ASSIGN_OR_RETURN(const auto vms, fleet.ServiceInfos(day));

  // Optional shadow engine: sees every event the log sees, live.
  std::optional<StreamingCdiEngine> stream;
  if (options.streaming_cdi) {
    StreamingCdiOptions sopts;
    sopts.window = day;
    sopts.pool = ctx.pool;
    CDIBOT_ASSIGN_OR_RETURN(
        StreamingCdiEngine engine_impl,
        StreamingCdiEngine::Create(&catalog, &weights, sopts));
    stream.emplace(std::move(engine_impl));
    for (const VmServiceInfo& vm : vms) {
      CDIBOT_RETURN_IF_ERROR(stream->RegisterVm(vm));
    }
  }
  // Optional sharded fleet: the same live event feed, but routed through a
  // ShardCoordinator to per-range shard workers over message channels. Its
  // end-of-day gather is compared against the batch and streaming values.
  std::unique_ptr<shard::ShardCoordinator> sharded;
  if (options.sharded_cdi) {
    shard::ShardTopologyOptions topo;
    topo.num_shards = options.cdi_shards;
    topo.engine.window = day;
    topo.transport = options.shard_transport;
    topo.worker_binary = options.shard_worker_binary;
    topo.weight_spec = options.shard_weight_spec;
    topo.worker_tracing = !options.merged_trace_path.empty();
    CDIBOT_ASSIGN_OR_RETURN(
        sharded, shard::ShardCoordinator::Create(&catalog, &weights,
                                                 std::move(topo)));
    CDIBOT_RETURN_IF_ERROR(sharded->RegisterVms(vms));
  }
  bool shards_rebalanced = false;
  // Unified read facade: when enabled, every read below goes through a
  // CdiQueryService per topology instead of the engines' own methods. The
  // sources borrow the engines; `stream` lives in an optional whose
  // storage is stable across crash/restore emplacements, so the borrowed
  // pointer stays valid whenever stream.has_value() — and the facade is
  // only consulted under that check.
  std::optional<serve::EngineSource> stream_source;
  std::optional<serve::CdiQueryService> stream_service;
  std::optional<serve::CoordinatorSource> shard_source;
  std::optional<serve::CdiQueryService> shard_service;
  if (options.serve_reads) {
    if (stream.has_value()) {
      stream_source.emplace(&*stream);
      stream_service.emplace(&*stream_source, options.serve_options);
    }
    if (sharded != nullptr) {
      serve::CdiQueryServiceOptions shard_serve_options = options.serve_options;
      shard_serve_options.metric_prefix += ".shard";
      shard_source.emplace(sharded.get());
      shard_service.emplace(&*shard_source, shard_serve_options);
    }
  }
  // Flow control: instead of ingesting directly, events enter a bounded
  // backpressure queue; a pump drains it into the engine after each
  // incident. Sheds are tallied per target and reported to the engine
  // before the day's final results so every shed surfaces as a degraded
  // DataQuality annotation rather than a silent gap.
  std::optional<flow::BackpressureQueue> queue;
  std::map<std::string, uint64_t> shed_counts;
  if (options.flow_control) {
    queue.emplace(options.flow_options);
    queue->set_shed_callback(
        [&shed_counts](const RawEvent& ev, flow::FlowClass) {
          ++shed_counts[ev.target];
        });
  }
  auto flow_class_for = [&catalog](const RawEvent& ev) {
    const auto handle = catalog.FindHandle(ev.name);
    return handle.has_value()
               ? flow::FlowClassForCategory(handle->spec->category)
               : flow::FlowClass::kPerformance;
  };
  auto feed_stream = [&](const RawEvent& ev) -> Status {
    if (sharded != nullptr) {
      CDIBOT_RETURN_IF_ERROR(sharded->Ingest(ev));
    }
    if (queue.has_value()) {
      // TryPush never returns kQueueFull here: the sim emits no
      // unavailability-class events at hard capacity without sheddable
      // items queued, and sheddable classes are admitted or shed.
      queue->TryPush(ev, flow_class_for(ev));
      return Status::OK();
    }
    if (!stream.has_value()) return Status::OK();
    return stream->Ingest(ev);
  };
  // Tracks the frontier of emitted event time; heartbeats and watchdog
  // polls run on this clock so stall detection is deterministic.
  TimePoint sim_now = day.start;
  std::optional<flow::Watchdog> watchdog;
  if (options.watchdog_recovery) {
    watchdog.emplace("stream_pump",
                     flow::WatchdogOptions{
                         .stall_timeout = options.watchdog_stall_timeout});
  }
  // Drains the queue into the engine (bounded per step when configured).
  // A dead engine leaves the backlog in place — the queue, not the
  // engine, is the day's buffer of record while the supervisor reacts.
  auto pump = [&]() -> Status {
    if (!queue.has_value() || !stream.has_value()) return Status::OK();
    const bool unbounded = options.flow_drain_per_step == 0;
    size_t budget = options.flow_drain_per_step;
    RawEvent ev;
    while ((unbounded || budget-- > 0) && queue->TryPop(&ev)) {
      CDIBOT_RETURN_IF_ERROR(stream->Ingest(ev));
    }
    if (watchdog.has_value()) watchdog->Heartbeat(sim_now);
    return Status::OK();
  };

  // Supervisor mode: checkpoint after every incident and crash/restore the
  // engine at evenly spaced points across the day.
  std::optional<StreamCheckpointStore> store;
  std::set<size_t> crash_after;
  if (options.supervise_streaming) {
    if (!options.streaming_cdi) {
      return Status::InvalidArgument(
          "supervise_streaming requires streaming_cdi");
    }
    if (options.checkpoint_dir.empty()) {
      return Status::InvalidArgument(
          "supervise_streaming requires a checkpoint_dir");
    }
    CheckpointStoreOptions store_options;
    store_options.breaker = options.checkpoint_breaker;
    CDIBOT_ASSIGN_OR_RETURN(
        StreamCheckpointStore opened,
        StreamCheckpointStore::Open(options.checkpoint_dir, store_options));
    store.emplace(std::move(opened));
    const size_t n = incidents.size();
    const size_t k = std::min(options.supervisor_crashes, n);
    for (size_t j = 1; j <= k; ++j) {
      crash_after.insert(j * n / (k + 1));
    }
  }

  EventLog log;
  std::map<std::string, std::string> vm_to_nc;

  static obs::Counter* incidents_counter =
      obs::MetricsRegistry::Global().GetCounter("sim.incidents");
  static obs::Counter* matches_counter =
      obs::MetricsRegistry::Global().GetCounter("sim.rule_matches");
  static obs::Counter* migrations_counter =
      obs::MetricsRegistry::Global().GetCounter("sim.migrations_executed");
  static obs::Counter* placement_failures_counter =
      obs::MetricsRegistry::Global().GetCounter("sim.placements_failed");
  incidents_counter->Add(incidents.size());

  // --- Drive each incident through the loop ---------------------------------
  for (size_t inc_index = 0; inc_index < incidents.size(); ++inc_index) {
    TRACE_SPAN("sim.incident");
    Incident& inc = incidents[inc_index];
    vm_to_nc[inc.vm_id] = inc.nc_id;
    // The NIC flap is logged once at the incident start (Example 1).
    RawEvent flap =
        MakeEvent("nic_flapping", inc.start, inc.vm_id, Severity::kCritical);
    log.Append(flap);
    CDIBOT_RETURN_IF_ERROR(feed_stream(flap));

    // Emit slow_io minute by minute; after each tick boundary, let the rule
    // engine look at the events extracted so far.
    std::vector<RawEvent> vm_events = {std::move(flap)};
    TimePoint next_tick =
        inc.start + options.tick -
        Duration::Millis(inc.start.millis() % options.tick.millis());
    TimePoint t = inc.start + Duration::Minutes(1);
    while (t <= inc.actual_end) {
      RawEvent ev =
          MakeEvent("slow_io", t, inc.vm_id, Severity::kCritical);
      log.Append(ev);
      CDIBOT_RETURN_IF_ERROR(feed_stream(ev));
      vm_events.push_back(std::move(ev));

      if (t >= next_tick) {
        next_tick += options.tick;
        auto matches = engine.MatchEvents(vm_events, inc.vm_id, t);
        if (!matches.empty()) {
          ++result.rule_matches;
          matches_counter->Increment();
          if (options.automation_enabled && !inc.migrated) {
            // The migration needs somewhere to go: locked hosts, capacity
            // and pool architecture all constrain the choice. (The faulty
            // host gets locked by this very batch, so destinations on it
            // are already impossible for later incidents too.)
            auto placement = scheduler.ChooseDestination(inc.vm_id);
            if (!placement.ok()) {
              ++result.placements_failed;
              placement_failures_counter->Increment();
              continue;
            }
            CDIBOT_ASSIGN_OR_RETURN(
                auto requests,
                platform.RequestsFromMatch(matches.front(), inc.nc_id));
            const auto records =
                platform.Submit(std::move(requests), vm_to_nc);
            for (const ActionRecord& rec : records) {
              if (rec.request.type == ActionType::kLiveMigration &&
                  rec.outcome == ActionOutcome::kExecuted) {
                ++result.migrations_executed;
                migrations_counter->Increment();
                inc.migrated = true;
                inc.actual_end = t;
                // Migration brown-out: a short logged-duration event.
                RawEvent brownout = MakeEvent(
                    "live_migration", t + options.migration_brownout,
                    inc.vm_id, Severity::kWarning);
                brownout.attrs["duration_ms"] = StrFormat(
                    "%lld",
                    static_cast<long long>(
                        options.migration_brownout.millis()));
                log.Append(brownout);
                CDIBOT_RETURN_IF_ERROR(feed_stream(brownout));
              }
            }
          }
        }
      }
      t += Duration::Minutes(1);
    }
    result.damage_avoided += inc.natural_end - inc.actual_end;
    if (sim_now < inc.actual_end) sim_now = inc.actual_end;

    // Flow control: drain this incident's events from the queue into the
    // engine (if it is alive). With the engine down the backlog simply
    // deepens — nothing is lost below the shed policy.
    CDIBOT_RETURN_IF_ERROR(pump());

    // Mid-day shard rebalance: recut the map and hand ranges off while the
    // rest of the day's traffic is still coming — exactly once, at the
    // halfway incident.
    if (sharded != nullptr && options.shard_rebalance_midday &&
        !shards_rebalanced && inc_index + 1 >= (incidents.size() + 1) / 2) {
      shards_rebalanced = true;
      CDIBOT_RETURN_IF_ERROR(sharded->Rebalance());
    }

    // Intra-day checkpoint: let the live watchdog look at the fleet as it
    // stands after this incident's events. Only the VMs touched since the
    // previous snapshot are recomputed.
    if (stream.has_value() && options.live_monitor != nullptr) {
      if (stream_service.has_value()) {
        // Facade route: a fresh detail-carrying query is exactly a
        // Snapshot() (same pull, same bits), packaged as the one response
        // shape every other consumer uses.
        serve::CdiQuery q;
        q.consistency = serve::Consistency::kFresh;
        q.include_detail = true;
        CDIBOT_ASSIGN_OR_RETURN(const serve::CdiQueryResponse live,
                                stream_service->Query(q));
        CDIBOT_ASSIGN_OR_RETURN(
            const auto problems,
            options.live_monitor->Preview(day.start, *live.detail));
        result.live_problems += problems.size();
      } else {
        CDIBOT_ASSIGN_OR_RETURN(const DailyCdiResult live, stream->Snapshot());
        CDIBOT_ASSIGN_OR_RETURN(
            const auto problems,
            options.live_monitor->Preview(day.start, live));
        result.live_problems += problems.size();
      }
    }

    // Supervisor: persist the engine's durable state, then possibly kill
    // it. Without watchdog recovery the engine is brought back from disk
    // immediately (crash-right-after-checkpoint, so no ingested event is
    // lost and the day's final streaming CDI still agrees with the batch
    // job — the recovery suite pins this). With watchdog recovery the
    // crash goes UNHANDLED here: the backpressure queue buffers the
    // traffic and the watchdog below detects the silence and restores.
    auto restore_engine = [&]() -> Status {
      CDIBOT_ASSIGN_OR_RETURN(const StreamCheckpoint ckpt,
                              store->LoadLastGood());
      StreamingCdiOptions sopts;
      sopts.window = day;
      sopts.pool = ctx.pool;
      CDIBOT_ASSIGN_OR_RETURN(
          StreamingCdiEngine revived,
          StreamingCdiEngine::Restore(ckpt, &catalog, &weights, sopts));
      stream.emplace(std::move(revived));
      ++result.restores_completed;
      return Status::OK();
    };
    if (store.has_value() && stream.has_value()) {
      const Deadline save_deadline =
          options.checkpoint_budget.IsZero()
              ? Deadline::Infinite()
              : Deadline::After(options.checkpoint_budget);
      const Status saved = store->Save(stream->Checkpoint(), save_deadline);
      if (saved.ok()) {
        ++result.checkpoints_saved;
      } else if (store->breaker().enabled() && saved.IsFailedPrecondition()) {
        // Breaker open: skip this generation instead of failing the day.
        // Recovery granularity degrades; the CDI keeps flowing.
        ++result.checkpoints_skipped;
      } else {
        return saved;
      }
      if (crash_after.count(inc_index) > 0) {
        stream.reset();  // the "crash": all in-memory state is gone
        ++result.crashes_injected;
        if (!options.watchdog_recovery) {
          CDIBOT_RETURN_IF_ERROR(restore_engine());
        }
      }
    }

    // Watchdog: with the engine down the pump goes silent; once the event
    // clock outruns the last heartbeat by the stall timeout, the
    // supervisor restores from the last good checkpoint and the pump
    // drains the backlog that accumulated during the outage.
    if (watchdog.has_value() && watchdog->Poll(sim_now)) {
      if (!stream.has_value() && store.has_value()) {
        CDIBOT_RETURN_IF_ERROR(restore_engine());
        watchdog->NoteRecovery();
        CDIBOT_RETURN_IF_ERROR(pump());
      }
    }

    // Periodic statusz dump while the day is in flight.
    if (options.capture_statusz && options.statusz_every_incidents > 0 &&
        (inc_index + 1) % options.statusz_every_incidents == 0) {
      CDIBOT_LOG(Info) << "statusz after incident " << (inc_index + 1)
                       << " of " << incidents.size() << ":\n"
                       << obs::RenderStatuszText(obs::CaptureObsSnapshot());
    }
  }

  // --- End-of-day flow drain -------------------------------------------------
  if (queue.has_value()) {
    // A crash close to the day's end can leave the engine dead with the
    // stall window not yet elapsed; the day boundary is itself a deadline,
    // so force the restore now rather than lose the backlog.
    if (!stream.has_value() && store.has_value()) {
      CDIBOT_ASSIGN_OR_RETURN(const StreamCheckpoint ckpt,
                              store->LoadLastGood());
      StreamingCdiOptions sopts;
      sopts.window = day;
      sopts.pool = ctx.pool;
      CDIBOT_ASSIGN_OR_RETURN(
          StreamingCdiEngine revived,
          StreamingCdiEngine::Restore(ckpt, &catalog, &weights, sopts));
      stream.emplace(std::move(revived));
      ++result.restores_completed;
      if (watchdog.has_value()) watchdog->NoteRecovery();
    }
    // Final drain ignores the per-step budget: the day is over and the
    // remaining backlog must land before results are read.
    if (stream.has_value()) {
      RawEvent ev;
      while (queue->TryPop(&ev)) {
        CDIBOT_RETURN_IF_ERROR(stream->Ingest(ev));
      }
    }
    // Surface every shed as a degraded DataQuality annotation on the
    // affected VM — the day's CDI is partial-but-honest, never silently
    // short.
    if (stream.has_value()) {
      for (const auto& [target, count] : shed_counts) {
        stream->RecordShed(target, count);
      }
    }
    result.flow_stats = queue->stats();
    result.events_shed = result.flow_stats.shed_total;
  }
  if (watchdog.has_value()) {
    result.watchdog_stalls = watchdog->stats().stalls;
    result.watchdog_recoveries = watchdog->stats().recoveries;
  }
  if (store.has_value()) {
    result.breaker_trips = store->breaker().stats().trips;
  }

  // --- Evaluate the day with the standard pipeline ---------------------------
  DailyCdiJob job(DailyCdiJob::Options{.log = &log,
                                       .catalog = &catalog,
                                       .weights = &weights,
                                       .pool = ctx.pool});
  CDIBOT_ASSIGN_OR_RETURN(const DailyCdiResult daily, job.Run(vms, day));
  result.fleet_cdi = daily.fleet;

  if (stream.has_value()) {
    if (stream_service.has_value()) {
      // kPartialMerge keeps the exact bits of the legacy FleetCdi() fast
      // path (the shard-partial merge, not the canonical fold).
      serve::CdiQuery q;
      q.fleet_fidelity = serve::FleetFidelity::kPartialMerge;
      CDIBOT_ASSIGN_OR_RETURN(const serve::CdiQueryResponse fleet_resp,
                              stream_service->Query(q));
      result.fleet_cdi_streaming = fleet_resp.fleet;
    } else {
      CDIBOT_ASSIGN_OR_RETURN(const VmCdi fleet_stream, stream->FleetCdi());
      result.fleet_cdi_streaming = fleet_stream;
    }
    result.stream_stats = stream->stats();
  }

  if (sharded != nullptr) {
    if (shard_service.has_value()) {
      // A fresh canonical-fidelity query is exactly the coordinator's
      // Snapshot() gather: same scatter, same fold, same bits.
      serve::CdiQuery q;
      q.consistency = serve::Consistency::kFresh;
      CDIBOT_ASSIGN_OR_RETURN(const serve::CdiQueryResponse sharded_resp,
                              shard_service->Query(q));
      result.fleet_cdi_sharded = sharded_resp.fleet;
    } else {
      CDIBOT_ASSIGN_OR_RETURN(const DailyCdiResult sharded_day,
                              sharded->Snapshot());
      result.fleet_cdi_sharded = sharded_day.fleet;
    }
    result.shard_stats = sharded->stats();
  }

  day_span.reset();
  // Fleet obs pull before any trace export: the day span above is closed
  // (an open span never records), and the pull itself must run while the
  // coordinator still holds live sessions to its workers.
  if (fleet_obs && sharded != nullptr) {
    const bool pull_spans = !options.merged_trace_path.empty();
    CDIBOT_ASSIGN_OR_RETURN(std::vector<obs::ProcessObs> workers,
                            sharded->PullWorkerObs(pull_spans));
    const obs::FleetObsSnapshot fleet_snap =
        obs::CaptureFleetObsSnapshot(std::move(workers));
    if (options.fleet_statusz) {
      result.fleet_statusz_text = obs::RenderFleetStatuszText(fleet_snap);
      result.fleet_statusz_json = obs::RenderFleetStatuszJson(fleet_snap);
    }
    if (!options.merged_trace_path.empty()) {
      std::string trace_error;
      if (!obs::WriteMergedChromeTrace(fleet_snap,
                                       options.merged_trace_path,
                                       &trace_error)) {
        CDIBOT_LOG(Warning) << "could not write merged trace to "
                            << options.merged_trace_path << ": "
                            << trace_error;
      }
    }
  }
  if (!options.trace_json_path.empty()) {
    std::string trace_error;
    if (!obs::Tracer::Global().WriteChromeTrace(options.trace_json_path,
                                                &trace_error)) {
      CDIBOT_LOG(Warning) << "could not write trace to "
                          << options.trace_json_path << ": " << trace_error;
    }
  }
  if (want_tracing && !tracer_was_enabled) obs::Tracer::Global().Disable();
  if (options.capture_statusz) {
    result.statusz_text = obs::RenderStatuszText(obs::CaptureObsSnapshot());
  }

  // Heatmap endpoint: the day's damage grid, rendered straight off the
  // event log's SoA columns (no materialization, no period resolver).
  if (!options.heatmap_group_dim.empty()) {
    std::map<std::string, std::map<std::string, std::string>> dims_by_target;
    for (const VmServiceInfo& vm : vms) dims_by_target[vm.vm_id] = vm.dims;
    serve::HeatmapSpec spec;
    spec.window = day;
    spec.buckets = options.heatmap_buckets;
    spec.group_dim = options.heatmap_group_dim;
    CDIBOT_ASSIGN_OR_RETURN(
        const serve::HeatmapGrid grid,
        serve::BuildHeatmap(log.QueryAll(day), catalog, dims_by_target, spec));
    result.heatmap_json = serve::RenderHeatmapJson(spec, grid);
  }

  if (options.serve_reads) {
    const auto add_service = [&result](const serve::CdiQueryService& svc) {
      const serve::ServeStats s = svc.stats();
      result.serve_stats.queries += s.queries;
      result.serve_stats.cache_hits += s.cache_hits;
      result.serve_stats.cube_answers += s.cube_answers;
      result.serve_stats.source_pulls += s.source_pulls;
      result.serve_stats.deadline_rejections += s.deadline_rejections;
      const serve::CacheStats c = svc.cache_stats();
      result.serve_cache_stats.lookups += c.lookups;
      result.serve_cache_stats.hits += c.hits;
      result.serve_cache_stats.stale_rejections += c.stale_rejections;
      result.serve_cache_stats.misses += c.misses;
      result.serve_cache_stats.insertions += c.insertions;
      result.serve_cache_stats.evictions += c.evictions;
      result.serve_cache_stats.ghost_hits += c.ghost_hits;
      result.serve_cache_stats.resident += c.resident;
    };
    if (stream_service.has_value()) add_service(*stream_service);
    if (shard_service.has_value()) add_service(*shard_service);
  }
  return result;
}

}  // namespace cdibot
