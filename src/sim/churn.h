#ifndef CDIBOT_SIM_CHURN_H_
#define CDIBOT_SIM_CHURN_H_

#include <vector>

#include "common/rng.h"
#include "common/statusor.h"
#include "sim/fleet.h"

namespace cdibot {

/// Lifecycle churn for one evaluation day: cloud fleets are elastic, so a
/// fraction of VMs is created mid-day and a fraction released mid-day.
/// Their partial service periods are exactly the T_i weights of Eq. 4 —
/// a VM that served 6 hours contributes 6 hours of denominator, no more.
struct ChurnSpec {
  /// Probability a VM was created at a uniform instant within the day.
  double created_fraction = 0.1;
  /// Probability a VM is released at a uniform instant within the day
  /// (after its creation when both apply).
  double released_fraction = 0.1;
  /// Minimum service span; VMs whose create/release window would be
  /// shorter are dropped from the day entirely (they contribute nothing).
  Duration min_service = Duration::Minutes(10);
};

/// Applies churn to the fleet's service infos over `day`. Deterministic
/// under `rng`. Requires fractions in [0, 1].
StatusOr<std::vector<VmServiceInfo>> ChurnedServiceInfos(
    const Fleet& fleet, const Interval& day, const ChurnSpec& spec, Rng* rng);

}  // namespace cdibot

#endif  // CDIBOT_SIM_CHURN_H_
