#include "sim/incidents.h"

#include <cmath>

namespace cdibot {

Status InjectAzOutage(const Fleet& fleet, const std::string& az,
                      const Interval& outage, FaultInjector* injector,
                      EventLog* log) {
  if (outage.empty()) return Status::InvalidArgument("empty outage window");
  CDIBOT_ASSIGN_OR_RETURN(const auto vms,
                          fleet.ServiceInfosWhere(outage, "az", az));
  if (vms.empty()) return Status::NotFound("no VMs in az " + az);
  for (const VmServiceInfo& vm : vms) {
    CDIBOT_RETURN_IF_ERROR(
        injector->InjectEpisode(vm.vm_id, "nc_down", outage, log));
    // The outage also breaks management APIs for the affected zone.
    CDIBOT_RETURN_IF_ERROR(
        injector->InjectEpisode(vm.vm_id, "api_error", outage, log));
  }
  return Status::OK();
}

Status InjectNetworkOutage(const Fleet& fleet, const std::string& az,
                           const Interval& outage, double unreachable_fraction,
                           FaultInjector* injector, EventLog* log, Rng* rng) {
  if (outage.empty()) return Status::InvalidArgument("empty outage window");
  if (unreachable_fraction < 0.0 || unreachable_fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in [0, 1]");
  }
  CDIBOT_ASSIGN_OR_RETURN(const auto vms,
                          fleet.ServiceInfosWhere(outage, "az", az));
  if (vms.empty()) return Status::NotFound("no VMs in az " + az);
  for (const VmServiceInfo& vm : vms) {
    if (rng->Bernoulli(unreachable_fraction)) {
      // Fully cut off: unavailability for the whole window.
      CDIBOT_RETURN_IF_ERROR(
          injector->InjectEpisode(vm.vm_id, "vm_hang", outage, log));
    } else {
      CDIBOT_RETURN_IF_ERROR(injector->InjectEpisode(
          vm.vm_id, "packet_loss", outage, log, Severity::kCritical));
    }
  }
  return Status::OK();
}

Status InjectControlPlaneOutage(const Fleet& fleet, const std::string& region,
                                const Interval& outage,
                                FaultInjector* injector, EventLog* log) {
  if (outage.empty()) return Status::InvalidArgument("empty outage window");
  CDIBOT_ASSIGN_OR_RETURN(const auto vms,
                          fleet.ServiceInfosWhere(outage, "region", region));
  if (vms.empty()) return Status::NotFound("no VMs in region " + region);
  for (const VmServiceInfo& vm : vms) {
    // Purchases and modifications fail; the data plane is untouched.
    CDIBOT_RETURN_IF_ERROR(injector->InjectEpisode(
        vm.vm_id, "vm_create_failed", outage, log, Severity::kCritical));
    CDIBOT_RETURN_IF_ERROR(injector->InjectEpisode(
        vm.vm_id, "vm_resize_failed", outage, log, Severity::kCritical));
  }
  return Status::OK();
}

Status InjectHybridContentionDefect(const Fleet& fleet, TimePoint day_start,
                                    const std::string& defective_model,
                                    double intensity, FaultInjector* injector,
                                    EventLog* log, Rng* rng) {
  if (intensity < 0.0) return Status::InvalidArgument("negative intensity");
  const Interval day(day_start, day_start + Duration::Days(1));
  for (const VmInfo& vm : fleet.topology().vms()) {
    CDIBOT_ASSIGN_OR_RETURN(const NcInfo nc, fleet.topology().FindNc(vm.nc_id));
    // The incompatibility only bites hybrid deployments on one model
    // (Fig. 7 d): shared VMs' allocation range overlaps dedicated cores.
    if (nc.arch != DeploymentArch::kHybrid || nc.model != defective_model) {
      continue;
    }
    const int64_t episodes = rng->Poisson(intensity);
    for (int64_t i = 0; i < episodes; ++i) {
      const auto length = Duration::Minutes(rng->UniformInt(5, 40));
      const int64_t latest = day.end.millis() - length.millis() - 1;
      if (latest <= day.start.millis()) continue;
      const TimePoint start = TimePoint::FromMillis(
          rng->UniformInt(day.start.millis(), latest));
      CDIBOT_RETURN_IF_ERROR(injector->InjectEpisode(
          vm.vm_id, "vcpu_high", Interval(start, start + length), log,
          Severity::kCritical));
    }
  }
  return Status::OK();
}

Status InjectAllocationBug(const Fleet& fleet, const std::string& cluster,
                           TimePoint day_start, double affected_fraction,
                           FaultInjector* injector, EventLog* log, Rng* rng) {
  if (affected_fraction < 0.0 || affected_fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in [0, 1]");
  }
  const Interval day(day_start, day_start + Duration::Days(1));
  CDIBOT_ASSIGN_OR_RETURN(const auto vms,
                          fleet.ServiceInfosWhere(day, "cluster", cluster));
  if (vms.empty()) return Status::NotFound("no VMs in cluster " + cluster);
  for (const VmServiceInfo& vm : vms) {
    if (!rng->Bernoulli(affected_fraction)) continue;
    // The over-committed VM runs without exclusive cores for hours until
    // the data is corrected.
    const auto length = Duration::Hours(rng->UniformInt(2, 8));
    const int64_t latest = day.end.millis() - length.millis() - 1;
    if (latest <= day.start.millis()) continue;
    const TimePoint start =
        TimePoint::FromMillis(rng->UniformInt(day.start.millis(), latest));
    CDIBOT_RETURN_IF_ERROR(injector->InjectEpisode(
        vm.vm_id, "vm_allocation_failed", Interval(start, start + length),
        log, Severity::kCritical));
  }
  return Status::OK();
}

Status InjectTdpMonitoring(const Fleet& fleet, TimePoint day_start,
                           double rate, FaultInjector* injector,
                           EventLog* log) {
  if (rate < 0.0) return Status::InvalidArgument("negative rate");
  if (rate == 0.0) return Status::OK();  // broken collector: silence
  FaultRates rates;
  rates.episodes_per_vm_day["inspect_cpu_power_tdp"] = rate;
  CDIBOT_ASSIGN_OR_RETURN(const size_t injected,
                          injector->InjectDay(fleet, day_start, rates, log));
  (void)injected;
  return Status::OK();
}

}  // namespace cdibot
