#ifndef CDIBOT_SIM_CLOUDBOT_LOOP_H_
#define CDIBOT_SIM_CLOUDBOT_LOOP_H_

#include "cdi/monitor.h"
#include "cdi/pipeline.h"
#include "common/rng.h"
#include "common/statusor.h"
#include "flow/backpressure_queue.h"
#include "flow/circuit_breaker.h"
#include "flow/watchdog.h"
#include "ops/operation_platform.h"
#include "rules/rule_engine.h"
#include "serve/heatmap.h"
#include "serve/service.h"
#include "shard/coordinator.h"
#include "sim/fleet.h"
#include "stream/streaming_engine.h"

namespace cdibot {

/// Configuration of one closed-loop CloudBot day.
struct AutomationLoopOptions {
  /// Whether the Rule Engine + Operation Platform actually act. With
  /// automation off, faults run their natural course (the pre-CloudBot
  /// world); with it on, matched rules live-migrate VMs off faulty hosts.
  bool automation_enabled = true;
  /// Rule evaluation cadence.
  Duration tick = Duration::Minutes(5);
  /// Probability that a VM develops a NIC-degradation incident this day.
  double incident_probability = 0.08;
  /// Natural incident duration when nothing intervenes.
  Duration natural_duration_mean = Duration::Hours(4);
  /// Live-migration brown-out while evacuating a VM.
  Duration migration_brownout = Duration::Seconds(3);
  /// When true, a StreamingCdiEngine runs alongside the batch job: every
  /// event is ingested as it is emitted (incident by incident, so event
  /// times arrive out of order), an intra-day snapshot is taken after each
  /// incident, and the final snapshot's fleet CDI is reported next to the
  /// batch value (they agree to within aggregation rounding).
  bool streaming_cdi = false;
  /// Optional live watchdog. Each intra-day streaming snapshot is fed to
  /// CdiMonitor::Preview (non-committing), so emerging spikes are visible
  /// while the day is still accumulating. Borrowed; may be null.
  CdiMonitor* live_monitor = nullptr;
  /// When true (requires streaming_cdi and a checkpoint_dir), the streaming
  /// engine runs under a supervisor: after each incident's events are
  /// ingested its state is checkpointed into a StreamCheckpointStore, and
  /// at evenly spaced points the supervisor destroys the engine outright
  /// and restores it from the last good checkpoint — the paper's stance
  /// applied to the metric pipeline itself: CDI keeps being computed
  /// through crashes of its own infrastructure, and the post-restore
  /// stream still agrees with the batch job.
  bool supervise_streaming = false;
  /// Root directory of the supervisor's checkpoint store (created if
  /// missing). Required when supervise_streaming is set.
  std::string checkpoint_dir;
  /// Number of crash/restore cycles the supervisor injects across the day.
  size_t supervisor_crashes = 1;
  /// When true (requires streaming_cdi), events bound for the streaming
  /// engine pass through a flow::BackpressureQueue instead of being
  /// ingested directly: a pump drains the queue into the engine after each
  /// incident. Under overload the queue sheds low-class telemetry (never
  /// unavailability events) and the day's final snapshot reports the
  /// affected VMs as degraded; with a queue that keeps up, the day is
  /// bit-identical to the direct path (pinned by the overload differential
  /// suite).
  bool flow_control = false;
  /// Queue tuning when flow_control is set.
  flow::FlowOptions flow_options = {};
  /// Events the pump drains per incident step; 0 drains the queue fully.
  /// A small value models a slow consumer: the backlog deepens, admission
  /// control engages, and sheds become visible in the result.
  size_t flow_drain_per_step = 0;
  /// When true (requires flow_control and supervise_streaming), an
  /// injected crash is NOT restored immediately: events keep accumulating
  /// in the queue while the engine is down, and a flow::Watchdog watching
  /// the pump's heartbeats (in event time) detects the stall and drives
  /// the restore from the last good checkpoint — supervisor recovery by
  /// detection rather than by construction.
  bool watchdog_recovery = false;
  /// Heartbeat silence (event time) after which the watchdog declares the
  /// engine stalled.
  Duration watchdog_stall_timeout = Duration::Minutes(30);
  /// Per-save budget for supervisor checkpoints; zero means unbounded.
  /// Bounds how long a sick disk can stall the loop (retry sleeps are
  /// clipped to the remaining budget).
  Duration checkpoint_budget = Duration::Zero();
  /// Circuit breaker over the supervisor's checkpoint store. When enabled
  /// (failure_threshold > 0) a save rejected by the open breaker is
  /// SKIPPED (counted in checkpoints_skipped) instead of failing the day:
  /// losing a checkpoint generation degrades recovery granularity, losing
  /// the day's CDI would defeat the point.
  flow::CircuitBreakerOptions checkpoint_breaker = {};
  /// When true, a sharded fleet (a shard::ShardCoordinator over
  /// `cdi_shards` workers behind message channels) runs alongside the
  /// batch job: every event is routed to its owner shard as it is emitted
  /// and the day ends with a scatter/gather snapshot. Its fleet CDI is
  /// bit-identical to the single-node streaming engine's (both run the
  /// canonical fleet fold) — pinned by the sharded-equivalence suite.
  bool sharded_cdi = false;
  size_t cdi_shards = 4;
  /// Transport for the sharded fleet (requires sharded_cdi). kInProcess
  /// keeps workers as threads behind message channels; kSocketThread serves
  /// each worker thread over a real Unix-domain socket; kSocketProcess
  /// spawns `shard_worker_binary` child processes — the honest failure
  /// boundary — and requires `shard_weight_spec` so each worker rebuilds a
  /// bit-identical weight model from the recipe carried in kInit.
  shard::ShardTransportMode shard_transport =
      shard::ShardTransportMode::kInProcess;
  std::string shard_worker_binary;
  std::optional<shard::WeightSpec> shard_weight_spec;
  /// When true (requires sharded_cdi), the coordinator recuts the shard
  /// map halfway through the day's incidents: a mid-day rebalance with the
  /// stream still flowing, exercising range handoff under live traffic.
  bool shard_rebalance_midday = false;
  /// When true, the day ends with a statusz report: the result carries the
  /// rendered text and a periodic dump is logged every
  /// `statusz_every_incidents` incidents (0 = final report only).
  bool capture_statusz = false;
  size_t statusz_every_incidents = 0;
  /// When non-empty, scoped-span tracing is enabled for the duration of the
  /// run and a Chrome-trace JSON (loadable in chrome://tracing or Perfetto)
  /// is written here at the end.
  std::string trace_json_path;
  /// When true, the day ends with a fleet obs pull: every shard worker's
  /// metrics/spans are gathered over the wire and merged with this
  /// process's into result.fleet_statusz_text / fleet_statusz_json.
  /// Requires sharded_cdi over kSocketProcess — the only transport whose
  /// workers have their own obs registries; the same-process shard modes
  /// share this registry and a merge would double-count every metric.
  bool fleet_statusz = false;
  /// When non-empty (same transport requirement), workers run with tracing
  /// on (via kInit) and the day ends with one merged Chrome trace written
  /// here: a named track per process, worker clocks aligned onto the
  /// coordinator's, worker RPC spans sharing the coordinator's trace ids.
  std::string merged_trace_path;
  /// When true, every read the loop makes from its live engines — the
  /// intra-day live-monitor previews, the end-of-day streaming fleet CDI,
  /// the end-of-day sharded gather — is routed through a
  /// serve::CdiQueryService facade instead of calling Snapshot()/FleetCdi()
  /// directly. Answers are bit-identical to the direct calls (pinned by
  /// the serve equivalence suite); the result carries the facade's
  /// cache/cube/query counters.
  bool serve_reads = false;
  /// Facade tuning when serve_reads is set (ARC capacity, cube toggle).
  serve::CdiQueryServiceOptions serve_options = {};
  /// When non-empty, the day ends with a fleet × time damage heatmap over
  /// the day's event log, rows grouped by this placement dimension
  /// ("region", "az", "cluster", ...), rendered into result.heatmap_json.
  std::string heatmap_group_dim;
  /// Time-bucket columns for the heatmap.
  size_t heatmap_buckets = 24;
};

/// Outcome of a simulated day.
struct AutomationLoopResult {
  /// The fleet CDI computed by the daily job over the day's real events.
  VmCdi fleet_cdi;
  size_t incidents = 0;
  size_t rule_matches = 0;
  size_t migrations_executed = 0;
  /// Matched migrations that could not run because the placement scheduler
  /// found no feasible destination (locked hosts, capacity, architecture);
  /// those incidents run their natural course.
  size_t placements_failed = 0;
  /// Issue time eliminated by automation (natural minus actual durations).
  Duration damage_avoided;
  /// Streaming-engine outputs; populated only when options.streaming_cdi.
  VmCdi fleet_cdi_streaming;
  StreamingCdiStats stream_stats;
  /// Problems the live monitor previewed across intra-day snapshots.
  size_t live_problems = 0;
  /// Supervisor-mode counters; populated only when supervise_streaming.
  size_t checkpoints_saved = 0;
  size_t crashes_injected = 0;
  size_t restores_completed = 0;
  /// Flow-control counters; populated only when options.flow_control.
  flow::ShedStats flow_stats;
  /// Convenience mirror of flow_stats.shed_total.
  size_t events_shed = 0;
  /// Watchdog counters; populated only when options.watchdog_recovery.
  size_t watchdog_stalls = 0;
  size_t watchdog_recoveries = 0;
  /// Sharded-fleet outputs; populated only when options.sharded_cdi.
  VmCdi fleet_cdi_sharded;
  shard::ShardFleetStats shard_stats;
  /// Saves rejected by the open checkpoint breaker (skipped, not failed).
  size_t checkpoints_skipped = 0;
  /// Checkpoint-breaker trips across the day.
  size_t breaker_trips = 0;
  /// Final statusz report; populated only when options.capture_statusz.
  std::string statusz_text;
  /// Fleet-merged obs reports; populated only when options.fleet_statusz.
  std::string fleet_statusz_text;
  std::string fleet_statusz_json;
  /// Serving-facade counters; populated only when options.serve_reads
  /// (summed over the engine-side and coordinator-side services).
  serve::ServeStats serve_stats;
  serve::CacheStats serve_cache_stats;
  /// Heatmap endpoint payload; populated when options.heatmap_group_dim is
  /// non-empty.
  std::string heatmap_json;
};

/// Runs one day of the full CloudBot control loop on a synthetic fleet:
/// injected NIC incidents emit nic_flapping + per-minute slow_io events;
/// every tick the Rule Engine evaluates the active events of each affected
/// VM; matches submit Example 1's actions to the Operation Platform; the
/// PlacementScheduler picks a feasible destination host (capacity, locks,
/// and architecture respected — a migration with nowhere to go does not
/// run); an executed live migration truncates the incident (plus a short
/// brown-out event). The day's events then flow through the standard daily
/// CDI job.
///
/// Comparing automation on vs off isolates the CDI improvement CloudBot's
/// closed loop delivers — the system's purpose (Sec. II-A).
StatusOr<AutomationLoopResult> RunAutomationDay(
    const Fleet& fleet, TimePoint day_start, const EventCatalog& catalog,
    const EventWeightModel& weights, const AutomationLoopOptions& options,
    Rng* rng, dataflow::ExecContext ctx = {});

}  // namespace cdibot

#endif  // CDIBOT_SIM_CLOUDBOT_LOOP_H_
