#include "sim/scenario.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cdibot {

FaultRates FaultRates::Scaled(double factor) const {
  FaultRates out;
  for (const auto& [name, rate] : episodes_per_vm_day) {
    out.episodes_per_vm_day[name] = rate * factor;
  }
  return out;
}

FaultRates BaselineRates() {
  // Expected episodes per VM per day in a healthy fleet. Unavailability is
  // rare (fleet availability ~99.99%); performance noise dominates ticket
  // volume (Fig. 2); control-plane failures sit in between.
  FaultRates rates;
  rates.episodes_per_vm_day = {
      {"vm_crash", 0.002},
      {"vm_hang", 0.001},
      {"ddos_blackhole", 0.0005},
      {"slow_io", 0.05},
      {"packet_loss", 0.04},
      {"vcpu_high", 0.03},
      {"nic_flapping", 0.005},
      {"qemu_live_upgrade", 0.01},
      {"inspect_cpu_power_tdp", 0.02},
      {"vm_start_failed", 0.004},
      {"vm_stop_failed", 0.003},
      {"vm_resize_failed", 0.003},
      {"api_error", 0.006},
  };
  return rates;
}

Status FaultInjector::InjectEpisode(const std::string& target,
                                    const std::string& event_name,
                                    const Interval& episode, EventLog* log,
                                    std::optional<Severity> level) {
  if (episode.empty()) {
    return Status::InvalidArgument("episode must be non-empty");
  }
  CDIBOT_ASSIGN_OR_RETURN(const EventSpec spec, catalog_->Find(event_name));
  const Severity severity = level.value_or(spec.default_level);

  switch (spec.period_kind) {
    case PeriodKind::kWindowed: {
      // One raw event per detection window, stamped at the window end.
      // The resolver traces each back by one window, so the resolved
      // periods tile the episode.
      const int64_t window_ms = spec.window.millis();
      for (int64_t end = episode.start.millis() + window_ms;
           end <= episode.end.millis(); end += window_ms) {
        RawEvent ev;
        ev.name = spec.name;
        ev.time = TimePoint::FromMillis(end);
        ev.target = target;
        ev.level = severity;
        ev.expire_interval = spec.expire_interval;
        log->Append(ev);
      }
      // Partial trailing window: emit one more event at episode end.
      const int64_t covered =
          (episode.length().millis() / window_ms) * window_ms;
      if (covered < episode.length().millis()) {
        RawEvent ev;
        ev.name = spec.name;
        ev.time = episode.end;
        ev.target = target;
        ev.level = severity;
        ev.expire_interval = spec.expire_interval;
        log->Append(ev);
      }
      return Status::OK();
    }
    case PeriodKind::kLoggedDuration: {
      RawEvent ev;
      ev.name = spec.name;
      ev.time = episode.end;
      ev.target = target;
      ev.level = severity;
      ev.expire_interval = spec.expire_interval;
      ev.attrs["duration_ms"] = StrFormat(
          "%lld", static_cast<long long>(episode.length().millis()));
      log->Append(ev);
      return Status::OK();
    }
    case PeriodKind::kStateful: {
      RawEvent add;
      add.name = spec.start_detail;
      add.time = episode.start;
      add.target = target;
      add.level = severity;
      add.expire_interval = spec.expire_interval;
      log->Append(add);
      RawEvent del;
      del.name = spec.end_detail;
      del.time = episode.end;
      del.target = target;
      del.level = severity;
      del.expire_interval = spec.expire_interval;
      log->Append(del);
      return Status::OK();
    }
  }
  return Status::Internal("unhandled period kind");
}

StatusOr<size_t> FaultInjector::InjectDayForVms(
    const std::vector<VmServiceInfo>& vms, TimePoint day_start,
    const FaultRates& rates, EventLog* log) {
  TRACE_SPAN("telemetry.inject_day");
  const Interval day(day_start, day_start + Duration::Days(1));
  size_t episodes = 0;
  for (const VmServiceInfo& vm : vms) {
    for (const auto& [event_name, rate] : rates.episodes_per_vm_day) {
      const int64_t count = rng_->Poisson(rate);
      for (int64_t i = 0; i < count; ++i) {
        // Episode length: log-normal with median ~3 minutes, capped at 2h.
        const double minutes =
            std::min(120.0, rng_->LogNormal(std::log(3.0), 0.8));
        const auto length =
            Duration::Millis(static_cast<int64_t>(minutes * 60000.0));
        const int64_t latest_start =
            day.end.millis() - length.millis() - 1;
        if (latest_start <= day.start.millis()) continue;
        const TimePoint start = TimePoint::FromMillis(
            rng_->UniformInt(day.start.millis(), latest_start));
        CDIBOT_RETURN_IF_ERROR(InjectEpisode(
            vm.vm_id, event_name, Interval(start, start + length), log));
        ++episodes;
      }
    }
  }
  static obs::Counter* injected = obs::MetricsRegistry::Global().GetCounter(
      "telemetry.episodes_injected");
  injected->Add(episodes);
  return episodes;
}

StatusOr<size_t> FaultInjector::InjectDay(const Fleet& fleet,
                                          TimePoint day_start,
                                          const FaultRates& rates,
                                          EventLog* log) {
  const Interval day(day_start, day_start + Duration::Days(1));
  CDIBOT_ASSIGN_OR_RETURN(const std::vector<VmServiceInfo> vms,
                          fleet.ServiceInfos(day));
  return InjectDayForVms(vms, day_start, rates, log);
}

StatusOr<size_t> FaultInjector::InjectDayWhere(
    const Fleet& fleet, TimePoint day_start, const FaultRates& rates,
    const std::string& dim, const std::string& value, EventLog* log) {
  const Interval day(day_start, day_start + Duration::Days(1));
  CDIBOT_ASSIGN_OR_RETURN(const std::vector<VmServiceInfo> vms,
                          fleet.ServiceInfosWhere(day, dim, value));
  return InjectDayForVms(vms, day_start, rates, log);
}

}  // namespace cdibot
