#ifndef CDIBOT_SIM_SCENARIO_H_
#define CDIBOT_SIM_SCENARIO_H_

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/statusor.h"
#include "common/time.h"
#include "event/catalog.h"
#include "sim/fleet.h"
#include "storage/event_log.h"

namespace cdibot {

/// Per-event daily fault rates: the expected number of issue EPISODES per
/// VM per day for each event name. An episode of a windowed event produces
/// a run of consecutive raw events tiling its duration (Sec. IV-B1).
struct FaultRates {
  std::map<std::string, double> episodes_per_vm_day;

  /// Multiplies every rate by `factor` (for trend scenarios like Fig. 6).
  FaultRates Scaled(double factor) const;
};

/// Baseline daily rates for a healthy production fleet: rare
/// unavailability, modest performance noise, rare control-plane failures.
FaultRates BaselineRates();

/// FaultInjector converts episode specifications into raw events in the
/// event log, honoring each event's PeriodKind from the catalog:
///  * windowed events emit one raw event per detection window covering the
///    episode (window-end timestamps);
///  * logged-duration events emit a single raw event with a duration_ms
///    attribute;
///  * stateful events emit the start/end detail pair.
class FaultInjector {
 public:
  /// `catalog` and `rng` must outlive the injector.
  FaultInjector(const EventCatalog* catalog, Rng* rng)
      : catalog_(catalog), rng_(rng) {}

  /// Injects one issue episode of `event_name` on `target` covering
  /// `episode`. Severity defaults to the catalog level; pass `level` to
  /// override. Unknown events fail with NotFound.
  Status InjectEpisode(const std::string& target, const std::string& event_name,
                       const Interval& episode, EventLog* log,
                       std::optional<Severity> level = std::nullopt);

  /// Samples Poisson(rate) episodes per (VM, event) for one day and injects
  /// them with log-normal episode lengths (median ~3 minutes). Returns the
  /// number of episodes injected.
  StatusOr<size_t> InjectDay(const Fleet& fleet, TimePoint day_start,
                             const FaultRates& rates, EventLog* log);

  /// Like InjectDay but only for VMs matching a placement dimension.
  StatusOr<size_t> InjectDayWhere(const Fleet& fleet, TimePoint day_start,
                                  const FaultRates& rates,
                                  const std::string& dim,
                                  const std::string& value, EventLog* log);

 private:
  StatusOr<size_t> InjectDayForVms(const std::vector<VmServiceInfo>& vms,
                                   TimePoint day_start,
                                   const FaultRates& rates, EventLog* log);

  const EventCatalog* catalog_;
  Rng* rng_;
};

}  // namespace cdibot

#endif  // CDIBOT_SIM_SCENARIO_H_
