#ifndef CDIBOT_SIM_FLEET_H_
#define CDIBOT_SIM_FLEET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cdi/pipeline.h"
#include "common/statusor.h"
#include "telemetry/topology.h"

namespace cdibot {

/// Shape of a synthetic fleet. Ids are generated deterministically:
/// regions "r0..", AZs "r0-az0..", clusters "r0-az0-c0..", NCs
/// "r0-az0-c0-nc000..", VMs "<nc>-vm00..".
struct FleetSpec {
  int regions = 2;
  int azs_per_region = 2;
  int clusters_per_az = 2;
  int ncs_per_cluster = 4;
  int vms_per_nc = 8;
  /// Fraction of NCs deployed with the hybrid architecture (Case 5);
  /// the rest alternate homogeneous-dedicated / homogeneous-shared.
  double hybrid_fraction = 0.0;
  /// Fraction of NCs of machine model "gen2" (the Case 5 defect only
  /// manifests on one model); the rest are "gen3".
  double gen2_fraction = 0.3;
  uint64_t seed = 42;
};

/// A deterministic synthetic fleet: topology plus the per-VM service
/// information the CDI pipeline consumes. The stand-in for the paper's
/// million-server production environment.
class Fleet {
 public:
  /// Builds the fleet from `spec`. Requires positive counts and fractions
  /// in [0, 1].
  static StatusOr<Fleet> Build(const FleetSpec& spec);

  const FleetTopology& topology() const { return topology_; }
  const FleetSpec& spec() const { return spec_; }
  size_t num_vms() const { return topology_.num_vms(); }

  /// Service infos for every VM, serving the full `window` (the common
  /// case: long-lived VMs evaluated over one day).
  StatusOr<std::vector<VmServiceInfo>> ServiceInfos(
      const Interval& window) const;

  /// Service infos restricted to VMs whose dimension `dim` equals `value`
  /// (e.g. arch == "hybrid" for the Fig. 8 comparison).
  StatusOr<std::vector<VmServiceInfo>> ServiceInfosWhere(
      const Interval& window, const std::string& dim,
      const std::string& value) const;

 private:
  Fleet(FleetSpec spec, FleetTopology topology)
      : spec_(spec), topology_(std::move(topology)) {}

  FleetSpec spec_;
  FleetTopology topology_;
};

}  // namespace cdibot

#endif  // CDIBOT_SIM_FLEET_H_
