#ifndef CDIBOT_DATAFLOW_ENGINE_H_
#define CDIBOT_DATAFLOW_ENGINE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "common/thread_pool.h"
#include "dataflow/table.h"

namespace cdibot::dataflow {

/// Execution environment for the parallel operators. The pool is borrowed
/// and must outlive every call that uses the context.
struct ExecContext {
  ThreadPool* pool = nullptr;
  /// Below this row count operators run single-threaded (task overhead
  /// dominates otherwise).
  size_t min_parallel_rows = 4096;
};

/// Applies `fn` to every row in parallel, producing a table with
/// `out_schema`. `fn` must be thread-safe; a failing row fails the job.
/// Output row order matches input order.
StatusOr<Table> ParallelMap(
    const Table& in, Schema out_schema,
    const std::function<StatusOr<Row>(const Row&)>& fn,
    const ExecContext& ctx);

/// Keeps rows for which `pred` returns true, preserving order.
StatusOr<Table> ParallelFilter(const Table& in,
                               const std::function<bool(const Row&)>& pred,
                               const ExecContext& ctx);

/// Aggregation functions for HashGroupBy.
enum class AggKind : int {
  kCount = 0,  ///< row count; input column ignored
  kSum = 1,
  kMin = 2,
  kMax = 3,
  kMean = 4,
  /// Weighted mean sum(w*x)/sum(w) — expresses Eq. 4 directly in the BI
  /// layer: CDI re-aggregation weights indicator values by service time.
  kWeightedMean = 5,
};

/// One aggregate output column.
struct AggSpec {
  AggKind kind = AggKind::kCount;
  /// Input value column (ignored for kCount). Must be numeric.
  std::string input_column;
  /// Weight column for kWeightedMean.
  std::string weight_column;
  /// Name of the output column.
  std::string output_name;
};

/// Parallel hash aggregation: groups `in` by the key columns and computes
/// each AggSpec per group. Runs partial aggregation per input chunk followed
/// by a single-threaded merge (the classic map-side-combine plan the
/// paper's Spark job uses). Output rows are sorted by key for determinism.
StatusOr<Table> HashGroupBy(const Table& in,
                            const std::vector<std::string>& key_columns,
                            const std::vector<AggSpec>& aggs,
                            const ExecContext& ctx);

/// Inner hash join: builds a hash table on `right` (broadcast side) and
/// probes with `left` in parallel. Output schema is left's fields followed
/// by right's non-key fields. Key columns must have matching counts.
StatusOr<Table> HashJoin(const Table& left, const Table& right,
                         const std::vector<std::string>& left_keys,
                         const std::vector<std::string>& right_keys,
                         const ExecContext& ctx);

/// Stable sort by the given columns (ascending, Value ordering).
StatusOr<Table> SortBy(const Table& in,
                       const std::vector<std::string>& columns,
                       const ExecContext& ctx);

}  // namespace cdibot::dataflow

#endif  // CDIBOT_DATAFLOW_ENGINE_H_
