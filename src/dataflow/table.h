#ifndef CDIBOT_DATAFLOW_TABLE_H_
#define CDIBOT_DATAFLOW_TABLE_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "dataflow/value.h"

namespace cdibot::dataflow {

/// One named, typed column of a schema.
struct Field {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// Column layout of a Table. Column names must be unique.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const std::vector<Field>& fields() const { return fields_; }
  const Field& field(size_t i) const { return fields_[i]; }

  /// Index of the column named `name`, or NotFound.
  StatusOr<size_t> IndexOf(const std::string& name) const;

  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b);

 private:
  std::vector<Field> fields_;
};

/// A row: one Value per schema field.
using Row = std::vector<Value>;

/// An in-memory row-major table — the engine's materialized dataset unit
/// (the MaxCompute-table stand-in). Rows are validated against the schema at
/// append time (null is accepted for any type).
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }

  /// Appends after type-checking against the schema.
  Status Append(Row row);

  /// Appends without checks; used by engine internals that construct rows
  /// from already-validated data.
  void AppendUnchecked(Row row) { rows_.push_back(std::move(row)); }

  /// Value at (row, column-name); NotFound for unknown columns.
  StatusOr<Value> At(size_t row_index, const std::string& column) const;

  /// Renders the first `max_rows` rows as an aligned text table (the BI
  /// visualization stand-in used by benches and examples).
  std::string ToPrettyString(size_t max_rows = 50) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace cdibot::dataflow

#endif  // CDIBOT_DATAFLOW_TABLE_H_
