#include "dataflow/csv.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace cdibot::dataflow {
namespace {

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

void AppendCell(const std::string& s, std::string* out) {
  if (!NeedsQuoting(s)) {
    *out += s;
    return;
  }
  *out += '"';
  for (char c : s) {
    if (c == '"') *out += '"';
    *out += c;
  }
  *out += '"';
}

std::string RenderValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt:
      return StrFormat("%lld",
                       static_cast<long long>(v.int_unchecked()));
    case ValueType::kDouble:
      return StrFormat("%.17g", v.double_unchecked());
    case ValueType::kString:
      return v.string_unchecked();
  }
  return "";
}

// Splits one CSV record (no trailing newline) into cells, handling quotes.
StatusOr<std::vector<std::string>> SplitRecord(const std::string& line,
                                               size_t line_no) {
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      if (!cell.empty()) {
        return Status::InvalidArgument(
            StrFormat("stray quote on line %zu", line_no));
      }
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell += c;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument(
        StrFormat("unterminated quote on line %zu", line_no));
  }
  cells.push_back(std::move(cell));
  return cells;
}

StatusOr<Value> ParseCell(const std::string& cell, ValueType type,
                          size_t line_no) {
  if (cell.empty()) return Value();
  char* end = nullptr;
  switch (type) {
    case ValueType::kInt: {
      const long long v = std::strtoll(cell.c_str(), &end, 10);
      if (end != cell.c_str() + cell.size()) {
        return Status::InvalidArgument(
            StrFormat("bad int '%s' on line %zu", cell.c_str(), line_no));
      }
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      const double v = std::strtod(cell.c_str(), &end);
      if (end != cell.c_str() + cell.size()) {
        return Status::InvalidArgument(
            StrFormat("bad double '%s' on line %zu", cell.c_str(), line_no));
      }
      return Value(v);
    }
    case ValueType::kString:
      return Value(cell);
    case ValueType::kNull:
      return Value();
  }
  return Value();
}

}  // namespace

std::string ToCsv(const Table& table) {
  std::string out;
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    if (c > 0) out += ',';
    AppendCell(schema.field(c).name, &out);
  }
  out += '\n';
  for (const Row& row : table.rows()) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      AppendCell(RenderValue(row[c]), &out);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::Internal("cannot open for write: " + path);
  const std::string csv = ToCsv(table);
  file.write(csv.data(), static_cast<std::streamsize>(csv.size()));
  file.flush();
  if (!file) return Status::Internal("write failed: " + path);
  return Status::OK();
}

StatusOr<Table> FromCsv(const std::string& csv, const Schema& schema) {
  std::istringstream stream(csv);
  std::string line;
  size_t line_no = 0;

  // Header.
  if (!std::getline(stream, line)) {
    return Status::InvalidArgument("CSV is empty (no header)");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  ++line_no;
  CDIBOT_ASSIGN_OR_RETURN(const auto header, SplitRecord(line, line_no));
  if (header.size() != schema.num_fields()) {
    return Status::InvalidArgument(StrFormat(
        "header has %zu columns, schema has %zu", header.size(),
        schema.num_fields()));
  }
  for (size_t c = 0; c < header.size(); ++c) {
    if (header[c] != schema.field(c).name) {
      return Status::InvalidArgument("header column '" + header[c] +
                                     "' does not match schema column '" +
                                     schema.field(c).name + "'");
    }
  }

  Table table(schema);
  while (std::getline(stream, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    ++line_no;
    if (line.empty()) continue;
    CDIBOT_ASSIGN_OR_RETURN(const auto cells, SplitRecord(line, line_no));
    if (cells.size() != schema.num_fields()) {
      return Status::InvalidArgument(
          StrFormat("line %zu has %zu cells, expected %zu", line_no,
                    cells.size(), schema.num_fields()));
    }
    Row row;
    row.reserve(cells.size());
    for (size_t c = 0; c < cells.size(); ++c) {
      CDIBOT_ASSIGN_OR_RETURN(
          Value v, ParseCell(cells[c], schema.field(c).type, line_no));
      row.push_back(std::move(v));
    }
    table.AppendUnchecked(std::move(row));
  }
  return table;
}

StatusOr<Table> ReadCsvFile(const std::string& path, const Schema& schema) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return FromCsv(buffer.str(), schema);
}

StatusOr<LenientCsvResult> FromCsvLenient(const std::string& csv,
                                          const Schema& schema) {
  std::istringstream stream(csv);
  std::string line;
  size_t line_no = 0;

  // The header is still load-bearing: without it no row is interpretable.
  if (!std::getline(stream, line)) {
    return Status::InvalidArgument("CSV is empty (no header)");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  ++line_no;
  CDIBOT_ASSIGN_OR_RETURN(const auto header, SplitRecord(line, line_no));
  if (header.size() != schema.num_fields()) {
    return Status::InvalidArgument(StrFormat(
        "header has %zu columns, schema has %zu", header.size(),
        schema.num_fields()));
  }
  for (size_t c = 0; c < header.size(); ++c) {
    if (header[c] != schema.field(c).name) {
      return Status::InvalidArgument("header column '" + header[c] +
                                     "' does not match schema column '" +
                                     schema.field(c).name + "'");
    }
  }

  LenientCsvResult result;
  result.table = Table(schema);
  auto drop = [&result](Status why) {
    ++result.rows_dropped;
    if (result.errors.size() < LenientCsvResult::kMaxErrors) {
      result.errors.push_back(why.ToString());
    }
  };
  while (std::getline(stream, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    ++line_no;
    if (line.empty()) continue;
    auto cells = SplitRecord(line, line_no);
    if (!cells.ok()) {
      drop(cells.status());
      continue;
    }
    if (cells->size() != schema.num_fields()) {
      drop(Status::InvalidArgument(
          StrFormat("line %zu has %zu cells, expected %zu", line_no,
                    cells->size(), schema.num_fields())));
      continue;
    }
    Row row;
    row.reserve(cells->size());
    bool row_ok = true;
    for (size_t c = 0; c < cells->size(); ++c) {
      auto v = ParseCell((*cells)[c], schema.field(c).type, line_no);
      if (!v.ok()) {
        drop(v.status());
        row_ok = false;
        break;
      }
      row.push_back(std::move(*v));
    }
    if (row_ok) result.table.AppendUnchecked(std::move(row));
  }
  return result;
}

StatusOr<LenientCsvResult> ReadCsvFileLenient(const std::string& path,
                                              const Schema& schema) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return FromCsvLenient(buffer.str(), schema);
}

}  // namespace cdibot::dataflow
