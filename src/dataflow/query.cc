#include "dataflow/query.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/strings.h"

namespace cdibot::dataflow {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind {
    kIdent,    // column / table names and keywords (normalized upper-case
               // check via Is())
    kNumber,   // numeric literal
    kString,   // 'quoted'
    kSymbol,   // punctuation / operators
    kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;   // original text (identifiers keep their case)
  double number = 0;  // for kNumber
  size_t pos = 0;

  bool IsKeyword(const char* kw) const {
    if (kind != Kind::kIdent) return false;
    if (text.size() != std::string_view(kw).size()) return false;
    for (size_t i = 0; i < text.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(text[i])) != kw[i]) {
        return false;
      }
    }
    return true;
  }
  bool IsSymbol(const char* s) const {
    return kind == Kind::kSymbol && text == s;
  }
};

StatusOr<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < sql.size()) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[j])) ||
              sql[j] == '_')) {
        ++j;
      }
      out.push_back({Token::Kind::kIdent, sql.substr(i, j - i), 0, i});
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < sql.size() &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i + 1;
      while (j < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[j])) ||
              sql[j] == '.' || sql[j] == 'e' || sql[j] == 'E' ||
              ((sql[j] == '+' || sql[j] == '-') &&
               (sql[j - 1] == 'e' || sql[j - 1] == 'E')))) {
        ++j;
      }
      Token tok{Token::Kind::kNumber, sql.substr(i, j - i), 0, i};
      char* end = nullptr;
      tok.number = std::strtod(tok.text.c_str(), &end);
      if (end != tok.text.c_str() + tok.text.size()) {
        return Status::InvalidArgument(
            StrFormat("bad number at position %zu", i));
      }
      out.push_back(std::move(tok));
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      std::string value;
      while (j < sql.size() && sql[j] != '\'') value.push_back(sql[j++]);
      if (j >= sql.size()) {
        return Status::InvalidArgument(
            StrFormat("unterminated string at position %zu", i));
      }
      out.push_back({Token::Kind::kString, value, 0, i});
      i = j + 1;
    } else if (c == '<' || c == '>' || c == '!') {
      if (i + 1 < sql.size() && sql[i + 1] == '=') {
        out.push_back({Token::Kind::kSymbol, sql.substr(i, 2), 0, i});
        i += 2;
      } else {
        out.push_back({Token::Kind::kSymbol, std::string(1, c), 0, i});
        ++i;
      }
    } else if (c == '=' || c == '(' || c == ')' || c == ',' || c == '*') {
      out.push_back({Token::Kind::kSymbol, std::string(1, c), 0, i});
      ++i;
    } else {
      return Status::InvalidArgument(
          StrFormat("unexpected character '%c' at position %zu", c, i));
    }
  }
  out.push_back({Token::Kind::kEnd, "", 0, sql.size()});
  return out;
}

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

struct SelectItem {
  enum class Kind { kColumn, kAggregate } kind = Kind::kColumn;
  std::string column;  // input column (or "*" for COUNT(*))
  std::string weight;  // WAVG weight column
  AggKind agg = AggKind::kCount;
  std::string alias;   // output name

  std::string DefaultName() const {
    if (kind == Kind::kColumn) return column;
    const char* fn = "";
    switch (agg) {
      case AggKind::kCount:
        fn = "count";
        break;
      case AggKind::kSum:
        fn = "sum";
        break;
      case AggKind::kMin:
        fn = "min";
        break;
      case AggKind::kMax:
        fn = "max";
        break;
      case AggKind::kMean:
        fn = "avg";
        break;
      case AggKind::kWeightedMean:
        fn = "wavg";
        break;
    }
    return std::string(fn) + "_" + (column == "*" ? "all" : column);
  }
};

struct Comparison {
  std::string column;
  std::string op;  // = != < <= > >=
  Value literal;
};

struct Predicate {
  enum class Kind { kComparison, kAnd, kOr, kNot } kind = Kind::kComparison;
  Comparison cmp;
  std::unique_ptr<Predicate> lhs;
  std::unique_ptr<Predicate> rhs;
};

struct OrderKey {
  std::string column;
  bool ascending = true;
};

struct SelectStatement {
  std::vector<SelectItem> items;
  std::string table;
  std::unique_ptr<Predicate> where;
  std::vector<std::string> group_by;
  std::unique_ptr<Predicate> having;
  std::vector<OrderKey> order_by;
  std::optional<size_t> limit;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<SelectStatement> Parse() {
    SelectStatement stmt;
    CDIBOT_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    CDIBOT_RETURN_IF_ERROR(ParseSelectList(&stmt));
    CDIBOT_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    CDIBOT_ASSIGN_OR_RETURN(stmt.table, ExpectIdent());
    if (Peek().IsKeyword("WHERE")) {
      Consume();
      CDIBOT_ASSIGN_OR_RETURN(stmt.where, ParseOr());
    }
    if (Peek().IsKeyword("GROUP")) {
      Consume();
      CDIBOT_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        CDIBOT_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        stmt.group_by.push_back(std::move(col));
      } while (TryConsumeSymbol(","));
    }
    if (Peek().IsKeyword("HAVING")) {
      Consume();
      CDIBOT_ASSIGN_OR_RETURN(stmt.having, ParseOr());
    }
    if (Peek().IsKeyword("ORDER")) {
      Consume();
      CDIBOT_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        OrderKey key;
        CDIBOT_ASSIGN_OR_RETURN(key.column, ExpectIdent());
        if (Peek().IsKeyword("ASC")) {
          Consume();
        } else if (Peek().IsKeyword("DESC")) {
          Consume();
          key.ascending = false;
        }
        stmt.order_by.push_back(std::move(key));
      } while (TryConsumeSymbol(","));
    }
    if (Peek().IsKeyword("LIMIT")) {
      Consume();
      if (Peek().kind != Token::Kind::kNumber || Peek().number < 0) {
        return Status::InvalidArgument("LIMIT needs a non-negative number");
      }
      stmt.limit = static_cast<size_t>(Consume().number);
    }
    if (Peek().kind != Token::Kind::kEnd) {
      return Status::InvalidArgument(
          StrFormat("unexpected token '%s' at position %zu",
                    Peek().text.c_str(), Peek().pos));
    }
    return stmt;
  }

 private:
  const Token& Peek() const { return tokens_[cursor_]; }
  Token Consume() { return tokens_[cursor_++]; }

  bool TryConsumeSymbol(const char* s) {
    if (Peek().IsSymbol(s)) {
      Consume();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const char* kw) {
    if (!Peek().IsKeyword(kw)) {
      return Status::InvalidArgument(
          StrFormat("expected %s at position %zu", kw, Peek().pos));
    }
    Consume();
    return Status::OK();
  }

  StatusOr<std::string> ExpectIdent() {
    if (Peek().kind != Token::Kind::kIdent) {
      return Status::InvalidArgument(
          StrFormat("expected identifier at position %zu", Peek().pos));
    }
    return Consume().text;
  }

  Status ParseSelectList(SelectStatement* stmt) {
    do {
      CDIBOT_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      stmt->items.push_back(std::move(item));
    } while (TryConsumeSymbol(","));
    return Status::OK();
  }

  static std::optional<AggKind> AggFromName(const Token& tok) {
    if (tok.IsKeyword("COUNT")) return AggKind::kCount;
    if (tok.IsKeyword("SUM")) return AggKind::kSum;
    if (tok.IsKeyword("MIN")) return AggKind::kMin;
    if (tok.IsKeyword("MAX")) return AggKind::kMax;
    if (tok.IsKeyword("AVG")) return AggKind::kMean;
    if (tok.IsKeyword("WAVG")) return AggKind::kWeightedMean;
    return std::nullopt;
  }

  StatusOr<SelectItem> ParseSelectItem() {
    SelectItem item;
    CDIBOT_ASSIGN_OR_RETURN(const std::string name, ExpectIdent());
    const Token name_tok{Token::Kind::kIdent, name, 0, 0};
    const auto agg = AggFromName(name_tok);
    if (agg.has_value() && Peek().IsSymbol("(")) {
      Consume();  // (
      item.kind = SelectItem::Kind::kAggregate;
      item.agg = *agg;
      if (*agg == AggKind::kCount && Peek().IsSymbol("*")) {
        Consume();
        item.column = "*";
      } else {
        CDIBOT_ASSIGN_OR_RETURN(item.column, ExpectIdent());
        if (*agg == AggKind::kWeightedMean) {
          if (!TryConsumeSymbol(",")) {
            return Status::InvalidArgument(
                "WAVG needs two arguments: WAVG(value, weight)");
          }
          CDIBOT_ASSIGN_OR_RETURN(item.weight, ExpectIdent());
        }
      }
      if (!TryConsumeSymbol(")")) {
        return Status::InvalidArgument("missing ')' in aggregate");
      }
    } else {
      item.kind = SelectItem::Kind::kColumn;
      item.column = name;
    }
    if (Peek().IsKeyword("AS")) {
      Consume();
      CDIBOT_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
    }
    if (item.alias.empty()) item.alias = item.DefaultName();
    return item;
  }

  StatusOr<std::unique_ptr<Predicate>> ParseOr() {
    CDIBOT_ASSIGN_OR_RETURN(auto lhs, ParseAnd());
    while (Peek().IsKeyword("OR")) {
      Consume();
      CDIBOT_ASSIGN_OR_RETURN(auto rhs, ParseAnd());
      auto node = std::make_unique<Predicate>();
      node->kind = Predicate::Kind::kOr;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  StatusOr<std::unique_ptr<Predicate>> ParseAnd() {
    CDIBOT_ASSIGN_OR_RETURN(auto lhs, ParseUnary());
    while (Peek().IsKeyword("AND")) {
      Consume();
      CDIBOT_ASSIGN_OR_RETURN(auto rhs, ParseUnary());
      auto node = std::make_unique<Predicate>();
      node->kind = Predicate::Kind::kAnd;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  StatusOr<std::unique_ptr<Predicate>> ParseUnary() {
    if (Peek().IsKeyword("NOT")) {
      Consume();
      CDIBOT_ASSIGN_OR_RETURN(auto operand, ParseUnary());
      auto node = std::make_unique<Predicate>();
      node->kind = Predicate::Kind::kNot;
      node->lhs = std::move(operand);
      return node;
    }
    if (Peek().IsSymbol("(")) {
      Consume();
      CDIBOT_ASSIGN_OR_RETURN(auto inner, ParseOr());
      if (!TryConsumeSymbol(")")) {
        return Status::InvalidArgument("missing ')' in predicate");
      }
      return inner;
    }
    return ParseComparison();
  }

  StatusOr<std::unique_ptr<Predicate>> ParseComparison() {
    auto node = std::make_unique<Predicate>();
    node->kind = Predicate::Kind::kComparison;
    CDIBOT_ASSIGN_OR_RETURN(node->cmp.column, ExpectIdent());
    if (Peek().kind != Token::Kind::kSymbol ||
        (Peek().text != "=" && Peek().text != "!=" && Peek().text != "<" &&
         Peek().text != "<=" && Peek().text != ">" && Peek().text != ">=")) {
      return Status::InvalidArgument(
          StrFormat("expected comparison operator at position %zu",
                    Peek().pos));
    }
    node->cmp.op = Consume().text;
    if (Peek().kind == Token::Kind::kNumber) {
      node->cmp.literal = Value(Consume().number);
    } else if (Peek().kind == Token::Kind::kString) {
      node->cmp.literal = Value(Consume().text);
    } else {
      return Status::InvalidArgument(
          StrFormat("expected literal at position %zu", Peek().pos));
    }
    return node;
  }

  std::vector<Token> tokens_;
  size_t cursor_ = 0;
};

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

StatusOr<std::function<bool(const Row&)>> CompilePredicate(
    const Predicate& pred, const Schema& schema);

StatusOr<std::function<bool(const Row&)>> CompileComparison(
    const Comparison& cmp, const Schema& schema) {
  CDIBOT_ASSIGN_OR_RETURN(const size_t col, schema.IndexOf(cmp.column));
  const Value literal = cmp.literal;
  const std::string op = cmp.op;
  return std::function<bool(const Row&)>(
      [col, literal, op](const Row& row) {
        const Value& v = row[col];
        if (v.is_null()) return false;  // SQL-ish: NULL never matches
        if (op == "=") return v == literal;
        if (op == "!=") return !(v == literal);
        if (op == "<") return v < literal;
        if (op == "<=") return !(literal < v);
        if (op == ">") return literal < v;
        return !(v < literal);  // >=
      });
}

StatusOr<std::function<bool(const Row&)>> CompilePredicate(
    const Predicate& pred, const Schema& schema) {
  switch (pred.kind) {
    case Predicate::Kind::kComparison:
      return CompileComparison(pred.cmp, schema);
    case Predicate::Kind::kAnd: {
      CDIBOT_ASSIGN_OR_RETURN(auto l, CompilePredicate(*pred.lhs, schema));
      CDIBOT_ASSIGN_OR_RETURN(auto r, CompilePredicate(*pred.rhs, schema));
      return std::function<bool(const Row&)>(
          [l, r](const Row& row) { return l(row) && r(row); });
    }
    case Predicate::Kind::kOr: {
      CDIBOT_ASSIGN_OR_RETURN(auto l, CompilePredicate(*pred.lhs, schema));
      CDIBOT_ASSIGN_OR_RETURN(auto r, CompilePredicate(*pred.rhs, schema));
      return std::function<bool(const Row&)>(
          [l, r](const Row& row) { return l(row) || r(row); });
    }
    case Predicate::Kind::kNot: {
      CDIBOT_ASSIGN_OR_RETURN(auto l, CompilePredicate(*pred.lhs, schema));
      return std::function<bool(const Row&)>(
          [l](const Row& row) { return !l(row); });
    }
  }
  return Status::Internal("unhandled predicate kind");
}

// Projects/renames columns of `in` to exactly the selected plain columns.
StatusOr<Table> Project(const Table& in,
                        const std::vector<SelectItem>& items,
                        const ExecContext& ctx) {
  std::vector<size_t> idx;
  std::vector<Field> fields;
  for (const SelectItem& item : items) {
    CDIBOT_ASSIGN_OR_RETURN(const size_t i,
                            in.schema().IndexOf(item.column));
    idx.push_back(i);
    fields.push_back({item.alias, in.schema().field(i).type});
  }
  return ParallelMap(
      in, Schema(std::move(fields)),
      [idx](const Row& row) -> StatusOr<Row> {
        Row out;
        out.reserve(idx.size());
        for (size_t i : idx) out.push_back(row[i]);
        return out;
      },
      ctx);
}

}  // namespace

void QueryEngine::RegisterTable(const std::string& name, Table table) {
  tables_[name] = std::move(table);
}

StatusOr<Table> QueryEngine::Execute(const std::string& sql) const {
  CDIBOT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  CDIBOT_ASSIGN_OR_RETURN(SelectStatement stmt, parser.Parse());

  auto table_it = tables_.find(stmt.table);
  if (table_it == tables_.end()) {
    return Status::NotFound("no table named " + stmt.table);
  }
  const Table* current = &table_it->second;
  Table filtered;

  // WHERE.
  if (stmt.where != nullptr) {
    CDIBOT_ASSIGN_OR_RETURN(auto pred,
                            CompilePredicate(*stmt.where, current->schema()));
    CDIBOT_ASSIGN_OR_RETURN(filtered, ParallelFilter(*current, pred, ctx_));
    current = &filtered;
  }

  const bool has_aggregates =
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const SelectItem& item) {
                    return item.kind == SelectItem::Kind::kAggregate;
                  });

  Table result;
  if (has_aggregates || !stmt.group_by.empty()) {
    // Validate: plain columns must be group keys.
    for (const SelectItem& item : stmt.items) {
      if (item.kind == SelectItem::Kind::kColumn &&
          std::find(stmt.group_by.begin(), stmt.group_by.end(),
                    item.column) == stmt.group_by.end()) {
        return Status::InvalidArgument(
            "column " + item.column +
            " must appear in GROUP BY when aggregates are selected");
      }
    }
    std::vector<AggSpec> aggs;
    for (const SelectItem& item : stmt.items) {
      if (item.kind != SelectItem::Kind::kAggregate) continue;
      aggs.push_back(AggSpec{.kind = item.agg,
                             .input_column = item.column == "*" ? ""
                                                                : item.column,
                             .weight_column = item.weight,
                             .output_name = item.alias});
    }
    CDIBOT_ASSIGN_OR_RETURN(Table grouped,
                            HashGroupBy(*current, stmt.group_by, aggs, ctx_));
    // Reorder/rename to the SELECT order (keys may be interleaved with
    // aggregates in the select list).
    std::vector<SelectItem> projection;
    for (const SelectItem& item : stmt.items) {
      SelectItem p = item;
      // After grouping, aggregates already carry their alias; keys keep
      // their column name.
      p.kind = SelectItem::Kind::kColumn;
      p.column = item.kind == SelectItem::Kind::kAggregate ? item.alias
                                                           : item.column;
      projection.push_back(std::move(p));
    }
    CDIBOT_ASSIGN_OR_RETURN(result, Project(grouped, projection, ctx_));
    // HAVING filters the aggregated, projected rows.
    if (stmt.having != nullptr) {
      CDIBOT_ASSIGN_OR_RETURN(
          auto having_pred, CompilePredicate(*stmt.having, result.schema()));
      CDIBOT_ASSIGN_OR_RETURN(result,
                              ParallelFilter(result, having_pred, ctx_));
    }
  } else {
    if (stmt.having != nullptr) {
      return Status::InvalidArgument("HAVING requires aggregation");
    }
    CDIBOT_ASSIGN_OR_RETURN(result, Project(*current, stmt.items, ctx_));
  }

  // ORDER BY over the projected schema.
  if (!stmt.order_by.empty()) {
    // SortBy is ascending-only; apply descending keys by sorting each key
    // from the least significant to the most significant with stable sort.
    for (auto it = stmt.order_by.rbegin(); it != stmt.order_by.rend(); ++it) {
      CDIBOT_ASSIGN_OR_RETURN(const size_t col,
                              result.schema().IndexOf(it->column));
      const bool asc = it->ascending;
      std::stable_sort(result.mutable_rows().begin(),
                       result.mutable_rows().end(),
                       [col, asc](const Row& a, const Row& b) {
                         return asc ? a[col] < b[col] : b[col] < a[col];
                       });
    }
  }

  if (stmt.limit.has_value() && result.num_rows() > *stmt.limit) {
    result.mutable_rows().resize(*stmt.limit);
  }
  return result;
}

}  // namespace cdibot::dataflow
