#include "dataflow/table.h"

#include <algorithm>

#include "common/strings.h"

namespace cdibot::dataflow {

StatusOr<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no column named " + name);
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const Field& f : fields_) {
    parts.push_back(f.name + ":" + std::string(ValueTypeToString(f.type)));
  }
  return "(" + StrJoin(parts, ", ") + ")";
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.fields_.size() != b.fields_.size()) return false;
  for (size_t i = 0; i < a.fields_.size(); ++i) {
    if (a.fields_[i].name != b.fields_[i].name ||
        a.fields_[i].type != b.fields_[i].type) {
      return false;
    }
  }
  return true;
}

Status Table::Append(Row row) {
  if (row.size() != schema_.num_fields()) {
    return Status::InvalidArgument(StrFormat(
        "row has %zu values, schema has %zu fields", row.size(),
        schema_.num_fields()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    if (row[i].type() != schema_.field(i).type) {
      return Status::InvalidArgument(StrFormat(
          "column %s expects %s, got %s", schema_.field(i).name.c_str(),
          std::string(ValueTypeToString(schema_.field(i).type)).c_str(),
          std::string(ValueTypeToString(row[i].type())).c_str()));
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

StatusOr<Value> Table::At(size_t row_index, const std::string& column) const {
  if (row_index >= rows_.size()) {
    return Status::OutOfRange("row index out of range");
  }
  CDIBOT_ASSIGN_OR_RETURN(const size_t col, schema_.IndexOf(column));
  return rows_[row_index][col];
}

std::string Table::ToPrettyString(size_t max_rows) const {
  const size_t cols = schema_.num_fields();
  const size_t shown = std::min(max_rows, rows_.size());
  // Render all cells, then size columns.
  std::vector<std::vector<std::string>> cells;
  cells.reserve(shown + 1);
  std::vector<std::string> header;
  header.reserve(cols);
  for (const Field& f : schema_.fields()) header.push_back(f.name);
  cells.push_back(header);
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> line;
    line.reserve(cols);
    for (size_t c = 0; c < cols; ++c) line.push_back(rows_[r][c].ToString());
    cells.push_back(std::move(line));
  }
  std::vector<size_t> width(cols, 0);
  for (const auto& line : cells) {
    for (size_t c = 0; c < cols; ++c) {
      width[c] = std::max(width[c], line[c].size());
    }
  }
  std::string out;
  for (size_t l = 0; l < cells.size(); ++l) {
    for (size_t c = 0; c < cols; ++c) {
      out += StrFormat("%-*s", static_cast<int>(width[c] + 2),
                       cells[l][c].c_str());
    }
    out += "\n";
    if (l == 0) {
      for (size_t c = 0; c < cols; ++c) {
        out += std::string(width[c], '-') + "  ";
      }
      out += "\n";
    }
  }
  if (shown < rows_.size()) {
    out += StrFormat("... (%zu more rows)\n", rows_.size() - shown);
  }
  return out;
}

}  // namespace cdibot::dataflow
