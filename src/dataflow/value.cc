#include "dataflow/value.h"

#include <functional>

#include "common/strings.h"

namespace cdibot::dataflow {

std::string_view ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

StatusOr<int64_t> Value::AsInt() const {
  if (type() != ValueType::kInt) {
    return Status::InvalidArgument("value is not an int");
  }
  return std::get<int64_t>(v_);
}

StatusOr<double> Value::AsDouble() const {
  if (type() == ValueType::kDouble) return std::get<double>(v_);
  if (type() == ValueType::kInt) {
    return static_cast<double>(std::get<int64_t>(v_));
  }
  return Status::InvalidArgument("value is not numeric");
}

StatusOr<std::string> Value::AsString() const {
  if (type() != ValueType::kString) {
    return Status::InvalidArgument("value is not a string");
  }
  return std::get<std::string>(v_);
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return StrFormat("%lld",
                       static_cast<long long>(std::get<int64_t>(v_)));
    case ValueType::kDouble:
      return StrFormat("%.6g", std::get<double>(v_));
    case ValueType::kString:
      return std::get<std::string>(v_);
  }
  return "?";
}

namespace {

// Numeric rank for cross-type ordering.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 1;
    case ValueType::kString:
      return 2;
  }
  return 3;
}

}  // namespace

bool operator<(const Value& a, const Value& b) {
  const int ra = TypeRank(a.type());
  const int rb = TypeRank(b.type());
  if (ra != rb) return ra < rb;
  switch (a.type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt:
      if (b.type() == ValueType::kInt) {
        return a.int_unchecked() < b.int_unchecked();
      }
      return static_cast<double>(a.int_unchecked()) < b.double_unchecked();
    case ValueType::kDouble:
      if (b.type() == ValueType::kInt) {
        return a.double_unchecked() < static_cast<double>(b.int_unchecked());
      }
      return a.double_unchecked() < b.double_unchecked();
    case ValueType::kString:
      return a.string_unchecked() < b.string_unchecked();
  }
  return false;
}

bool operator==(const Value& a, const Value& b) {
  return !(a < b) && !(b < a);
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b9;
    case ValueType::kInt:
      return std::hash<double>()(
          static_cast<double>(std::get<int64_t>(v_)));
    case ValueType::kDouble:
      // Hash doubles via their numeric value so 1 (int) and 1.0 collide,
      // matching operator==.
      return std::hash<double>()(std::get<double>(v_));
    case ValueType::kString:
      return std::hash<std::string>()(std::get<std::string>(v_));
  }
  return 0;
}

}  // namespace cdibot::dataflow
