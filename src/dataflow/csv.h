#ifndef CDIBOT_DATAFLOW_CSV_H_
#define CDIBOT_DATAFLOW_CSV_H_

#include <string>

#include "common/statusor.h"
#include "dataflow/table.h"

namespace cdibot::dataflow {

/// Serializes `table` as RFC-4180-style CSV: a header row of column names,
/// then one row per record. Strings containing commas, quotes, or newlines
/// are double-quoted with internal quotes doubled; nulls serialize as empty
/// cells.
std::string ToCsv(const Table& table);

/// Writes ToCsv(table) to `path`. Fails with Internal on I/O errors.
Status WriteCsvFile(const Table& table, const std::string& path);

/// Parses CSV text into a table with the given schema. The header row must
/// name exactly the schema's columns in order; cells parse according to the
/// column type (empty cell = null). Fails with InvalidArgument on malformed
/// input.
StatusOr<Table> FromCsv(const std::string& csv, const Schema& schema);

/// Reads and parses a CSV file.
StatusOr<Table> ReadCsvFile(const std::string& path, const Schema& schema);

/// Result of a lenient parse: the rows that survived, plus an account of
/// the ones that did not.
struct LenientCsvResult {
  Table table;
  /// Data rows skipped because they failed to split, had the wrong cell
  /// count, or contained an unparseable cell.
  size_t rows_dropped = 0;
  /// Up to kMaxErrors messages describing the dropped rows (first-come).
  std::vector<std::string> errors;

  static constexpr size_t kMaxErrors = 8;
};

/// Like FromCsv but degrades instead of failing: malformed data rows are
/// skipped and counted rather than aborting the parse. Only an unusable
/// header (missing, wrong columns) still fails, since without it no row can
/// be interpreted. This is the loader used on the crash-recovery path,
/// where a torn tail must not take the surviving prefix down with it.
StatusOr<LenientCsvResult> FromCsvLenient(const std::string& csv,
                                          const Schema& schema);

/// Reads and leniently parses a CSV file.
StatusOr<LenientCsvResult> ReadCsvFileLenient(const std::string& path,
                                              const Schema& schema);

}  // namespace cdibot::dataflow

#endif  // CDIBOT_DATAFLOW_CSV_H_
