#ifndef CDIBOT_DATAFLOW_QUERY_H_
#define CDIBOT_DATAFLOW_QUERY_H_

#include <map>
#include <string>

#include "common/statusor.h"
#include "dataflow/engine.h"
#include "dataflow/table.h"

namespace cdibot::dataflow {

/// QueryEngine executes a compact SQL dialect over registered tables — the
/// BI layer of Sec. V ("this system facilitates SQL queries... it is able
/// to aggregate the CDI across diverse dimensions in accordance with
/// Formula 4").
///
/// Supported grammar (case-insensitive keywords):
///
///   SELECT item [, item ...]
///   FROM table_name
///   [WHERE predicate]
///   [GROUP BY column [, column ...]]
///   [HAVING predicate]            -- over the aggregated output columns
///   [ORDER BY column [ASC|DESC] [, ...]]
///   [LIMIT n]
///
///   item      := column
///              | COUNT(*)                [AS alias]
///              | SUM(col) | MIN(col) | MAX(col) | AVG(col)   [AS alias]
///              | WAVG(col, weight_col)   [AS alias]    -- Eq. 4
///   predicate := disjunction of conjunctions of comparisons,
///                with NOT and parentheses;
///                comparison := column (= | != | < | <= | > | >=) literal
///   literal   := number | 'string'
///
/// Aggregate items require GROUP BY (or aggregate-only SELECT for a global
/// aggregate); plain columns in an aggregated SELECT must appear in GROUP
/// BY. WAVG is the service-time-weighted mean that re-aggregates CDI values
/// exactly as Formula 4 prescribes.
class QueryEngine {
 public:
  explicit QueryEngine(ExecContext ctx) : ctx_(ctx) {}

  /// Registers `table` under `name` (replacing any previous registration).
  void RegisterTable(const std::string& name, Table table);

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  /// Parses and executes `sql`, returning the result table.
  StatusOr<Table> Execute(const std::string& sql) const;

 private:
  ExecContext ctx_;
  std::map<std::string, Table> tables_;
};

}  // namespace cdibot::dataflow

#endif  // CDIBOT_DATAFLOW_QUERY_H_
