#include "dataflow/engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <unordered_map>

namespace cdibot::dataflow {
namespace {

// Splits [0, n) into roughly equal chunks, at most 4x pool width.
std::vector<std::pair<size_t, size_t>> MakeChunks(size_t n,
                                                  const ExecContext& ctx) {
  std::vector<std::pair<size_t, size_t>> chunks;
  if (n == 0) return chunks;
  size_t num_chunks = 1;
  if (ctx.pool != nullptr && n >= ctx.min_parallel_rows) {
    num_chunks = std::min(n, ctx.pool->num_threads() * 4);
  }
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  for (size_t begin = 0; begin < n; begin += chunk) {
    chunks.emplace_back(begin, std::min(n, begin + chunk));
  }
  return chunks;
}

// Runs fn(chunk_index, begin, end) over the chunks, parallel when a pool is
// available.
void RunChunks(const std::vector<std::pair<size_t, size_t>>& chunks,
               const ExecContext& ctx,
               const std::function<void(size_t, size_t, size_t)>& fn) {
  if (chunks.size() <= 1 || ctx.pool == nullptr) {
    for (size_t i = 0; i < chunks.size(); ++i) {
      fn(i, chunks[i].first, chunks[i].second);
    }
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(chunks.size());
  for (size_t i = 0; i < chunks.size(); ++i) {
    futures.push_back(ctx.pool->Submit([i, &chunks, &fn]() {
      fn(i, chunks[i].first, chunks[i].second);
    }));
  }
  for (auto& f : futures) f.get();
}

struct KeyHash {
  size_t operator()(const Row& key) const {
    size_t h = 0x811c9dc5;
    for (const Value& v : key) {
      h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
    }
    return h;
  }
};

struct KeyEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
};

// Partial state for all AggKinds; cheap to merge.
struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  double weighted_sum = 0.0;
  double weight_total = 0.0;

  void Merge(const AggState& o) {
    count += o.count;
    sum += o.sum;
    min = std::min(min, o.min);
    max = std::max(max, o.max);
    weighted_sum += o.weighted_sum;
    weight_total += o.weight_total;
  }
};

Value Finalize(const AggSpec& spec, const AggState& s) {
  switch (spec.kind) {
    case AggKind::kCount:
      return Value(s.count);
    case AggKind::kSum:
      return Value(s.sum);
    case AggKind::kMin:
      return s.count == 0 ? Value() : Value(s.min);
    case AggKind::kMax:
      return s.count == 0 ? Value() : Value(s.max);
    case AggKind::kMean:
      return s.count == 0 ? Value()
                          : Value(s.sum / static_cast<double>(s.count));
    case AggKind::kWeightedMean:
      return s.weight_total == 0.0 ? Value()
                                   : Value(s.weighted_sum / s.weight_total);
  }
  return Value();
}

using GroupMap = std::unordered_map<Row, std::vector<AggState>, KeyHash, KeyEq>;

}  // namespace

StatusOr<Table> ParallelMap(
    const Table& in, Schema out_schema,
    const std::function<StatusOr<Row>(const Row&)>& fn,
    const ExecContext& ctx) {
  const size_t n = in.num_rows();
  std::vector<Row> out_rows(n);
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  Status first_error;

  const auto chunks = MakeChunks(n, ctx);
  RunChunks(chunks, ctx, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end && !failed.load(std::memory_order_relaxed);
         ++i) {
      auto row_or = fn(in.row(i));
      if (!row_or.ok()) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (first_error.ok()) first_error = row_or.status();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      out_rows[i] = std::move(row_or).value();
    }
  });
  if (failed.load()) return first_error;

  Table out(std::move(out_schema));
  out.mutable_rows() = std::move(out_rows);
  return out;
}

StatusOr<Table> ParallelFilter(const Table& in,
                               const std::function<bool(const Row&)>& pred,
                               const ExecContext& ctx) {
  const size_t n = in.num_rows();
  const auto chunks = MakeChunks(n, ctx);
  std::vector<std::vector<Row>> kept(chunks.size());
  RunChunks(chunks, ctx, [&](size_t c, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (pred(in.row(i))) kept[c].push_back(in.row(i));
    }
  });
  Table out(in.schema());
  for (auto& part : kept) {
    for (auto& row : part) out.AppendUnchecked(std::move(row));
  }
  return out;
}

StatusOr<Table> HashGroupBy(const Table& in,
                            const std::vector<std::string>& key_columns,
                            const std::vector<AggSpec>& aggs,
                            const ExecContext& ctx) {
  // Resolve column indexes once.
  std::vector<size_t> key_idx;
  key_idx.reserve(key_columns.size());
  for (const auto& name : key_columns) {
    CDIBOT_ASSIGN_OR_RETURN(const size_t idx, in.schema().IndexOf(name));
    key_idx.push_back(idx);
  }
  struct ResolvedAgg {
    AggSpec spec;
    size_t input_idx = 0;
    size_t weight_idx = 0;
    bool needs_input = false;
    bool needs_weight = false;
  };
  std::vector<ResolvedAgg> resolved;
  resolved.reserve(aggs.size());
  for (const AggSpec& spec : aggs) {
    ResolvedAgg ra;
    ra.spec = spec;
    if (spec.kind != AggKind::kCount) {
      CDIBOT_ASSIGN_OR_RETURN(ra.input_idx,
                              in.schema().IndexOf(spec.input_column));
      ra.needs_input = true;
    }
    if (spec.kind == AggKind::kWeightedMean) {
      CDIBOT_ASSIGN_OR_RETURN(ra.weight_idx,
                              in.schema().IndexOf(spec.weight_column));
      ra.needs_weight = true;
    }
    resolved.push_back(ra);
  }

  // Partial aggregation per chunk.
  const auto chunks = MakeChunks(in.num_rows(), ctx);
  std::vector<GroupMap> partials(std::max<size_t>(1, chunks.size()));
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  Status first_error;

  RunChunks(chunks, ctx, [&](size_t c, size_t begin, size_t end) {
    GroupMap& local = partials[c];
    for (size_t i = begin; i < end && !failed.load(std::memory_order_relaxed);
         ++i) {
      const Row& row = in.row(i);
      Row key;
      key.reserve(key_idx.size());
      for (size_t k : key_idx) key.push_back(row[k]);
      auto [it, inserted] = local.try_emplace(
          std::move(key), std::vector<AggState>(resolved.size()));
      for (size_t a = 0; a < resolved.size(); ++a) {
        const ResolvedAgg& ra = resolved[a];
        AggState& st = it->second[a];
        double x = 0.0;
        if (ra.needs_input) {
          if (row[ra.input_idx].is_null()) continue;  // nulls skip the agg
          auto x_or = row[ra.input_idx].AsDouble();
          if (!x_or.ok()) {
            std::lock_guard<std::mutex> lock(err_mu);
            if (first_error.ok()) first_error = x_or.status();
            failed.store(true, std::memory_order_relaxed);
            return;
          }
          x = x_or.value();
        }
        st.count += 1;
        st.sum += x;
        st.min = std::min(st.min, x);
        st.max = std::max(st.max, x);
        if (ra.needs_weight) {
          auto w_or = row[ra.weight_idx].AsDouble();
          if (!w_or.ok()) {
            std::lock_guard<std::mutex> lock(err_mu);
            if (first_error.ok()) first_error = w_or.status();
            failed.store(true, std::memory_order_relaxed);
            return;
          }
          st.weighted_sum += w_or.value() * x;
          st.weight_total += w_or.value();
        }
      }
    }
  });
  if (failed.load()) return first_error;

  // Merge partials; std::map gives deterministic key-sorted output.
  std::map<Row, std::vector<AggState>> merged;
  for (GroupMap& partial : partials) {
    for (auto& [key, states] : partial) {
      auto it = merged.find(key);
      if (it == merged.end()) {
        merged.emplace(key, std::move(states));
      } else {
        for (size_t a = 0; a < states.size(); ++a) {
          it->second[a].Merge(states[a]);
        }
      }
    }
  }

  // Output schema: keys then aggregate columns.
  std::vector<Field> out_fields;
  for (size_t k = 0; k < key_columns.size(); ++k) {
    out_fields.push_back(
        {key_columns[k], in.schema().field(key_idx[k]).type});
  }
  for (const ResolvedAgg& ra : resolved) {
    const ValueType t =
        ra.spec.kind == AggKind::kCount ? ValueType::kInt : ValueType::kDouble;
    out_fields.push_back({ra.spec.output_name, t});
  }
  Table out(Schema(std::move(out_fields)));
  for (const auto& [key, states] : merged) {
    Row row = key;
    for (size_t a = 0; a < resolved.size(); ++a) {
      row.push_back(Finalize(resolved[a].spec, states[a]));
    }
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

StatusOr<Table> HashJoin(const Table& left, const Table& right,
                         const std::vector<std::string>& left_keys,
                         const std::vector<std::string>& right_keys,
                         const ExecContext& ctx) {
  if (left_keys.size() != right_keys.size() || left_keys.empty()) {
    return Status::InvalidArgument("join key lists must match and be non-empty");
  }
  std::vector<size_t> lk, rk;
  for (const auto& name : left_keys) {
    CDIBOT_ASSIGN_OR_RETURN(const size_t idx, left.schema().IndexOf(name));
    lk.push_back(idx);
  }
  for (const auto& name : right_keys) {
    CDIBOT_ASSIGN_OR_RETURN(const size_t idx, right.schema().IndexOf(name));
    rk.push_back(idx);
  }
  // Non-key columns of the right side carried into the output.
  std::vector<size_t> right_payload;
  for (size_t i = 0; i < right.schema().num_fields(); ++i) {
    if (std::find(rk.begin(), rk.end(), i) == rk.end()) {
      right_payload.push_back(i);
    }
  }

  // Build on right.
  std::unordered_map<Row, std::vector<size_t>, KeyHash, KeyEq> build;
  build.reserve(right.num_rows());
  for (size_t i = 0; i < right.num_rows(); ++i) {
    Row key;
    key.reserve(rk.size());
    for (size_t k : rk) key.push_back(right.row(i)[k]);
    build[std::move(key)].push_back(i);
  }

  // Probe with left, parallel per chunk.
  const auto chunks = MakeChunks(left.num_rows(), ctx);
  std::vector<std::vector<Row>> outputs(std::max<size_t>(1, chunks.size()));
  RunChunks(chunks, ctx, [&](size_t c, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const Row& lrow = left.row(i);
      Row key;
      key.reserve(lk.size());
      for (size_t k : lk) key.push_back(lrow[k]);
      auto it = build.find(key);
      if (it == build.end()) continue;
      for (size_t ridx : it->second) {
        Row out = lrow;
        for (size_t p : right_payload) out.push_back(right.row(ridx)[p]);
        outputs[c].push_back(std::move(out));
      }
    }
  });

  std::vector<Field> out_fields = left.schema().fields();
  for (size_t p : right_payload) out_fields.push_back(right.schema().field(p));
  Table out(Schema(std::move(out_fields)));
  for (auto& part : outputs) {
    for (auto& row : part) out.AppendUnchecked(std::move(row));
  }
  return out;
}

StatusOr<Table> SortBy(const Table& in,
                       const std::vector<std::string>& columns,
                       const ExecContext& ctx) {
  (void)ctx;  // sort is single-threaded; inputs after group-by are small
  std::vector<size_t> idx;
  for (const auto& name : columns) {
    CDIBOT_ASSIGN_OR_RETURN(const size_t i, in.schema().IndexOf(name));
    idx.push_back(i);
  }
  Table out(in.schema());
  out.mutable_rows() = in.rows();
  std::stable_sort(out.mutable_rows().begin(), out.mutable_rows().end(),
                   [&idx](const Row& a, const Row& b) {
                     for (size_t i : idx) {
                       if (a[i] < b[i]) return true;
                       if (b[i] < a[i]) return false;
                     }
                     return false;
                   });
  return out;
}

}  // namespace cdibot::dataflow
