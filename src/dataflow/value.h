#ifndef CDIBOT_DATAFLOW_VALUE_H_
#define CDIBOT_DATAFLOW_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/statusor.h"

namespace cdibot::dataflow {

/// Column types supported by the mini batch engine.
enum class ValueType : int { kNull = 0, kInt = 1, kDouble = 2, kString = 3 };

std::string_view ValueTypeToString(ValueType t);

/// A dynamically-typed cell. Values are small and copyable; strings own
/// their storage.
class Value {
 public:
  /// Null value.
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}
  explicit Value(const char* v) : v_(std::string(v)) {}

  ValueType type() const {
    switch (v_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInt;
      case 2:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; wrong-type access returns InvalidArgument.
  StatusOr<int64_t> AsInt() const;
  StatusOr<double> AsDouble() const;  // ints widen to double
  StatusOr<std::string> AsString() const;

  /// Unchecked accessors for hot paths; caller must know the type.
  int64_t int_unchecked() const { return std::get<int64_t>(v_); }
  double double_unchecked() const { return std::get<double>(v_); }
  const std::string& string_unchecked() const {
    return std::get<std::string>(v_);
  }

  /// Rendering for table printers; nulls render as "NULL".
  std::string ToString() const;

  /// Total ordering: null < int/double (numeric order) < string. Used by
  /// sort and group-by keys.
  friend bool operator<(const Value& a, const Value& b);
  friend bool operator==(const Value& a, const Value& b);

  /// Hash compatible with operator== (for hash group-by / join keys).
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

}  // namespace cdibot::dataflow

#endif  // CDIBOT_DATAFLOW_VALUE_H_
