#include "obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string_view>

namespace cdibot::obs {

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace internal_trace {

std::atomic<bool> g_trace_enabled{false};

namespace {

/// Per-process salt mixed into every id so two fleet processes minting
/// dense counters still produce disjoint id spaces (w.h.p.).
uint64_t ProcessSalt() {
  static const uint64_t salt = [] {
    uint64_t mix = static_cast<uint64_t>(::getpid());
    mix = (mix << 32) ^ MonotonicNowNs();
    mix *= 0xbf58476d1ce4e5b9ULL;  // splitmix64-style scramble
    mix ^= mix >> 31;
    return mix;
  }();
  return salt;
}

}  // namespace

uint64_t NextSpanId() {
  static std::atomic<uint64_t> next{0};
  const uint64_t n = next.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t id = (ProcessSalt() + n) * 0x9e3779b97f4a7c15ULL;
  return id != 0 ? id : 1;
}

/// Per-thread span storage. The mutex is only ever contended between the
/// owning thread (recording) and an exporting thread, so recording takes
/// an uncontended lock in the steady state.
struct ThreadBuffer {
  std::mutex mu;
  uint32_t tid = 0;
  uint32_t depth = 0;  ///< only touched by the owning thread
  std::vector<SpanRecord> spans;
  uint64_t dropped = 0;
};

ThreadBuffer* CurrentThreadBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto fresh = std::make_shared<ThreadBuffer>();
    fresh->spans.reserve(1024);
    Tracer& tracer = Tracer::Global();
    std::lock_guard<std::mutex> lock(tracer.mu_);
    fresh->tid = static_cast<uint32_t>(tracer.buffers_.size() + 1);
    // The tracer keeps a strong reference, so a thread's spans survive the
    // thread itself (pool workers, short-lived helpers).
    tracer.buffers_.push_back(fresh);
    return fresh;
  }();
  return buffer.get();
}

uint32_t EnterSpan(ThreadBuffer* buffer) { return buffer->depth++; }

void RecordSpan(ThreadBuffer* buffer, const char* name, uint64_t start_ns,
                uint64_t end_ns, uint32_t depth, uint64_t trace_id,
                uint64_t span_id, uint64_t parent_span_id, bool instant) {
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->depth = depth;  // matching decrement of EnterSpan
  if (buffer->spans.size() >= Tracer::kMaxSpansPerThread) {
    ++buffer->dropped;
    return;
  }
  SpanRecord record;
  record.name = name;
  record.start_ns = start_ns;
  record.dur_ns = end_ns - start_ns;
  record.tid = buffer->tid;
  record.depth = depth;
  record.trace_id = trace_id;
  record.span_id = span_id;
  record.parent_span_id = parent_span_id;
  record.instant = instant;
  buffer->spans.push_back(record);
}

}  // namespace internal_trace

uint64_t NewTraceId() { return internal_trace::NextSpanId(); }

void RecordInstant(const char* name) {
  if (!internal_trace::g_trace_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  internal_trace::ThreadBuffer* buffer =
      internal_trace::CurrentThreadBuffer();
  const TraceContext ctx = internal_trace::TraceContextSlot();
  const uint64_t now = MonotonicNowNs();
  internal_trace::RecordSpan(buffer, name, now, now, buffer->depth,
                             ctx.trace_id, internal_trace::NextSpanId(),
                             ctx.span_id, /*instant=*/true);
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // never destroyed
  return *tracer;
}

std::vector<SpanRecord> Tracer::CollectSpans() const {
  std::vector<std::shared_ptr<internal_trace::ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  std::vector<SpanRecord> all;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    all.insert(all.end(), buffer->spans.begin(), buffer->spans.end());
  }
  return all;
}

std::vector<SpanRecord> Tracer::DrainSpans(uint64_t* dropped) {
  std::vector<std::shared_ptr<internal_trace::ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  std::vector<SpanRecord> all;
  uint64_t lost = 0;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    all.insert(all.end(), buffer->spans.begin(), buffer->spans.end());
    buffer->spans.clear();
    lost += buffer->dropped;
    buffer->dropped = 0;
  }
  if (dropped != nullptr) *dropped = lost;
  return all;
}

uint64_t Tracer::dropped() const {
  std::vector<std::shared_ptr<internal_trace::ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  uint64_t total = 0;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    total += buffer->dropped;
  }
  return total;
}

void Tracer::Clear() {
  std::vector<std::shared_ptr<internal_trace::ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->spans.clear();
    buffer->dropped = 0;
  }
}

std::vector<SpanStat> Tracer::StatsByName() const {
  const std::vector<SpanRecord> spans = CollectSpans();
  std::map<std::string_view, SpanStat> by_name;
  for (const SpanRecord& span : spans) {
    SpanStat& stat = by_name[span.name];
    if (stat.count == 0) stat.name = span.name;
    ++stat.count;
    stat.total_ns += span.dur_ns;
    stat.max_ns = std::max(stat.max_ns, span.dur_ns);
  }
  std::vector<SpanStat> stats;
  stats.reserve(by_name.size());
  for (auto& [name, stat] : by_name) stats.push_back(std::move(stat));
  std::sort(stats.begin(), stats.end(), [](const SpanStat& a,
                                           const SpanStat& b) {
    return a.total_ns > b.total_ns;
  });
  return stats;
}

namespace {

void AppendJsonEscaped(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

std::string Tracer::ToChromeTraceJson() const {
  std::vector<SpanRecord> spans = CollectSpans();
  // Chrome's viewer nests "X" events by containment; emitting in start
  // order keeps the file deterministic for the golden test.
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.dur_ns > b.dur_ns;  // parent before child on ties
            });
  const uint64_t origin =
      spans.empty() ? 0
                    : std::min_element(spans.begin(), spans.end(),
                                       [](const SpanRecord& a,
                                          const SpanRecord& b) {
                                         return a.start_ns < b.start_ns;
                                       })
                          ->start_ns;
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out += ',';
    first = false;
    char buf[160];
    const double ts =
        static_cast<double>(span.start_ns - origin) / 1000.0;
    const double dur = static_cast<double>(span.dur_ns) / 1000.0;
    out += "{\"name\":\"";
    AppendJsonEscaped(span.name, &out);
    if (span.instant) {
      std::snprintf(buf, sizeof(buf),
                    "\",\"cat\":\"cdibot\",\"ph\":\"i\",\"s\":\"t\","
                    "\"ts\":%.3f,\"pid\":1,\"tid\":%u}",
                    ts, span.tid);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "\",\"cat\":\"cdibot\",\"ph\":\"X\",\"ts\":%.3f,"
                    "\"dur\":%.3f,\"pid\":1,\"tid\":%u}",
                    ts, dur, span.tid);
    }
    out += buf;
  }
  out += "]}";
  return out;
}

bool Tracer::WriteChromeTrace(const std::string& path,
                              std::string* error) const {
  const std::string json = ToChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != json.size() || !closed) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

}  // namespace cdibot::obs
