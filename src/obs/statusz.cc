#include "obs/statusz.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <string_view>

namespace cdibot::obs {
namespace {

std::string_view SubsystemOf(std::string_view name) {
  const size_t dot = name.find('.');
  return dot == std::string_view::npos ? name : name.substr(0, dot);
}

std::string Fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

/// Nanosecond quantities render as milliseconds in the text report.
bool IsNanosMetric(std::string_view name) { return name.ends_with("_ns"); }

std::string HumanNs(double ns) {
  if (ns >= 1e9) return Fmt("%.2fs", ns / 1e9);
  if (ns >= 1e6) return Fmt("%.2fms", ns / 1e6);
  if (ns >= 1e3) return Fmt("%.1fus", ns / 1e3);
  return Fmt("%.0fns", ns);
}

void AppendJsonEscaped(std::string_view text, std::string* out) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      *out += c;
    }
  }
}

std::string JsonNumber(double v) {
  // JSON has no literal for NaN/Inf; "%.6g" would happily print one and
  // corrupt the document, so non-finite values render as null.
  if (!std::isfinite(v)) return "null";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

ObsSnapshot CaptureObsSnapshot() {
  ObsSnapshot snap;
  snap.metrics = MetricsRegistry::Global().Snapshot();
  snap.spans = Tracer::Global().StatsByName();
  snap.spans_dropped = Tracer::Global().dropped();
  snap.tracing_enabled = Tracer::Global().enabled();
  return snap;
}

size_t SubsystemCount(const ObsSnapshot& snapshot) {
  std::set<std::string, std::less<>> subsystems;
  for (const auto& c : snapshot.metrics.counters) {
    subsystems.insert(std::string(SubsystemOf(c.name)));
  }
  for (const auto& g : snapshot.metrics.gauges) {
    subsystems.insert(std::string(SubsystemOf(g.name)));
  }
  for (const auto& h : snapshot.metrics.histograms) {
    subsystems.insert(std::string(SubsystemOf(h.name)));
  }
  for (const auto& s : snapshot.spans) {
    subsystems.insert(std::string(SubsystemOf(s.name)));
  }
  return subsystems.size();
}

std::string RenderStatuszText(const ObsSnapshot& snapshot) {
  // Group every metric line under its subsystem, keeping each kind's
  // relative order (registry snapshots are name-sorted already).
  std::map<std::string, std::vector<std::string>, std::less<>> sections;
  char buf[256];
  for (const auto& c : snapshot.metrics.counters) {
    std::snprintf(buf, sizeof(buf), "  %-44s %20llu", c.name.c_str(),
                  static_cast<unsigned long long>(c.value));
    sections[std::string(SubsystemOf(c.name))].push_back(buf);
  }
  for (const auto& g : snapshot.metrics.gauges) {
    std::snprintf(buf, sizeof(buf), "  %-44s %20.6g", g.name.c_str(),
                  g.value);
    sections[std::string(SubsystemOf(g.name))].push_back(buf);
  }
  for (const auto& h : snapshot.metrics.histograms) {
    std::string line;
    if (IsNanosMetric(h.name)) {
      std::snprintf(buf, sizeof(buf),
                    "  %-44s n=%llu p50=%s p95=%s p99=%s max=%s",
                    h.name.c_str(), static_cast<unsigned long long>(h.count),
                    HumanNs(h.p50).c_str(), HumanNs(h.p95).c_str(),
                    HumanNs(h.p99).c_str(),
                    HumanNs(static_cast<double>(h.max)).c_str());
    } else {
      std::snprintf(buf, sizeof(buf),
                    "  %-44s n=%llu p50=%.4g p95=%.4g p99=%.4g max=%llu",
                    h.name.c_str(), static_cast<unsigned long long>(h.count),
                    h.p50, h.p95, h.p99,
                    static_cast<unsigned long long>(h.max));
    }
    sections[std::string(SubsystemOf(h.name))].push_back(buf);
  }

  std::string out;
  std::snprintf(buf, sizeof(buf),
                "=== statusz: %zu subsystems, %zu metrics, %zu span names "
                "(tracing %s) ===\n",
                SubsystemCount(snapshot),
                snapshot.metrics.counters.size() +
                    snapshot.metrics.gauges.size() +
                    snapshot.metrics.histograms.size(),
                snapshot.spans.size(),
                snapshot.tracing_enabled ? "on" : "off");
  out += buf;
  for (const auto& [subsystem, lines] : sections) {
    out += "[" + subsystem + "]\n";
    for (const std::string& line : lines) {
      out += line;
      out += '\n';
    }
  }
  if (!snapshot.spans.empty()) {
    out += "[spans]  (wall time by stage)\n";
    for (const SpanStat& s : snapshot.spans) {
      std::snprintf(buf, sizeof(buf), "  %-44s n=%-8llu total=%-10s max=%s\n",
                    s.name.c_str(), static_cast<unsigned long long>(s.count),
                    HumanNs(static_cast<double>(s.total_ns)).c_str(),
                    HumanNs(static_cast<double>(s.max_ns)).c_str());
      out += buf;
    }
    if (snapshot.spans_dropped > 0) {
      std::snprintf(buf, sizeof(buf), "  (%llu spans dropped at buffer cap)\n",
                    static_cast<unsigned long long>(snapshot.spans_dropped));
      out += buf;
    }
  }
  return out;
}

std::string RenderStatuszJson(const ObsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& c : snapshot.metrics.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(c.name, &out);
    out += "\":" + std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& g : snapshot.metrics.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(g.name, &out);
    out += "\":" + JsonNumber(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : snapshot.metrics.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(h.name, &out);
    out += "\":{\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + std::to_string(h.sum);
    out += ",\"min\":" + std::to_string(h.min);
    out += ",\"max\":" + std::to_string(h.max);
    out += ",\"p50\":" + JsonNumber(h.p50);
    out += ",\"p90\":" + JsonNumber(h.p90);
    out += ",\"p95\":" + JsonNumber(h.p95);
    out += ",\"p99\":" + JsonNumber(h.p99);
    out += '}';
  }
  out += "},\"spans\":{";
  first = true;
  for (const auto& s : snapshot.spans) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(s.name, &out);
    out += "\":{\"count\":" + std::to_string(s.count);
    out += ",\"total_ns\":" + std::to_string(s.total_ns);
    out += ",\"max_ns\":" + std::to_string(s.max_ns);
    out += '}';
  }
  out += "},\"spans_dropped\":" + std::to_string(snapshot.spans_dropped);
  out += '}';
  return out;
}

}  // namespace cdibot::obs
