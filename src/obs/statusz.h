#ifndef CDIBOT_OBS_STATUSZ_H_
#define CDIBOT_OBS_STATUSZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cdibot::obs {

/// Structured statusz view: every registered metric plus the tracer's
/// per-span aggregates, captured at one instant. This is the introspection
/// surface a /statusz handler would serve; here it is rendered to text for
/// terminals and JSON for machines.
struct ObsSnapshot {
  MetricsSnapshot metrics;
  std::vector<SpanStat> spans;
  uint64_t spans_dropped = 0;
  bool tracing_enabled = false;
};

/// Captures the global registry and tracer.
ObsSnapshot CaptureObsSnapshot();

/// Distinct subsystems (metric-name prefix before the first '.') with at
/// least one registered metric or recorded span.
size_t SubsystemCount(const ObsSnapshot& snapshot);

/// Human-readable report: metrics grouped by subsystem, histograms with
/// count/p50/p95/p99/max ("_ns" histograms humanized to ms), then the span
/// table sorted by total wall time.
std::string RenderStatuszText(const ObsSnapshot& snapshot);

/// Machine-readable rendering:
///   {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
///    max,p50,p90,p95,p99}},"spans":{name:{count,total_ns,max_ns}},
///    "spans_dropped":N}
std::string RenderStatuszJson(const ObsSnapshot& snapshot);

}  // namespace cdibot::obs

#endif  // CDIBOT_OBS_STATUSZ_H_
