#ifndef CDIBOT_OBS_TRACE_H_
#define CDIBOT_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace cdibot::obs {

/// Monotonic clock in nanoseconds since an arbitrary process-local origin.
uint64_t MonotonicNowNs();

/// Propagated trace identity: the logical operation the calling thread is
/// currently working for. `trace_id` groups spans across threads and
/// processes; `span_id` is the innermost live span (the parent of whatever
/// opens next). A zero trace_id means "no context" — the next span minted
/// becomes a root with a fresh trace id.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

/// One completed span. `name` must be a string with static storage duration
/// (the TRACE_SPAN macro passes a literal), so recording a span never
/// copies or allocates.
struct SpanRecord {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;    ///< tracer-assigned thread ordinal, stable per thread
  uint32_t depth = 0;  ///< nesting depth at span entry (0 = top level)
  uint64_t trace_id = 0;        ///< groups one logical operation fleet-wide
  uint64_t span_id = 0;         ///< this span's own id (nonzero when traced)
  uint64_t parent_span_id = 0;  ///< 0 = root of its trace
  bool instant = false;  ///< zero-duration marker (e.g. a chaos injection)
};

/// Aggregate wall time per span name (the statusz view of the trace).
struct SpanStat {
  std::string name;
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t max_ns = 0;
};

namespace internal_trace {
/// Global on/off switch, read by every TRACE_SPAN before doing anything
/// else. Disabled tracing costs exactly one relaxed load and a branch.
extern std::atomic<bool> g_trace_enabled;

/// The calling thread's current trace context. Plain thread-local (no
/// atomics): only the owning thread reads or writes it. Function-local so
/// the definition is visible at every use and constant initialization
/// applies — an `extern thread_local` would force GCC's cross-TU TLS init
/// wrapper, which UBSan's null-check instrumentation misfires on (PR64888).
inline TraceContext& TraceContextSlot() {
  thread_local TraceContext slot;
  return slot;
}

struct ThreadBuffer;
ThreadBuffer* CurrentThreadBuffer();
void RecordSpan(ThreadBuffer* buffer, const char* name, uint64_t start_ns,
                uint64_t end_ns, uint32_t depth, uint64_t trace_id,
                uint64_t span_id, uint64_t parent_span_id,
                bool instant = false);
uint32_t EnterSpan(ThreadBuffer* buffer);
uint64_t NextSpanId();
}  // namespace internal_trace

/// The calling thread's current trace context — zeros outside any span
/// (and on threads that never traced). Cheap enough for RPC encode paths:
/// two thread-local loads, no atomics, works whether or not tracing is on.
inline TraceContext CurrentTraceContext() {
  return internal_trace::TraceContextSlot();
}

/// Mints a fresh nonzero trace id: process-salted so ids minted by
/// different fleet processes are disjoint with high probability.
uint64_t NewTraceId();

/// RAII adoption of a foreign trace context — the worker side of an RPC
/// installing the coordinator's ids, or a pool thread running a scattered
/// sub-task under the scatter site's span. Spans opened while it is live
/// become children of `ctx`; the previous context is restored on exit.
/// Unconditional (two thread-local stores), so adopting a zero context is
/// also how an RPC handler *isolates* itself from whatever the serving
/// thread last carried.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx)
      : saved_(internal_trace::TraceContextSlot()) {
    internal_trace::TraceContextSlot() = ctx;
  }
  ~ScopedTraceContext() { internal_trace::TraceContextSlot() = saved_; }

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// Records a zero-duration instant event (e.g. a chaos fault injection) at
/// the current time, tagged with the current trace context. Near-free when
/// tracing is disabled: one relaxed load and a branch.
void RecordInstant(const char* name);

/// Process-wide span collector. Each thread appends completed spans to its
/// own fixed-capacity buffer (spans past the cap are counted as dropped,
/// never reallocated mid-run), so recording only ever takes an uncontended
/// per-thread lock. Export walks all thread buffers.
class Tracer {
 public:
  static Tracer& Global();

  /// Enables span recording (off by default; see TRACE_SPAN).
  void Enable() {
    internal_trace::g_trace_enabled.store(true, std::memory_order_relaxed);
  }
  void Disable() {
    internal_trace::g_trace_enabled.store(false, std::memory_order_relaxed);
  }
  bool enabled() const {
    return internal_trace::g_trace_enabled.load(std::memory_order_relaxed);
  }

  /// Spans a thread buffer may hold before further spans are dropped
  /// (counted; see dropped()). Bounds tracer memory on unbounded runs.
  static constexpr size_t kMaxSpansPerThread = 1 << 16;

  /// Copies out every recorded span, across all threads, in per-thread
  /// recording order.
  std::vector<SpanRecord> CollectSpans() const;

  /// Moves out every recorded span and resets the dropped count — the
  /// "spans since last pull" a fleet obs snapshot ships. Each thread
  /// buffer is cut atomically; spans recorded during the drain land in
  /// the next one. When `dropped` is non-null it receives the number of
  /// spans lost to the buffer cap since the previous drain.
  std::vector<SpanRecord> DrainSpans(uint64_t* dropped = nullptr);

  /// Spans dropped because a thread buffer was full.
  uint64_t dropped() const;

  /// Discards all recorded spans (buffers stay allocated).
  void Clear();

  /// Wall-time aggregation by span name, sorted by descending total time.
  std::vector<SpanStat> StatsByName() const;

  /// Serializes the recorded spans in Chrome trace-event format ("X"
  /// complete events; ts/dur in microseconds), loadable in Perfetto or
  /// chrome://tracing. Nesting is implied by containment on each tid.
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path`. Returns false (and fills
  /// `error` when non-null) on I/O failure.
  bool WriteChromeTrace(const std::string& path,
                        std::string* error = nullptr) const;

 private:
  friend internal_trace::ThreadBuffer* internal_trace::CurrentThreadBuffer();
  Tracer() = default;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<internal_trace::ThreadBuffer>> buffers_;
};

/// RAII span: records [construction, destruction) into the global tracer
/// when tracing is enabled at construction time. `name` must be a literal
/// (or otherwise outlive the tracer's contents).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (!internal_trace::g_trace_enabled.load(std::memory_order_relaxed)) {
      return;
    }
    buffer_ = internal_trace::CurrentThreadBuffer();
    name_ = name;
    depth_ = internal_trace::EnterSpan(buffer_);
    // Id tagging: adopt the thread's context (or mint a root trace), then
    // make this span the context for anything opened inside it. All of
    // this sits behind the enabled gate, so disabled tracing stays one
    // relaxed load and a branch.
    TraceContext& ctx = internal_trace::TraceContextSlot();
    saved_ctx_ = ctx;
    trace_id_ = ctx.trace_id != 0 ? ctx.trace_id : NewTraceId();
    span_id_ = internal_trace::NextSpanId();
    ctx = TraceContext{trace_id_, span_id_};
    start_ns_ = MonotonicNowNs();
  }

  ~ScopedSpan() {
    if (buffer_ == nullptr) return;
    internal_trace::TraceContextSlot() = saved_ctx_;
    internal_trace::RecordSpan(buffer_, name_, start_ns_, MonotonicNowNs(),
                               depth_, trace_id_, span_id_,
                               saved_ctx_.span_id);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  internal_trace::ThreadBuffer* buffer_ = nullptr;
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  uint32_t depth_ = 0;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  TraceContext saved_ctx_;
};

/// Always-on scoped timer feeding a histogram (nanoseconds). For
/// macro-level operations (snapshot, checkpoint save, per-VM compute)
/// where two clock reads are noise; unlike TRACE_SPAN it does not depend
/// on the tracer being enabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_ns_(MonotonicNowNs()) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Record(MonotonicNowNs() - start_ns_);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  uint64_t start_ns_;
};

#define CDIBOT_TRACE_CONCAT_INNER(a, b) a##b
#define CDIBOT_TRACE_CONCAT(a, b) CDIBOT_TRACE_CONCAT_INNER(a, b)

/// Records the enclosing scope as a span named `name` (a string literal,
/// conventionally "<subsystem>.<stage>"). Near-free when tracing is
/// disabled: one relaxed atomic load and a branch.
#define TRACE_SPAN(name)                                      \
  ::cdibot::obs::ScopedSpan CDIBOT_TRACE_CONCAT(_trace_span_, \
                                                __LINE__)(name)

}  // namespace cdibot::obs

#endif  // CDIBOT_OBS_TRACE_H_
