#ifndef CDIBOT_OBS_TRACE_H_
#define CDIBOT_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace cdibot::obs {

/// Monotonic clock in nanoseconds since an arbitrary process-local origin.
uint64_t MonotonicNowNs();

/// One completed span. `name` must be a string with static storage duration
/// (the TRACE_SPAN macro passes a literal), so recording a span never
/// copies or allocates.
struct SpanRecord {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;    ///< tracer-assigned thread ordinal, stable per thread
  uint32_t depth = 0;  ///< nesting depth at span entry (0 = top level)
};

/// Aggregate wall time per span name (the statusz view of the trace).
struct SpanStat {
  std::string name;
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t max_ns = 0;
};

namespace internal_trace {
/// Global on/off switch, read by every TRACE_SPAN before doing anything
/// else. Disabled tracing costs exactly one relaxed load and a branch.
extern std::atomic<bool> g_trace_enabled;

struct ThreadBuffer;
ThreadBuffer* CurrentThreadBuffer();
void RecordSpan(ThreadBuffer* buffer, const char* name, uint64_t start_ns,
                uint64_t end_ns, uint32_t depth);
uint32_t EnterSpan(ThreadBuffer* buffer);
}  // namespace internal_trace

/// Process-wide span collector. Each thread appends completed spans to its
/// own fixed-capacity buffer (spans past the cap are counted as dropped,
/// never reallocated mid-run), so recording only ever takes an uncontended
/// per-thread lock. Export walks all thread buffers.
class Tracer {
 public:
  static Tracer& Global();

  /// Enables span recording (off by default; see TRACE_SPAN).
  void Enable() {
    internal_trace::g_trace_enabled.store(true, std::memory_order_relaxed);
  }
  void Disable() {
    internal_trace::g_trace_enabled.store(false, std::memory_order_relaxed);
  }
  bool enabled() const {
    return internal_trace::g_trace_enabled.load(std::memory_order_relaxed);
  }

  /// Spans a thread buffer may hold before further spans are dropped
  /// (counted; see dropped()). Bounds tracer memory on unbounded runs.
  static constexpr size_t kMaxSpansPerThread = 1 << 16;

  /// Copies out every recorded span, across all threads, in per-thread
  /// recording order.
  std::vector<SpanRecord> CollectSpans() const;

  /// Spans dropped because a thread buffer was full.
  uint64_t dropped() const;

  /// Discards all recorded spans (buffers stay allocated).
  void Clear();

  /// Wall-time aggregation by span name, sorted by descending total time.
  std::vector<SpanStat> StatsByName() const;

  /// Serializes the recorded spans in Chrome trace-event format ("X"
  /// complete events; ts/dur in microseconds), loadable in Perfetto or
  /// chrome://tracing. Nesting is implied by containment on each tid.
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path`. Returns false (and fills
  /// `error` when non-null) on I/O failure.
  bool WriteChromeTrace(const std::string& path,
                        std::string* error = nullptr) const;

 private:
  friend internal_trace::ThreadBuffer* internal_trace::CurrentThreadBuffer();
  Tracer() = default;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<internal_trace::ThreadBuffer>> buffers_;
};

/// RAII span: records [construction, destruction) into the global tracer
/// when tracing is enabled at construction time. `name` must be a literal
/// (or otherwise outlive the tracer's contents).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (!internal_trace::g_trace_enabled.load(std::memory_order_relaxed)) {
      return;
    }
    buffer_ = internal_trace::CurrentThreadBuffer();
    name_ = name;
    depth_ = internal_trace::EnterSpan(buffer_);
    start_ns_ = MonotonicNowNs();
  }

  ~ScopedSpan() {
    if (buffer_ == nullptr) return;
    internal_trace::RecordSpan(buffer_, name_, start_ns_, MonotonicNowNs(),
                               depth_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  internal_trace::ThreadBuffer* buffer_ = nullptr;
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  uint32_t depth_ = 0;
};

/// Always-on scoped timer feeding a histogram (nanoseconds). For
/// macro-level operations (snapshot, checkpoint save, per-VM compute)
/// where two clock reads are noise; unlike TRACE_SPAN it does not depend
/// on the tracer being enabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_ns_(MonotonicNowNs()) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Record(MonotonicNowNs() - start_ns_);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  uint64_t start_ns_;
};

#define CDIBOT_TRACE_CONCAT_INNER(a, b) a##b
#define CDIBOT_TRACE_CONCAT(a, b) CDIBOT_TRACE_CONCAT_INNER(a, b)

/// Records the enclosing scope as a span named `name` (a string literal,
/// conventionally "<subsystem>.<stage>"). Near-free when tracing is
/// disabled: one relaxed atomic load and a branch.
#define TRACE_SPAN(name)                                      \
  ::cdibot::obs::ScopedSpan CDIBOT_TRACE_CONCAT(_trace_span_, \
                                                __LINE__)(name)

}  // namespace cdibot::obs

#endif  // CDIBOT_OBS_TRACE_H_
