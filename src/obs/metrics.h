#ifndef CDIBOT_OBS_METRICS_H_
#define CDIBOT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cdibot::obs {

/// Metric names follow "<subsystem>.<name>" (e.g. "stream.events_ingested",
/// "storage.checkpoint.save_ns"); everything before the first '.' is the
/// subsystem, which is how the statusz renderer groups a snapshot. Duration
/// histograms use an "_ns" suffix and record nanoseconds.
///
/// Usage pattern: resolve the handle once (registration takes a mutex),
/// then update through the handle on the hot path (lock-free, zero heap):
///
///   static obs::Counter* ingested =
///       obs::MetricsRegistry::Global().GetCounter("stream.events_ingested");
///   ingested->Increment();
///
/// Handles are stable for the life of the process — Reset() zeroes values
/// but never invalidates pointers — so caching them in function-local
/// statics is safe.

/// One cache line per shard so concurrent writers from different threads
/// do not false-share.
struct alignas(64) CounterCell {
  std::atomic<uint64_t> value{0};
};

/// Monotonic counter, sharded across cache-line-padded atomics. Add() is a
/// single relaxed fetch_add on the calling thread's home cell; Value() sums
/// the cells (reads are rare, writes are hot).
class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Add(uint64_t n) {
    cells_[HomeShard()].value.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const CounterCell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  /// Threads are assigned round-robin home shards on first use; a thread
  /// always hits the same cell, so the fetch_add stays core-local.
  static size_t HomeShard();

  void ResetValues() {
    for (CounterCell& cell : cells_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }

  std::string name_;
  CounterCell cells_[kShards];
};

/// Last-write-wins instantaneous value (watermarks, queue depths).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void ResetValues() { value_.store(0.0, std::memory_order_relaxed); }

  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Point-in-time view of one histogram, with interpolated quantiles.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Raw bucket-level view of one histogram: the lossless transfer and merge
/// representation. Buckets are sparse (index, count) pairs in ascending
/// index order; merging fleets bucket-wise here is exact, and quantiles of
/// a merged histogram are re-derived with the same interpolation
/// Histogram::Quantile uses (see QuantileFromBuckets).
struct HistogramBuckets {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  ///< 0 when empty
  uint64_t max = 0;
  std::vector<std::pair<uint32_t, uint64_t>> buckets;
};

/// Fixed-bucket histogram of unsigned integer values (HdrHistogram layout:
/// values below 16 are exact, above that each power-of-two octave splits
/// into 16 geometric sub-buckets, so quantiles carry <= 1/16 relative
/// error). Record() is two relaxed fetch_adds plus a CAS max — no locks,
/// no heap — and is safe from any number of threads.
class Histogram {
 public:
  static constexpr size_t kSubBuckets = 16;  // 4 significant bits
  static constexpr size_t kNumBuckets = 16 + 60 * kSubBuckets;  // v < 2^63

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < value &&
           !max_.compare_exchange_weak(prev, value,
                                       std::memory_order_relaxed)) {
    }
    prev = min_.load(std::memory_order_relaxed);
    while (value < prev &&
           !min_.compare_exchange_weak(prev, value,
                                       std::memory_order_relaxed)) {
    }
  }

  uint64_t Count() const;
  /// Interpolated quantile, q in [0, 1]. 0 when empty.
  double Quantile(double q) const;
  HistogramSnapshot Snapshot() const;
  /// The raw sparse buckets (for wire transfer and bucket-exact merging).
  HistogramBuckets SnapshotBuckets() const;

  const std::string& name() const { return name_; }

  /// Bucket index for a value (exposed for the quantile-correctness test).
  static size_t BucketIndex(uint64_t value);
  /// Inclusive lower bound of bucket `index`.
  static uint64_t BucketLowerBound(size_t index);

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::string name) : name_(std::move(name)) {}
  void ResetValues();

  std::string name_;
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
};

struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

/// Everything the registry knows, captured at one instant (counter reads
/// are individually atomic; the set is not a consistent cut, which is fine
/// for monitoring).
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Process-wide metric registry. Get* registers on first use (mutex, cold
/// path) and returns a stable handle; the same name always yields the same
/// handle. A name may only be one kind — asking for "x" as a counter after
/// it was registered as a gauge returns nullptr (callers treat that as a
/// programming error; the registry never aborts).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Every registered histogram at raw-bucket fidelity, name-sorted.
  std::vector<HistogramBuckets> SnapshotAllBuckets() const;

  /// Zeroes every registered metric but keeps registrations (and therefore
  /// every cached handle) intact. For tests and benches that want a clean
  /// slate per scenario.
  void Reset();

  size_t num_metrics() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Interpolated quantile over raw buckets; mirrors Histogram::Quantile
/// exactly, so a single-process histogram and its round-tripped buckets
/// answer the same quantiles.
double QuantileFromBuckets(const HistogramBuckets& h, double q);

/// The quantile view of raw buckets (what Histogram::Snapshot computes).
HistogramSnapshot SnapshotFromBuckets(const HistogramBuckets& h);

/// Bucket-wise accumulate `from` into `into`: counts and sums add exactly,
/// min/max fold. `into->name` is left untouched.
void MergeHistogramBuckets(HistogramBuckets* into,
                           const HistogramBuckets& from);

}  // namespace cdibot::obs

#endif  // CDIBOT_OBS_METRICS_H_
