#include "obs/metrics.h"

#include <algorithm>
#include <bit>

namespace cdibot::obs {

size_t Counter::HomeShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t home =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return home;
}

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  // Position of the most significant bit; >= 4 here.
  const int top = std::bit_width(value) - 1;
  const size_t sub =
      static_cast<size_t>(value >> (top - 4)) & (kSubBuckets - 1);
  const size_t index = static_cast<size_t>(top - 3) * kSubBuckets + sub;
  return std::min(index, kNumBuckets - 1);
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  if (index < kSubBuckets) return index;
  const size_t scale = index / kSubBuckets;  // >= 1
  const size_t sub = index % kSubBuckets;
  return static_cast<uint64_t>(kSubBuckets + sub) << (scale - 1);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t total = Count();
  if (total == 0) return 0.0;
  // Rank of the q-quantile among `total` ordered samples.
  const double rank = q * static_cast<double>(total - 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (rank < static_cast<double>(seen + in_bucket)) {
      // Interpolate linearly through the bucket's value range.
      const double lo = static_cast<double>(BucketLowerBound(i));
      const double hi = (i + 1 < kNumBuckets)
                            ? static_cast<double>(BucketLowerBound(i + 1))
                            : lo;
      const double frac =
          in_bucket == 1
              ? 0.0
              : (rank - static_cast<double>(seen)) /
                    static_cast<double>(in_bucket - 1);
      return lo + (hi - lo) * frac;
    }
    seen += in_bucket;
  }
  return static_cast<double>(max_.load(std::memory_order_relaxed));
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.name = name_;
  snap.count = Count();
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  const uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = (snap.count == 0) ? 0 : min;
  if (snap.count > 0) {
    snap.p50 = Quantile(0.50);
    snap.p90 = Quantile(0.90);
    snap.p95 = Quantile(0.95);
    snap.p99 = Quantile(0.99);
  }
  return snap;
}

HistogramBuckets Histogram::SnapshotBuckets() const {
  HistogramBuckets out;
  out.name = name_;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    out.buckets.emplace_back(static_cast<uint32_t>(i), n);
    out.count += n;
  }
  out.sum = sum_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);
  out.min = out.count == 0 ? 0 : min_.load(std::memory_order_relaxed);
  return out;
}

void Histogram::ResetValues() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (gauges_.count(std::string(name)) > 0 ||
      histograms_.count(std::string(name)) > 0) {
    return nullptr;
  }
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(std::string(name)) > 0 ||
      histograms_.count(std::string(name)) > 0) {
    return nullptr;
  }
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(std::string(name)) > 0 ||
      gauges_.count(std::string(name)) > 0) {
    return nullptr;
  }
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::unique_ptr<Histogram>(
                                             new Histogram(std::string(name))))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.push_back(histogram->Snapshot());
  }
  return snap;
}

std::vector<HistogramBuckets> MetricsRegistry::SnapshotAllBuckets() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramBuckets> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.push_back(histogram->SnapshotBuckets());
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->ResetValues();
  for (auto& [name, gauge] : gauges_) gauge->ResetValues();
  for (auto& [name, histogram] : histograms_) histogram->ResetValues();
}

size_t MetricsRegistry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

double QuantileFromBuckets(const HistogramBuckets& h, double q) {
  q = std::clamp(q, 0.0, 1.0);
  if (h.count == 0) return 0.0;
  const double rank = q * static_cast<double>(h.count - 1);
  uint64_t seen = 0;
  for (const auto& [index, in_bucket] : h.buckets) {
    if (in_bucket == 0) continue;
    if (rank < static_cast<double>(seen + in_bucket)) {
      const double lo =
          static_cast<double>(Histogram::BucketLowerBound(index));
      const double hi =
          (index + 1 < Histogram::kNumBuckets)
              ? static_cast<double>(Histogram::BucketLowerBound(index + 1))
              : lo;
      const double frac =
          in_bucket == 1
              ? 0.0
              : (rank - static_cast<double>(seen)) /
                    static_cast<double>(in_bucket - 1);
      return lo + (hi - lo) * frac;
    }
    seen += in_bucket;
  }
  return static_cast<double>(h.max);
}

HistogramSnapshot SnapshotFromBuckets(const HistogramBuckets& h) {
  HistogramSnapshot snap;
  snap.name = h.name;
  snap.count = h.count;
  snap.sum = h.sum;
  snap.min = h.min;
  snap.max = h.max;
  if (h.count > 0) {
    snap.p50 = QuantileFromBuckets(h, 0.50);
    snap.p90 = QuantileFromBuckets(h, 0.90);
    snap.p95 = QuantileFromBuckets(h, 0.95);
    snap.p99 = QuantileFromBuckets(h, 0.99);
  }
  return snap;
}

void MergeHistogramBuckets(HistogramBuckets* into,
                           const HistogramBuckets& from) {
  if (from.count == 0) return;
  if (into->count == 0) {
    into->min = from.min;
    into->max = from.max;
  } else {
    into->min = std::min(into->min, from.min);
    into->max = std::max(into->max, from.max);
  }
  into->count += from.count;
  into->sum += from.sum;
  std::vector<std::pair<uint32_t, uint64_t>> merged;
  merged.reserve(into->buckets.size() + from.buckets.size());
  size_t i = 0;
  size_t j = 0;
  while (i < into->buckets.size() || j < from.buckets.size()) {
    if (j >= from.buckets.size() ||
        (i < into->buckets.size() &&
         into->buckets[i].first < from.buckets[j].first)) {
      merged.push_back(into->buckets[i++]);
    } else if (i >= into->buckets.size() ||
               from.buckets[j].first < into->buckets[i].first) {
      merged.push_back(from.buckets[j++]);
    } else {
      merged.emplace_back(into->buckets[i].first,
                          into->buckets[i].second + from.buckets[j].second);
      ++i;
      ++j;
    }
  }
  into->buckets = std::move(merged);
}

}  // namespace cdibot::obs
