#ifndef CDIBOT_OBS_FLEET_H_
#define CDIBOT_OBS_FLEET_H_

// Fleet-wide observability: merging per-process obs snapshots — the
// coordinator's own plus one pulled from each shard worker over the wire —
// into a single operator surface: a fleet statusz (per-process and
// fleet-aggregated views) and one merged Chrome trace with a named track
// per process.
//
// Layering: obs stays a leaf. This file owns the *data model* and the
// merge/render/export logic; the shard layer owns pulling WorkerObsSnapshot
// frames over its session protocol and measuring each worker's clock
// offset (see ShardCoordinator::PullWorkerObs).
//
// Merge semantics:
//   counters    sum exactly across processes (they are monotonic event
//               counts, so the fleet value is the fleet event count);
//   histograms  merge bucket-wise at raw-bucket fidelity (exact counts and
//               sums; quantiles re-derived from the merged buckets carry
//               the same <= 1/16 relative error as a single process);
//   gauges      are point-in-time per-process facts — summing "queue depth"
//               across processes answers a different question than any
//               process asked — so the fleet view keeps one row per
//               (process, gauge);
//   span stats  merge by name (count/total add, max folds).

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/statusz.h"
#include "obs/trace.h"

namespace cdibot::obs {

/// One span shipped across a process boundary: same shape as SpanRecord
/// but owning its name (string literals do not survive the wire).
struct PortableSpan {
  std::string name;
  uint64_t start_ns = 0;  ///< origin process's monotonic clock
  uint64_t dur_ns = 0;
  uint32_t tid = 0;
  uint32_t depth = 0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  bool instant = false;
};

/// Everything one process reports when its obs state is pulled: metric
/// values (histograms at raw-bucket fidelity so fleet merges stay exact),
/// span aggregates, the raw spans drained since the previous pull, and the
/// process's monotonic clock at capture time (the clock-alignment anchor).
struct WorkerObsSnapshot {
  uint64_t now_ns = 0;
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramBuckets> histograms;
  std::vector<SpanStat> span_stats;  ///< aggregates of the spans below
  std::vector<PortableSpan> spans;
  uint64_t spans_dropped = 0;
  bool tracing_enabled = false;
};

/// Captures the calling process's registry + tracer as a WorkerObsSnapshot.
/// `drain_spans` moves the raw spans out of the tracer so the next capture
/// ships only newer ones; false copies and leaves them in place.
WorkerObsSnapshot CaptureWorkerObs(bool drain_spans);

/// A WorkerObsSnapshot tagged with who it came from and how that process's
/// monotonic clock maps onto the merging process's: adding clock_offset_ns
/// to one of its timestamps yields the merger's MonotonicNowNs domain.
struct ProcessObs {
  std::string process;
  WorkerObsSnapshot snap;
  int64_t clock_offset_ns = 0;
};

/// One (process, gauge) row of the fleet view.
struct FleetGaugeRow {
  std::string process;
  std::string name;
  double value = 0.0;
};

/// Per-process and fleet-aggregated obs views (merge semantics above).
struct FleetObsSnapshot {
  std::vector<ProcessObs> processes;  ///< index 0 = the merging process
  std::vector<CounterSnapshot> counters;        ///< summed across processes
  std::vector<FleetGaugeRow> gauges;            ///< per-process rows
  std::vector<HistogramBuckets> histograms;     ///< bucket-exact merge
  std::vector<HistogramSnapshot> histogram_view;  ///< quantiles of the merge
  std::vector<SpanStat> spans;  ///< merged by name, total-time descending
  uint64_t spans_dropped = 0;
};

/// Merges already-captured per-process snapshots; the first entry is
/// treated as the merging process (its clock_offset_ns should be 0).
FleetObsSnapshot MergeFleetObs(std::vector<ProcessObs> processes);

/// Captures the local process (named `local_process`, offset 0 by
/// definition) and merges it with the given worker snapshots.
FleetObsSnapshot CaptureFleetObsSnapshot(
    std::vector<ProcessObs> workers,
    const std::string& local_process = "coordinator",
    bool drain_spans = false);

/// Human-readable fleet report: the fleet-aggregated section first, then
/// per-process gauge rows and per-process summaries.
std::string RenderFleetStatuszText(const FleetObsSnapshot& snapshot);

/// Machine-readable rendering:
///   {"processes":[...],
///    "counters":{name:{"fleet":N,"by_process":{proc:N}}},
///    "gauges":{name:{"by_process":{proc:V}}},
///    "histograms":{name:{count,sum,min,max,p50,p90,p95,p99,
///                        "by_process":{proc:count}}},
///    "spans":{name:{count,total_ns,max_ns}},
///    "spans_dropped":N}
std::string RenderFleetStatuszJson(const FleetObsSnapshot& snapshot);

/// The merged Chrome trace-event document: one named track per process
/// ("process_name" metadata + distinct pids), every span's timestamps
/// shifted by its process's clock_offset_ns into the merging process's
/// clock so cross-process spans nest, trace/span ids as event args, and
/// instant events (chaos injections) as "i" phase. Perfetto- and
/// chrome://tracing-loadable.
std::string MergedChromeTraceJson(const FleetObsSnapshot& snapshot);

/// Writes MergedChromeTraceJson to `path`. Returns false (and fills
/// `error` when non-null) on I/O failure.
bool WriteMergedChromeTrace(const FleetObsSnapshot& snapshot,
                            const std::string& path,
                            std::string* error = nullptr);

}  // namespace cdibot::obs

#endif  // CDIBOT_OBS_FLEET_H_
