#include "obs/fleet.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string_view>
#include <utility>

namespace cdibot::obs {
namespace {

std::string Fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

bool IsNanosMetric(std::string_view name) { return name.ends_with("_ns"); }

std::string HumanNs(double ns) {
  if (ns >= 1e9) return Fmt("%.2fs", ns / 1e9);
  if (ns >= 1e6) return Fmt("%.2fms", ns / 1e6);
  if (ns >= 1e3) return Fmt("%.1fus", ns / 1e3);
  return Fmt("%.0fns", ns);
}

void AppendJsonEscaped(std::string_view text, std::string* out) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      *out += c;
    }
  }
}

std::string JsonNumber(double v) {
  // JSON has no literal for NaN/Inf (see statusz.cc): render null instead.
  if (!std::isfinite(v)) return "null";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Ids render as fixed-width hex strings: u64 does not survive a JS
/// number, and hex is what Perfetto shows for flow ids anyway.
std::string HexId(uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

std::vector<SpanStat> StatsOf(const std::vector<PortableSpan>& spans) {
  std::map<std::string_view, SpanStat> by_name;
  for (const PortableSpan& span : spans) {
    SpanStat& stat = by_name[span.name];
    if (stat.count == 0) stat.name = span.name;
    ++stat.count;
    stat.total_ns += span.dur_ns;
    stat.max_ns = std::max(stat.max_ns, span.dur_ns);
  }
  std::vector<SpanStat> stats;
  stats.reserve(by_name.size());
  for (auto& [name, stat] : by_name) stats.push_back(std::move(stat));
  std::sort(stats.begin(), stats.end(),
            [](const SpanStat& a, const SpanStat& b) {
              return a.total_ns > b.total_ns;
            });
  return stats;
}

}  // namespace

WorkerObsSnapshot CaptureWorkerObs(bool drain_spans) {
  WorkerObsSnapshot out;
  const MetricsSnapshot metrics = MetricsRegistry::Global().Snapshot();
  out.counters = metrics.counters;
  out.gauges = metrics.gauges;
  out.histograms = MetricsRegistry::Global().SnapshotAllBuckets();
  Tracer& tracer = Tracer::Global();
  std::vector<SpanRecord> raw;
  if (drain_spans) {
    raw = tracer.DrainSpans(&out.spans_dropped);
  } else {
    raw = tracer.CollectSpans();
    out.spans_dropped = tracer.dropped();
  }
  out.spans.reserve(raw.size());
  for (const SpanRecord& span : raw) {
    PortableSpan p;
    p.name = span.name;
    p.start_ns = span.start_ns;
    p.dur_ns = span.dur_ns;
    p.tid = span.tid;
    p.depth = span.depth;
    p.trace_id = span.trace_id;
    p.span_id = span.span_id;
    p.parent_span_id = span.parent_span_id;
    p.instant = span.instant;
    out.spans.push_back(std::move(p));
  }
  out.span_stats = StatsOf(out.spans);
  out.tracing_enabled = tracer.enabled();
  // Stamped last so the anchor is as close as possible to "when this
  // snapshot left the process" (the response is encoded right after).
  out.now_ns = MonotonicNowNs();
  return out;
}

FleetObsSnapshot MergeFleetObs(std::vector<ProcessObs> processes) {
  FleetObsSnapshot fleet;
  fleet.processes = std::move(processes);

  std::map<std::string, uint64_t> counters;
  std::map<std::string, HistogramBuckets> histograms;
  std::map<std::string, SpanStat> spans;
  for (const ProcessObs& p : fleet.processes) {
    for (const CounterSnapshot& c : p.snap.counters) {
      counters[c.name] += c.value;
    }
    for (const GaugeSnapshot& g : p.snap.gauges) {
      fleet.gauges.push_back({p.process, g.name, g.value});
    }
    for (const HistogramBuckets& h : p.snap.histograms) {
      HistogramBuckets& into = histograms[h.name];
      if (into.name.empty()) into.name = h.name;
      MergeHistogramBuckets(&into, h);
    }
    for (const SpanStat& s : p.snap.span_stats) {
      SpanStat& stat = spans[s.name];
      if (stat.count == 0) stat.name = s.name;
      stat.count += s.count;
      stat.total_ns += s.total_ns;
      stat.max_ns = std::max(stat.max_ns, s.max_ns);
    }
    fleet.spans_dropped += p.snap.spans_dropped;
  }

  fleet.counters.reserve(counters.size());
  for (const auto& [name, value] : counters) {
    fleet.counters.push_back({name, value});
  }
  fleet.histograms.reserve(histograms.size());
  fleet.histogram_view.reserve(histograms.size());
  for (auto& [name, buckets] : histograms) {
    fleet.histogram_view.push_back(SnapshotFromBuckets(buckets));
    fleet.histograms.push_back(std::move(buckets));
  }
  fleet.spans.reserve(spans.size());
  for (auto& [name, stat] : spans) fleet.spans.push_back(std::move(stat));
  std::sort(fleet.spans.begin(), fleet.spans.end(),
            [](const SpanStat& a, const SpanStat& b) {
              return a.total_ns > b.total_ns;
            });
  return fleet;
}

FleetObsSnapshot CaptureFleetObsSnapshot(std::vector<ProcessObs> workers,
                                         const std::string& local_process,
                                         bool drain_spans) {
  std::vector<ProcessObs> all;
  all.reserve(workers.size() + 1);
  ProcessObs local;
  local.process = local_process;
  local.snap = CaptureWorkerObs(drain_spans);
  all.push_back(std::move(local));
  for (ProcessObs& w : workers) all.push_back(std::move(w));
  return MergeFleetObs(std::move(all));
}

std::string RenderFleetStatuszText(const FleetObsSnapshot& snapshot) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "=== fleet statusz: %zu processes, %zu counters, "
                "%zu histograms, %zu span names ===\n",
                snapshot.processes.size(), snapshot.counters.size(),
                snapshot.histogram_view.size(), snapshot.spans.size());
  out += buf;

  out += "[processes]\n";
  for (const ProcessObs& p : snapshot.processes) {
    std::snprintf(buf, sizeof(buf),
                  "  %-20s metrics=%-4zu spans=%-6zu dropped=%-4llu "
                  "clock_offset=%+lldns tracing=%s\n",
                  p.process.c_str(),
                  p.snap.counters.size() + p.snap.gauges.size() +
                      p.snap.histograms.size(),
                  p.snap.spans.size(),
                  static_cast<unsigned long long>(p.snap.spans_dropped),
                  static_cast<long long>(p.clock_offset_ns),
                  p.snap.tracing_enabled ? "on" : "off");
    out += buf;
  }

  if (!snapshot.counters.empty()) {
    out += "[fleet counters]  (summed across processes)\n";
    for (const CounterSnapshot& c : snapshot.counters) {
      std::snprintf(buf, sizeof(buf), "  %-44s %20llu\n", c.name.c_str(),
                    static_cast<unsigned long long>(c.value));
      out += buf;
    }
  }
  if (!snapshot.histogram_view.empty()) {
    out += "[fleet histograms]  (bucket-wise merge)\n";
    for (const HistogramSnapshot& h : snapshot.histogram_view) {
      if (IsNanosMetric(h.name)) {
        std::snprintf(buf, sizeof(buf),
                      "  %-44s n=%llu p50=%s p95=%s p99=%s max=%s\n",
                      h.name.c_str(),
                      static_cast<unsigned long long>(h.count),
                      HumanNs(h.p50).c_str(), HumanNs(h.p95).c_str(),
                      HumanNs(h.p99).c_str(),
                      HumanNs(static_cast<double>(h.max)).c_str());
      } else {
        std::snprintf(buf, sizeof(buf),
                      "  %-44s n=%llu p50=%.4g p95=%.4g p99=%.4g max=%llu\n",
                      h.name.c_str(),
                      static_cast<unsigned long long>(h.count), h.p50, h.p95,
                      h.p99, static_cast<unsigned long long>(h.max));
      }
      out += buf;
    }
  }
  if (!snapshot.gauges.empty()) {
    out += "[gauges]  (point-in-time, one row per process)\n";
    for (const FleetGaugeRow& g : snapshot.gauges) {
      std::snprintf(buf, sizeof(buf), "  %-20s %-38s %12.6g\n",
                    g.process.c_str(), g.name.c_str(), g.value);
      out += buf;
    }
  }
  if (!snapshot.spans.empty()) {
    out += "[spans]  (fleet wall time by stage)\n";
    for (const SpanStat& s : snapshot.spans) {
      std::snprintf(buf, sizeof(buf),
                    "  %-44s n=%-8llu total=%-10s max=%s\n", s.name.c_str(),
                    static_cast<unsigned long long>(s.count),
                    HumanNs(static_cast<double>(s.total_ns)).c_str(),
                    HumanNs(static_cast<double>(s.max_ns)).c_str());
      out += buf;
    }
    if (snapshot.spans_dropped > 0) {
      std::snprintf(buf, sizeof(buf),
                    "  (%llu spans dropped at buffer caps)\n",
                    static_cast<unsigned long long>(snapshot.spans_dropped));
      out += buf;
    }
  }
  return out;
}

std::string RenderFleetStatuszJson(const FleetObsSnapshot& snapshot) {
  std::string out = "{\"processes\":[";
  bool first = true;
  for (const ProcessObs& p : snapshot.processes) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(p.process, &out);
    out += '"';
  }

  out += "],\"counters\":{";
  first = true;
  for (const CounterSnapshot& c : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(c.name, &out);
    out += "\":{\"fleet\":" + std::to_string(c.value) + ",\"by_process\":{";
    bool first_proc = true;
    for (const ProcessObs& p : snapshot.processes) {
      for (const CounterSnapshot& pc : p.snap.counters) {
        if (pc.name != c.name) continue;
        if (!first_proc) out += ',';
        first_proc = false;
        out += '"';
        AppendJsonEscaped(p.process, &out);
        out += "\":" + std::to_string(pc.value);
      }
    }
    out += "}}";
  }

  out += "},\"gauges\":{";
  // Group the per-process rows by gauge name (rows arrive process-major).
  std::map<std::string, std::vector<const FleetGaugeRow*>> gauges;
  for (const FleetGaugeRow& g : snapshot.gauges) {
    gauges[g.name].push_back(&g);
  }
  first = true;
  for (const auto& [name, rows] : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(name, &out);
    out += "\":{\"by_process\":{";
    bool first_proc = true;
    for (const FleetGaugeRow* row : rows) {
      if (!first_proc) out += ',';
      first_proc = false;
      out += '"';
      AppendJsonEscaped(row->process, &out);
      out += "\":" + JsonNumber(row->value);
    }
    out += "}}";
  }

  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& h : snapshot.histogram_view) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(h.name, &out);
    out += "\":{\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + std::to_string(h.sum);
    out += ",\"min\":" + std::to_string(h.min);
    out += ",\"max\":" + std::to_string(h.max);
    out += ",\"p50\":" + JsonNumber(h.p50);
    out += ",\"p90\":" + JsonNumber(h.p90);
    out += ",\"p95\":" + JsonNumber(h.p95);
    out += ",\"p99\":" + JsonNumber(h.p99);
    out += ",\"by_process\":{";
    bool first_proc = true;
    for (const ProcessObs& p : snapshot.processes) {
      for (const HistogramBuckets& ph : p.snap.histograms) {
        if (ph.name != h.name) continue;
        if (!first_proc) out += ',';
        first_proc = false;
        out += '"';
        AppendJsonEscaped(p.process, &out);
        out += "\":" + std::to_string(ph.count);
      }
    }
    out += "}}";
  }

  out += "},\"spans\":{";
  first = true;
  for (const SpanStat& s : snapshot.spans) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(s.name, &out);
    out += "\":{\"count\":" + std::to_string(s.count);
    out += ",\"total_ns\":" + std::to_string(s.total_ns);
    out += ",\"max_ns\":" + std::to_string(s.max_ns);
    out += '}';
  }
  out += "},\"spans_dropped\":" + std::to_string(snapshot.spans_dropped);
  out += '}';
  return out;
}

std::string MergedChromeTraceJson(const FleetObsSnapshot& snapshot) {
  // Shift every span into the merging process's clock, then lay events out
  // on a common origin so Perfetto renders nested cross-process tracks.
  struct Placed {
    const PortableSpan* span;
    uint64_t adj_start_ns;
    size_t process;  // index into snapshot.processes; pid = index + 1
  };
  std::vector<Placed> placed;
  for (size_t pi = 0; pi < snapshot.processes.size(); ++pi) {
    const ProcessObs& p = snapshot.processes[pi];
    for (const PortableSpan& span : p.snap.spans) {
      const int64_t shifted =
          static_cast<int64_t>(span.start_ns) + p.clock_offset_ns;
      placed.push_back(
          {&span, shifted < 0 ? 0 : static_cast<uint64_t>(shifted), pi});
    }
  }
  std::sort(placed.begin(), placed.end(), [](const Placed& a,
                                             const Placed& b) {
    if (a.adj_start_ns != b.adj_start_ns) {
      return a.adj_start_ns < b.adj_start_ns;
    }
    return a.span->dur_ns > b.span->dur_ns;  // parent before child on ties
  });
  uint64_t origin = 0;
  if (!placed.empty()) {
    origin = std::min_element(placed.begin(), placed.end(),
                              [](const Placed& a, const Placed& b) {
                                return a.adj_start_ns < b.adj_start_ns;
                              })
                 ->adj_start_ns;
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[256];
  for (size_t pi = 0; pi < snapshot.processes.size(); ++pi) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(pi + 1) + ",\"tid\":0,\"args\":{\"name\":\"";
    AppendJsonEscaped(snapshot.processes[pi].process, &out);
    out += "\"}}";
  }
  for (const Placed& ev : placed) {
    const PortableSpan& span = *ev.span;
    if (!first) out += ',';
    first = false;
    const double ts =
        static_cast<double>(ev.adj_start_ns - origin) / 1000.0;
    const double dur = static_cast<double>(span.dur_ns) / 1000.0;
    out += "{\"name\":\"";
    AppendJsonEscaped(span.name, &out);
    if (span.instant) {
      std::snprintf(buf, sizeof(buf),
                    "\",\"cat\":\"cdibot\",\"ph\":\"i\",\"s\":\"t\","
                    "\"ts\":%.3f,\"pid\":%zu,\"tid\":%u",
                    ts, ev.process + 1, span.tid);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "\",\"cat\":\"cdibot\",\"ph\":\"X\",\"ts\":%.3f,"
                    "\"dur\":%.3f,\"pid\":%zu,\"tid\":%u",
                    ts, dur, ev.process + 1, span.tid);
    }
    out += buf;
    out += ",\"args\":{\"trace_id\":\"" + HexId(span.trace_id) +
           "\",\"span_id\":\"" + HexId(span.span_id) +
           "\",\"parent_span_id\":\"" + HexId(span.parent_span_id) + "\"}}";
  }
  out += "]}";
  return out;
}

bool WriteMergedChromeTrace(const FleetObsSnapshot& snapshot,
                            const std::string& path, std::string* error) {
  const std::string json = MergedChromeTraceJson(snapshot);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != json.size() || !closed) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

}  // namespace cdibot::obs
