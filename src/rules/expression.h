#ifndef CDIBOT_RULES_EXPRESSION_H_
#define CDIBOT_RULES_EXPRESSION_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/statusor.h"

namespace cdibot {

/// A readable boolean expression over event names (Sec. II-D: "an operation
/// rule contains a readable boolean expression"). Grammar:
///
///   expr    := or
///   or      := and ( ("||" | "or") and )*
///   and     := unary ( ("&&" | "and") unary )*
///   unary   := "!" unary | "not" unary | primary
///   primary := identifier | "(" expr ")"
///
/// Identifiers are event names ([A-Za-z_][A-Za-z0-9_]*). An expression
/// evaluates against the set of event names currently active on a target.
/// Example 1's rule: "slow_io && nic_flapping".
class Expression {
 public:
  /// Parses `text`; InvalidArgument with a position hint on syntax errors.
  static StatusOr<Expression> Parse(const std::string& text);

  Expression(Expression&&) noexcept;
  Expression& operator=(Expression&&) noexcept;
  Expression(const Expression& other);
  Expression& operator=(const Expression& other);
  ~Expression();

  /// Evaluates against the set of active event names.
  bool Eval(const std::set<std::string>& active_events) const;

  /// Every event name the expression mentions (sorted, unique).
  std::vector<std::string> ReferencedEvents() const;

  /// Canonical rendering of the parsed expression.
  std::string ToString() const;

  /// Parse-tree node. Public for the implementation's free functions; not
  /// part of the supported API surface.
  struct Node;

 private:
  explicit Expression(std::unique_ptr<Node> root);
  std::unique_ptr<Node> root_;
};

}  // namespace cdibot

#endif  // CDIBOT_RULES_EXPRESSION_H_
