#include "rules/expression.h"

#include <cctype>

#include "common/strings.h"

namespace cdibot {

struct Expression::Node {
  enum class Kind { kEvent, kAnd, kOr, kNot } kind = Kind::kEvent;
  std::string event;              // kEvent
  std::unique_ptr<Node> lhs;      // kAnd/kOr/kNot
  std::unique_ptr<Node> rhs;      // kAnd/kOr

  std::unique_ptr<Node> Clone() const {
    auto n = std::make_unique<Node>();
    n->kind = kind;
    n->event = event;
    if (lhs) n->lhs = lhs->Clone();
    if (rhs) n->rhs = rhs->Clone();
    return n;
  }
};

namespace {

struct Token {
  enum class Kind { kIdent, kAnd, kOr, kNot, kLParen, kRParen, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < text_.size()) {
      const char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '(') {
        out.push_back({Token::Kind::kLParen, "(", i});
        ++i;
      } else if (c == ')') {
        out.push_back({Token::Kind::kRParen, ")", i});
        ++i;
      } else if (c == '!') {
        out.push_back({Token::Kind::kNot, "!", i});
        ++i;
      } else if (c == '&') {
        if (i + 1 >= text_.size() || text_[i + 1] != '&') {
          return Status::InvalidArgument(
              StrFormat("expected '&&' at position %zu", i));
        }
        out.push_back({Token::Kind::kAnd, "&&", i});
        i += 2;
      } else if (c == '|') {
        if (i + 1 >= text_.size() || text_[i + 1] != '|') {
          return Status::InvalidArgument(
              StrFormat("expected '||' at position %zu", i));
        }
        out.push_back({Token::Kind::kOr, "||", i});
        i += 2;
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[j])) ||
                text_[j] == '_')) {
          ++j;
        }
        const std::string word = text_.substr(i, j - i);
        if (word == "and") {
          out.push_back({Token::Kind::kAnd, word, i});
        } else if (word == "or") {
          out.push_back({Token::Kind::kOr, word, i});
        } else if (word == "not") {
          out.push_back({Token::Kind::kNot, word, i});
        } else {
          out.push_back({Token::Kind::kIdent, word, i});
        }
        i = j;
      } else {
        return Status::InvalidArgument(
            StrFormat("unexpected character '%c' at position %zu", c, i));
      }
    }
    out.push_back({Token::Kind::kEnd, "", text_.size()});
    return out;
  }

 private:
  const std::string& text_;
};

}  // namespace

namespace {

// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<std::unique_ptr<Expression::Node>> Parse() {
    CDIBOT_ASSIGN_OR_RETURN(auto node, ParseOr());
    if (Peek().kind != Token::Kind::kEnd) {
      return Status::InvalidArgument(
          StrFormat("unexpected token '%s' at position %zu",
                    Peek().text.c_str(), Peek().pos));
    }
    return node;
  }

 private:
  using NodePtr = std::unique_ptr<Expression::Node>;

  const Token& Peek() const { return tokens_[cursor_]; }
  Token Consume() { return tokens_[cursor_++]; }

  StatusOr<NodePtr> ParseOr() {
    CDIBOT_ASSIGN_OR_RETURN(NodePtr lhs, ParseAnd());
    while (Peek().kind == Token::Kind::kOr) {
      Consume();
      CDIBOT_ASSIGN_OR_RETURN(NodePtr rhs, ParseAnd());
      auto node = std::make_unique<Expression::Node>();
      node->kind = Expression::Node::Kind::kOr;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  StatusOr<NodePtr> ParseAnd() {
    CDIBOT_ASSIGN_OR_RETURN(NodePtr lhs, ParseUnary());
    while (Peek().kind == Token::Kind::kAnd) {
      Consume();
      CDIBOT_ASSIGN_OR_RETURN(NodePtr rhs, ParseUnary());
      auto node = std::make_unique<Expression::Node>();
      node->kind = Expression::Node::Kind::kAnd;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  StatusOr<NodePtr> ParseUnary() {
    if (Peek().kind == Token::Kind::kNot) {
      Consume();
      CDIBOT_ASSIGN_OR_RETURN(NodePtr operand, ParseUnary());
      auto node = std::make_unique<Expression::Node>();
      node->kind = Expression::Node::Kind::kNot;
      node->lhs = std::move(operand);
      return node;
    }
    return ParsePrimary();
  }

  StatusOr<NodePtr> ParsePrimary() {
    const Token tok = Consume();
    if (tok.kind == Token::Kind::kIdent) {
      auto node = std::make_unique<Expression::Node>();
      node->kind = Expression::Node::Kind::kEvent;
      node->event = tok.text;
      return node;
    }
    if (tok.kind == Token::Kind::kLParen) {
      CDIBOT_ASSIGN_OR_RETURN(NodePtr inner, ParseOr());
      if (Peek().kind != Token::Kind::kRParen) {
        return Status::InvalidArgument(
            StrFormat("missing ')' at position %zu", Peek().pos));
      }
      Consume();
      return inner;
    }
    return Status::InvalidArgument(
        StrFormat("expected event name or '(' at position %zu", tok.pos));
  }

  std::vector<Token> tokens_;
  size_t cursor_ = 0;
};

bool EvalNode(const Expression::Node& node,
              const std::set<std::string>& active) {
  switch (node.kind) {
    case Expression::Node::Kind::kEvent:
      return active.count(node.event) > 0;
    case Expression::Node::Kind::kAnd:
      return EvalNode(*node.lhs, active) && EvalNode(*node.rhs, active);
    case Expression::Node::Kind::kOr:
      return EvalNode(*node.lhs, active) || EvalNode(*node.rhs, active);
    case Expression::Node::Kind::kNot:
      return !EvalNode(*node.lhs, active);
  }
  return false;
}

void CollectEvents(const Expression::Node& node, std::set<std::string>* out) {
  switch (node.kind) {
    case Expression::Node::Kind::kEvent:
      out->insert(node.event);
      return;
    case Expression::Node::Kind::kNot:
      CollectEvents(*node.lhs, out);
      return;
    default:
      CollectEvents(*node.lhs, out);
      CollectEvents(*node.rhs, out);
      return;
  }
}

std::string RenderNode(const Expression::Node& node) {
  switch (node.kind) {
    case Expression::Node::Kind::kEvent:
      return node.event;
    case Expression::Node::Kind::kAnd:
      return "(" + RenderNode(*node.lhs) + " && " + RenderNode(*node.rhs) +
             ")";
    case Expression::Node::Kind::kOr:
      return "(" + RenderNode(*node.lhs) + " || " + RenderNode(*node.rhs) +
             ")";
    case Expression::Node::Kind::kNot:
      return "!" + RenderNode(*node.lhs);
  }
  return "?";
}

}  // namespace

Expression::Expression(std::unique_ptr<Node> root) : root_(std::move(root)) {}

Expression::Expression(Expression&&) noexcept = default;
Expression& Expression::operator=(Expression&&) noexcept = default;
Expression::~Expression() = default;

Expression::Expression(const Expression& other)
    : root_(other.root_ ? other.root_->Clone() : nullptr) {}

Expression& Expression::operator=(const Expression& other) {
  if (this != &other) {
    root_ = other.root_ ? other.root_->Clone() : nullptr;
  }
  return *this;
}

StatusOr<Expression> Expression::Parse(const std::string& text) {
  Lexer lexer(text);
  CDIBOT_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  CDIBOT_ASSIGN_OR_RETURN(auto root, parser.Parse());
  return Expression(std::move(root));
}

bool Expression::Eval(const std::set<std::string>& active_events) const {
  return root_ != nullptr && EvalNode(*root_, active_events);
}

std::vector<std::string> Expression::ReferencedEvents() const {
  std::set<std::string> events;
  if (root_ != nullptr) CollectEvents(*root_, &events);
  return std::vector<std::string>(events.begin(), events.end());
}

std::string Expression::ToString() const {
  return root_ != nullptr ? RenderNode(*root_) : "";
}

}  // namespace cdibot
