#ifndef CDIBOT_RULES_META_EVENTS_H_
#define CDIBOT_RULES_META_EVENTS_H_

#include <set>
#include <string>

#include "common/statusor.h"
#include "telemetry/topology.h"

namespace cdibot {

/// Meta-information events of Sec. II-F1: the rule engine combines detected
/// events "with meta-information such as product configurations" — e.g.
/// CPU contention on a SHARED VM is consistent with the product definition
/// and needs no action. This helper derives the synthetic meta event names
/// for a VM from the fleet topology so rule expressions can reference them:
///
///   shared_vm / dedicated_vm       — VM resource-isolation type
///   hybrid_host / homogeneous_host — host deployment architecture
///   model_<name>                   — host machine model (e.g. model_gen2)
///
/// Usage: union these names into the active event set before Match():
///
///   auto active = RuleEngine::ActiveEventNames(events, now);
///   auto meta = MetaEventsForVm(topology, vm_id).value();
///   active.insert(meta.begin(), meta.end());
///   engine.Match(active, vm_id, now);
StatusOr<std::set<std::string>> MetaEventsForVm(const FleetTopology& topology,
                                                const std::string& vm_id);

}  // namespace cdibot

#endif  // CDIBOT_RULES_META_EVENTS_H_
