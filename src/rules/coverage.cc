#include "rules/coverage.h"

#include <set>

namespace cdibot {

RuleCoverageReport AnalyzeRuleCoverage(const RuleEngine& engine,
                                       const EventCatalog& catalog) {
  return AnalyzeRuleCoverage(engine, catalog, {});
}

RuleCoverageReport AnalyzeRuleCoverage(
    const RuleEngine& engine, const EventCatalog& catalog,
    const std::vector<RuleMatch>& matches) {
  RuleCoverageReport report;

  // Which events does each rule reference?
  std::set<std::string> referenced;
  for (const OperationRule& rule : engine.rules()) {
    for (const std::string& name : rule.expr.ReferencedEvents()) {
      if (catalog.Contains(name)) {
        referenced.insert(name);
        report.covered_events[name].push_back(rule.name);
      } else {
        report.unknown_references[rule.name].push_back(name);
      }
    }
  }

  // Catalog events never referenced. Stateful detail names resolve to their
  // parent; informational (kInfo) events are intentionally uncovered.
  for (const EventSpec& spec : catalog.specs()) {
    if (spec.default_level == Severity::kInfo) continue;
    if (referenced.count(spec.name) == 0) {
      report.uncovered_events.push_back(spec.name);
    }
  }

  // Observed match history.
  for (const OperationRule& rule : engine.rules()) {
    report.match_counts[rule.name] = 0;
  }
  for (const RuleMatch& match : matches) {
    ++report.match_counts[match.rule_name];
  }
  for (const auto& [rule, count] : report.match_counts) {
    if (count == 0) report.unmatched_rules.push_back(rule);
  }
  return report;
}

}  // namespace cdibot
