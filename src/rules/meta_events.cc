#include "rules/meta_events.h"

namespace cdibot {

StatusOr<std::set<std::string>> MetaEventsForVm(const FleetTopology& topology,
                                                const std::string& vm_id) {
  CDIBOT_ASSIGN_OR_RETURN(const VmInfo vm, topology.FindVm(vm_id));
  CDIBOT_ASSIGN_OR_RETURN(const NcInfo nc, topology.FindNc(vm.nc_id));
  std::set<std::string> meta;
  meta.insert(vm.type == VmType::kShared ? "shared_vm" : "dedicated_vm");
  meta.insert(nc.arch == DeploymentArch::kHybrid ? "hybrid_host"
                                                 : "homogeneous_host");
  meta.insert("model_" + nc.model);
  return meta;
}

}  // namespace cdibot
