#include "rules/mining.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "common/strings.h"

namespace cdibot {
namespace {

// FP-tree node. Children keyed by item; node links thread equal items.
struct FpNode {
  std::string item;
  size_t count = 0;
  FpNode* parent = nullptr;
  std::map<std::string, std::unique_ptr<FpNode>> children;
  FpNode* next_same_item = nullptr;  // header-table chain
};

// Header table entry: total support and chain head.
struct HeaderEntry {
  size_t support = 0;
  FpNode* head = nullptr;
};

class FpTree {
 public:
  // Builds the tree from (itemset, count) pairs; items within each itemset
  // must already be filtered to frequent ones and sorted by the global
  // frequency order.
  FpTree() : root_(std::make_unique<FpNode>()) {}

  void Insert(const std::vector<std::string>& items, size_t count) {
    FpNode* node = root_.get();
    for (const std::string& item : items) {
      auto it = node->children.find(item);
      if (it == node->children.end()) {
        auto child = std::make_unique<FpNode>();
        child->item = item;
        child->parent = node;
        // Thread into the header chain.
        HeaderEntry& entry = header_[item];
        child->next_same_item = entry.head;
        entry.head = child.get();
        it = node->children.emplace(item, std::move(child)).first;
      }
      it->second->count += count;
      header_[item].support += count;
      node = it->second.get();
    }
  }

  const std::map<std::string, HeaderEntry>& header() const { return header_; }

  bool empty() const { return root_->children.empty(); }

 private:
  std::unique_ptr<FpNode> root_;
  std::map<std::string, HeaderEntry> header_;
};

// Recursive FP-Growth: mines `tree`, emitting (suffix + new item) itemsets.
void FpGrowth(const FpTree& tree, const std::vector<std::string>& suffix,
              const MiningOptions& options,
              const std::unordered_map<std::string, size_t>& global_order,
              std::vector<FrequentItemset>* out) {
  if (suffix.size() >= options.max_itemset_size) return;
  for (const auto& [item, entry] : tree.header()) {
    if (entry.support < options.min_support) continue;

    std::vector<std::string> itemset = suffix;
    itemset.push_back(item);
    std::sort(itemset.begin(), itemset.end());
    out->push_back(FrequentItemset{itemset, entry.support});

    // Conditional pattern base: prefix paths of every node of `item`.
    FpTree conditional;
    for (FpNode* node = entry.head; node != nullptr;
         node = node->next_same_item) {
      std::vector<std::string> path;
      for (FpNode* p = node->parent; p != nullptr && !p->item.empty();
           p = p->parent) {
        path.push_back(p->item);
      }
      if (path.empty()) continue;
      // Paths were collected leaf->root; restore global frequency order.
      std::sort(path.begin(), path.end(),
                [&global_order](const std::string& a, const std::string& b) {
                  return global_order.at(a) < global_order.at(b);
                });
      conditional.Insert(path, node->count);
    }
    if (!conditional.empty()) {
      std::vector<std::string> next_suffix = suffix;
      next_suffix.push_back(item);
      FpGrowth(conditional, next_suffix, options, global_order, out);
    }
  }
}

}  // namespace

std::string AssociationRule::ToExpression() const {
  return StrJoin(antecedent, " && ");
}

StatusOr<std::vector<FrequentItemset>> MineFrequentItemsets(
    const std::vector<EventTransaction>& transactions,
    const MiningOptions& options) {
  if (options.min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (options.max_itemset_size < 1) {
    return Status::InvalidArgument("max_itemset_size must be >= 1");
  }

  // Pass 1: item frequencies.
  std::unordered_map<std::string, size_t> freq;
  for (const EventTransaction& txn : transactions) {
    for (const std::string& item : txn) ++freq[item];
  }
  // Global order: descending frequency, ties lexicographic. Items are
  // inserted into FP-tree paths in this order so shared prefixes compress.
  std::vector<std::string> order;
  for (const auto& [item, count] : freq) {
    if (count >= options.min_support) order.push_back(item);
  }
  std::sort(order.begin(), order.end(),
            [&freq](const std::string& a, const std::string& b) {
              if (freq[a] != freq[b]) return freq[a] > freq[b];
              return a < b;
            });
  std::unordered_map<std::string, size_t> rank;
  for (size_t i = 0; i < order.size(); ++i) rank[order[i]] = i;

  // Pass 2: build the tree.
  FpTree tree;
  for (const EventTransaction& txn : transactions) {
    std::vector<std::string> items;
    for (const std::string& item : txn) {
      if (rank.count(item) > 0) items.push_back(item);
    }
    if (items.empty()) continue;
    std::sort(items.begin(), items.end(),
              [&rank](const std::string& a, const std::string& b) {
                return rank[a] < rank[b];
              });
    tree.Insert(items, 1);
  }

  std::vector<FrequentItemset> out;
  FpGrowth(tree, {}, options, rank, &out);
  std::sort(out.begin(), out.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.items < b.items;
            });
  return out;
}

StatusOr<std::vector<AssociationRule>> MineAssociationRules(
    const std::vector<EventTransaction>& transactions,
    const MiningOptions& options) {
  CDIBOT_ASSIGN_OR_RETURN(const std::vector<FrequentItemset> itemsets,
                          MineFrequentItemsets(transactions, options));
  // Support lookup for all frequent itemsets.
  std::map<std::vector<std::string>, size_t> support;
  for (const FrequentItemset& fi : itemsets) support[fi.items] = fi.support;

  const auto n = static_cast<double>(transactions.size());
  if (n == 0) return std::vector<AssociationRule>{};

  std::vector<AssociationRule> rules;
  for (const FrequentItemset& fi : itemsets) {
    if (fi.items.size() < 2) continue;
    // Single-item consequents only: the mined rule maps directly onto an
    // operation-rule expression "antecedent events co-occur".
    for (size_t c = 0; c < fi.items.size(); ++c) {
      std::vector<std::string> antecedent;
      for (size_t i = 0; i < fi.items.size(); ++i) {
        if (i != c) antecedent.push_back(fi.items[i]);
      }
      auto ant_it = support.find(antecedent);
      if (ant_it == support.end()) continue;  // below min_support
      const double confidence = static_cast<double>(fi.support) /
                                static_cast<double>(ant_it->second);
      if (confidence < options.min_confidence) continue;
      auto cons_it = support.find({fi.items[c]});
      if (cons_it == support.end()) continue;
      const double p_consequent =
          static_cast<double>(cons_it->second) / n;
      const double lift = p_consequent > 0 ? confidence / p_consequent : 0.0;
      if (lift < options.min_lift) continue;
      rules.push_back(AssociationRule{.antecedent = antecedent,
                                      .consequent = fi.items[c],
                                      .support = fi.support,
                                      .confidence = confidence,
                                      .lift = lift});
    }
  }
  std::sort(rules.begin(), rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.lift != b.lift) return a.lift > b.lift;
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              return a.antecedent < b.antecedent;
            });
  return rules;
}

std::vector<EventTransaction> TransactionsFromEvents(
    const std::vector<RawEvent>& events, Duration window) {
  // Group by (target, window bucket).
  std::map<std::pair<std::string, int64_t>, EventTransaction> buckets;
  const int64_t w = std::max<int64_t>(1, window.millis());
  for (const RawEvent& ev : events) {
    const int64_t bucket = ev.time.millis() / w;
    buckets[{ev.target, bucket}].insert(ev.name);
  }
  std::vector<EventTransaction> out;
  out.reserve(buckets.size());
  for (auto& [key, txn] : buckets) out.push_back(std::move(txn));
  return out;
}

}  // namespace cdibot
