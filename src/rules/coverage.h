#ifndef CDIBOT_RULES_COVERAGE_H_
#define CDIBOT_RULES_COVERAGE_H_

#include <map>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "event/catalog.h"
#include "rules/rule_engine.h"

namespace cdibot {

/// The rule-review report of Sec. II-F2 ("we regularly review and update
/// the rules to ensure that they cover a wider range of failure conditions
/// and reduce the likelihood of missing operations").
struct RuleCoverageReport {
  /// Catalog events referenced by no rule expression: failure conditions
  /// with no automated response — missing-operation candidates.
  std::vector<std::string> uncovered_events;
  /// Events referenced by rules, with the referencing rule names.
  std::map<std::string, std::vector<std::string>> covered_events;
  /// Rules whose expressions reference at least one name absent from the
  /// catalog (typos or retired events — the rule can never fire on those).
  std::map<std::string, std::vector<std::string>> unknown_references;
  /// Rules that never matched in the observed history ("dead rules" —
  /// either healthy prevention or obsolete logic; both deserve review).
  std::vector<std::string> unmatched_rules;
  /// Match counts per rule over the observed history.
  std::map<std::string, size_t> match_counts;
};

/// Static analysis: which catalog events do the rules cover, and which rule
/// expressions reference unknown names. Informational events (kInfo default
/// severity) are not counted as uncovered — they carry no damage.
RuleCoverageReport AnalyzeRuleCoverage(const RuleEngine& engine,
                                       const EventCatalog& catalog);

/// Extends the static report with observed match history: `matches` is the
/// stream of RuleMatch records collected over the review period.
RuleCoverageReport AnalyzeRuleCoverage(const RuleEngine& engine,
                                       const EventCatalog& catalog,
                                       const std::vector<RuleMatch>& matches);

}  // namespace cdibot

#endif  // CDIBOT_RULES_COVERAGE_H_
