#ifndef CDIBOT_RULES_RULE_ENGINE_H_
#define CDIBOT_RULES_RULE_ENGINE_H_

#include <set>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "common/time.h"
#include "event/event.h"
#include "rules/expression.h"

namespace cdibot {

/// An action reference carried by an operation rule. Action semantics live
/// in the ops library; the rule engine treats them as named requests with a
/// priority (higher runs first).
struct ActionSpec {
  std::string action;
  int priority = 0;
};

/// An operation rule (Sec. II-D): a readable boolean expression over events
/// plus the actions to execute when it matches. Example 1's
/// nic_error_cause_slow_io pairs "slow_io && nic_flapping" with a live
/// migration, a repair ticket, and an NC lock.
struct OperationRule {
  std::string name;
  Expression expr;
  std::vector<ActionSpec> actions;
};

/// A matched rule instance for one target at one instant.
struct RuleMatch {
  std::string rule_name;
  std::string target;
  TimePoint time;
  std::vector<ActionSpec> actions;
};

/// RuleEngine holds the rule set and matches it against the set of events
/// active on a target. Events are active from extraction until their
/// expire_interval elapses (Table II).
class RuleEngine {
 public:
  RuleEngine() = default;

  /// Registers a rule from its expression text. AlreadyExists on duplicate
  /// names; InvalidArgument on expression syntax errors.
  Status Register(const std::string& name, const std::string& expr_text,
                  std::vector<ActionSpec> actions);

  size_t num_rules() const { return rules_.size(); }
  const std::vector<OperationRule>& rules() const { return rules_; }

  /// The names of events active at `at`: extracted at or before `at` and
  /// not yet expired.
  static std::set<std::string> ActiveEventNames(
      const std::vector<RawEvent>& events, TimePoint at);

  /// Evaluates every rule against `active` for `target`; returns matches in
  /// registration order.
  std::vector<RuleMatch> Match(const std::set<std::string>& active,
                               const std::string& target,
                               TimePoint at) const;

  /// Convenience: computes the active set from raw events, then matches.
  std::vector<RuleMatch> MatchEvents(const std::vector<RawEvent>& events,
                                     const std::string& target,
                                     TimePoint at) const;

  /// The built-in rule set from the paper: the two NIC rules of Example 1
  /// and the nc_down_prediction rule of Case 8.
  static StatusOr<RuleEngine> BuiltIn();

 private:
  std::vector<OperationRule> rules_;
  std::set<std::string> names_;
};

}  // namespace cdibot

#endif  // CDIBOT_RULES_RULE_ENGINE_H_
