#ifndef CDIBOT_RULES_MINING_H_
#define CDIBOT_RULES_MINING_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "common/time.h"
#include "event/event.h"

namespace cdibot {

/// A transaction for association mining: the set of event names observed
/// together on one target within one co-occurrence window.
using EventTransaction = std::set<std::string>;

/// A frequent event itemset with its absolute support count.
struct FrequentItemset {
  std::vector<std::string> items;  ///< sorted event names
  size_t support = 0;              ///< transactions containing all items
};

/// An association rule antecedent -> consequent with its quality measures.
/// Mined rules are candidate operation-rule expressions (Sec. II-D: "based
/// on association mining algorithms, we can optimize existing rules and
/// discover new rules").
struct AssociationRule {
  std::vector<std::string> antecedent;  ///< sorted event names
  std::string consequent;               ///< single event name
  size_t support = 0;                   ///< count of (antecedent u consequent)
  double confidence = 0.0;              ///< support / support(antecedent)
  double lift = 0.0;  ///< confidence / P(consequent); > 1 = positive assoc.

  /// Renders the antecedent as a rule-engine expression, e.g.
  /// "nic_flapping && slow_io".
  std::string ToExpression() const;
};

/// Options for mining.
struct MiningOptions {
  /// Minimum absolute support for frequent itemsets.
  size_t min_support = 2;
  /// Minimum confidence for emitted rules.
  double min_confidence = 0.6;
  /// Minimum lift for emitted rules (filters coincidental pairs).
  double min_lift = 1.0;
  /// Maximum itemset size explored (runaway guard).
  size_t max_itemset_size = 5;
};

/// FP-Growth frequent-itemset mining (Borgelt's formulation, ref. [29]).
/// Returns all itemsets of size >= 1 with support >= min_support, sorted by
/// descending support then lexicographic items. Requires min_support >= 1.
StatusOr<std::vector<FrequentItemset>> MineFrequentItemsets(
    const std::vector<EventTransaction>& transactions,
    const MiningOptions& options = {});

/// Derives association rules with a single consequent from the frequent
/// itemsets of `transactions`, filtered by the confidence and lift
/// thresholds. Sorted by descending lift then confidence.
StatusOr<std::vector<AssociationRule>> MineAssociationRules(
    const std::vector<EventTransaction>& transactions,
    const MiningOptions& options = {});

/// Builds co-occurrence transactions from raw events: for each target, the
/// event stream is cut into windows of length `window` and each non-empty
/// window becomes one transaction of the distinct event names in it.
std::vector<EventTransaction> TransactionsFromEvents(
    const std::vector<RawEvent>& events, Duration window);

}  // namespace cdibot

#endif  // CDIBOT_RULES_MINING_H_
