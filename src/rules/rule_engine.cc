#include "rules/rule_engine.h"

#include "obs/metrics.h"

namespace cdibot {

Status RuleEngine::Register(const std::string& name,
                            const std::string& expr_text,
                            std::vector<ActionSpec> actions) {
  if (name.empty()) return Status::InvalidArgument("rule needs a name");
  if (names_.count(name) > 0) {
    return Status::AlreadyExists("rule exists: " + name);
  }
  CDIBOT_ASSIGN_OR_RETURN(Expression expr, Expression::Parse(expr_text));
  names_.insert(name);
  rules_.push_back(OperationRule{.name = name,
                                 .expr = std::move(expr),
                                 .actions = std::move(actions)});
  return Status::OK();
}

std::set<std::string> RuleEngine::ActiveEventNames(
    const std::vector<RawEvent>& events, TimePoint at) {
  std::set<std::string> active;
  for (const RawEvent& ev : events) {
    if (ev.time <= at && at < ev.time + ev.expire_interval) {
      active.insert(ev.name);
    }
  }
  return active;
}

std::vector<RuleMatch> RuleEngine::Match(const std::set<std::string>& active,
                                         const std::string& target,
                                         TimePoint at) const {
  static obs::Counter* evaluations =
      obs::MetricsRegistry::Global().GetCounter("rules.evaluations");
  static obs::Counter* matches =
      obs::MetricsRegistry::Global().GetCounter("rules.matches");
  std::vector<RuleMatch> out;
  for (const OperationRule& rule : rules_) {
    if (rule.expr.Eval(active)) {
      out.push_back(RuleMatch{.rule_name = rule.name,
                              .target = target,
                              .time = at,
                              .actions = rule.actions});
    }
  }
  evaluations->Add(rules_.size());
  matches->Add(out.size());
  return out;
}

std::vector<RuleMatch> RuleEngine::MatchEvents(
    const std::vector<RawEvent>& events, const std::string& target,
    TimePoint at) const {
  return Match(ActiveEventNames(events, at), target, at);
}

StatusOr<RuleEngine> RuleEngine::BuiltIn() {
  RuleEngine engine;
  // Example 1: NIC fault degrading disk IO -> live-migrate the VM, ticket
  // the IDC, and lock the host against new placements.
  CDIBOT_RETURN_IF_ERROR(engine.Register(
      "nic_error_cause_slow_io", "slow_io && nic_flapping",
      {{"live_migration", 10}, {"repair_request", 5}, {"nc_lock", 8}}));
  // Example 1's second rule: needs the vm_hang event too.
  CDIBOT_RETURN_IF_ERROR(engine.Register(
      "nic_error_cause_vm_hang", "nic_flapping && vm_hang",
      {{"cold_migration", 10}, {"repair_request", 5}, {"nc_lock", 8}}));
  // Case 8: predicted NC failure -> preventive live migration of all VMs.
  CDIBOT_RETURN_IF_ERROR(engine.Register(
      "nc_down_prediction", "nc_down_prediction",
      {{"live_migration", 9}, {"nc_lock", 8}}));
  return engine;
}

}  // namespace cdibot
