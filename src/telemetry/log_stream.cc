#include "telemetry/log_stream.h"

#include <algorithm>

#include "common/strings.h"

namespace cdibot {

std::vector<LogLine> GenerateBenignLogs(const std::string& target,
                                        const Interval& window,
                                        double lines_per_hour, Rng* rng) {
  static constexpr const char* kBenign[] = {
      "systemd[1]: Started Daily apt download activities.",
      "kernel: perf: interrupt took too long, lowering rate",
      "sshd[%d]: Accepted publickey for ops from 10.0.%d.%d",
      "kvm: vcpu scheduling latency within budget",
      "chronyd[%d]: Selected source 10.0.0.%d",
  };
  std::vector<LogLine> out;
  if (window.empty() || lines_per_hour <= 0.0) return out;
  const double hours = window.length().hours();
  const auto n = static_cast<size_t>(rng->Poisson(lines_per_hour * hours));
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t offset_ms =
        rng->UniformInt(0, window.length().millis() - 1);
    const size_t which = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(std::size(kBenign)) - 1));
    out.push_back(LogLine{
        .time = window.start + Duration::Millis(offset_ms),
        .target = target,
        .text = StrFormat(kBenign[which],
                          static_cast<int>(rng->UniformInt(100, 9999)),
                          static_cast<int>(rng->UniformInt(0, 255)),
                          static_cast<int>(rng->UniformInt(1, 254)))});
  }
  std::sort(out.begin(), out.end(),
            [](const LogLine& a, const LogLine& b) { return a.time < b.time; });
  return out;
}

void AppendNicFlap(const std::string& target, TimePoint at,
                   std::vector<LogLine>* lines) {
  lines->push_back(LogLine{.time = at,
                           .target = target,
                           .text = "kernel: eth0 NIC Link is Down"});
  lines->push_back(LogLine{.time = at + Duration::Seconds(7),
                           .target = target,
                           .text = "kernel: eth0 NIC Link is Up 25Gbps"});
}

void AppendQemuLiveUpgrade(const std::string& target, TimePoint at,
                           int64_t pause_ms, std::vector<LogLine>* lines) {
  lines->push_back(LogLine{
      .time = at,
      .target = target,
      .text = StrFormat("qemu: live upgrade complete, pause=%lldms",
                        static_cast<long long>(pause_ms))});
}

}  // namespace cdibot
