#include "telemetry/metric_series.h"

#include <algorithm>
#include <cmath>

namespace cdibot {

StatusOr<MetricSeries> GenerateMetricSeries(const MetricSpec& spec, Rng* rng) {
  if (spec.count == 0) return Status::InvalidArgument("count must be >= 1");
  if (spec.interval.millis() <= 0) {
    return Status::InvalidArgument("interval must be positive");
  }
  if (spec.noise_sigma < 0.0) {
    return Status::InvalidArgument("noise_sigma must be >= 0");
  }
  MetricSeries series;
  series.metric = spec.metric;
  series.target = spec.target;
  series.points.reserve(spec.count);

  constexpr double kDayMs = 86400.0 * 1000.0;
  for (size_t i = 0; i < spec.count; ++i) {
    const TimePoint t =
        spec.start + spec.interval * static_cast<int64_t>(i);
    // Diurnal seasonality peaks in the (UTC) evening, like the paper's
    // business-peak incidents.
    const double phase =
        2.0 * M_PI *
        (static_cast<double>(t.millis() % static_cast<int64_t>(kDayMs)) /
         kDayMs);
    double v = spec.base +
               spec.diurnal_amplitude * std::sin(phase - M_PI / 2.0) +
               rng->Normal(0.0, spec.noise_sigma);
    for (const MetricAnomaly& a : spec.anomalies) {
      if (i >= a.begin && i < a.end) {
        v = v * a.factor + a.offset;
      }
    }
    series.points.push_back({t, std::max(0.0, v)});
  }
  return series;
}

}  // namespace cdibot
