#ifndef CDIBOT_TELEMETRY_TICKETS_H_
#define CDIBOT_TELEMETRY_TICKETS_H_

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/statusor.h"
#include "common/time.h"
#include "event/event.h"

namespace cdibot {

/// A customer support ticket about a stability issue (Fig. 2 classifies 18
/// months of these; Sec. IV-C counts them per event to form the customer
/// weight).
struct Ticket {
  int64_t id = 0;
  TimePoint time;
  std::string target;
  std::string text;
  /// The related CloudBot event name, when the investigation identified one
  /// (drives Eq. 2); may be empty.
  std::string related_event;
};

/// Keyword-based ticket classifier — the PAI classification-model stand-in
/// of Fig. 4. Maps ticket text to one of the three stability categories.
class TicketClassifier {
 public:
  TicketClassifier();

  /// Classifies one ticket. Unrecognized text falls back to performance
  /// (the paper's most common category).
  StabilityCategory Classify(const Ticket& ticket) const;

  /// Convenience: category histogram over a batch.
  std::map<StabilityCategory, size_t> Histogram(
      const std::vector<Ticket>& tickets) const;

 private:
  // keyword -> category, checked in order.
  std::vector<std::pair<std::string, StabilityCategory>> keywords_;
};

/// Configuration for the synthetic ticket generator.
struct TicketWorkloadSpec {
  Interval window;
  size_t count = 1000;
  /// Probability of each category (unavailability, performance,
  /// control-plane); Fig. 2's observed mix is {0.27, 0.44, 0.29}.
  double p_unavailability = 0.27;
  double p_performance = 0.44;
  double p_control_plane = 0.29;
};

/// Generates `spec.count` tickets whose text matches the classifier
/// vocabulary, with category proportions from the spec, and a related event
/// name sampled from the catalog events of that category. Requires
/// probabilities summing to 1 (+-1e-9) and a non-empty window.
StatusOr<std::vector<Ticket>> GenerateTickets(const TicketWorkloadSpec& spec,
                                              Rng* rng);

/// Aggregates tickets into per-event ticket counts over the window — the
/// Eq.-2 input gathered "over the previous year". Tickets without a related
/// event are skipped.
std::map<std::string, int64_t> CountTicketsByEvent(
    const std::vector<Ticket>& tickets);

}  // namespace cdibot

#endif  // CDIBOT_TELEMETRY_TICKETS_H_
