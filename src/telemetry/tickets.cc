#include "telemetry/tickets.h"

#include <cmath>

#include "common/strings.h"

namespace cdibot {
namespace {

// Ticket text templates per category, mirroring the paper's cases: Case 1
// (API latency after a change) is performance; Case 2 (console/API outage)
// is control-plane.
constexpr const char* kUnavailabilityTexts[] = {
    "instance crashed and is unreachable",
    "VM hangs, no response on any port",
    "server went down unexpectedly this morning",
    "disk unavailable, instance cannot boot",
};
constexpr const char* kPerformanceTexts[] = {
    "API latency of our service markedly increased",
    "disk IO is very slow during peak hours",
    "packet loss degrades our video stream",
    "CPU steal time is high, throughput dropped",
};
constexpr const char* kControlPlaneTexts[] = {
    "cannot stop or release the instance from the console",
    "resize operation keeps failing with an internal error",
    "console login fails, management API calls time out",
    "unable to purchase or modify ECS instances",
};

// Catalog event names per category for the related_event field.
constexpr const char* kUnavailabilityEvents[] = {"vm_crash", "vm_hang",
                                                 "nc_down", "ddos_blackhole"};
constexpr const char* kPerformanceEvents[] = {"slow_io", "packet_loss",
                                              "vcpu_high", "nic_flapping",
                                              "vm_allocation_failed"};
constexpr const char* kControlPlaneEvents[] = {
    "vm_start_failed", "vm_stop_failed", "vm_release_failed",
    "vm_resize_failed", "api_error"};

template <size_t N>
const char* Pick(const char* const (&arr)[N], Rng* rng) {
  return arr[static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(N) - 1))];
}

}  // namespace

TicketClassifier::TicketClassifier() {
  const auto u = StabilityCategory::kUnavailability;
  const auto p = StabilityCategory::kPerformance;
  const auto c = StabilityCategory::kControlPlane;
  keywords_ = {
      // Control-plane first: "console", "resize", "release" are decisive.
      {"console", c}, {"resize", c}, {"release the instance", c},
      {"management api", c}, {"purchase", c}, {"cannot stop", c},
      // Unavailability.
      {"crash", u}, {"unreachable", u}, {"hang", u}, {"went down", u},
      {"cannot boot", u}, {"unavailable", u},
      // Performance.
      {"latency", p}, {"slow", p}, {"packet loss", p}, {"steal", p},
      {"throughput", p}, {"degrad", p},
  };
}

StabilityCategory TicketClassifier::Classify(const Ticket& ticket) const {
  const std::string text = StrToLower(ticket.text);
  for (const auto& [keyword, category] : keywords_) {
    if (StrContains(text, keyword)) return category;
  }
  return StabilityCategory::kPerformance;
}

std::map<StabilityCategory, size_t> TicketClassifier::Histogram(
    const std::vector<Ticket>& tickets) const {
  std::map<StabilityCategory, size_t> out;
  for (const Ticket& t : tickets) ++out[Classify(t)];
  return out;
}

StatusOr<std::vector<Ticket>> GenerateTickets(const TicketWorkloadSpec& spec,
                                              Rng* rng) {
  if (spec.window.empty()) {
    return Status::InvalidArgument("ticket window must be non-empty");
  }
  const double total =
      spec.p_unavailability + spec.p_performance + spec.p_control_plane;
  if (std::abs(total - 1.0) > 1e-9) {
    return Status::InvalidArgument("category probabilities must sum to 1");
  }
  std::vector<Ticket> out;
  out.reserve(spec.count);
  for (size_t i = 0; i < spec.count; ++i) {
    Ticket t;
    t.id = static_cast<int64_t>(i) + 1;
    t.time = spec.window.start +
             Duration::Millis(rng->UniformInt(
                 0, spec.window.length().millis() - 1));
    t.target = StrFormat("vm-%05d", static_cast<int>(rng->UniformInt(0, 99999)));
    const size_t cat = rng->Categorical(
        {spec.p_unavailability, spec.p_performance, spec.p_control_plane});
    switch (cat) {
      case 0:
        t.text = Pick(kUnavailabilityTexts, rng);
        t.related_event = Pick(kUnavailabilityEvents, rng);
        break;
      case 1:
        t.text = Pick(kPerformanceTexts, rng);
        t.related_event = Pick(kPerformanceEvents, rng);
        break;
      default:
        t.text = Pick(kControlPlaneTexts, rng);
        t.related_event = Pick(kControlPlaneEvents, rng);
        break;
    }
    out.push_back(std::move(t));
  }
  return out;
}

std::map<std::string, int64_t> CountTicketsByEvent(
    const std::vector<Ticket>& tickets) {
  std::map<std::string, int64_t> out;
  for (const Ticket& t : tickets) {
    if (!t.related_event.empty()) ++out[t.related_event];
  }
  return out;
}

}  // namespace cdibot
