#ifndef CDIBOT_TELEMETRY_TOPOLOGY_H_
#define CDIBOT_TELEMETRY_TOPOLOGY_H_

#include <map>
#include <string>
#include <vector>

#include "common/statusor.h"

namespace cdibot {

/// VM resource-isolation type (Case 5: dedicated VMs pin physical cores;
/// shared VMs multiplex them).
enum class VmType : int { kDedicated = 0, kShared = 1 };

/// Deployment architecture of a physical machine's VM population (Case 5).
enum class DeploymentArch : int {
  /// Only one VM type per NC (two separate resource pools).
  kHomogeneous = 0,
  /// Dedicated and shared VMs co-hosted on disjoint core ranges.
  kHybrid = 1,
};

std::string_view VmTypeToString(VmType t);
std::string_view DeploymentArchToString(DeploymentArch a);

/// A virtual machine placement record.
struct VmInfo {
  std::string vm_id;
  std::string nc_id;
  VmType type = VmType::kShared;
  /// Physical-core allocation range [core_begin, core_end) on the NC.
  int core_begin = 0;
  int core_end = 0;
};

/// A physical machine (node controller).
struct NcInfo {
  std::string nc_id;
  std::string cluster_id;
  DeploymentArch arch = DeploymentArch::kHomogeneous;
  int num_cores = 104;  // the paper's Case 6 machine size
  /// Machine model; Case 5's defect only affects one model.
  std::string model = "gen3";
};

/// Static fleet topology: region -> AZ -> cluster -> NC -> VM, as collected
/// by the Data Collector. Provides the placement dimensions the BI layer
/// drills into.
class FleetTopology {
 public:
  FleetTopology() = default;

  /// Registers entities. Parents must exist; ids must be unique.
  Status AddCluster(const std::string& region, const std::string& az,
                    const std::string& cluster_id);
  Status AddNc(NcInfo nc);
  Status AddVm(VmInfo vm);

  size_t num_vms() const { return vms_.size(); }
  size_t num_ncs() const { return ncs_.size(); }

  StatusOr<VmInfo> FindVm(const std::string& vm_id) const;
  StatusOr<NcInfo> FindNc(const std::string& nc_id) const;

  /// All VM ids hosted on `nc_id`, sorted.
  std::vector<std::string> VmsOnNc(const std::string& nc_id) const;

  /// All VMs, in insertion order.
  const std::vector<VmInfo>& vms() const { return vm_order_; }
  const std::vector<NcInfo>& ncs() const { return nc_order_; }

  /// The drill-down dimension map of a VM: region, az, cluster, nc, type,
  /// arch, model. NotFound when the VM or its host is unknown.
  StatusOr<std::map<std::string, std::string>> DimsForVm(
      const std::string& vm_id) const;

 private:
  struct ClusterInfo {
    std::string region;
    std::string az;
  };
  std::map<std::string, ClusterInfo> clusters_;
  std::map<std::string, NcInfo> ncs_;
  std::map<std::string, VmInfo> vms_;
  std::map<std::string, std::vector<std::string>> vms_by_nc_;
  std::vector<VmInfo> vm_order_;
  std::vector<NcInfo> nc_order_;
};

}  // namespace cdibot

#endif  // CDIBOT_TELEMETRY_TOPOLOGY_H_
