#ifndef CDIBOT_TELEMETRY_LOG_STREAM_H_
#define CDIBOT_TELEMETRY_LOG_STREAM_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace cdibot {

/// One raw log line from a physical machine or VM — one of the data
/// modalities of Fig. 1.
struct LogLine {
  TimePoint time;
  std::string target;  ///< emitting VM or NC
  std::string text;
};

/// Generates a background stream of benign kernel/hypervisor log lines for
/// `target` across `window`, roughly `lines_per_hour` of them. Benign lines
/// must not match any expert log rule (tests assert this).
std::vector<LogLine> GenerateBenignLogs(const std::string& target,
                                        const Interval& window,
                                        double lines_per_hour, Rng* rng);

/// Appends the fault log lines the paper's Example 1 describes: an
/// "eth0 NIC Link is Down" / "...Up" flap pair at `at`.
void AppendNicFlap(const std::string& target, TimePoint at,
                   std::vector<LogLine>* lines);

/// Appends a QEMU live-upgrade completion line carrying the measured pause
/// duration in milliseconds (Sec. IV-B1).
void AppendQemuLiveUpgrade(const std::string& target, TimePoint at,
                           int64_t pause_ms, std::vector<LogLine>* lines);

}  // namespace cdibot

#endif  // CDIBOT_TELEMETRY_LOG_STREAM_H_
