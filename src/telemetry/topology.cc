#include "telemetry/topology.h"

#include <algorithm>

namespace cdibot {

std::string_view VmTypeToString(VmType t) {
  switch (t) {
    case VmType::kDedicated:
      return "dedicated";
    case VmType::kShared:
      return "shared";
  }
  return "?";
}

std::string_view DeploymentArchToString(DeploymentArch a) {
  switch (a) {
    case DeploymentArch::kHomogeneous:
      return "homogeneous";
    case DeploymentArch::kHybrid:
      return "hybrid";
  }
  return "?";
}

Status FleetTopology::AddCluster(const std::string& region,
                                 const std::string& az,
                                 const std::string& cluster_id) {
  if (clusters_.count(cluster_id) > 0) {
    return Status::AlreadyExists("cluster exists: " + cluster_id);
  }
  clusters_[cluster_id] = ClusterInfo{region, az};
  return Status::OK();
}

Status FleetTopology::AddNc(NcInfo nc) {
  if (clusters_.count(nc.cluster_id) == 0) {
    return Status::NotFound("unknown cluster: " + nc.cluster_id);
  }
  if (ncs_.count(nc.nc_id) > 0) {
    return Status::AlreadyExists("NC exists: " + nc.nc_id);
  }
  nc_order_.push_back(nc);
  ncs_[nc.nc_id] = std::move(nc);
  return Status::OK();
}

Status FleetTopology::AddVm(VmInfo vm) {
  if (ncs_.count(vm.nc_id) == 0) {
    return Status::NotFound("unknown NC: " + vm.nc_id);
  }
  if (vms_.count(vm.vm_id) > 0) {
    return Status::AlreadyExists("VM exists: " + vm.vm_id);
  }
  vms_by_nc_[vm.nc_id].push_back(vm.vm_id);
  vm_order_.push_back(vm);
  vms_[vm.vm_id] = std::move(vm);
  return Status::OK();
}

StatusOr<VmInfo> FleetTopology::FindVm(const std::string& vm_id) const {
  auto it = vms_.find(vm_id);
  if (it == vms_.end()) return Status::NotFound("unknown VM: " + vm_id);
  return it->second;
}

StatusOr<NcInfo> FleetTopology::FindNc(const std::string& nc_id) const {
  auto it = ncs_.find(nc_id);
  if (it == ncs_.end()) return Status::NotFound("unknown NC: " + nc_id);
  return it->second;
}

std::vector<std::string> FleetTopology::VmsOnNc(
    const std::string& nc_id) const {
  auto it = vms_by_nc_.find(nc_id);
  if (it == vms_by_nc_.end()) return {};
  std::vector<std::string> out = it->second;
  std::sort(out.begin(), out.end());
  return out;
}

StatusOr<std::map<std::string, std::string>> FleetTopology::DimsForVm(
    const std::string& vm_id) const {
  CDIBOT_ASSIGN_OR_RETURN(const VmInfo vm, FindVm(vm_id));
  CDIBOT_ASSIGN_OR_RETURN(const NcInfo nc, FindNc(vm.nc_id));
  auto cluster_it = clusters_.find(nc.cluster_id);
  if (cluster_it == clusters_.end()) {
    return Status::Internal("NC references unknown cluster");
  }
  return std::map<std::string, std::string>{
      {"region", cluster_it->second.region},
      {"az", cluster_it->second.az},
      {"cluster", nc.cluster_id},
      {"nc", vm.nc_id},
      {"type", std::string(VmTypeToString(vm.type))},
      {"arch", std::string(DeploymentArchToString(nc.arch))},
      {"model", nc.model},
  };
}

}  // namespace cdibot
