#ifndef CDIBOT_TELEMETRY_METRIC_SERIES_H_
#define CDIBOT_TELEMETRY_METRIC_SERIES_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/statusor.h"
#include "common/time.h"

namespace cdibot {

/// One observation of a monitored metric.
struct MetricPoint {
  TimePoint time;
  double value = 0.0;
};

/// A regularly-sampled metric time series for one target (e.g. read_latency
/// of a VM's cloud disk, Fig. 1).
struct MetricSeries {
  std::string metric;  ///< metric name, e.g. "read_latency"
  std::string target;  ///< VM or NC id
  std::vector<MetricPoint> points;
};

/// An anomaly to inject into a generated series.
struct MetricAnomaly {
  /// Index range [begin, end) of affected samples.
  size_t begin = 0;
  size_t end = 0;
  /// Additive offset applied during the range (positive = spike plateau).
  double offset = 0.0;
  /// Multiplicative factor applied during the range (1 = none).
  double factor = 1.0;
};

/// Specification for the synthetic metric generator: a base level, a
/// diurnal (daily) seasonal component, Gaussian noise, and optional
/// injected anomalies. This is the Data-Collector stand-in: the paper's
/// eBPF collectors produce exactly such per-minute series.
struct MetricSpec {
  std::string metric = "read_latency";
  std::string target;
  TimePoint start;
  Duration interval = Duration::Minutes(1);
  size_t count = 1440;
  double base = 10.0;
  /// Peak-to-mean amplitude of the sinusoidal daily pattern.
  double diurnal_amplitude = 2.0;
  double noise_sigma = 0.5;
  std::vector<MetricAnomaly> anomalies;
};

/// Generates a synthetic series from `spec` using `rng`. Values are clamped
/// at zero (latencies and rates are non-negative). Requires count >= 1 and
/// a positive interval.
StatusOr<MetricSeries> GenerateMetricSeries(const MetricSpec& spec, Rng* rng);

}  // namespace cdibot

#endif  // CDIBOT_TELEMETRY_METRIC_SERIES_H_
