#include "anomaly/ksigma.h"

#include <cmath>

#include "obs/metrics.h"

namespace cdibot {

StatusOr<KSigmaDetector> KSigmaDetector::Create(size_t window, double k) {
  if (window < 3) {
    return Status::InvalidArgument("K-Sigma window must be >= 3");
  }
  if (!(k > 0.0)) return Status::InvalidArgument("k must be > 0");
  return KSigmaDetector(window, k);
}

AnomalyDirection KSigmaDetector::Classify(double x) const {
  if (buffer_.size() < window_) return AnomalyDirection::kNone;
  const auto n = static_cast<double>(buffer_.size());
  const double mean = sum_ / n;
  const double var = std::max(0.0, sum_sq_ / n - mean * mean);
  const double sigma = std::sqrt(var);
  // A flat window (sigma == 0) flags any departure from the constant.
  const double limit = k_ * sigma;
  if (x > mean + limit && x != mean) return AnomalyDirection::kSpike;
  if (x < mean - limit && x != mean) return AnomalyDirection::kDip;
  return AnomalyDirection::kNone;
}

AnomalyDirection KSigmaDetector::Observe(double x) {
  static obs::Counter* points =
      obs::MetricsRegistry::Global().GetCounter("anomaly.ksigma.points");
  static obs::Counter* alarms =
      obs::MetricsRegistry::Global().GetCounter("anomaly.ksigma.alarms");
  points->Increment();
  ++count_;
  const AnomalyDirection result = Classify(x);
  if (result != AnomalyDirection::kNone) alarms->Increment();
  // Anomalous points still enter the window: a persistent shift becomes the
  // new normal, which matches how the paper's daily curves are read.
  buffer_.push_back(x);
  sum_ += x;
  sum_sq_ += x * x;
  if (buffer_.size() > window_) {
    const double old = buffer_.front();
    buffer_.pop_front();
    sum_ -= old;
    sum_sq_ -= old * old;
  }
  return result;
}

StatusOr<std::vector<AnomalyDirection>> KSigmaScan(
    const std::vector<double>& series, size_t window, double k) {
  CDIBOT_ASSIGN_OR_RETURN(KSigmaDetector det,
                          KSigmaDetector::Create(window, k));
  std::vector<AnomalyDirection> out;
  out.reserve(series.size());
  for (double x : series) out.push_back(det.Observe(x));
  return out;
}

}  // namespace cdibot
