#include "anomaly/dspot.h"

#include "obs/metrics.h"

namespace cdibot {

StatusOr<DSpotDetector> DSpotDetector::Calibrate(
    const std::vector<double>& calibration, Options options) {
  if (options.depth < 2) {
    return Status::InvalidArgument("depth must be >= 2");
  }
  if (calibration.size() < options.depth + 10) {
    return Status::InvalidArgument(
        "calibration must hold at least depth + 10 points");
  }
  // Residuals of each calibration point against the trailing mean of the
  // preceding `depth` points.
  std::deque<double> window(calibration.begin(),
                            calibration.begin() +
                                static_cast<long>(options.depth));
  double sum = 0.0;
  for (double v : window) sum += v;

  std::vector<double> upper_residuals, lower_residuals;
  for (size_t i = options.depth; i < calibration.size(); ++i) {
    const double mean = sum / static_cast<double>(window.size());
    const double r = calibration[i] - mean;
    upper_residuals.push_back(r);
    lower_residuals.push_back(-r);
    sum += calibration[i] - window.front();
    window.pop_front();
    window.push_back(calibration[i]);
  }

  CDIBOT_ASSIGN_OR_RETURN(
      SpotDetector upper,
      SpotDetector::Calibrate(upper_residuals, options.q, options.level));
  CDIBOT_ASSIGN_OR_RETURN(
      SpotDetector lower,
      SpotDetector::Calibrate(lower_residuals, options.q, options.level));

  DSpotDetector det(options, std::move(upper), std::move(lower));
  det.window_ = std::move(window);
  det.window_sum_ = sum;
  return det;
}

double DSpotDetector::LocalMean() const {
  return window_sum_ / static_cast<double>(window_.size());
}

void DSpotDetector::PushWindow(double x) {
  window_.push_back(x);
  window_sum_ += x;
  if (window_.size() > options_.depth) {
    window_sum_ -= window_.front();
    window_.pop_front();
  }
}

AnomalyDirection DSpotDetector::Observe(double x) {
  static obs::Counter* points =
      obs::MetricsRegistry::Global().GetCounter("anomaly.dspot.points");
  static obs::Counter* alarms =
      obs::MetricsRegistry::Global().GetCounter("anomaly.dspot.alarms");
  points->Increment();
  const double mean = LocalMean();
  const double residual = x - mean;
  // Each side's SPOT consumes every residual so their tail models stay in
  // sync; anomaly on either side wins (both cannot fire at once).
  const bool spike = upper_.Observe(residual);
  const bool dip = lower_.Observe(-residual);
  if (spike || dip) alarms->Increment();
  if (spike) return AnomalyDirection::kSpike;
  if (dip) return AnomalyDirection::kDip;
  // Normal points advance the local level; anomalies do not, so a fault
  // plateau keeps alarming until acknowledged or recalibrated.
  PushWindow(x);
  return AnomalyDirection::kNone;
}

double DSpotDetector::upper_threshold() const {
  return LocalMean() + upper_.threshold();
}

double DSpotDetector::lower_threshold() const {
  return LocalMean() - lower_.threshold();
}

}  // namespace cdibot
