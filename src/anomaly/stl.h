#ifndef CDIBOT_ANOMALY_STL_H_
#define CDIBOT_ANOMALY_STL_H_

#include <vector>

#include "common/statusor.h"

namespace cdibot {

/// Output of a seasonal-trend decomposition: x = trend + seasonal + residual
/// componentwise.
struct Decomposition {
  std::vector<double> trend;
  std::vector<double> seasonal;
  std::vector<double> residual;
};

/// Lightweight online seasonal-trend decomposition in the spirit of
/// BacktrackSTL (ref. [27]): a centered moving average supplies the trend, a
/// per-phase robust mean of the detrended series supplies the seasonal
/// component, and the residual feeds anomaly detection (EVT/SPOT or
/// K-Sigma). O(n) time, single pass per component.
///
/// Requires period >= 2 and a series of at least two full periods.
StatusOr<Decomposition> DecomposeSeries(const std::vector<double>& series,
                                        size_t period);

/// Streaming wrapper: maintains the decomposition state incrementally and
/// exposes the most recent residual, which is what the metric extractors
/// monitor. After `Warmup` full periods the residuals become meaningful.
///
/// With `robust = true` the update applies BacktrackSTL's key idea
/// (ref. [27]): a point whose residual is extreme relative to the recent
/// residual scale is treated as an outlier — its residual is still
/// reported (so detectors see it) but the trend and seasonal components do
/// NOT absorb it, so one anomaly cannot contaminate the model and mask or
/// mirror itself one period later.
class OnlineStl {
 public:
  /// `period` >= 2; `trend_alpha` in (0, 1] controls the EWMA trend;
  /// robust updates skip points beyond `outlier_k` times the recent median
  /// absolute residual (outlier_k > 1 when robust).
  static StatusOr<OnlineStl> Create(size_t period, double trend_alpha = 0.05,
                                    double seasonal_alpha = 0.1,
                                    bool robust = false,
                                    double outlier_k = 8.0);

  /// Feeds one observation; returns its residual (0 during the first
  /// period while the seasonal profile initializes).
  double Observe(double x);

  size_t count() const { return count_; }
  double trend() const { return trend_; }
  /// Points skipped by the robust update so far.
  size_t outliers_skipped() const { return outliers_skipped_; }

 private:
  OnlineStl(size_t period, double trend_alpha, double seasonal_alpha,
            bool robust, double outlier_k)
      : period_(period),
        trend_alpha_(trend_alpha),
        seasonal_alpha_(seasonal_alpha),
        robust_(robust),
        outlier_k_(outlier_k),
        seasonal_(period, 0.0),
        initialized_(period, false) {}

  bool IsOutlier(double residual) const;
  void RecordResidualScale(double residual);

  size_t period_;
  double trend_alpha_;
  double seasonal_alpha_;
  bool robust_;
  double outlier_k_;
  size_t count_ = 0;
  size_t outliers_skipped_ = 0;
  double trend_ = 0.0;
  std::vector<double> seasonal_;
  std::vector<bool> initialized_;
  /// Recent |residual| ring buffer for the robust scale estimate.
  std::vector<double> recent_abs_residuals_;
  size_t residual_cursor_ = 0;
};

}  // namespace cdibot

#endif  // CDIBOT_ANOMALY_STL_H_
