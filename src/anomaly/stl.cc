#include "anomaly/stl.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace cdibot {

StatusOr<Decomposition> DecomposeSeries(const std::vector<double>& series,
                                        size_t period) {
  if (period < 2) return Status::InvalidArgument("period must be >= 2");
  if (series.size() < 2 * period) {
    return Status::InvalidArgument("series must span >= 2 periods");
  }
  const size_t n = series.size();
  Decomposition d;
  d.trend.resize(n);
  d.seasonal.resize(n);
  d.residual.resize(n);

  // Trend: centered moving average of width `period` (split the half-window
  // for even periods), clamped at the boundaries.
  const size_t half = period / 2;
  std::vector<double> prefix(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + series[i];
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i >= half ? i - half : 0;
    const size_t hi = std::min(n, i + half + 1);
    d.trend[i] = (prefix[hi] - prefix[lo]) / static_cast<double>(hi - lo);
  }

  // Seasonal: per-phase mean of the detrended series, centered to sum to 0.
  std::vector<double> phase_sum(period, 0.0);
  std::vector<size_t> phase_count(period, 0);
  for (size_t i = 0; i < n; ++i) {
    phase_sum[i % period] += series[i] - d.trend[i];
    ++phase_count[i % period];
  }
  std::vector<double> phase_mean(period, 0.0);
  double seasonal_mean = 0.0;
  for (size_t p = 0; p < period; ++p) {
    phase_mean[p] = phase_sum[p] / static_cast<double>(phase_count[p]);
    seasonal_mean += phase_mean[p];
  }
  seasonal_mean /= static_cast<double>(period);
  for (size_t p = 0; p < period; ++p) phase_mean[p] -= seasonal_mean;

  for (size_t i = 0; i < n; ++i) {
    d.seasonal[i] = phase_mean[i % period];
    d.residual[i] = series[i] - d.trend[i] - d.seasonal[i];
  }
  return d;
}

StatusOr<OnlineStl> OnlineStl::Create(size_t period, double trend_alpha,
                                      double seasonal_alpha, bool robust,
                                      double outlier_k) {
  if (period < 2) return Status::InvalidArgument("period must be >= 2");
  if (!(trend_alpha > 0.0) || trend_alpha > 1.0) {
    return Status::InvalidArgument("trend_alpha must be in (0, 1]");
  }
  if (!(seasonal_alpha > 0.0) || seasonal_alpha > 1.0) {
    return Status::InvalidArgument("seasonal_alpha must be in (0, 1]");
  }
  if (robust && !(outlier_k > 1.0)) {
    return Status::InvalidArgument("outlier_k must be > 1 when robust");
  }
  return OnlineStl(period, trend_alpha, seasonal_alpha, robust, outlier_k);
}

bool OnlineStl::IsOutlier(double residual) const {
  // Need one full period of residual history for a stable scale estimate.
  if (!robust_ || recent_abs_residuals_.size() < period_) return false;
  std::vector<double> sorted = recent_abs_residuals_;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const double scale = sorted[sorted.size() / 2];
  // A zero scale means the history is still degenerate (e.g. a constant
  // series); no basis to call anything an outlier yet.
  if (scale <= 0.0) return false;
  return std::abs(residual) > outlier_k_ * scale;
}

void OnlineStl::RecordResidualScale(double residual) {
  if (recent_abs_residuals_.size() < period_) {
    recent_abs_residuals_.push_back(std::abs(residual));
  } else {
    recent_abs_residuals_[residual_cursor_] = std::abs(residual);
    residual_cursor_ = (residual_cursor_ + 1) % period_;
  }
}

double OnlineStl::Observe(double x) {
  const size_t phase = count_ % period_;
  if (count_ == 0) trend_ = x;

  const double deseason = initialized_[phase] ? x - seasonal_[phase] : x;
  // Tentative residual against the CURRENT components, before any update.
  const double tentative_residual =
      initialized_[phase] ? deseason - trend_ : 0.0;

  if (IsOutlier(tentative_residual)) {
    // Backtrack: report the anomaly but leave the model untouched so the
    // outlier neither inflates the trend nor imprints on this phase's
    // seasonal value.
    ++outliers_skipped_;
    ++count_;
    return tentative_residual;
  }

  trend_ = trend_alpha_ * deseason + (1.0 - trend_alpha_) * trend_;
  const double detrended = x - trend_;
  double residual = 0.0;
  if (initialized_[phase]) {
    residual = detrended - seasonal_[phase];
    seasonal_[phase] = seasonal_alpha_ * detrended +
                       (1.0 - seasonal_alpha_) * seasonal_[phase];
    // Only meaningful residuals feed the robust scale: the warm-up zeros
    // of uninitialized phases would drive the median to 0 and flag every
    // later point.
    RecordResidualScale(residual);
  } else {
    seasonal_[phase] = detrended;
    initialized_[phase] = true;
  }
  ++count_;
  return residual;
}

}  // namespace cdibot
