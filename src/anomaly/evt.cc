#include "anomaly/evt.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "stats/descriptive.h"

namespace cdibot {

StatusOr<GpdFit> FitGpdPwm(const std::vector<double>& excesses) {
  if (excesses.size() < 2) {
    return Status::InvalidArgument("GPD fit needs >= 2 excesses");
  }
  for (double e : excesses) {
    if (!(e >= 0.0)) {
      return Status::InvalidArgument("excesses must be non-negative");
    }
  }
  std::vector<double> x = excesses;
  std::sort(x.begin(), x.end());
  const auto n = static_cast<double>(x.size());
  // Probability-weighted moments (Hosking & Wallis): b0 = mean and
  // b1 estimates E[X (1 - F(X))] via decreasing weights on the ascending
  // order statistics.
  double b0 = 0.0;
  double b1 = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    b0 += x[i];
    b1 += x[i] * (n - 1.0 - static_cast<double>(i)) / (n - 1.0);
  }
  b0 /= n;
  b1 /= n;
  const double denom = b0 - 2.0 * b1;
  if (std::abs(denom) < 1e-12 || b0 <= 0.0) {
    // Degenerate (near-exponential with vanishing spread): exponential fit.
    return GpdFit{.shape = 0.0, .scale = std::max(b0, 1e-12)};
  }
  GpdFit fit;
  // Hosking & Wallis: shape k_HW = b0/(b0-2 b1) - 2; GPD xi = -k_HW.
  const double k_hw = b0 / denom - 2.0;
  fit.shape = -k_hw;
  fit.scale = b0 * (1.0 + k_hw);
  if (fit.scale <= 0.0) {
    return GpdFit{.shape = 0.0, .scale = std::max(b0, 1e-12)};
  }
  return fit;
}

StatusOr<SpotDetector> SpotDetector::Calibrate(
    const std::vector<double>& calibration, double q, double level) {
  if (!(q > 0.0) || q >= 1.0) {
    return Status::InvalidArgument("q must be in (0, 1)");
  }
  if (!(level > 0.0) || level >= 1.0) {
    return Status::InvalidArgument("level must be in (0, 1)");
  }
  if (calibration.size() < 10) {
    return Status::InvalidArgument("SPOT calibration needs >= 10 points");
  }
  SpotDetector det;
  det.q_ = q;
  CDIBOT_ASSIGN_OR_RETURN(det.t_, stats::Quantile(calibration, level));
  for (double x : calibration) {
    if (x > det.t_) det.peaks_.push_back(x - det.t_);
  }
  if (det.peaks_.size() < 2) {
    return Status::FailedPrecondition(
        "calibration has < 2 peaks over the level quantile");
  }
  det.n_ = calibration.size();
  det.Refit();
  return det;
}

void SpotDetector::Refit() {
  auto fit_or = FitGpdPwm(peaks_);
  const GpdFit fit = fit_or.ok() ? fit_or.value() : GpdFit{};
  const double n = static_cast<double>(n_);
  const double n_t = static_cast<double>(peaks_.size());
  const double r = q_ * n / n_t;
  // z_q = t + (sigma/gamma) * (r^{-gamma} - 1); limit gamma->0 gives
  // t - sigma * log(r).
  if (std::abs(fit.shape) < 1e-9) {
    z_q_ = t_ - fit.scale * std::log(r);
  } else {
    z_q_ = t_ + fit.scale / fit.shape * (std::pow(r, -fit.shape) - 1.0);
  }
  // The extreme threshold never sits below the peaks threshold.
  z_q_ = std::max(z_q_, t_);
}

bool SpotDetector::Observe(double x) {
  static obs::Counter* points =
      obs::MetricsRegistry::Global().GetCounter("anomaly.spot.points");
  static obs::Counter* alarms =
      obs::MetricsRegistry::Global().GetCounter("anomaly.spot.alarms");
  points->Increment();
  ++n_;
  if (x > z_q_) {
    // Anomaly: excluded from the model so it cannot raise the threshold.
    alarms->Increment();
    return true;
  }
  if (x > t_) {
    peaks_.push_back(x - t_);
    Refit();
  }
  return false;
}

}  // namespace cdibot
