#ifndef CDIBOT_ANOMALY_DSPOT_H_
#define CDIBOT_ANOMALY_DSPOT_H_

#include <deque>

#include "anomaly/evt.h"
#include "anomaly/ksigma.h"
#include "common/statusor.h"

namespace cdibot {

/// DSPOT: the drift-aware, bidirectional variant of SPOT (Siffer et al.,
/// KDD'17, Sec. 4.3 of that paper). Two additions over the plain SpotDetector:
///
///  * Drift handling: each point is judged relative to a trailing moving
///    average, so slow level changes (legitimate load growth) do not
///    trigger alarms — only departures from the local level do.
///  * Bidirectionality: an upper SPOT detects spikes and a mirrored lower
///    SPOT detects dips. The paper's Case 7 (power collection failing to
///    zero) is exactly the dip case the upper-only detector misses.
class DSpotDetector {
 public:
  struct Options {
    /// Target tail probability per side.
    double q = 1e-4;
    /// Calibration quantile level for the peaks thresholds.
    double level = 0.98;
    /// Trailing window width for the local level. >= 2.
    size_t depth = 50;
  };

  /// Calibrates on an initial batch (must hold at least depth + 10 points
  /// with enough spread for both tails).
  static StatusOr<DSpotDetector> Calibrate(
      const std::vector<double>& calibration, Options options);
  static StatusOr<DSpotDetector> Calibrate(
      const std::vector<double>& calibration) {
    return Calibrate(calibration, Options());
  }

  /// Classifies one observation (kSpike above the upper threshold, kDip
  /// below the lower one) and updates the model. Anomalous points do not
  /// enter the local-level window.
  AnomalyDirection Observe(double x);

  /// Current absolute thresholds (local level +- the SPOT excess bounds).
  double upper_threshold() const;
  double lower_threshold() const;

 private:
  DSpotDetector(Options options, SpotDetector upper, SpotDetector lower)
      : options_(options),
        upper_(std::move(upper)),
        lower_(std::move(lower)) {}

  double LocalMean() const;
  void PushWindow(double x);

  Options options_;
  SpotDetector upper_;  // operates on (x - local mean)
  SpotDetector lower_;  // operates on (local mean - x)
  std::deque<double> window_;
  double window_sum_ = 0.0;
};

}  // namespace cdibot

#endif  // CDIBOT_ANOMALY_DSPOT_H_
