#include "anomaly/root_cause.h"

#include <algorithm>
#include <cmath>

namespace cdibot {
namespace {

using SliceKey = std::pair<std::string, std::string>;

void Accumulate(const std::vector<DimensionedRecord>& records,
                std::map<SliceKey, double>* per_slice, double* total) {
  for (const DimensionedRecord& rec : records) {
    *total += rec.measure;
    for (const auto& [dim, value] : rec.dims) {
      (*per_slice)[{dim, value}] += rec.measure;
    }
  }
}

}  // namespace

StatusOr<std::vector<RootCauseCandidate>> LocalizeRootCause(
    const std::vector<DimensionedRecord>& baseline,
    const std::vector<DimensionedRecord>& anomalous, size_t top_k) {
  std::map<SliceKey, double> base_slice, anom_slice;
  double base_total = 0.0, anom_total = 0.0;
  Accumulate(baseline, &base_slice, &base_total);
  Accumulate(anomalous, &anom_slice, &anom_total);

  const double total_change = anom_total - base_total;
  if (std::abs(total_change) < 1e-12) {
    return Status::FailedPrecondition(
        "total measure did not change; nothing to localize");
  }

  // Union of slices seen in either snapshot.
  std::map<SliceKey, std::pair<double, double>> slices;
  for (const auto& [key, v] : base_slice) slices[key].first = v;
  for (const auto& [key, v] : anom_slice) slices[key].second = v;

  std::vector<RootCauseCandidate> candidates;
  candidates.reserve(slices.size());
  for (const auto& [key, values] : slices) {
    const double delta = values.second - values.first;
    RootCauseCandidate c;
    c.dimension = key.first;
    c.value = key.second;
    c.baseline = values.first;
    c.anomalous = values.second;
    c.explanatory_power = delta / total_change;
    candidates.push_back(std::move(c));
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const RootCauseCandidate& a,
                      const RootCauseCandidate& b) {
                     return a.explanatory_power > b.explanatory_power;
                   });
  if (candidates.size() > top_k) candidates.resize(top_k);
  return candidates;
}

}  // namespace cdibot
