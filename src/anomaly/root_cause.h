#ifndef CDIBOT_ANOMALY_ROOT_CAUSE_H_
#define CDIBOT_ANOMALY_ROOT_CAUSE_H_

#include <map>
#include <string>
#include <vector>

#include "common/statusor.h"

namespace cdibot {

/// One measured record with categorical dimensions (region, AZ, cluster,
/// event name, ...) and a non-negative measure (e.g. damage minutes).
struct DimensionedRecord {
  std::map<std::string, std::string> dims;
  double measure = 0.0;
};

/// A root-cause candidate: a (dimension, value) slice and how much of the
/// total measure change it explains.
struct RootCauseCandidate {
  std::string dimension;
  std::string value;
  /// Measure in the baseline and anomalous snapshots for this slice.
  double baseline = 0.0;
  double anomalous = 0.0;
  /// Share of the total change attributed to this slice, in [0, 1] when the
  /// slice moves with the total (can exceed it when other slices move the
  /// opposite way).
  double explanatory_power = 0.0;
};

/// Single-level multi-dimensional root-cause localization in the spirit of
/// ref. [40]: compares an anomalous snapshot of dimensioned measures against
/// a baseline snapshot and ranks (dimension, value) slices by the share of
/// the total change they explain. Used by Sec. VI-C to point engineers at
/// the source of a CDI spike or dip.
///
/// Returns candidates sorted by descending explanatory power, truncated to
/// `top_k`. Requires a non-zero total change.
StatusOr<std::vector<RootCauseCandidate>> LocalizeRootCause(
    const std::vector<DimensionedRecord>& baseline,
    const std::vector<DimensionedRecord>& anomalous, size_t top_k = 5);

}  // namespace cdibot

#endif  // CDIBOT_ANOMALY_ROOT_CAUSE_H_
