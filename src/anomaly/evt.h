#ifndef CDIBOT_ANOMALY_EVT_H_
#define CDIBOT_ANOMALY_EVT_H_

#include <vector>

#include "common/statusor.h"

namespace cdibot {

/// Generalized Pareto Distribution parameters for peaks-over-threshold.
struct GpdFit {
  /// Shape (gamma / xi). Positive = heavy tail.
  double shape = 0.0;
  /// Scale (sigma) > 0.
  double scale = 1.0;
};

/// Fits a GPD to threshold excesses via probability-weighted moments
/// (Hosking & Wallis 1987) — robust, closed-form, and accurate enough for
/// threshold setting. Requires >= 2 positive excesses.
StatusOr<GpdFit> FitGpdPwm(const std::vector<double>& excesses);

/// Streaming SPOT detector (Siffer et al., KDD'17 — ref. [28]): sets an
/// extreme-quantile threshold z_q from extreme value theory and adapts it as
/// new peaks arrive. Used by CloudBot's statistic-based event extraction and
/// by the event-level CDI monitoring of Sec. VI-C.
///
/// Operation: calibrate on an initial batch, then Observe() each point.
///  * x > z_q            -> anomaly (not added to the model)
///  * t < x <= z_q       -> new peak; the GPD refits and z_q updates
///  * otherwise          -> normal
class SpotDetector {
 public:
  /// `q` is the target anomaly probability (e.g. 1e-4); `calibration` must
  /// hold >= 10 points with at least 2 exceeding its own `level` quantile
  /// (default 0.98) which becomes the initial peaks threshold t.
  static StatusOr<SpotDetector> Calibrate(
      const std::vector<double>& calibration, double q,
      double level = 0.98);

  /// Classifies one observation and updates the model.
  bool Observe(double x);

  /// Current extreme threshold z_q.
  double threshold() const { return z_q_; }
  /// Current peaks threshold t.
  double peaks_threshold() const { return t_; }
  size_t num_peaks() const { return peaks_.size(); }

 private:
  SpotDetector() = default;

  void Refit();

  double q_ = 1e-4;
  double t_ = 0.0;
  double z_q_ = 0.0;
  size_t n_ = 0;  // total observations seen (incl. calibration)
  std::vector<double> peaks_;  // excesses over t_
};

}  // namespace cdibot

#endif  // CDIBOT_ANOMALY_EVT_H_
