#ifndef CDIBOT_ANOMALY_KSIGMA_H_
#define CDIBOT_ANOMALY_KSIGMA_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "common/statusor.h"

namespace cdibot {

/// Direction of a detected anomaly. The paper's Case 7 stresses that dips
/// deserve the same scrutiny as spikes, so detectors report both.
enum class AnomalyDirection : int { kNone = 0, kSpike = 1, kDip = 2 };

/// Rolling K-Sigma detector (Sec. VI-C): a point is anomalous when it falls
/// more than k standard deviations from the trailing-window mean. Streaming
/// interface; the anomalous point itself is excluded from the statistics it
/// is judged against.
class KSigmaDetector {
 public:
  /// `window` >= 3 trailing points, threshold `k` > 0.
  static StatusOr<KSigmaDetector> Create(size_t window, double k);

  /// Feeds one observation and returns its classification. The first
  /// `window` points are calibration and always return kNone.
  AnomalyDirection Observe(double x);

  /// Classifies `x` against the current window WITHOUT consuming it: the
  /// detector state is unchanged and a later Observe(x) returns the same
  /// direction. Lets a live stream peek at a provisional value (an
  /// intra-day CDI snapshot) many times before the day commits.
  AnomalyDirection Classify(double x) const;

  /// Number of observations consumed so far.
  size_t count() const { return count_; }

 private:
  KSigmaDetector(size_t window, double k) : window_(window), k_(k) {}

  size_t window_;
  double k_;
  size_t count_ = 0;
  std::deque<double> buffer_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

/// Batch convenience: classification of every point of `series` using a
/// trailing window (points before the window fills are kNone).
StatusOr<std::vector<AnomalyDirection>> KSigmaScan(
    const std::vector<double>& series, size_t window, double k);

}  // namespace cdibot

#endif  // CDIBOT_ANOMALY_KSIGMA_H_
