#include "common/strings.h"

#include <cctype>
#include <cstdio>

namespace cdibot {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (true) {
    const size_t pos = text.find(sep, begin);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(begin));
      return out;
    }
    out.emplace_back(text.substr(begin, pos - begin));
    begin = pos + 1;
  }
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view StrTrim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string StrToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StrContains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

}  // namespace cdibot
