#ifndef CDIBOT_COMMON_LOGGING_H_
#define CDIBOT_COMMON_LOGGING_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace cdibot {

/// Severity levels for diagnostic logging, lowest to highest.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log verbosity; messages below this level are dropped. Defaults to
/// kWarning so tests and benches stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style message builder used by the CDIBOT_LOG macro; emits on
/// destruction. Fatal messages abort the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Occurrence-count predicates behind CDIBOT_LOG_EVERY_N / _FIRST_N. The
/// counter is bumped relaxed on every hit, so rate-limited log sites stay
/// a fetch_add + branch when suppressed — cheap enough for per-event paths
/// (quarantine, retries) that would otherwise flood stderr under chaos.
inline bool LogEveryN(std::atomic<uint64_t>& counter, uint64_t n) {
  return counter.fetch_add(1, std::memory_order_relaxed) % n == 0;
}
inline bool LogFirstN(std::atomic<uint64_t>& counter, uint64_t n) {
  return counter.fetch_add(1, std::memory_order_relaxed) < n;
}

}  // namespace internal_logging

#define CDIBOT_LOG(level)                                              \
  ::cdibot::internal_logging::LogMessage(::cdibot::LogLevel::k##level, \
                                         __FILE__, __LINE__)

/// Emits on the 1st, (n+1)th, (2n+1)th ... execution of this statement.
/// Usable exactly like CDIBOT_LOG: CDIBOT_LOG_EVERY_N(Warning, 100) << ...;
#define CDIBOT_LOG_EVERY_N(level, n)                                       \
  for (bool _cdibot_should_log = [] {                                      \
         static ::std::atomic<uint64_t> _cdibot_log_count{0};              \
         return ::cdibot::internal_logging::LogEveryN(_cdibot_log_count,   \
                                                      (n));                \
       }();                                                                \
       _cdibot_should_log; _cdibot_should_log = false)                     \
  CDIBOT_LOG(level)

/// Emits only on the first n executions of this statement, then never
/// again (startup / first-failure diagnostics).
#define CDIBOT_LOG_FIRST_N(level, n)                                       \
  for (bool _cdibot_should_log = [] {                                      \
         static ::std::atomic<uint64_t> _cdibot_log_count{0};              \
         return ::cdibot::internal_logging::LogFirstN(_cdibot_log_count,   \
                                                      (n));                \
       }();                                                                \
       _cdibot_should_log; _cdibot_should_log = false)                     \
  CDIBOT_LOG(level)

/// Invariant check: always on (not compiled out in release builds), aborts
/// with a message on failure. Use for programmer errors, not user input.
#define CDIBOT_CHECK(cond)                                                   \
  if (!(cond))                                                               \
  ::cdibot::internal_logging::LogMessage(::cdibot::LogLevel::kError,         \
                                         __FILE__, __LINE__, /*fatal=*/true) \
      << "CHECK failed: " #cond " "

#define CDIBOT_CHECK_OK(status_expr)                          \
  do {                                                        \
    const ::cdibot::Status _st = (status_expr);               \
    CDIBOT_CHECK(_st.ok()) << _st.ToString();                 \
  } while (false)

}  // namespace cdibot

#endif  // CDIBOT_COMMON_LOGGING_H_
