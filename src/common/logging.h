#ifndef CDIBOT_COMMON_LOGGING_H_
#define CDIBOT_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace cdibot {

/// Severity levels for diagnostic logging, lowest to highest.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log verbosity; messages below this level are dropped. Defaults to
/// kWarning so tests and benches stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style message builder used by the CDIBOT_LOG macro; emits on
/// destruction. Fatal messages abort the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define CDIBOT_LOG(level)                                              \
  ::cdibot::internal_logging::LogMessage(::cdibot::LogLevel::k##level, \
                                         __FILE__, __LINE__)

/// Invariant check: always on (not compiled out in release builds), aborts
/// with a message on failure. Use for programmer errors, not user input.
#define CDIBOT_CHECK(cond)                                                   \
  if (!(cond))                                                               \
  ::cdibot::internal_logging::LogMessage(::cdibot::LogLevel::kError,         \
                                         __FILE__, __LINE__, /*fatal=*/true) \
      << "CHECK failed: " #cond " "

#define CDIBOT_CHECK_OK(status_expr)                          \
  do {                                                        \
    const ::cdibot::Status _st = (status_expr);               \
    CDIBOT_CHECK(_st.ok()) << _st.ToString();                 \
  } while (false)

}  // namespace cdibot

#endif  // CDIBOT_COMMON_LOGGING_H_
