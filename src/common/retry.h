#ifndef CDIBOT_COMMON_RETRY_H_
#define CDIBOT_COMMON_RETRY_H_

#include <functional>

#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"

namespace cdibot {

/// Tuning for RetryPolicy: capped exponential backoff with multiplicative
/// jitter and a budgeted attempt count. Defaults are sized for local
/// storage I/O (tens of milliseconds total), not network calls.
struct RetryOptions {
  /// Total attempts including the first (so 4 = 1 try + 3 retries).
  int max_attempts = 4;
  Duration initial_backoff = Duration::Millis(10);
  double backoff_multiplier = 2.0;
  Duration max_backoff = Duration::Seconds(2);
  /// Each sleep is scaled by a uniform factor in [1 - jitter, 1 + jitter]
  /// so synchronized retriers (e.g. every shard of a job hitting the same
  /// recovering disk) fan out instead of stampeding.
  double jitter = 0.2;
};

/// RetryPolicy runs a fallible operation until it succeeds, fails with a
/// non-retryable code, or exhausts its attempt budget. Retryability is
/// decided by Status::IsRetryable() (Unavailable / ResourceExhausted /
/// Aborted); permanent errors — InvalidArgument, DataLoss, ... — are
/// returned immediately so corrupted inputs are never hammered.
///
/// The sleeper is injectable so tests (and the chaos suite) run backoff
/// schedules without wall-clock delays. The jitter stream is seeded, making
/// every schedule reproducible.
class RetryPolicy {
 public:
  using Sleeper = std::function<void(Duration)>;

  explicit RetryPolicy(RetryOptions options = {}, uint64_t jitter_seed = 0);

  /// Replaces the real sleep with `sleeper` (test hook; pass a collector to
  /// observe the backoff schedule).
  void set_sleeper(Sleeper sleeper) { sleeper_ = std::move(sleeper); }

  /// Runs `op` with retries. Returns the first success, the first
  /// non-retryable error, or the last retryable error once the attempt
  /// budget is spent.
  Status Run(const std::function<Status()>& op);

  /// Attempts consumed by the most recent Run (>= 1 after any Run).
  int last_attempts() const { return last_attempts_; }

  const RetryOptions& options() const { return options_; }

 private:
  RetryOptions options_;
  Rng rng_;
  Sleeper sleeper_;  // null = real sleep
  int last_attempts_ = 0;
};

}  // namespace cdibot

#endif  // CDIBOT_COMMON_RETRY_H_
