#ifndef CDIBOT_COMMON_RETRY_H_
#define CDIBOT_COMMON_RETRY_H_

#include <functional>

#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"

namespace cdibot {

/// Tuning for RetryPolicy: capped exponential backoff with multiplicative
/// jitter and a budgeted attempt count. Defaults are sized for local
/// storage I/O (tens of milliseconds total), not network calls.
struct RetryOptions {
  /// Total attempts including the first (so 4 = 1 try + 3 retries).
  int max_attempts = 4;
  Duration initial_backoff = Duration::Millis(10);
  double backoff_multiplier = 2.0;
  Duration max_backoff = Duration::Seconds(2);
  /// Full-jitter exponential backoff (the AWS-architecture-blog scheme):
  /// each sleep is drawn uniformly from [nominal * (1 - jitter), nominal],
  /// where nominal is the capped exponential schedule. jitter = 1 (the
  /// default) is classic full jitter — sleeps anywhere in [0, nominal] —
  /// which decorrelates synchronized retriers (every shard of a job hitting
  /// the same recovering disk) instead of letting them stampede in lockstep;
  /// jitter = 0 degrades to a deterministic schedule for tests. The old
  /// multiplicative scheme (nominal +/- 20%) kept the whole fleet inside one
  /// narrow 40% band, re-synchronizing the exact thundering herd the
  /// circuit breaker exists to prevent.
  double jitter = 1.0;
};

/// RetryPolicy runs a fallible operation until it succeeds, fails with a
/// non-retryable code, or exhausts its attempt budget. Retryability is
/// decided by Status::IsRetryable() (Unavailable / ResourceExhausted /
/// Aborted); permanent errors — InvalidArgument, DataLoss, ... — are
/// returned immediately so corrupted inputs are never hammered.
///
/// The sleeper is injectable so tests (and the chaos suite) run backoff
/// schedules without wall-clock delays. The jitter stream is seeded, making
/// every schedule reproducible.
class RetryPolicy {
 public:
  using Sleeper = std::function<void(Duration)>;

  explicit RetryPolicy(RetryOptions options = {}, uint64_t jitter_seed = 0);

  /// Replaces the real sleep with `sleeper` (test hook; pass a collector to
  /// observe the backoff schedule).
  void set_sleeper(Sleeper sleeper) { sleeper_ = std::move(sleeper); }

  /// Runs `op` with retries. Returns the first success, the first
  /// non-retryable error, or the last retryable error once the attempt
  /// budget is spent.
  Status Run(const std::function<Status()>& op);

  /// Deadline-aware variant: stops retrying (returning the last error) once
  /// `deadline` expires, and never sleeps past it — a caller with 50ms of
  /// budget left gets at most 50ms of backoff, not the full schedule. The
  /// operation itself is not interrupted mid-attempt.
  Status Run(const std::function<Status()>& op, const Deadline& deadline);

  /// Attempts consumed by the most recent Run (>= 1 after any Run).
  int last_attempts() const { return last_attempts_; }

  const RetryOptions& options() const { return options_; }

 private:
  RetryOptions options_;
  Rng rng_;
  Sleeper sleeper_;  // null = real sleep
  int last_attempts_ = 0;
};

}  // namespace cdibot

#endif  // CDIBOT_COMMON_RETRY_H_
