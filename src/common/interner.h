#ifndef CDIBOT_COMMON_INTERNER_H_
#define CDIBOT_COMMON_INTERNER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cdibot {

/// StringInterner maps strings (VM ids, event names, dimension values) to
/// dense `uint32_t` ids. It is the identity layer of the zero-copy event
/// data plane: once a string is interned, every hot-path structure carries
/// the 4-byte id and the string itself lives here, in one place, for the
/// lifetime of the process.
///
/// Concurrency model (read-mostly):
///  * `NameOf(id)` is always lock-free: ids are dense, so the id -> string
///    table is a fixed array of chunk pointers published with
///    release/acquire ordering. No snapshot, no retry loop.
///  * `Lookup(str)` is lock-free on the warm path: it consults an immutable
///    snapshot map republished by writers (rebuilt on a capacity-doubling
///    schedule, so total rebuild work stays O(n) amortized). Strings
///    interned since the last republish fall back to a mutex-guarded check
///    of the authoritative map — still a hit, just not lock-free until the
///    next republish.
///  * `Intern(str)` takes the mutex only for strings not yet present.
///
/// Interned strings are never freed; ids are never reused. See DESIGN.md
/// ("data-plane memory model") for the lifetime rules views rely on.
class StringInterner {
 public:
  /// Returned by Lookup for strings that were never interned. Never a
  /// valid id.
  static constexpr uint32_t kInvalidId = 0xFFFFFFFFu;

  StringInterner() = default;
  ~StringInterner();
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  /// Returns the id of `s`, interning it first if needed. Lock-free when
  /// `s` is already in the published snapshot.
  uint32_t Intern(std::string_view s);

  /// The id of `s`, or kInvalidId when it was never interned. Lock-free
  /// for strings present in the published snapshot.
  uint32_t Lookup(std::string_view s) const;

  /// The string for a previously returned id. Always lock-free. The view
  /// is valid for the interner's lifetime. Returns "" for kInvalidId or
  /// ids never handed out.
  std::string_view NameOf(uint32_t id) const;

  /// Number of distinct strings interned so far.
  size_t size() const { return size_.load(std::memory_order_acquire); }

 private:
  // Id -> string storage: fixed-size table of lazily allocated chunks so a
  // reader can index without synchronizing with growth. 4096 chunks of
  // 1024 strings bound the interner at ~4.2M distinct strings — far above
  // any fleet this process models, and the table itself is only 32 KiB.
  static constexpr size_t kChunkShift = 10;
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;  // 1024
  static constexpr size_t kMaxChunks = 4096;
  struct Chunk {
    std::string slots[kChunkSize];
  };

  // String -> id snapshot for lock-free Lookup. Keys view into chunk
  // storage (stable addresses), so the snapshot never owns string bytes.
  struct LookupSnapshot {
    std::unordered_map<std::string_view, uint32_t> index;
  };

  mutable std::mutex mu_;
  // Authoritative map, guarded by mu_. Keys view into chunk storage.
  std::unordered_map<std::string_view, uint32_t> index_;
  // Interned-string count; ids [0, size_) are valid. Release-published
  // after the chunk slot is written.
  std::atomic<size_t> size_{0};
  // Republish threshold for the lookup snapshot (doubling schedule).
  size_t next_publish_ = 1;
  std::atomic<Chunk*> chunks_[kMaxChunks] = {};
  std::atomic<std::shared_ptr<const LookupSnapshot>> snapshot_{nullptr};
};

/// The process-wide interner the event data plane uses. EventRows interns
/// names/targets here on append; EventLog::Query and the weight model look
/// ids up against it.
StringInterner& GlobalInterner();

}  // namespace cdibot

#endif  // CDIBOT_COMMON_INTERNER_H_
