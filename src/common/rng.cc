#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace cdibot {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

Rng Rng::Fork() { return Rng(NextUint64()); }

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // full range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = NextUint64();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::Exponential(double rate) {
  assert(rate > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

int64_t Rng::Poisson(double mean) {
  if (mean <= 0) return 0;
  if (mean > 30.0) {
    // Normal approximation with continuity correction.
    const double v = Normal(mean, std::sqrt(mean));
    return v < 0 ? 0 : static_cast<int64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double prod = NextDouble();
  int64_t n = 0;
  while (prod > limit) {
    prod *= NextDouble();
    ++n;
  }
  return n;
}

double Rng::Pareto(double xm, double alpha) {
  assert(xm > 0 && alpha > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) {
    return static_cast<size_t>(
        UniformInt(0, static_cast<int64_t>(weights.size()) - 1));
  }
  double x = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace cdibot
