#include "common/crc32.h"

#include <array>

namespace cdibot {
namespace {

// Table generated at first use from the reflected polynomial; byte-at-a-time
// is plenty for checkpoint-sized payloads (a few MB at most).
const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t seed, std::string_view data) {
  const auto& table = Crc32Table();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const char ch : data) {
    c = table[(c ^ static_cast<uint8_t>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(std::string_view data) { return Crc32Update(0, data); }

}  // namespace cdibot
