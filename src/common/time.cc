#include "common/time.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace cdibot {
namespace {

constexpr int64_t kMillisPerSecond = 1000;
constexpr int64_t kMillisPerMinute = 60 * kMillisPerSecond;
constexpr int64_t kMillisPerHour = 60 * kMillisPerMinute;
constexpr int64_t kMillisPerDay = 24 * kMillisPerHour;

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static constexpr int kDays[12] = {31, 28, 31, 30, 31, 30,
                                    31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

// Days since 1970-01-01 for a proleptic-Gregorian civil date.
// Reference: Howard Hinnant's days_from_civil.
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;                          // [0, 399]
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;  // [0, 146096]
  return era * 146097 + doe - 719468;
}

// Inverse of DaysFromCivil.
void CivilFromDays(int64_t z, int* y_out, int* m_out, int* d_out) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const int64_t mp = (5 * doy + 2) / 153;
  const int64_t d = doy - (153 * mp + 2) / 5 + 1;
  const int64_t m = mp + (mp < 10 ? 3 : -9);
  *y_out = static_cast<int>(y + (m <= 2));
  *m_out = static_cast<int>(m);
  *d_out = static_cast<int>(d);
}

// Floor division that is correct for negative numerators.
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

int64_t FloorMod(int64_t a, int64_t b) { return a - FloorDiv(a, b) * b; }

}  // namespace

std::string Duration::ToString() const {
  int64_t ms = ms_;
  std::string out;
  if (ms < 0) {
    out += "-";
    ms = -ms;
  }
  char buf[64];
  if (ms == 0) return "0s";
  const int64_t days = ms / kMillisPerDay;
  ms %= kMillisPerDay;
  const int64_t hours = ms / kMillisPerHour;
  ms %= kMillisPerHour;
  const int64_t minutes = ms / kMillisPerMinute;
  ms %= kMillisPerMinute;
  const int64_t seconds = ms / kMillisPerSecond;
  ms %= kMillisPerSecond;
  if (days > 0) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "d", days);
    out += buf;
  }
  if (hours > 0) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "h", hours);
    out += buf;
  }
  if (minutes > 0) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "m", minutes);
    out += buf;
  }
  if (seconds > 0) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "s", seconds);
    out += buf;
  }
  if (ms > 0) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ms", ms);
    out += buf;
  }
  return out;
}

StatusOr<TimePoint> TimePoint::FromCalendar(int year, int month, int day,
                                            int hour, int minute, int second) {
  if (month < 1 || month > 12) {
    return Status::InvalidArgument("month out of range");
  }
  if (day < 1 || day > DaysInMonth(year, month)) {
    return Status::InvalidArgument("day out of range");
  }
  if (hour < 0 || hour > 23 || minute < 0 || minute > 59 || second < 0 ||
      second > 59) {
    return Status::InvalidArgument("time-of-day out of range");
  }
  const int64_t days = DaysFromCivil(year, month, day);
  const int64_t ms = days * kMillisPerDay + hour * kMillisPerHour +
                     minute * kMillisPerMinute + second * kMillisPerSecond;
  return TimePoint::FromMillis(ms);
}

StatusOr<TimePoint> TimePoint::Parse(const std::string& text) {
  int y = 0, mo = 0, d = 0, h = 0, mi = 0, s = 0;
  int n = std::sscanf(text.c_str(), "%d-%d-%d %d:%d:%d", &y, &mo, &d, &h, &mi,
                      &s);
  if (n != 3 && n != 5 && n != 6) {
    return Status::InvalidArgument("unparseable timestamp: " + text);
  }
  return FromCalendar(y, mo, d, h, mi, s);
}

TimePoint TimePoint::StartOfDay() const {
  return TimePoint::FromMillis(FloorDiv(ms_, kMillisPerDay) * kMillisPerDay);
}

std::string TimePoint::ToString() const {
  int y, mo, d;
  CivilFromDays(FloorDiv(ms_, kMillisPerDay), &y, &mo, &d);
  const int64_t tod = FloorMod(ms_, kMillisPerDay);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", y, mo, d,
                static_cast<int>(tod / kMillisPerHour),
                static_cast<int>((tod / kMillisPerMinute) % 60),
                static_cast<int>((tod / kMillisPerSecond) % 60));
  return buf;
}

std::string TimePoint::ToDateString() const {
  int y, mo, d;
  CivilFromDays(FloorDiv(ms_, kMillisPerDay), &y, &mo, &d);
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, mo, d);
  return buf;
}

std::string Interval::ToString() const {
  return "[" + start.ToString() + ", " + end.ToString() + ")";
}

int64_t Deadline::NowSteadyMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Deadline Deadline::After(Duration budget) {
  const int64_t now = NowSteadyMillis();
  if (budget.millis() >= kInfiniteMs - now) return Infinite();
  return Deadline(now + budget.millis());
}

bool Deadline::Expired() const {
  if (IsInfinite()) return false;
  return NowSteadyMillis() >= at_steady_ms_;
}

Duration Deadline::Remaining() const {
  if (IsInfinite()) return Duration::Days(365);
  const int64_t left = at_steady_ms_ - NowSteadyMillis();
  return Duration::Millis(left > 0 ? left : 0);
}

}  // namespace cdibot
