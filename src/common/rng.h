#ifndef CDIBOT_COMMON_RNG_H_
#define CDIBOT_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cdibot {

/// Deterministic pseudo-random generator (xoshiro256**) with the sampling
/// helpers the simulator and A/B framework need. All randomness in the
/// library flows through explicitly seeded Rng instances so every experiment
/// is reproducible bit-for-bit.
class Rng {
 public:
  /// Seeds the state via SplitMix64 so nearby seeds give unrelated streams.
  explicit Rng(uint64_t seed);

  /// A new Rng whose stream is independent of this one (useful for giving
  /// each simulated entity its own generator).
  Rng Fork();

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box–Muller (cached pair).
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double Exponential(double rate);

  /// Poisson-distributed count with the given mean. Uses inversion for small
  /// means and a normal approximation above 30 (adequate for workload
  /// generation).
  int64_t Poisson(double mean);

  /// Pareto (heavy-tailed) sample with scale xm > 0 and shape alpha > 0.
  double Pareto(double xm, double alpha);

  /// LogNormal sample where the underlying normal has (mu, sigma).
  double LogNormal(double mu, double sigma);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Zero-total weights fall back to uniform. Requires non-empty weights
  /// with no negative entries.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace cdibot

#endif  // CDIBOT_COMMON_RNG_H_
