#ifndef CDIBOT_COMMON_CRC32_H_
#define CDIBOT_COMMON_CRC32_H_

#include <cstdint>
#include <string_view>

namespace cdibot {

/// CRC-32 (IEEE 802.3, the zlib/gzip polynomial 0xEDB88320). Used as the
/// integrity footer of checkpoint and event-log files: cheap, detects the
/// torn/truncated/bit-flipped writes the chaos suite injects, and stable
/// across platforms so checksums can be persisted alongside the data.
uint32_t Crc32(std::string_view data);

/// Incremental form: feed chunks with the previous return value as `seed`
/// (start from 0). Crc32(data) == Crc32Update(0, data).
uint32_t Crc32Update(uint32_t seed, std::string_view data);

}  // namespace cdibot

#endif  // CDIBOT_COMMON_CRC32_H_
