#ifndef CDIBOT_COMMON_TIME_H_
#define CDIBOT_COMMON_TIME_H_

#include <cstdint>
#include <string>

#include "common/statusor.h"

namespace cdibot {

/// Duration is a signed span of time with millisecond resolution. All event
/// periods, expire intervals, and service times in the library use this type
/// so unit mix-ups (seconds vs minutes) are caught at the type level.
class Duration {
 public:
  constexpr Duration() : ms_(0) {}

  static constexpr Duration Millis(int64_t ms) { return Duration(ms); }
  static constexpr Duration Seconds(int64_t s) { return Duration(s * 1000); }
  static constexpr Duration Minutes(int64_t m) {
    return Duration(m * 60 * 1000);
  }
  static constexpr Duration Hours(int64_t h) {
    return Duration(h * 3600 * 1000);
  }
  static constexpr Duration Days(int64_t d) {
    return Duration(d * 86400 * 1000);
  }
  static constexpr Duration Zero() { return Duration(0); }

  constexpr int64_t millis() const { return ms_; }
  constexpr double seconds() const { return static_cast<double>(ms_) / 1e3; }
  constexpr double minutes() const { return static_cast<double>(ms_) / 6e4; }
  constexpr double hours() const { return static_cast<double>(ms_) / 3.6e6; }
  constexpr double days() const { return static_cast<double>(ms_) / 8.64e7; }

  constexpr bool IsZero() const { return ms_ == 0; }
  constexpr bool IsNegative() const { return ms_ < 0; }

  constexpr Duration operator+(Duration o) const {
    return Duration(ms_ + o.ms_);
  }
  constexpr Duration operator-(Duration o) const {
    return Duration(ms_ - o.ms_);
  }
  constexpr Duration operator*(int64_t k) const { return Duration(ms_ * k); }
  constexpr Duration operator/(int64_t k) const { return Duration(ms_ / k); }
  Duration& operator+=(Duration o) {
    ms_ += o.ms_;
    return *this;
  }
  Duration& operator-=(Duration o) {
    ms_ -= o.ms_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

  /// Human-readable rendering, e.g. "2m30s", "1d4h", "850ms".
  std::string ToString() const;

 private:
  explicit constexpr Duration(int64_t ms) : ms_(ms) {}
  int64_t ms_;
};

/// TimePoint is an absolute instant: milliseconds since the Unix epoch, UTC.
/// The library treats all timestamps as UTC; rendering uses a fixed calendar
/// (proleptic Gregorian) with no time-zone or leap-second handling, which is
/// sufficient for synthetic workloads and daily CDI windows.
class TimePoint {
 public:
  constexpr TimePoint() : ms_(0) {}

  static constexpr TimePoint FromMillis(int64_t ms) { return TimePoint(ms); }

  /// Builds a TimePoint from calendar fields (UTC). Returns InvalidArgument
  /// for out-of-range fields.
  static StatusOr<TimePoint> FromCalendar(int year, int month, int day,
                                          int hour = 0, int minute = 0,
                                          int second = 0);

  /// Parses "YYYY-MM-DD" or "YYYY-MM-DD HH:MM[:SS]".
  static StatusOr<TimePoint> Parse(const std::string& text);

  constexpr int64_t millis() const { return ms_; }

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint(ms_ + d.millis());
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint(ms_ - d.millis());
  }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::Millis(ms_ - o.ms_);
  }
  TimePoint& operator+=(Duration d) {
    ms_ += d.millis();
    return *this;
  }
  constexpr auto operator<=>(const TimePoint&) const = default;

  /// Start of the UTC day containing this instant.
  TimePoint StartOfDay() const;

  /// "YYYY-MM-DD HH:MM:SS" (UTC).
  std::string ToString() const;
  /// "YYYY-MM-DD" (UTC).
  std::string ToDateString() const;

 private:
  explicit constexpr TimePoint(int64_t ms) : ms_(ms) {}
  int64_t ms_;
};

/// Deadline is an execution budget: an instant on the process's MONOTONIC
/// clock by which an operation should have finished. Unlike TimePoint (event
/// time, epoch-based, simulation-controlled), a Deadline measures real
/// elapsed compute/IO time, so it is what the pipeline propagates to bound
/// work under overload — a daily job, a streaming preview, or a checkpoint
/// write checks Expired() between units of work and early-exits with a
/// partial result instead of blocking the caller indefinitely.
///
/// The default-constructed Deadline is infinite (never expires), so adding a
/// Deadline parameter to an existing API changes nothing for callers that do
/// not pass one. Deadlines are plain values: cheap to copy and pass by value.
class Deadline {
 public:
  /// Never expires.
  constexpr Deadline() : at_steady_ms_(kInfiniteMs) {}

  static constexpr Deadline Infinite() { return Deadline(); }

  /// Expires `budget` from now (monotonic clock). A non-positive budget is
  /// already expired.
  static Deadline After(Duration budget);

  /// Test hook: a deadline pinned at an absolute monotonic-clock reading,
  /// for deterministic expiry checks against NowSteadyMillis().
  static constexpr Deadline AtSteadyMillis(int64_t ms) { return Deadline(ms); }

  /// Milliseconds since an arbitrary fixed origin on the monotonic clock.
  static int64_t NowSteadyMillis();

  constexpr bool IsInfinite() const { return at_steady_ms_ == kInfiniteMs; }

  /// True once the budget is spent. Infinite deadlines never expire.
  bool Expired() const;

  /// Budget left; zero when expired, Duration::Days(365) floor-capped for
  /// infinite deadlines (callers use it to bound sleeps, so "a year" is
  /// effectively unbounded without risking int64 overflow downstream).
  Duration Remaining() const;

  friend constexpr bool operator==(const Deadline&, const Deadline&) = default;

 private:
  static constexpr int64_t kInfiniteMs = INT64_MAX;
  explicit constexpr Deadline(int64_t at_ms) : at_steady_ms_(at_ms) {}
  int64_t at_steady_ms_;
};

/// A half-open time interval [start, end). Intervals with end <= start are
/// empty. Event periods and service windows are Intervals.
struct Interval {
  TimePoint start;
  TimePoint end;

  constexpr Interval() = default;
  constexpr Interval(TimePoint s, TimePoint e) : start(s), end(e) {}

  constexpr bool empty() const { return end <= start; }
  constexpr Duration length() const {
    return empty() ? Duration::Zero() : end - start;
  }
  constexpr bool Contains(TimePoint t) const { return start <= t && t < end; }
  /// True when the two intervals share at least one instant. Empty
  /// intervals (including inverted ones, end <= start) overlap nothing.
  constexpr bool Overlaps(const Interval& o) const {
    return !empty() && !o.empty() && start < o.end && o.start < end;
  }

  /// The overlap of two intervals (possibly empty).
  Interval Intersect(const Interval& o) const {
    return Interval(std::max(start, o.start), std::min(end, o.end));
  }

  /// Clamps this interval into `bounds` (possibly producing empty).
  Interval ClampTo(const Interval& bounds) const { return Intersect(bounds); }

  std::string ToString() const;

  friend constexpr bool operator==(const Interval&, const Interval&) = default;
};

}  // namespace cdibot

#endif  // CDIBOT_COMMON_TIME_H_
