#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "obs/metrics.h"

namespace cdibot {
namespace {

// Submit() and ParallelFor() are the process's unit-of-work fan-out; the
// counters make executor pressure visible in statusz (tasks per run,
// chunk-claim granularity) without touching the dispatch fast path more
// than one relaxed add.
obs::Counter& TasksCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("common.pool.tasks");
  return *c;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    if (joined_) return;
    joined_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

bool ThreadPool::accepting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !shutdown_;
}

void ThreadPool::NoteRejected() {
  static obs::Counter* rejected =
      obs::MetricsRegistry::Global().GetCounter("common.pool.rejected");
  rejected->Increment();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    TasksCounter().Increment();
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  static obs::Counter* parallel_fors =
      obs::MetricsRegistry::Global().GetCounter("common.pool.parallel_fors");
  static obs::Counter* iterations = obs::MetricsRegistry::Global().GetCounter(
      "common.pool.parallel_for_items");
  parallel_fors->Increment();
  iterations->Add(n);
  const size_t num_chunks = std::min(n, num_threads() * 4);
  const size_t chunk_size = (n + num_chunks - 1) / num_chunks;

  // Chunks are claimed from a shared counter rather than pre-assigned to
  // tasks, and the calling thread claims chunks too. This keeps ParallelFor
  // deadlock-free when invoked from inside a pool task (the worker runs its
  // own chunks instead of blocking on futures no one can execute) and lets
  // idle workers steal whatever the caller has not reached yet. Helper
  // tasks may be dequeued after the loop completes; they find no chunk left
  // and return without touching `fn`, so the state they share must own its
  // own copy of the function.
  struct ForState {
    std::function<void(size_t)> fn;
    size_t n = 0;
    size_t chunk_size = 0;
    size_t num_chunks = 0;
    std::atomic<size_t> next_chunk{0};
    std::atomic<size_t> chunks_done{0};
    std::mutex mu;
    std::condition_variable done_cv;
  };
  auto state = std::make_shared<ForState>();
  state->fn = fn;
  state->n = n;
  state->chunk_size = chunk_size;
  state->num_chunks = num_chunks;

  auto run_chunks = [](const std::shared_ptr<ForState>& s) {
    while (true) {
      const size_t c = s->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= s->num_chunks) return;
      const size_t begin = c * s->chunk_size;
      const size_t end = std::min(s->n, begin + s->chunk_size);
      for (size_t i = begin; i < end; ++i) s->fn(i);
      if (s->chunks_done.fetch_add(1) + 1 == s->num_chunks) {
        std::lock_guard<std::mutex> lock(s->mu);
        s->done_cv.notify_all();
      }
    }
  };

  const size_t helpers = std::min(num_chunks, num_threads());
  for (size_t h = 0; h + 1 < helpers; ++h) {
    Submit([state, run_chunks]() { run_chunks(state); });
  }
  run_chunks(state);

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&state]() {
    return state->chunks_done.load() == state->num_chunks;
  });
}

ThreadPool& DefaultThreadPool() {
  static ThreadPool* pool =
      new ThreadPool(std::max(2u, std::thread::hardware_concurrency()));
  return *pool;
}

}  // namespace cdibot
