#ifndef CDIBOT_COMMON_STRINGS_H_
#define CDIBOT_COMMON_STRINGS_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace cdibot {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `text` at every occurrence of `sep`; empty pieces are kept so that
/// Join(Split(x)) round-trips.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Joins `pieces` with `sep` between them.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view text);

/// Lowercases ASCII characters.
std::string StrToLower(std::string_view text);

/// True if `text` contains `needle`.
bool StrContains(std::string_view text, std::string_view needle);

}  // namespace cdibot

#endif  // CDIBOT_COMMON_STRINGS_H_
