#ifndef CDIBOT_COMMON_STATUS_H_
#define CDIBOT_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace cdibot {

/// Error codes carried by Status. Mirrors the subset of canonical codes the
/// library needs; numbering is stable so codes can be persisted.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kResourceExhausted = 8,
  kAborted = 9,
  kUnavailable = 10,
  kDataLoss = 11,
};

/// Returns a stable human-readable name for `code`, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// True for codes that describe transient conditions worth retrying.
constexpr bool StatusCodeIsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kResourceExhausted ||
         code == StatusCode::kAborted;
}

/// Status is the library-wide error model (RocksDB idiom): every fallible
/// operation returns a Status (or StatusOr<T>) instead of throwing. A Status
/// is either OK or carries a code plus a human-readable message.
///
/// Statuses are cheap to copy in the OK case (no allocation) and must be
/// checked by the caller; ignoring a non-OK Status is a logic error.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(StatusCode::kUnimplemented, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(StatusCode::kResourceExhausted, msg);
  }
  static Status Aborted(std::string_view msg) {
    return Status(StatusCode::kAborted, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(StatusCode::kUnavailable, msg);
  }
  static Status DataLoss(std::string_view msg) {
    return Status(StatusCode::kDataLoss, msg);
  }

  /// True iff the status carries no error.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }

  /// True for codes that describe transient conditions a caller may retry
  /// (Unavailable, ResourceExhausted, Aborted). RetryPolicy keys off this;
  /// everything else — including DataLoss, which needs recovery rather than
  /// repetition — is permanent.
  bool IsRetryable() const { return StatusCodeIsRetryable(code_); }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string_view msg)
      : code_(code), message_(msg) {}

  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Use inside functions returning
/// Status:
///   CDIBOT_RETURN_IF_ERROR(DoThing());
#define CDIBOT_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::cdibot::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                        \
  } while (false)

}  // namespace cdibot

#endif  // CDIBOT_COMMON_STATUS_H_
