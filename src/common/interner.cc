#include "common/interner.h"

namespace cdibot {

StringInterner::~StringInterner() {
  for (auto& slot : chunks_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

uint32_t StringInterner::Intern(std::string_view s) {
  const uint32_t hit = Lookup(s);
  if (hit != kInvalidId) return hit;

  std::lock_guard<std::mutex> lock(mu_);
  // Double-check under the lock: another thread may have interned `s`
  // between the snapshot miss and here.
  if (auto it = index_.find(s); it != index_.end()) return it->second;

  const size_t id = size_.load(std::memory_order_relaxed);
  const size_t chunk_idx = id >> kChunkShift;
  if (chunk_idx >= kMaxChunks) {
    // Interner full (~4.2M strings). Ids must stay dense and valid, so the
    // only safe degradation is to stop deduplicating -- map everything
    // past the cap onto the last slot. In practice this is unreachable.
    return static_cast<uint32_t>(kMaxChunks * kChunkSize - 1);
  }
  Chunk* chunk = chunks_[chunk_idx].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    chunks_[chunk_idx].store(chunk, std::memory_order_release);
  }
  std::string& slot = chunk->slots[id & (kChunkSize - 1)];
  slot.assign(s.data(), s.size());
  index_.emplace(std::string_view(slot), static_cast<uint32_t>(id));
  // Publish the id only after the slot holds the string, so a NameOf on
  // the returned id (possibly from another thread) sees complete bytes.
  size_.store(id + 1, std::memory_order_release);

  // Republish the lock-free lookup snapshot on a doubling schedule: each
  // rebuild copies the whole map, so doubling keeps total rebuild work
  // linear in the number of distinct strings.
  if (id + 1 >= next_publish_) {
    auto snap = std::make_shared<LookupSnapshot>();
    snap->index = index_;
    snapshot_.store(std::move(snap), std::memory_order_release);
    next_publish_ = (id + 1) * 2;
  }
  return static_cast<uint32_t>(id);
}

uint32_t StringInterner::Lookup(std::string_view s) const {
  if (const auto snap = snapshot_.load(std::memory_order_acquire)) {
    if (auto it = snap->index.find(s); it != snap->index.end()) {
      return it->second;
    }
  }
  // Not in the snapshot: either truly absent or interned since the last
  // republish. The authoritative map decides.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(s);
  return it == index_.end() ? kInvalidId : it->second;
}

std::string_view StringInterner::NameOf(uint32_t id) const {
  if (id >= size_.load(std::memory_order_acquire)) return {};
  const Chunk* chunk = chunks_[id >> kChunkShift].load(std::memory_order_acquire);
  if (chunk == nullptr) return {};
  return chunk->slots[id & (kChunkSize - 1)];
}

StringInterner& GlobalInterner() {
  static StringInterner* interner = new StringInterner();
  return *interner;
}

}  // namespace cdibot
