#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "obs/metrics.h"

namespace cdibot {

RetryPolicy::RetryPolicy(RetryOptions options, uint64_t jitter_seed)
    : options_(options), rng_(jitter_seed) {
  options_.max_attempts = std::max(1, options_.max_attempts);
  options_.jitter = std::clamp(options_.jitter, 0.0, 1.0);
  if (options_.backoff_multiplier < 1.0) options_.backoff_multiplier = 1.0;
}

Status RetryPolicy::Run(const std::function<Status()>& op) {
  return Run(op, Deadline::Infinite());
}

Status RetryPolicy::Run(const std::function<Status()>& op,
                        const Deadline& deadline) {
  // Fleet-wide retry accounting: `runs` counts Run() calls, `attempts`
  // every op() invocation, so attempts/runs > 1 means something is flaky.
  static obs::Counter* runs =
      obs::MetricsRegistry::Global().GetCounter("common.retry.runs");
  static obs::Counter* attempts =
      obs::MetricsRegistry::Global().GetCounter("common.retry.attempts");
  static obs::Counter* retried =
      obs::MetricsRegistry::Global().GetCounter("common.retry.retried");
  static obs::Counter* exhausted =
      obs::MetricsRegistry::Global().GetCounter("common.retry.exhausted");
  static obs::Counter* deadline_cuts = obs::MetricsRegistry::Global().GetCounter(
      "common.retry.deadline_exhausted");
  runs->Increment();
  Duration backoff = options_.initial_backoff;
  Status last = Status::OK();
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    attempts->Increment();
    last = op();
    last_attempts_ = attempt;
    if (last.ok() || !last.IsRetryable()) return last;
    if (attempt == options_.max_attempts) {
      exhausted->Increment();
      CDIBOT_LOG_EVERY_N(Warning, 32)
          << "retry budget exhausted after " << attempt
          << " attempts: " << last.ToString();
      break;
    }
    if (deadline.Expired()) {
      deadline_cuts->Increment();
      CDIBOT_LOG_EVERY_N(Warning, 32)
          << "retry stopped by deadline after " << attempt
          << " attempts: " << last.ToString();
      break;
    }
    retried->Increment();
    CDIBOT_LOG_EVERY_N(Info, 64)
        << "retrying (attempt " << attempt << "/" << options_.max_attempts
        << "): " << last.ToString();

    // Full jitter: uniform over [nominal * (1 - jitter), nominal]. The
    // draw comes from the seeded rng, so every schedule is reproducible.
    const double scale = 1.0 - options_.jitter * rng_.NextDouble();
    auto sleep_ms = static_cast<int64_t>(
        static_cast<double>(backoff.millis()) * scale);
    sleep_ms = std::max<int64_t>(0, sleep_ms);
    if (!deadline.IsInfinite()) {
      sleep_ms = std::min(sleep_ms, deadline.Remaining().millis());
    }
    const Duration sleep = Duration::Millis(sleep_ms);
    if (sleeper_) {
      sleeper_(sleep);
    } else if (!sleep.IsZero()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep.millis()));
    }
    const auto next_ms = static_cast<int64_t>(
        static_cast<double>(backoff.millis()) * options_.backoff_multiplier);
    backoff = std::min(options_.max_backoff, Duration::Millis(next_ms));
  }
  return last;
}

}  // namespace cdibot
