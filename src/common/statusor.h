#ifndef CDIBOT_COMMON_STATUSOR_H_
#define CDIBOT_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace cdibot {

/// StatusOr<T> holds either a value of type T or a non-OK Status explaining
/// why the value is absent. It is the return type for fallible functions that
/// produce a value:
///
///   StatusOr<double> q = ComputeCdi(events, period);
///   if (!q.ok()) return q.status();
///   Use(q.value());
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit so `return status;` works).
  /// Constructing from an OK status is a logic error and is converted to an
  /// Internal error to keep the invariant "no value implies !ok()".
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  /// The status; OK when a value is present.
  const Status& status() const { return status_; }

  /// The contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if present, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Unwraps a StatusOr into `lhs`, returning the error to the caller on
/// failure. `lhs` must be a declaration or assignable expression:
///   CDIBOT_ASSIGN_OR_RETURN(auto table, LoadTable(name));
#define CDIBOT_ASSIGN_OR_RETURN(lhs, expr)              \
  CDIBOT_ASSIGN_OR_RETURN_IMPL_(                        \
      CDIBOT_STATUS_CONCAT_(_status_or_, __LINE__), lhs, expr)

#define CDIBOT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)   \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define CDIBOT_STATUS_CONCAT_(a, b) CDIBOT_STATUS_CONCAT_IMPL_(a, b)
#define CDIBOT_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace cdibot

#endif  // CDIBOT_COMMON_STATUSOR_H_
