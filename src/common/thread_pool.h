#ifndef CDIBOT_COMMON_THREAD_POOL_H_
#define CDIBOT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace cdibot {

/// Fixed-size worker pool backing the dataflow engine's parallel operators.
/// Tasks are closures; Submit returns a future. The pool drains and joins in
/// its destructor, so a ThreadPool must outlive all work submitted to it.
///
/// Shutdown follows drain-then-reject semantics: every task enqueued before
/// shutdown began is executed, and any Submit racing with (or arriving
/// after) shutdown is rejected — the task is never enqueued and its future
/// reports std::future_errc::broken_promise instead of hanging forever on a
/// queue no worker will ever drain. This is what lets a supervisor restart
/// a pipeline stage: the old stage's pool can be torn down mid-traffic
/// without stranding producers on futures that never resolve.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Begins shutdown (new Submits are rejected from this point on), drains
  /// every already-queued task, and joins the workers. Idempotent; the
  /// destructor calls it.
  void Shutdown();

  /// False once Shutdown() has begun; a false return means Submit would
  /// reject. Advisory only — a racing Shutdown can begin right after.
  bool accepting() const;

  /// Enqueues `fn`; the returned future resolves with its result. During or
  /// after Shutdown the task is rejected: it never runs, and the returned
  /// future throws std::future_error(broken_promise) on get().
  template <typename Fn>
  auto Submit(Fn fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) {
        // Rejected: dropping the packaged_task here breaks its promise, so
        // the caller observes the rejection instead of blocking forever.
        NoteRejected();
        return result;
      }
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all
  /// iterations finish. Iterations are chunked to limit task overhead.
  /// The calling thread claims and executes chunks itself alongside the
  /// workers, so ParallelFor is safe to call from inside a pool task (and
  /// on a 1-thread pool) without deadlocking — nested calls simply run
  /// their chunks on the calling worker. `fn` must not throw.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();
  /// Bumps the rejected-submit counter (out of line so the obs dependency
  /// stays in the .cc).
  static void NoteRejected();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  bool joined_ = false;
  std::vector<std::thread> workers_;
};

/// A process-wide default pool sized to the hardware concurrency. Intended
/// for benches and examples; library code takes an explicit pool.
ThreadPool& DefaultThreadPool();

}  // namespace cdibot

#endif  // CDIBOT_COMMON_THREAD_POOL_H_
