#ifndef CDIBOT_COMMON_THREAD_POOL_H_
#define CDIBOT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace cdibot {

/// Fixed-size worker pool backing the dataflow engine's parallel operators.
/// Tasks are closures; Submit returns a future. The pool drains and joins in
/// its destructor, so a ThreadPool must outlive all work submitted to it.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn`; the returned future resolves with its result.
  template <typename Fn>
  auto Submit(Fn fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all
  /// iterations finish. Iterations are chunked to limit task overhead.
  /// The calling thread claims and executes chunks itself alongside the
  /// workers, so ParallelFor is safe to call from inside a pool task (and
  /// on a 1-thread pool) without deadlocking — nested calls simply run
  /// their chunks on the calling worker. `fn` must not throw.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// A process-wide default pool sized to the hardware concurrency. Intended
/// for benches and examples; library code takes an explicit pool.
ThreadPool& DefaultThreadPool();

}  // namespace cdibot

#endif  // CDIBOT_COMMON_THREAD_POOL_H_
