#include "storage/catalog_config.h"

#include <map>

#include "common/strings.h"

namespace cdibot {

StatusOr<std::vector<EventOverride>> LoadOverridesFromConfig(
    const ConfigStore& config) {
  std::map<std::string, EventOverride> by_event;
  for (const std::string& key : config.KeysWithPrefix("catalog/")) {
    const std::vector<std::string> parts = StrSplit(key, '/');
    if (parts.size() != 3) {
      return Status::InvalidArgument("bad override key: " + key);
    }
    EventOverride& ov = by_event[parts[1]];
    ov.event_name = parts[1];
    if (parts[2] == "level") {
      CDIBOT_ASSIGN_OR_RETURN(const std::string text, config.Get(key));
      auto level = SeverityFromString(text);
      if (!level.ok()) {
        return Status::InvalidArgument("bad severity in " + key + ": " +
                                       text);
      }
      ov.level = level.value();
    } else if (parts[2] == "window_ms") {
      CDIBOT_ASSIGN_OR_RETURN(const int64_t ms, config.GetInt(key));
      ov.window = Duration::Millis(ms);
    } else if (parts[2] == "expire_ms") {
      CDIBOT_ASSIGN_OR_RETURN(const int64_t ms, config.GetInt(key));
      ov.expire_interval = Duration::Millis(ms);
    } else {
      return Status::InvalidArgument("unknown override field: " + key);
    }
  }
  std::vector<EventOverride> out;
  out.reserve(by_event.size());
  for (auto& [name, ov] : by_event) out.push_back(std::move(ov));
  return out;
}

}  // namespace cdibot
