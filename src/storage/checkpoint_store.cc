#include "storage/checkpoint_store.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <utility>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cdibot {
namespace {

namespace fs = std::filesystem;

constexpr char kSlotPrefix[] = "slot-";

/// Parses "slot-000042" -> 42; nullopt for anything else.
std::optional<uint64_t> SlotSeq(const std::string& name) {
  if (name.rfind(kSlotPrefix, 0) != 0) return std::nullopt;
  const std::string digits = name.substr(sizeof(kSlotPrefix) - 1);
  if (digits.empty()) return std::nullopt;
  char* end = nullptr;
  const unsigned long long seq = std::strtoull(digits.c_str(), &end, 10);
  if (end != digits.c_str() + digits.size()) return std::nullopt;
  return static_cast<uint64_t>(seq);
}

}  // namespace

StreamCheckpointStore::StreamCheckpointStore(std::string root,
                                             CheckpointStoreOptions options)
    : root_(std::move(root)),
      options_(std::move(options)),
      retry_(options_.retry, options_.retry_seed),
      breaker_(std::make_shared<flow::CircuitBreaker>("checkpoint_store",
                                                      options_.breaker)) {
  if (options_.keep < 1) options_.keep = 1;
}

StatusOr<StreamCheckpointStore> StreamCheckpointStore::Open(
    const std::string& root, CheckpointStoreOptions options) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    return Status::Unavailable("cannot create checkpoint root " + root +
                               ": " + ec.message());
  }
  StreamCheckpointStore store(root, std::move(options));
  uint64_t max_seq = 0;
  bool any = false;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (!entry.is_directory()) continue;
    const auto seq = SlotSeq(entry.path().filename().string());
    if (!seq.has_value()) continue;
    any = true;
    max_seq = std::max(max_seq, *seq);
  }
  store.next_seq_ = any ? max_seq + 1 : 0;
  return store;
}

std::string StreamCheckpointStore::SlotPath(uint64_t seq) const {
  return root_ + "/" +
         StrFormat("%s%06llu", kSlotPrefix,
                   static_cast<unsigned long long>(seq));
}

std::vector<std::string> StreamCheckpointStore::ListSlots() const {
  std::vector<std::pair<uint64_t, std::string>> slots;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    const auto seq = SlotSeq(name);
    if (seq.has_value()) slots.emplace_back(*seq, name);
  }
  std::sort(slots.begin(), slots.end());
  std::vector<std::string> names;
  names.reserve(slots.size());
  for (auto& [seq, name] : slots) names.push_back(std::move(name));
  return names;
}

Status StreamCheckpointStore::Save(const StreamCheckpoint& ckpt,
                                   const Deadline& deadline) {
  TRACE_SPAN("storage.checkpoint_save");
  static obs::Histogram* save_ns =
      obs::MetricsRegistry::Global().GetHistogram("storage.checkpoint_save_ns");
  obs::ScopedTimer timer(save_ns);
  const uint64_t seq = next_seq_;
  const std::string slot = SlotPath(seq);
  const Status saved = retry_.Run(
      [&]() -> Status {
        // The breaker gates every ATTEMPT and hears every outcome, so a
        // retry loop against a dead disk trips it mid-schedule and the
        // remaining attempts fail fast without touching the disk. An
        // already-open breaker rejects the first attempt before any I/O;
        // FailedPrecondition is non-retryable, so the loop (and callers
        // wrapping Save in their own retries) stop immediately.
        auto record = [this](Status st) {
          if (st.ok()) {
            breaker_->RecordSuccess();
          } else {
            breaker_->RecordFailure();
          }
          return st;
        };
        if (!breaker_->Allow()) {
          return Status::FailedPrecondition(
              "checkpoint store circuit breaker open (disk failing); save "
              "rejected without I/O");
        }
        if (options_.io_fault) {
          const Status injected = options_.io_fault("save");
          if (!injected.ok()) return record(injected);
        }
        std::error_code ec;
        fs::create_directories(slot, ec);
        if (ec) {
          return record(Status::Unavailable("cannot create slot " + slot +
                                            ": " + ec.message()));
        }
        return record(SaveStreamCheckpoint(ckpt, slot));
      },
      deadline);
  static obs::Counter* saves =
      obs::MetricsRegistry::Global().GetCounter("storage.checkpoint_saves");
  static obs::Counter* save_failures = obs::MetricsRegistry::Global().GetCounter(
      "storage.checkpoint_save_failures");
  if (!saved.ok()) {
    save_failures->Increment();
    // A failed save must not leave a half-written slot lying around where
    // LoadLastGood would have to sniff (and reject) it forever.
    std::error_code ec;
    fs::remove_all(slot, ec);
    return saved;
  }
  saves->Increment();
  next_seq_ = seq + 1;

  // Prune old generations only after the new one is fully durable.
  std::vector<std::string> slots = ListSlots();
  const size_t keep = static_cast<size_t>(std::max(1, options_.keep));
  if (slots.size() > keep) {
    static obs::Counter* pruned = obs::MetricsRegistry::Global().GetCounter(
        "storage.checkpoint_slots_pruned");
    for (size_t i = 0; i + keep < slots.size(); ++i) {
      std::error_code ec;
      fs::remove_all(root_ + "/" + slots[i], ec);
      pruned->Increment();
    }
  }
  return Status::OK();
}

StatusOr<StreamCheckpoint> StreamCheckpointStore::LoadLastGood(
    int* slots_skipped) {
  TRACE_SPAN("storage.checkpoint_load");
  static obs::Counter* loads =
      obs::MetricsRegistry::Global().GetCounter("storage.checkpoint_loads");
  static obs::Counter* skipped = obs::MetricsRegistry::Global().GetCounter(
      "storage.checkpoint_slots_skipped");
  loads->Increment();
  if (slots_skipped != nullptr) *slots_skipped = 0;
  std::vector<std::string> slots = ListSlots();
  Status last_error = Status::NotFound("no checkpoint slots in " + root_);
  for (auto it = slots.rbegin(); it != slots.rend(); ++it) {
    const std::string slot = root_ + "/" + *it;
    StatusOr<StreamCheckpoint> loaded = Status::NotFound("unattempted");
    const Status attempt = retry_.Run([&]() -> Status {
      if (options_.io_fault) {
        CDIBOT_RETURN_IF_ERROR(options_.io_fault("load"));
      }
      loaded = LoadStreamCheckpoint(slot);
      // Corruption (DataLoss, InvalidArgument, ...) is permanent for this
      // slot; only transient statuses propagate as retryable.
      return loaded.ok() ? Status::OK() : loaded.status();
    });
    if (attempt.ok()) return std::move(loaded).value();
    last_error = attempt;
    skipped->Increment();
    if (slots_skipped != nullptr) ++*slots_skipped;
  }
  return last_error;
}

}  // namespace cdibot
