#include "storage/event_log.h"

#include <algorithm>
#include <filesystem>

#include "common/strings.h"
#include "dataflow/csv.h"
#include "storage/atomic_io.h"

namespace cdibot {

void EventLog::Append(const RawEvent& event) {
  Partition& part = partitions_[event.time.StartOfDay().millis()];
  const uint32_t row = part.rows.Append(event);
  part.by_target[part.rows.target_id(row)].push_back(row);
  const int64_t t = part.rows.time_ms(row);
  if (t < part.last_time_ms) {
    part.sorted_on_append = false;
  } else {
    part.last_time_ms = t;
  }
  ++size_;
}

void EventLog::AppendBatch(const std::vector<RawEvent>& events) {
  for (const RawEvent& ev : events) Append(ev);
}

size_t EventLog::size() const { return size_; }

EventSpan EventLog::Query(const EventQuery& query) const {
  const Interval range(query.interval.start - query.margin,
                       query.interval.end + query.margin);
  EventSpan span(range);
  if (range.empty() || query.target_id == StringInterner::kInvalidId) {
    return span;
  }
  const int64_t first_day = range.start.StartOfDay().millis();
  for (auto it = partitions_.lower_bound(first_day);
       it != partitions_.end() && it->first < range.end.millis(); ++it) {
    auto idx = it->second.by_target.find(query.target_id);
    if (idx == it->second.by_target.end()) continue;
    span.AddSegment(EventSpan::Segment{
        .rows = &it->second.rows,
        .indices = idx->second.data(),
        .first = 0,
        .last = static_cast<uint32_t>(idx->second.size())});
  }
  return span;
}

EventSpan EventLog::QueryAll(const Interval& interval, Duration margin) const {
  const Interval range(interval.start - margin, interval.end + margin);
  EventSpan span(range);
  if (range.empty()) return span;
  const int64_t first_day = range.start.StartOfDay().millis();
  for (auto it = partitions_.lower_bound(first_day);
       it != partitions_.end() && it->first < range.end.millis(); ++it) {
    span.AddSegment(EventSpan::Segment{
        .rows = &it->second.rows,
        .indices = nullptr,
        .first = 0,
        .last = static_cast<uint32_t>(it->second.rows.size())});
  }
  return span;
}

namespace {

/// Appends the materialized events of `rows` selected by `pick` (nullptr
/// for all rows) that fall in `range`, in stable time order. Partitions
/// are day-disjoint, so concatenating per-partition sorted runs in day
/// order is the k-way merge degenerate case — no global sort needed, and
/// a partition whose rows arrived already time-ordered skips its sort
/// entirely.
void AppendSortedRun(const EventRows& rows,
                     const std::vector<uint32_t>* pick, bool sorted_on_append,
                     const Interval& range, std::vector<RawEvent>* out) {
  std::vector<uint32_t> matched;
  const size_t n = pick != nullptr ? pick->size() : rows.size();
  matched.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t row =
        pick != nullptr ? (*pick)[i] : static_cast<uint32_t>(i);
    if (range.Contains(rows.time(row))) matched.push_back(row);
  }
  if (!sorted_on_append) {
    // Row order is append order, so sorting by time with a stable sort
    // reproduces exactly what stable_sort over materialized events did.
    std::stable_sort(matched.begin(), matched.end(),
                     [&rows](uint32_t a, uint32_t b) {
                       return rows.time_ms(a) < rows.time_ms(b);
                     });
  }
  for (const uint32_t row : matched) out->push_back(rows.Materialize(row));
}

}  // namespace

std::vector<RawEvent> EventLog::Search(const Interval& range) const {
  std::vector<RawEvent> out;
  if (range.empty()) return out;
  const int64_t first_day = range.start.StartOfDay().millis();
  for (auto it = partitions_.lower_bound(first_day);
       it != partitions_.end() && it->first < range.end.millis(); ++it) {
    AppendSortedRun(it->second.rows, nullptr, it->second.sorted_on_append,
                    range, &out);
  }
  return out;
}

std::vector<RawEvent> EventLog::SearchTarget(const Interval& range,
                                             const std::string& target) const {
  std::vector<RawEvent> out;
  if (range.empty()) return out;
  const uint32_t target_id = GlobalInterner().Lookup(target);
  if (target_id == StringInterner::kInvalidId) return out;
  const int64_t first_day = range.start.StartOfDay().millis();
  for (auto it = partitions_.lower_bound(first_day);
       it != partitions_.end() && it->first < range.end.millis(); ++it) {
    auto idx = it->second.by_target.find(target_id);
    if (idx == it->second.by_target.end()) continue;
    // A target's rows are in append order; they may interleave other
    // targets' rows non-monotonically even in a sorted_on_append
    // partition, but among themselves they inherit the partition's
    // monotonicity, so the fast path still applies.
    AppendSortedRun(it->second.rows, &idx->second,
                    it->second.sorted_on_append, range, &out);
  }
  return out;
}

std::vector<TimePoint> EventLog::PartitionDays() const {
  std::vector<TimePoint> out;
  out.reserve(partitions_.size());
  for (const auto& [day_ms, _] : partitions_) {
    out.push_back(TimePoint::FromMillis(day_ms));
  }
  return out;
}

namespace {

constexpr char kEventLogManifestFormat[] = "cdibot-eventlog-v2";

dataflow::Schema ExportSchema() {
  using dataflow::Field;
  using dataflow::ValueType;
  return dataflow::Schema({Field{"name", ValueType::kString},
                           Field{"time_ms", ValueType::kInt},
                           Field{"target", ValueType::kString},
                           Field{"level", ValueType::kInt},
                           Field{"expire_ms", ValueType::kInt},
                           Field{"duration_ms", ValueType::kInt}});
}

/// Rebuilds one RawEvent from an export-schema row.
StatusOr<RawEvent> ImportRow(const dataflow::Row& row) {
  RawEvent ev;
  CDIBOT_ASSIGN_OR_RETURN(ev.name, row[0].AsString());
  CDIBOT_ASSIGN_OR_RETURN(const int64_t time_ms, row[1].AsInt());
  ev.time = TimePoint::FromMillis(time_ms);
  CDIBOT_ASSIGN_OR_RETURN(ev.target, row[2].AsString());
  CDIBOT_ASSIGN_OR_RETURN(const int64_t level, row[3].AsInt());
  if (level < 1 || level > kNumSeverityLevels) {
    return Status::InvalidArgument(
        StrFormat("bad severity ordinal %lld", static_cast<long long>(level)));
  }
  ev.level = static_cast<Severity>(level);
  CDIBOT_ASSIGN_OR_RETURN(const int64_t expire_ms, row[4].AsInt());
  ev.expire_interval = Duration::Millis(expire_ms);
  CDIBOT_ASSIGN_OR_RETURN(const int64_t duration_ms, row[5].AsInt());
  if (duration_ms >= 0) {
    ev.attrs["duration_ms"] =
        StrFormat("%lld", static_cast<long long>(duration_ms));
  }
  return ev;
}

/// Lists `dir`'s events_*.csv files in sorted (deterministic) order.
StatusOr<std::vector<std::string>> ListEventFiles(const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return Status::NotFound("not a directory: " + dir);
  }
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("events_", 0) == 0 &&
        name.size() > 4 && name.substr(name.size() - 4) == ".csv") {
      names.push_back(name);
    }
  }
  if (ec) return Status::Internal("cannot list " + dir + ": " + ec.message());
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

StatusOr<dataflow::Table> EventLog::ExportDay(TimePoint day) const {
  using dataflow::Value;
  dataflow::Table table(ExportSchema());
  auto it = partitions_.find(day.StartOfDay().millis());
  if (it == partitions_.end()) return table;  // empty day is a valid export
  const EventRows& rows = it->second.rows;
  for (uint32_t row = 0; row < rows.size(); ++row) {
    const EventRef ev(&rows, row);
    CDIBOT_RETURN_IF_ERROR(table.Append(
        {Value(std::string(ev.name())), Value(ev.time_ms()),
         Value(std::string(ev.target())),
         Value(static_cast<int64_t>(ev.level())), Value(ev.expire_ms()),
         Value(ev.LoggedDurationMsOrNeg())}));
  }
  return table;
}

StatusOr<std::vector<RawEvent>> EventLog::ImportTable(
    const dataflow::Table& table) {
  if (!(table.schema() == ExportSchema())) {
    return Status::InvalidArgument("table schema is not an event export: " +
                                   table.schema().ToString());
  }
  std::vector<RawEvent> out;
  out.reserve(table.num_rows());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    CDIBOT_ASSIGN_OR_RETURN(RawEvent ev, ImportRow(table.row(i)));
    out.push_back(std::move(ev));
  }
  return out;
}

Status EventLog::SaveToDir(const std::string& dir) const {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return Status::NotFound("not a directory: " + dir);
  }
  std::vector<std::string> files;
  for (const TimePoint day : PartitionDays()) {
    CDIBOT_ASSIGN_OR_RETURN(const dataflow::Table table, ExportDay(day));
    const std::string file = "events_" + day.ToDateString() + ".csv";
    CDIBOT_RETURN_IF_ERROR(WriteCsvFileAtomic(table, dir + "/" + file));
    files.push_back(file);
  }
  // Manifest last: present iff every partition above landed completely.
  return WriteDirManifest(dir, kEventLogManifestFormat, files);
}

StatusOr<EventLog> EventLog::LoadFromDir(const std::string& dir) {
  auto manifest = VerifyDirManifest(dir, kEventLogManifestFormat);
  if (!manifest.ok() && !manifest.status().IsNotFound()) {
    return manifest.status();
  }
  CDIBOT_ASSIGN_OR_RETURN(const std::vector<std::string> files,
                          ListEventFiles(dir));

  EventLog log;
  for (const std::string& file : files) {
    CDIBOT_ASSIGN_OR_RETURN(
        const dataflow::Table table,
        dataflow::ReadCsvFile(dir + "/" + file, ExportSchema()));
    CDIBOT_ASSIGN_OR_RETURN(const std::vector<RawEvent> events,
                            ImportTable(table));
    for (const RawEvent& ev : events) log.Append(ev);
  }
  return log;
}

StatusOr<EventLog> EventLog::LoadFromDirLenient(const std::string& dir,
                                                LoadReport* report) {
  LoadReport local;
  LoadReport& out = report != nullptr ? *report : local;
  out = LoadReport{};
  auto note = [&out](const std::string& msg) {
    if (out.errors.size() < dataflow::LenientCsvResult::kMaxErrors) {
      out.errors.push_back(msg);
    }
  };

  auto manifest = VerifyDirManifest(dir, kEventLogManifestFormat);
  if (!manifest.ok()) {
    out.integrity_suspect = true;
    if (!manifest.status().IsNotFound()) {
      note(manifest.status().ToString());
    }
  }
  CDIBOT_ASSIGN_OR_RETURN(const std::vector<std::string> files,
                          ListEventFiles(dir));

  EventLog log;
  for (const std::string& file : files) {
    auto parsed =
        dataflow::ReadCsvFileLenient(dir + "/" + file, ExportSchema());
    if (!parsed.ok()) {
      // Even the header is gone; this whole file is a casualty.
      out.integrity_suspect = true;
      note(file + ": " + parsed.status().ToString());
      continue;
    }
    out.rows_dropped += parsed->rows_dropped;
    for (const std::string& err : parsed->errors) note(file + ": " + err);
    for (size_t i = 0; i < parsed->table.num_rows(); ++i) {
      auto ev = ImportRow(parsed->table.row(i));
      if (!ev.ok()) {
        ++out.events_dropped;
        note(file + ": " + ev.status().ToString());
        continue;
      }
      log.Append(*ev);
    }
  }
  return log;
}

}  // namespace cdibot
