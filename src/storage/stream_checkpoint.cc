#include "storage/stream_checkpoint.h"

#include <filesystem>

#include "common/strings.h"
#include "dataflow/csv.h"
#include "dataflow/table.h"

namespace cdibot {
namespace {

using dataflow::Field;
using dataflow::Row;
using dataflow::Schema;
using dataflow::Table;
using dataflow::Value;
using dataflow::ValueType;

// Separators for packing a string map into one CSV cell. 0x1f/0x1e are the
// ASCII unit/record separators and never appear in ids, dimension values,
// or event attributes.
constexpr char kPairSep = '\x1e';
constexpr char kKvSep = '\x1f';

std::string EncodeMap(const std::map<std::string, std::string>& m) {
  std::string out;
  for (const auto& [k, v] : m) {
    if (!out.empty()) out += kPairSep;
    out += k;
    out += kKvSep;
    out += v;
  }
  return out;
}

StatusOr<std::map<std::string, std::string>> DecodeMap(
    const std::string& encoded) {
  std::map<std::string, std::string> m;
  if (encoded.empty()) return m;
  for (const std::string& pair : StrSplit(encoded, kPairSep)) {
    const size_t cut = pair.find(kKvSep);
    if (cut == std::string::npos) {
      return Status::InvalidArgument("malformed packed map cell");
    }
    m[pair.substr(0, cut)] = pair.substr(cut + 1);
  }
  return m;
}

// An empty packed-map cell round-trips through CSV as null.
StatusOr<std::string> CellString(const Value& v) {
  if (v.is_null()) return std::string();
  return v.AsString();
}

Schema MetaSchema() {
  return Schema({Field{"key", ValueType::kString},
                 Field{"value", ValueType::kInt}});
}

Schema VmSchema() {
  return Schema({Field{"vm_id", ValueType::kString},
                 Field{"dims", ValueType::kString},
                 Field{"service_start_ms", ValueType::kInt},
                 Field{"service_end_ms", ValueType::kInt}});
}

Schema EventSchema() {
  return Schema({Field{"name", ValueType::kString},
                 Field{"time_ms", ValueType::kInt},
                 Field{"target", ValueType::kString},
                 Field{"level", ValueType::kInt},
                 Field{"expire_ms", ValueType::kInt},
                 Field{"attrs", ValueType::kString}});
}

Table EventsToTable(const std::vector<RawEvent>& events) {
  Table table(EventSchema());
  for (const RawEvent& ev : events) {
    table.AppendUnchecked({Value(ev.name), Value(ev.time.millis()),
                           Value(ev.target),
                           Value(static_cast<int64_t>(ev.level)),
                           Value(ev.expire_interval.millis()),
                           Value(EncodeMap(ev.attrs))});
  }
  return table;
}

StatusOr<std::vector<RawEvent>> EventsFromTable(const Table& table) {
  std::vector<RawEvent> out;
  out.reserve(table.num_rows());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    const Row& row = table.row(i);
    RawEvent ev;
    CDIBOT_ASSIGN_OR_RETURN(ev.name, row[0].AsString());
    CDIBOT_ASSIGN_OR_RETURN(const int64_t time_ms, row[1].AsInt());
    ev.time = TimePoint::FromMillis(time_ms);
    CDIBOT_ASSIGN_OR_RETURN(ev.target, row[2].AsString());
    CDIBOT_ASSIGN_OR_RETURN(const int64_t level, row[3].AsInt());
    if (level < 1 || level > kNumSeverityLevels) {
      return Status::InvalidArgument(StrFormat(
          "bad severity ordinal %lld", static_cast<long long>(level)));
    }
    ev.level = static_cast<Severity>(level);
    CDIBOT_ASSIGN_OR_RETURN(const int64_t expire_ms, row[4].AsInt());
    ev.expire_interval = Duration::Millis(expire_ms);
    CDIBOT_ASSIGN_OR_RETURN(const std::string attrs, CellString(row[5]));
    CDIBOT_ASSIGN_OR_RETURN(ev.attrs, DecodeMap(attrs));
    out.push_back(std::move(ev));
  }
  return out;
}

std::string PathFor(const std::string& dir, const char* file) {
  return dir + "/" + file;
}

}  // namespace

Status SaveStreamCheckpoint(const StreamCheckpoint& ckpt,
                            const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return Status::NotFound("not a directory: " + dir);
  }

  Table meta(MetaSchema());
  auto put = [&meta](const char* key, int64_t value) {
    meta.AppendUnchecked({Value(std::string(key)), Value(value)});
  };
  put("window_start_ms", ckpt.window.start.millis());
  put("window_end_ms", ckpt.window.end.millis());
  put("watermark_ms", ckpt.watermark.millis());
  put("max_event_time_ms", ckpt.max_event_time.millis());
  put("events_ingested", static_cast<int64_t>(ckpt.events_ingested));
  put("events_late", static_cast<int64_t>(ckpt.events_late));
  put("events_out_of_window",
      static_cast<int64_t>(ckpt.events_out_of_window));
  put("events_orphaned", static_cast<int64_t>(ckpt.events_orphaned));
  put("vms_recomputed", static_cast<int64_t>(ckpt.vms_recomputed));
  CDIBOT_RETURN_IF_ERROR(
      dataflow::WriteCsvFile(meta, PathFor(dir, "stream_meta.csv")));

  Table vms(VmSchema());
  for (const CheckpointVmEntry& vm : ckpt.vms) {
    vms.AppendUnchecked({Value(vm.vm_id), Value(EncodeMap(vm.dims)),
                         Value(vm.service_period.start.millis()),
                         Value(vm.service_period.end.millis())});
  }
  CDIBOT_RETURN_IF_ERROR(
      dataflow::WriteCsvFile(vms, PathFor(dir, "stream_vms.csv")));

  CDIBOT_RETURN_IF_ERROR(dataflow::WriteCsvFile(
      EventsToTable(ckpt.events), PathFor(dir, "stream_events.csv")));
  CDIBOT_RETURN_IF_ERROR(
      dataflow::WriteCsvFile(EventsToTable(ckpt.orphan_events),
                             PathFor(dir, "stream_orphans.csv")));
  return Status::OK();
}

StatusOr<StreamCheckpoint> LoadStreamCheckpoint(const std::string& dir) {
  CDIBOT_ASSIGN_OR_RETURN(
      const Table meta,
      dataflow::ReadCsvFile(PathFor(dir, "stream_meta.csv"), MetaSchema()));
  std::map<std::string, int64_t> kv;
  for (size_t i = 0; i < meta.num_rows(); ++i) {
    CDIBOT_ASSIGN_OR_RETURN(const std::string key, meta.row(i)[0].AsString());
    CDIBOT_ASSIGN_OR_RETURN(kv[key], meta.row(i)[1].AsInt());
  }
  auto require = [&kv](const char* key) -> StatusOr<int64_t> {
    auto it = kv.find(key);
    if (it == kv.end()) {
      return Status::InvalidArgument(std::string("checkpoint meta missing ") +
                                     key);
    }
    return it->second;
  };

  StreamCheckpoint ckpt;
  CDIBOT_ASSIGN_OR_RETURN(const int64_t ws, require("window_start_ms"));
  CDIBOT_ASSIGN_OR_RETURN(const int64_t we, require("window_end_ms"));
  ckpt.window =
      Interval(TimePoint::FromMillis(ws), TimePoint::FromMillis(we));
  CDIBOT_ASSIGN_OR_RETURN(const int64_t wm, require("watermark_ms"));
  ckpt.watermark = TimePoint::FromMillis(wm);
  CDIBOT_ASSIGN_OR_RETURN(const int64_t met, require("max_event_time_ms"));
  ckpt.max_event_time = TimePoint::FromMillis(met);
  CDIBOT_ASSIGN_OR_RETURN(const int64_t ingested,
                          require("events_ingested"));
  ckpt.events_ingested = static_cast<uint64_t>(ingested);
  CDIBOT_ASSIGN_OR_RETURN(const int64_t late, require("events_late"));
  ckpt.events_late = static_cast<uint64_t>(late);
  CDIBOT_ASSIGN_OR_RETURN(const int64_t oow,
                          require("events_out_of_window"));
  ckpt.events_out_of_window = static_cast<uint64_t>(oow);
  CDIBOT_ASSIGN_OR_RETURN(const int64_t orphaned,
                          require("events_orphaned"));
  ckpt.events_orphaned = static_cast<uint64_t>(orphaned);
  CDIBOT_ASSIGN_OR_RETURN(const int64_t recomputed,
                          require("vms_recomputed"));
  ckpt.vms_recomputed = static_cast<uint64_t>(recomputed);

  CDIBOT_ASSIGN_OR_RETURN(
      const Table vms,
      dataflow::ReadCsvFile(PathFor(dir, "stream_vms.csv"), VmSchema()));
  for (size_t i = 0; i < vms.num_rows(); ++i) {
    const Row& row = vms.row(i);
    CheckpointVmEntry vm;
    CDIBOT_ASSIGN_OR_RETURN(vm.vm_id, row[0].AsString());
    CDIBOT_ASSIGN_OR_RETURN(const std::string dims, CellString(row[1]));
    CDIBOT_ASSIGN_OR_RETURN(vm.dims, DecodeMap(dims));
    CDIBOT_ASSIGN_OR_RETURN(const int64_t ss, row[2].AsInt());
    CDIBOT_ASSIGN_OR_RETURN(const int64_t se, row[3].AsInt());
    vm.service_period =
        Interval(TimePoint::FromMillis(ss), TimePoint::FromMillis(se));
    ckpt.vms.push_back(std::move(vm));
  }

  CDIBOT_ASSIGN_OR_RETURN(const Table events,
                          dataflow::ReadCsvFile(
                              PathFor(dir, "stream_events.csv"),
                              EventSchema()));
  CDIBOT_ASSIGN_OR_RETURN(ckpt.events, EventsFromTable(events));
  CDIBOT_ASSIGN_OR_RETURN(const Table orphans,
                          dataflow::ReadCsvFile(
                              PathFor(dir, "stream_orphans.csv"),
                              EventSchema()));
  CDIBOT_ASSIGN_OR_RETURN(ckpt.orphan_events, EventsFromTable(orphans));
  return ckpt;
}

}  // namespace cdibot
