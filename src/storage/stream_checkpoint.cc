#include "storage/stream_checkpoint.h"

#include <filesystem>

#include "common/strings.h"
#include "dataflow/csv.h"
#include "dataflow/table.h"
#include "storage/atomic_io.h"

namespace cdibot {
namespace {

using dataflow::Field;
using dataflow::Row;
using dataflow::Schema;
using dataflow::Table;
using dataflow::Value;
using dataflow::ValueType;

// Separators for packing a string map into one CSV cell. 0x1f/0x1e are the
// ASCII unit/record separators and never appear in ids, dimension values,
// or event attributes.
constexpr char kPairSep = '\x1e';
constexpr char kKvSep = '\x1f';

std::string EncodeMap(const std::map<std::string, std::string>& m) {
  std::string out;
  for (const auto& [k, v] : m) {
    if (!out.empty()) out += kPairSep;
    out += k;
    out += kKvSep;
    out += v;
  }
  return out;
}

StatusOr<std::map<std::string, std::string>> DecodeMap(
    const std::string& encoded) {
  std::map<std::string, std::string> m;
  if (encoded.empty()) return m;
  for (const std::string& pair : StrSplit(encoded, kPairSep)) {
    const size_t cut = pair.find(kKvSep);
    if (cut == std::string::npos) {
      return Status::InvalidArgument("malformed packed map cell");
    }
    m[pair.substr(0, cut)] = pair.substr(cut + 1);
  }
  return m;
}

// An empty packed-map cell round-trips through CSV as null.
StatusOr<std::string> CellString(const Value& v) {
  if (v.is_null()) return std::string();
  return v.AsString();
}

Schema MetaSchema() {
  return Schema({Field{"key", ValueType::kString},
                 Field{"value", ValueType::kInt}});
}

Schema VmSchema() {
  return Schema({Field{"vm_id", ValueType::kString},
                 Field{"dims", ValueType::kString},
                 Field{"service_start_ms", ValueType::kInt},
                 Field{"service_end_ms", ValueType::kInt}});
}

Schema EventSchema() {
  return Schema({Field{"name", ValueType::kString},
                 Field{"time_ms", ValueType::kInt},
                 Field{"target", ValueType::kString},
                 Field{"level", ValueType::kInt},
                 Field{"expire_ms", ValueType::kInt},
                 Field{"attrs", ValueType::kString}});
}

Schema QualitySchema() {
  return Schema({Field{"target", ValueType::kString},
                 Field{"received", ValueType::kInt},
                 Field{"expected", ValueType::kInt},
                 Field{"quarantined", ValueType::kInt}});
}

Table EventsToTable(const std::vector<RawEvent>& events) {
  Table table(EventSchema());
  for (const RawEvent& ev : events) {
    table.AppendUnchecked({Value(ev.name), Value(ev.time.millis()),
                           Value(ev.target),
                           Value(static_cast<int64_t>(ev.level)),
                           Value(ev.expire_interval.millis()),
                           Value(EncodeMap(ev.attrs))});
  }
  return table;
}

StatusOr<std::vector<RawEvent>> EventsFromTable(const Table& table) {
  std::vector<RawEvent> out;
  out.reserve(table.num_rows());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    const Row& row = table.row(i);
    RawEvent ev;
    CDIBOT_ASSIGN_OR_RETURN(ev.name, row[0].AsString());
    CDIBOT_ASSIGN_OR_RETURN(const int64_t time_ms, row[1].AsInt());
    ev.time = TimePoint::FromMillis(time_ms);
    CDIBOT_ASSIGN_OR_RETURN(ev.target, row[2].AsString());
    CDIBOT_ASSIGN_OR_RETURN(const int64_t level, row[3].AsInt());
    if (level < 1 || level > kNumSeverityLevels) {
      return Status::InvalidArgument(StrFormat(
          "bad severity ordinal %lld", static_cast<long long>(level)));
    }
    ev.level = static_cast<Severity>(level);
    CDIBOT_ASSIGN_OR_RETURN(const int64_t expire_ms, row[4].AsInt());
    ev.expire_interval = Duration::Millis(expire_ms);
    CDIBOT_ASSIGN_OR_RETURN(const std::string attrs, CellString(row[5]));
    CDIBOT_ASSIGN_OR_RETURN(ev.attrs, DecodeMap(attrs));
    out.push_back(std::move(ev));
  }
  return out;
}

std::string PathFor(const std::string& dir, const char* file) {
  return dir + "/" + file;
}

}  // namespace

Status SaveStreamCheckpoint(const StreamCheckpoint& ckpt,
                            const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return Status::NotFound("not a directory: " + dir);
  }

  Table meta(MetaSchema());
  auto put = [&meta](const std::string& key, int64_t value) {
    meta.AppendUnchecked({Value(key), Value(value)});
  };
  put("format_version", kStreamCheckpointVersion);
  put("window_start_ms", ckpt.window.start.millis());
  put("window_end_ms", ckpt.window.end.millis());
  put("watermark_ms", ckpt.watermark.millis());
  put("max_event_time_ms", ckpt.max_event_time.millis());
  put("events_ingested", static_cast<int64_t>(ckpt.events_ingested));
  put("events_late", static_cast<int64_t>(ckpt.events_late));
  put("events_out_of_window",
      static_cast<int64_t>(ckpt.events_out_of_window));
  put("events_orphaned", static_cast<int64_t>(ckpt.events_orphaned));
  put("vms_recomputed", static_cast<int64_t>(ckpt.vms_recomputed));
  for (size_t i = 0; i < ckpt.quarantined_by_reason.size(); ++i) {
    put(StrFormat("quarantined_reason_%zu", i),
        static_cast<int64_t>(ckpt.quarantined_by_reason[i]));
  }
  CDIBOT_RETURN_IF_ERROR(
      WriteCsvFileAtomic(meta, PathFor(dir, "stream_meta.csv")));

  Table vms(VmSchema());
  for (const CheckpointVmEntry& vm : ckpt.vms) {
    vms.AppendUnchecked({Value(vm.vm_id), Value(EncodeMap(vm.dims)),
                         Value(vm.service_period.start.millis()),
                         Value(vm.service_period.end.millis())});
  }
  CDIBOT_RETURN_IF_ERROR(
      WriteCsvFileAtomic(vms, PathFor(dir, "stream_vms.csv")));

  CDIBOT_RETURN_IF_ERROR(WriteCsvFileAtomic(
      EventsToTable(ckpt.events), PathFor(dir, "stream_events.csv")));
  CDIBOT_RETURN_IF_ERROR(
      WriteCsvFileAtomic(EventsToTable(ckpt.orphan_events),
                         PathFor(dir, "stream_orphans.csv")));

  Table quality(QualitySchema());
  for (const CheckpointTargetQuality& q : ckpt.target_quality) {
    quality.AppendUnchecked({Value(q.target),
                             Value(static_cast<int64_t>(q.received)),
                             Value(static_cast<int64_t>(q.expected)),
                             Value(static_cast<int64_t>(q.quarantined))});
  }
  CDIBOT_RETURN_IF_ERROR(
      WriteCsvFileAtomic(quality, PathFor(dir, "stream_quality.csv")));

  // The manifest goes last: its presence certifies a complete save, its
  // CRCs detect later corruption. A crash anywhere above leaves either the
  // previous manifest (still describing the previous, intact files — but
  // see StreamCheckpointStore, which saves into a fresh slot precisely so
  // mixed-generation files cannot happen) or no manifest at all.
  return WriteDirManifest(dir, kStreamCheckpointManifestFormat,
                          {"stream_meta.csv", "stream_vms.csv",
                           "stream_events.csv", "stream_orphans.csv",
                           "stream_quality.csv"});
}

StatusOr<StreamCheckpoint> LoadStreamCheckpoint(const std::string& dir) {
  // v2 directories carry a MANIFEST; verify integrity before trusting any
  // byte. Directories without one are legacy v1 saves and get no check.
  auto manifest = VerifyDirManifest(dir, kStreamCheckpointManifestFormat);
  const bool have_manifest = manifest.ok();
  if (!have_manifest && !manifest.status().IsNotFound()) {
    return manifest.status();
  }

  CDIBOT_ASSIGN_OR_RETURN(
      const Table meta,
      dataflow::ReadCsvFile(PathFor(dir, "stream_meta.csv"), MetaSchema()));
  std::map<std::string, int64_t> kv;
  for (size_t i = 0; i < meta.num_rows(); ++i) {
    CDIBOT_ASSIGN_OR_RETURN(const std::string key, meta.row(i)[0].AsString());
    CDIBOT_ASSIGN_OR_RETURN(kv[key], meta.row(i)[1].AsInt());
  }
  auto require = [&kv](const char* key) -> StatusOr<int64_t> {
    auto it = kv.find(key);
    if (it == kv.end()) {
      return Status::InvalidArgument(std::string("checkpoint meta missing ") +
                                     key);
    }
    return it->second;
  };
  // Unsigned counters must round-trip non-negative; a negative value means
  // the file was tampered with or corrupted in a CRC-colliding way.
  auto require_counter = [&require](const char* key) -> StatusOr<uint64_t> {
    CDIBOT_ASSIGN_OR_RETURN(const int64_t v, require(key));
    if (v < 0) {
      return Status::InvalidArgument(
          StrFormat("checkpoint counter %s is negative (%lld)", key,
                    static_cast<long long>(v)));
    }
    return static_cast<uint64_t>(v);
  };

  // format_version is absent in v1 checkpoints; anything newer than this
  // build understands is rejected rather than misread.
  const auto version_it = kv.find("format_version");
  const int64_t version =
      version_it == kv.end() ? 1 : version_it->second;
  if (version < 1 || version > kStreamCheckpointVersion) {
    return Status::InvalidArgument(StrFormat(
        "unsupported checkpoint format_version %lld (this build reads <= "
        "%lld)",
        static_cast<long long>(version),
        static_cast<long long>(kStreamCheckpointVersion)));
  }

  StreamCheckpoint ckpt;
  CDIBOT_ASSIGN_OR_RETURN(const int64_t ws, require("window_start_ms"));
  CDIBOT_ASSIGN_OR_RETURN(const int64_t we, require("window_end_ms"));
  ckpt.window =
      Interval(TimePoint::FromMillis(ws), TimePoint::FromMillis(we));
  CDIBOT_ASSIGN_OR_RETURN(const int64_t wm, require("watermark_ms"));
  ckpt.watermark = TimePoint::FromMillis(wm);
  CDIBOT_ASSIGN_OR_RETURN(const int64_t met, require("max_event_time_ms"));
  ckpt.max_event_time = TimePoint::FromMillis(met);
  if (ckpt.watermark > ckpt.max_event_time) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint watermark %lld is beyond max_event_time %lld",
        static_cast<long long>(wm), static_cast<long long>(met)));
  }
  CDIBOT_ASSIGN_OR_RETURN(ckpt.events_ingested,
                          require_counter("events_ingested"));
  CDIBOT_ASSIGN_OR_RETURN(ckpt.events_late, require_counter("events_late"));
  CDIBOT_ASSIGN_OR_RETURN(ckpt.events_out_of_window,
                          require_counter("events_out_of_window"));
  CDIBOT_ASSIGN_OR_RETURN(ckpt.events_orphaned,
                          require_counter("events_orphaned"));
  CDIBOT_ASSIGN_OR_RETURN(ckpt.vms_recomputed,
                          require_counter("vms_recomputed"));
  for (size_t i = 0;; ++i) {
    const std::string key = StrFormat("quarantined_reason_%zu", i);
    if (kv.find(key) == kv.end()) break;
    CDIBOT_ASSIGN_OR_RETURN(const uint64_t count,
                            require_counter(key.c_str()));
    ckpt.quarantined_by_reason.push_back(count);
  }

  CDIBOT_ASSIGN_OR_RETURN(
      const Table vms,
      dataflow::ReadCsvFile(PathFor(dir, "stream_vms.csv"), VmSchema()));
  for (size_t i = 0; i < vms.num_rows(); ++i) {
    const Row& row = vms.row(i);
    CheckpointVmEntry vm;
    CDIBOT_ASSIGN_OR_RETURN(vm.vm_id, row[0].AsString());
    CDIBOT_ASSIGN_OR_RETURN(const std::string dims, CellString(row[1]));
    CDIBOT_ASSIGN_OR_RETURN(vm.dims, DecodeMap(dims));
    CDIBOT_ASSIGN_OR_RETURN(const int64_t ss, row[2].AsInt());
    CDIBOT_ASSIGN_OR_RETURN(const int64_t se, row[3].AsInt());
    vm.service_period =
        Interval(TimePoint::FromMillis(ss), TimePoint::FromMillis(se));
    ckpt.vms.push_back(std::move(vm));
  }

  CDIBOT_ASSIGN_OR_RETURN(const Table events,
                          dataflow::ReadCsvFile(
                              PathFor(dir, "stream_events.csv"),
                              EventSchema()));
  CDIBOT_ASSIGN_OR_RETURN(ckpt.events, EventsFromTable(events));
  CDIBOT_ASSIGN_OR_RETURN(const Table orphans,
                          dataflow::ReadCsvFile(
                              PathFor(dir, "stream_orphans.csv"),
                              EventSchema()));
  CDIBOT_ASSIGN_OR_RETURN(ckpt.orphan_events, EventsFromTable(orphans));

  // stream_quality.csv only exists from v2 on; a v1 checkpoint simply has
  // no quality history.
  auto quality = dataflow::ReadCsvFile(PathFor(dir, "stream_quality.csv"),
                                       QualitySchema());
  if (quality.ok()) {
    for (size_t i = 0; i < quality->num_rows(); ++i) {
      const Row& row = quality->row(i);
      CheckpointTargetQuality q;
      CDIBOT_ASSIGN_OR_RETURN(q.target, row[0].AsString());
      CDIBOT_ASSIGN_OR_RETURN(const int64_t received, row[1].AsInt());
      CDIBOT_ASSIGN_OR_RETURN(const int64_t expected, row[2].AsInt());
      CDIBOT_ASSIGN_OR_RETURN(const int64_t quarantined, row[3].AsInt());
      if (received < 0 || expected < 0 || quarantined < 0) {
        return Status::InvalidArgument(
            "negative quality counter for target " + q.target);
      }
      q.received = static_cast<uint64_t>(received);
      q.expected = static_cast<uint64_t>(expected);
      q.quarantined = static_cast<uint64_t>(quarantined);
      ckpt.target_quality.push_back(std::move(q));
    }
  } else if (!quality.status().IsNotFound()) {
    return quality.status();
  }
  return ckpt;
}

}  // namespace cdibot
