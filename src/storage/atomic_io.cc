#include "storage/atomic_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/crc32.h"
#include "common/strings.h"
#include "dataflow/csv.h"

namespace cdibot {

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) return Status::Unavailable("read failed: " + path);
  return buffer.str();
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) {
      return Status::Unavailable("cannot open for write: " + tmp);
    }
    file.write(contents.data(),
               static_cast<std::streamsize>(contents.size()));
    file.flush();
    if (!file) {
      file.close();
      std::remove(tmp.c_str());
      return Status::Unavailable("write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Unavailable("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

Status WriteCsvFileAtomic(const dataflow::Table& table,
                          const std::string& path) {
  return WriteFileAtomic(path, dataflow::ToCsv(table));
}

std::string EncodeManifest(const Manifest& manifest) {
  std::string out = manifest.format;
  out += '\n';
  for (const ManifestEntry& entry : manifest.entries) {
    out += StrFormat("%08x %llu %s\n", entry.crc32,
                     static_cast<unsigned long long>(entry.bytes),
                     entry.file.c_str());
  }
  return out;
}

StatusOr<Manifest> ParseManifest(const std::string& text) {
  Manifest manifest;
  std::istringstream stream(text);
  std::string line;
  if (!std::getline(stream, line) || StrTrim(line).empty()) {
    return Status::DataLoss("manifest has no format line");
  }
  manifest.format = std::string(StrTrim(line));
  size_t line_no = 1;
  while (std::getline(stream, line)) {
    ++line_no;
    if (StrTrim(line).empty()) continue;
    ManifestEntry entry;
    unsigned int crc = 0;
    unsigned long long bytes = 0;
    int name_at = -1;
    if (std::sscanf(line.c_str(), "%x %llu %n", &crc, &bytes, &name_at) < 2 ||
        name_at < 0 || static_cast<size_t>(name_at) >= line.size()) {
      return Status::DataLoss(
          StrFormat("malformed manifest line %zu", line_no));
    }
    entry.crc32 = crc;
    entry.bytes = bytes;
    entry.file = std::string(StrTrim(line.substr(name_at)));
    if (entry.file.empty()) {
      return Status::DataLoss(
          StrFormat("manifest line %zu names no file", line_no));
    }
    manifest.entries.push_back(std::move(entry));
  }
  return manifest;
}

Status WriteDirManifest(const std::string& dir, const std::string& format,
                        const std::vector<std::string>& files) {
  Manifest manifest;
  manifest.format = format;
  for (const std::string& file : files) {
    CDIBOT_ASSIGN_OR_RETURN(const std::string contents,
                            ReadFileToString(dir + "/" + file));
    manifest.entries.push_back(
        {file, Crc32(contents), static_cast<uint64_t>(contents.size())});
  }
  return WriteFileAtomic(dir + "/" + kManifestFileName,
                         EncodeManifest(manifest));
}

StatusOr<Manifest> VerifyDirManifest(const std::string& dir,
                                     const std::string& expected_format) {
  auto text = ReadFileToString(dir + "/" + kManifestFileName);
  if (!text.ok()) return text.status();
  CDIBOT_ASSIGN_OR_RETURN(const Manifest manifest, ParseManifest(*text));
  if (manifest.format != expected_format) {
    return Status::DataLoss("unsupported manifest format '" +
                            manifest.format + "' (want '" + expected_format +
                            "')");
  }
  for (const ManifestEntry& entry : manifest.entries) {
    auto contents = ReadFileToString(dir + "/" + entry.file);
    if (!contents.ok()) {
      return Status::DataLoss("manifest-covered file missing: " + entry.file);
    }
    if (contents->size() != entry.bytes) {
      return Status::DataLoss(StrFormat(
          "%s truncated: %llu bytes, manifest says %llu", entry.file.c_str(),
          static_cast<unsigned long long>(contents->size()),
          static_cast<unsigned long long>(entry.bytes)));
    }
    if (Crc32(*contents) != entry.crc32) {
      return Status::DataLoss("CRC mismatch on " + entry.file);
    }
  }
  return manifest;
}

}  // namespace cdibot
