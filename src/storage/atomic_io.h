#ifndef CDIBOT_STORAGE_ATOMIC_IO_H_
#define CDIBOT_STORAGE_ATOMIC_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "dataflow/table.h"

namespace cdibot {

/// Reads the whole file into a string. NotFound when the file does not
/// exist or cannot be opened; Unavailable on a read error mid-stream (the
/// transient flavor, so RetryPolicy will retry it).
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Crash-safe file write: the contents go to `<path>.tmp` first, are
/// flushed, and only then renamed over `path`. rename(2) within one
/// directory is atomic on POSIX, so a reader never observes a half-written
/// `path` — it sees either the old file or the new one. A crash mid-write
/// leaves at worst a stale `.tmp` beside an intact previous version.
/// I/O failures surface as Unavailable (retryable).
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// ToCsv(table) through WriteFileAtomic.
Status WriteCsvFileAtomic(const dataflow::Table& table,
                          const std::string& path);

/// One file covered by a directory manifest.
struct ManifestEntry {
  std::string file;     ///< name relative to the manifest's directory
  uint32_t crc32 = 0;   ///< CRC-32 (IEEE) of the file's bytes
  uint64_t bytes = 0;   ///< file size, catches truncation cheaply
};

/// A directory manifest: the integrity footer of checkpoint format v2.
/// The manifest is written ATOMICALLY and LAST, after every data file it
/// covers, so its very existence certifies that the directory's contents
/// were completely written; its CRC entries certify they are still intact.
struct Manifest {
  /// Format tag, e.g. "cdibot-checkpoint-v2". Loaders reject manifests
  /// whose tag they do not recognize rather than misinterpreting them.
  std::string format;
  std::vector<ManifestEntry> entries;
};

inline constexpr char kManifestFileName[] = "MANIFEST";

/// Serialization: first line is the format tag, then one
/// "<crc32-hex> <bytes> <filename>" line per entry.
std::string EncodeManifest(const Manifest& manifest);
StatusOr<Manifest> ParseManifest(const std::string& text);

/// Computes CRC/size of each `files` entry (paths relative to `dir`) and
/// atomically writes `dir`/MANIFEST. Call only after all data files are
/// durably in place.
Status WriteDirManifest(const std::string& dir, const std::string& format,
                        const std::vector<std::string>& files);

/// Loads `dir`/MANIFEST, checks the format tag, and verifies the size and
/// CRC of every covered file. Returns the manifest when everything checks
/// out; NotFound when there is no manifest (not a v2 directory); DataLoss
/// when the tag is wrong or any file is missing, resized, or corrupted.
StatusOr<Manifest> VerifyDirManifest(const std::string& dir,
                                     const std::string& expected_format);

}  // namespace cdibot

#endif  // CDIBOT_STORAGE_ATOMIC_IO_H_
