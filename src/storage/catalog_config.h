#ifndef CDIBOT_STORAGE_CATALOG_CONFIG_H_
#define CDIBOT_STORAGE_CATALOG_CONFIG_H_

#include <vector>

#include "common/statusor.h"
#include "event/overrides.h"
#include "storage/config_store.h"

namespace cdibot {

/// Loads catalog overrides from a ConfigStore (the MySQL-backed
/// configuration of Fig. 4), implementing Sec. VIII-A's per-scenario
/// customization. Keys, all optional per event:
///
///   catalog/<event>/level       = info|warning|critical|fatal
///   catalog/<event>/window_ms   = <int>
///   catalog/<event>/expire_ms   = <int>
///
/// Unparseable values fail with InvalidArgument naming the key. Apply the
/// result with ApplyOverrides(base_catalog, overrides).
StatusOr<std::vector<EventOverride>> LoadOverridesFromConfig(
    const ConfigStore& config);

}  // namespace cdibot

#endif  // CDIBOT_STORAGE_CATALOG_CONFIG_H_
