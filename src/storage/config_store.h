#ifndef CDIBOT_STORAGE_CONFIG_STORE_H_
#define CDIBOT_STORAGE_CONFIG_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/statusor.h"

namespace cdibot {

/// Small transactional key-value configuration store — the MySQL stand-in
/// of Fig. 4, holding event weight configuration, rule parameters, and
/// A/B-test assignments. Values are strings with typed accessors; every
/// write bumps a global version so readers can detect configuration drift
/// between job runs. Thread-safe.
class ConfigStore {
 public:
  ConfigStore() = default;

  /// Sets `key` to `value`, creating it if needed. Returns the new store
  /// version.
  int64_t Set(const std::string& key, const std::string& value);
  int64_t SetInt(const std::string& key, int64_t value);
  int64_t SetDouble(const std::string& key, double value);

  /// Reads a value; NotFound if absent.
  StatusOr<std::string> Get(const std::string& key) const;
  /// Typed reads; InvalidArgument when the stored text does not parse.
  StatusOr<int64_t> GetInt(const std::string& key) const;
  StatusOr<double> GetDouble(const std::string& key) const;

  /// Reads with a default when the key is absent (parse errors still fail).
  std::string GetOr(const std::string& key, const std::string& fallback) const;
  StatusOr<double> GetDoubleOr(const std::string& key, double fallback) const;

  /// Removes a key. NotFound if absent.
  Status Delete(const std::string& key);

  /// All keys with the given prefix, sorted.
  std::vector<std::string> KeysWithPrefix(const std::string& prefix) const;

  /// Monotonically increasing store version (0 before any write).
  int64_t version() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::string> data_;
  int64_t version_ = 0;
};

}  // namespace cdibot

#endif  // CDIBOT_STORAGE_CONFIG_STORE_H_
