#ifndef CDIBOT_STORAGE_EVENT_LOG_H_
#define CDIBOT_STORAGE_EVENT_LOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/statusor.h"
#include "common/time.h"
#include "dataflow/table.h"
#include "event/event.h"
#include "event/event_view.h"

namespace cdibot {

/// A zero-copy log query: which time interval matters, which target, and
/// how far outside the interval events may still describe periods inside
/// it (the batch job passes kEventSearchMargin). The effective search
/// range is [interval.start - margin, interval.end + margin).
struct EventQuery {
  Interval interval;
  /// Interned id (GlobalInterner) of the VM/NC to narrow to. The query
  /// always filters by target; StringInterner::kInvalidId — the id Lookup
  /// returns for a string that was never interned — matches nothing, so
  /// an unknown VM cleanly yields an empty span. Use Search for
  /// untargeted scans.
  uint32_t target_id = StringInterner::kInvalidId;
  Duration margin = Duration::Zero();
};

/// Append-only time-partitioned raw-event log — the SLS stand-in of Fig. 4.
/// Events land in daily partitions stored as SoA columns (EventRows) with
/// interned name/target ids, so the hot query path — Query(), once per VM
/// per daily job — hands out non-owning EventSpans instead of copying
/// string-holding RawEvents. A partition can be exported ("synchronized")
/// into a dataflow Table, which plays the role of the long-term MaxCompute
/// table the Spark job reads.
class EventLog {
 public:
  EventLog() = default;

  /// Appends one event into its daily partition (interning its name and
  /// target in the global interner).
  void Append(const RawEvent& event);
  void AppendBatch(const std::vector<RawEvent>& events);

  size_t size() const;

  /// The zero-copy query path: an EventSpan over the events of
  /// `query.target_id` whose time falls within the margin-extended
  /// interval. No event data is copied; the span borrows the log's
  /// partitions and stays valid until the next Append. Span order is
  /// partition (day) order, then per-target append order within the
  /// partition — period resolution is arrival-order invariant, so
  /// consumers need no sort.
  EventSpan Query(const EventQuery& query) const;

  /// Untargeted zero-copy scan: a span over every partition intersecting
  /// the margin-extended interval, with the interval as the span's time
  /// filter. Order is partition (day) order then append order. This is the
  /// heatmap endpoint's read path — whole-fleet rendering straight off the
  /// SoA columns, no per-target narrowing and no materialization.
  EventSpan QueryAll(const Interval& interval,
                     Duration margin = Duration::Zero()) const;

  /// All events whose extraction time falls in [range.start, range.end),
  /// sorted by time (ties keep append order). Compatibility/cold path:
  /// materializes owning RawEvents; prefer Query on hot paths.
  std::vector<RawEvent> Search(const Interval& range) const;

  /// Search narrowed to one target. Compatibility/cold path; prefer Query.
  std::vector<RawEvent> SearchTarget(const Interval& range,
                                     const std::string& target) const;

  /// The partition days present in the log, sorted.
  std::vector<TimePoint> PartitionDays() const;

  /// Exports the events of one UTC day as a Table with schema
  /// (name:string, time_ms:int, target:string, level:int,
  ///  expire_ms:int, duration_ms:int) — duration_ms is -1 when the event
  /// carries no logged duration. This is the nightly SLS -> MaxCompute
  /// synchronization of Sec. V.
  StatusOr<dataflow::Table> ExportDay(TimePoint day) const;

  /// Rebuilds RawEvents from an exported table (the reverse mapping, used
  /// by jobs that consume MaxCompute tables).
  static StatusOr<std::vector<RawEvent>> ImportTable(
      const dataflow::Table& table);

  /// Persists every daily partition as `events_<YYYY-MM-DD>.csv` under
  /// `dir` (which must exist) — the long-term-storage sync of Fig. 4 made
  /// durable. Existing files for the same days are overwritten. Each file
  /// is written atomically (temp + rename) and a MANIFEST with per-file
  /// CRC-32s is written last, so a torn save is detectable on load.
  Status SaveToDir(const std::string& dir) const;

  /// Loads every `events_*.csv` in `dir` into a fresh log. When the
  /// directory carries a MANIFEST it is verified first and any corruption
  /// fails the load with DataLoss; directories without one load unchecked
  /// (legacy format).
  static StatusOr<EventLog> LoadFromDir(const std::string& dir);

  /// Accounting from a lenient load: what was skipped rather than loaded.
  struct LoadReport {
    /// CSV rows dropped because they failed to parse at all.
    size_t rows_dropped = 0;
    /// Rows that parsed but described an invalid event (bad severity
    /// ordinal, ...) and were skipped.
    size_t events_dropped = 0;
    /// True when the directory's MANIFEST was missing or failed
    /// verification — the surviving data should be treated as partial.
    bool integrity_suspect = false;
    /// Up to LenientCsvResult::kMaxErrors sample messages.
    std::vector<std::string> errors;
  };

  /// Crash-recovery flavor of LoadFromDir: a corrupted or truncated file
  /// costs only its unreadable rows, never the whole load. Manifest
  /// failures are downgraded to `integrity_suspect` in the report. Use
  /// this after a crash, where salvaging the intact prefix beats refusing
  /// to start.
  static StatusOr<EventLog> LoadFromDirLenient(const std::string& dir,
                                               LoadReport* report = nullptr);

 private:
  // Daily partitions keyed by start-of-day millis. Rows are SoA columns in
  // append order; the per-target index keeps Query/SearchTarget
  // proportional to the target's own events — the daily CDI job queries
  // once per VM, so a partition-wide scan would make the job quadratic in
  // fleet size. `sorted_on_append` tracks whether the partition's rows
  // arrived in non-decreasing time order (the common case for replayed
  // logs), letting Search skip its per-partition sort.
  struct Partition {
    EventRows rows;
    std::unordered_map<uint32_t, std::vector<uint32_t>> by_target;
    bool sorted_on_append = true;
    int64_t last_time_ms = INT64_MIN;
  };
  std::map<int64_t, Partition> partitions_;
  size_t size_ = 0;
};

}  // namespace cdibot

#endif  // CDIBOT_STORAGE_EVENT_LOG_H_
