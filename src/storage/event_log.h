#ifndef CDIBOT_STORAGE_EVENT_LOG_H_
#define CDIBOT_STORAGE_EVENT_LOG_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"
#include "common/time.h"
#include "dataflow/table.h"
#include "event/event.h"

namespace cdibot {

/// Append-only time-partitioned raw-event log — the SLS stand-in of Fig. 4.
/// Events land in daily partitions for fast time-range search, and a
/// partition can be exported ("synchronized") into a dataflow Table, which
/// plays the role of the long-term MaxCompute table the Spark job reads.
class EventLog {
 public:
  EventLog() = default;

  /// Appends one event into its daily partition.
  void Append(const RawEvent& event);
  void AppendBatch(const std::vector<RawEvent>& events);

  size_t size() const;

  /// All events whose extraction time falls in [range.start, range.end),
  /// sorted by time. Scans only the overlapping daily partitions.
  std::vector<RawEvent> Search(const Interval& range) const;

  /// Search narrowed to one target.
  std::vector<RawEvent> SearchTarget(const Interval& range,
                                     const std::string& target) const;

  /// The partition days present in the log, sorted.
  std::vector<TimePoint> PartitionDays() const;

  /// Exports the events of one UTC day as a Table with schema
  /// (name:string, time_ms:int, target:string, level:int,
  ///  expire_ms:int, duration_ms:int) — duration_ms is -1 when the event
  /// carries no logged duration. This is the nightly SLS -> MaxCompute
  /// synchronization of Sec. V.
  StatusOr<dataflow::Table> ExportDay(TimePoint day) const;

  /// Rebuilds RawEvents from an exported table (the reverse mapping, used
  /// by jobs that consume MaxCompute tables).
  static StatusOr<std::vector<RawEvent>> ImportTable(
      const dataflow::Table& table);

  /// Persists every daily partition as `events_<YYYY-MM-DD>.csv` under
  /// `dir` (which must exist) — the long-term-storage sync of Fig. 4 made
  /// durable. Existing files for the same days are overwritten. Each file
  /// is written atomically (temp + rename) and a MANIFEST with per-file
  /// CRC-32s is written last, so a torn save is detectable on load.
  Status SaveToDir(const std::string& dir) const;

  /// Loads every `events_*.csv` in `dir` into a fresh log. When the
  /// directory carries a MANIFEST it is verified first and any corruption
  /// fails the load with DataLoss; directories without one load unchecked
  /// (legacy format).
  static StatusOr<EventLog> LoadFromDir(const std::string& dir);

  /// Accounting from a lenient load: what was skipped rather than loaded.
  struct LoadReport {
    /// CSV rows dropped because they failed to parse at all.
    size_t rows_dropped = 0;
    /// Rows that parsed but described an invalid event (bad severity
    /// ordinal, ...) and were skipped.
    size_t events_dropped = 0;
    /// True when the directory's MANIFEST was missing or failed
    /// verification — the surviving data should be treated as partial.
    bool integrity_suspect = false;
    /// Up to LenientCsvResult::kMaxErrors sample messages.
    std::vector<std::string> errors;
  };

  /// Crash-recovery flavor of LoadFromDir: a corrupted or truncated file
  /// costs only its unreadable rows, never the whole load. Manifest
  /// failures are downgraded to `integrity_suspect` in the report. Use
  /// this after a crash, where salvaging the intact prefix beats refusing
  /// to start.
  static StatusOr<EventLog> LoadFromDirLenient(const std::string& dir,
                                               LoadReport* report = nullptr);

 private:
  // Daily partitions keyed by start-of-day millis; events within a
  // partition are kept in append order. The per-target index keeps
  // SearchTarget proportional to the target's own events — the daily CDI
  // job calls it once per VM, so a partition-wide scan would make the job
  // quadratic in fleet size.
  struct Partition {
    std::vector<RawEvent> events;
    std::unordered_map<std::string, std::vector<size_t>> by_target;
  };
  std::map<int64_t, Partition> partitions_;
  size_t size_ = 0;
};

}  // namespace cdibot

#endif  // CDIBOT_STORAGE_EVENT_LOG_H_
