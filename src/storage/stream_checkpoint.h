#ifndef CDIBOT_STORAGE_STREAM_CHECKPOINT_H_
#define CDIBOT_STORAGE_STREAM_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "common/time.h"
#include "event/event.h"

namespace cdibot {

/// One registered VM inside a streaming checkpoint. Mirrors the pipeline's
/// VmServiceInfo field for field; duplicated here so the storage layer does
/// not depend on the cdi library (cdi depends on storage, not vice versa).
struct CheckpointVmEntry {
  std::string vm_id;
  std::map<std::string, std::string> dims;
  Interval service_period;
};

/// Per-target data-quality counters carried inside a checkpoint, so that
/// degraded-mode accounting survives a restart: how many events a target's
/// collector announced (expected), how many actually arrived (received),
/// and how many were quarantined as malformed.
struct CheckpointTargetQuality {
  std::string target;
  uint64_t received = 0;
  uint64_t expected = 0;
  uint64_t quarantined = 0;
  /// Events shed upstream for this target. Carried only by IN-MEMORY
  /// checkpoint fragments (shard-rebalance handoff via
  /// StreamingCdiEngine::ExtractRange/InstallVms); the on-disk CSV format
  /// deliberately omits it — shed counts are engine-local and re-reported
  /// by the supervisor after a restore, see
  /// StreamingCdiEngine::RecordShed.
  uint64_t shed = 0;
};

/// The durable state of a StreamingCdiEngine: everything needed to resume
/// from the last watermark after a restart. Derived state (per-VM CDI,
/// partial aggregates) is intentionally absent — it is a pure function of
/// the buffered events and is lazily recomputed on the first snapshot
/// after a restore, which keeps the checkpoint small and the restore path
/// trivially consistent.
struct StreamCheckpoint {
  /// The engine's evaluation window.
  Interval window;
  /// Event-time watermark at checkpoint time.
  TimePoint watermark;
  /// Maximum event time observed (watermark = max - allowed_lateness).
  TimePoint max_event_time;
  /// Ingestion counters, carried across the restart for continuity of
  /// data-quality reporting.
  uint64_t events_ingested = 0;
  uint64_t events_late = 0;
  uint64_t events_out_of_window = 0;
  uint64_t events_orphaned = 0;
  uint64_t vms_recomputed = 0;
  /// Registered VMs with their service windows.
  std::vector<CheckpointVmEntry> vms;
  /// Buffered raw events of registered VMs (flat; the target field routes
  /// each event back to its VM on restore).
  std::vector<RawEvent> events;
  /// Events whose target had no registered VM yet.
  std::vector<RawEvent> orphan_events;
  /// Quarantine counters indexed by reason ordinal. The storage layer
  /// treats these as opaque counters (it does not depend on the chaos
  /// library's reason enum); absent in pre-v2 checkpoints.
  std::vector<uint64_t> quarantined_by_reason;
  /// Per-target delivery/quarantine accounting; absent in pre-v2
  /// checkpoints.
  std::vector<CheckpointTargetQuality> target_quality;
};

/// The checkpoint directory format version written by SaveStreamCheckpoint
/// and the manifest tag that certifies it. Version history:
///   v1 — four CSVs, plain non-atomic writes, no integrity footer.
///   v2 — adds stream_quality.csv, every file written via atomic
///        temp+rename, and a MANIFEST (format tag + CRC-32 + size per
///        file) written last so a torn save is detectable.
inline constexpr int64_t kStreamCheckpointVersion = 2;
inline constexpr char kStreamCheckpointManifestFormat[] =
    "cdibot-checkpoint-v2";

/// Persists `ckpt` under `dir` (which must exist) as a set of CSV files
/// (stream_meta.csv, stream_vms.csv, stream_events.csv,
/// stream_orphans.csv, stream_quality.csv) plus a MANIFEST, each written
/// atomically. Existing checkpoint files in the directory are overwritten,
/// making the directory a single-slot checkpoint store (see
/// StreamCheckpointStore in checkpoint_store.h for rotation and last-good
/// fallback). Dimension keys/values and attribute keys/values must not
/// contain the 0x1f unit-separator character used to pack them into one
/// CSV cell.
Status SaveStreamCheckpoint(const StreamCheckpoint& ckpt,
                            const std::string& dir);

/// Loads the checkpoint previously saved under `dir`. A v2 directory is
/// CRC-verified against its MANIFEST first and fails with DataLoss on any
/// corruption or truncation; a directory without a MANIFEST is read as
/// legacy v1 (no integrity check, quality counters empty). Checkpoints
/// declaring a format version newer than kStreamCheckpointVersion are
/// rejected, as are internally inconsistent ones (watermark beyond
/// max_event_time, negative counters).
StatusOr<StreamCheckpoint> LoadStreamCheckpoint(const std::string& dir);

}  // namespace cdibot

#endif  // CDIBOT_STORAGE_STREAM_CHECKPOINT_H_
