#ifndef CDIBOT_STORAGE_STREAM_CHECKPOINT_H_
#define CDIBOT_STORAGE_STREAM_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "common/time.h"
#include "event/event.h"

namespace cdibot {

/// One registered VM inside a streaming checkpoint. Mirrors the pipeline's
/// VmServiceInfo field for field; duplicated here so the storage layer does
/// not depend on the cdi library (cdi depends on storage, not vice versa).
struct CheckpointVmEntry {
  std::string vm_id;
  std::map<std::string, std::string> dims;
  Interval service_period;
};

/// The durable state of a StreamingCdiEngine: everything needed to resume
/// from the last watermark after a restart. Derived state (per-VM CDI,
/// partial aggregates) is intentionally absent — it is a pure function of
/// the buffered events and is lazily recomputed on the first snapshot
/// after a restore, which keeps the checkpoint small and the restore path
/// trivially consistent.
struct StreamCheckpoint {
  /// The engine's evaluation window.
  Interval window;
  /// Event-time watermark at checkpoint time.
  TimePoint watermark;
  /// Maximum event time observed (watermark = max - allowed_lateness).
  TimePoint max_event_time;
  /// Ingestion counters, carried across the restart for continuity of
  /// data-quality reporting.
  uint64_t events_ingested = 0;
  uint64_t events_late = 0;
  uint64_t events_out_of_window = 0;
  uint64_t events_orphaned = 0;
  uint64_t vms_recomputed = 0;
  /// Registered VMs with their service windows.
  std::vector<CheckpointVmEntry> vms;
  /// Buffered raw events of registered VMs (flat; the target field routes
  /// each event back to its VM on restore).
  std::vector<RawEvent> events;
  /// Events whose target had no registered VM yet.
  std::vector<RawEvent> orphan_events;
};

/// Persists `ckpt` under `dir` (which must exist) as a set of CSV files
/// (stream_meta.csv, stream_vms.csv, stream_events.csv,
/// stream_orphans.csv). Existing checkpoint files in the directory are
/// overwritten, making the directory a single-slot checkpoint store.
/// Dimension keys/values and attribute keys/values must not contain the
/// 0x1f unit-separator character used to pack them into one CSV cell.
Status SaveStreamCheckpoint(const StreamCheckpoint& ckpt,
                            const std::string& dir);

/// Loads the checkpoint previously saved under `dir`.
StatusOr<StreamCheckpoint> LoadStreamCheckpoint(const std::string& dir);

}  // namespace cdibot

#endif  // CDIBOT_STORAGE_STREAM_CHECKPOINT_H_
