#ifndef CDIBOT_STORAGE_CHECKPOINT_STORE_H_
#define CDIBOT_STORAGE_CHECKPOINT_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/retry.h"
#include "common/statusor.h"
#include "flow/circuit_breaker.h"
#include "storage/stream_checkpoint.h"

namespace cdibot {

/// Options for a StreamCheckpointStore.
struct CheckpointStoreOptions {
  /// Completed checkpoint slots retained; older ones are deleted after a
  /// successful save. Two generations means one whole checkpoint can be
  /// lost to corruption and recovery still succeeds from the previous one.
  int keep = 2;
  /// Backoff schedule for transient (retryable) I/O failures.
  RetryOptions retry;
  uint64_t retry_seed = 0;
  /// Circuit breaker over the store's physical I/O. Disabled by default
  /// (failure_threshold == 0, pass-through); when configured, a persistently
  /// failing disk trips the breaker open after `failure_threshold`
  /// consecutive failed ATTEMPTS, so subsequent saves fail fast in
  /// microseconds instead of burning the full retry schedule against a sink
  /// that cannot absorb writes — RetryPolicy amplifies load under failure,
  /// the breaker caps that amplification. Half-open probes (jittered
  /// cooldown) re-admit traffic once the disk recovers. State transitions
  /// are visible in statusz as "flow.breaker.checkpoint_store.*".
  flow::CircuitBreakerOptions breaker = {};
  /// Test hook: called before every physical I/O operation with a short
  /// operation name ("save", "load"). A non-OK return is treated as the
  /// outcome of that I/O attempt, letting chaos tests drive the retry path
  /// deterministically (wire it to ChaosInjector::MaybeFailIo).
  std::function<Status(std::string_view op)> io_fault;
};

/// A rotating multi-generation checkpoint store, the recovery substrate of
/// the supervisor loop. Layout under `root`:
///
///   root/slot-000000/   oldest retained checkpoint (v2 directory)
///   root/slot-000001/   newest checkpoint
///
/// Every Save writes a brand-new slot directory and only then prunes old
/// slots, so the previous good generation exists untouched for the entire
/// duration of a save — a crash mid-save can never damage it (write-ahead
/// generation rotation, the same discipline as LevelDB's MANIFEST swap).
/// LoadLastGood walks generations newest-first, skipping any slot whose
/// manifest, CRCs, or semantic validation fail, and returns the first
/// intact one.
class StreamCheckpointStore {
 public:
  /// Opens (creating if needed) a store rooted at `root` and scans existing
  /// slots so new saves continue the sequence.
  static StatusOr<StreamCheckpointStore> Open(
      const std::string& root, CheckpointStoreOptions options = {});

  /// Saves `ckpt` into the next slot, retrying transient I/O failures per
  /// the retry options, then prunes slots beyond `keep`.
  Status Save(const StreamCheckpoint& ckpt) {
    return Save(ckpt, Deadline::Infinite());
  }

  /// Deadline-bounded Save: retry backoff sleeps are clipped to the
  /// remaining budget and no new attempt starts past the deadline, so a
  /// checkpoint against a sick disk costs at most the budget, not the full
  /// retry schedule. When the breaker is open the call fails fast with
  /// FailedPrecondition before any I/O.
  Status Save(const StreamCheckpoint& ckpt, const Deadline& deadline);

  /// Loads the newest checkpoint that passes integrity and semantic
  /// validation, skipping corrupted generations. NotFound when the store
  /// has no slots at all; when slots exist but every one fails, returns the
  /// oldest slot's error (typically DataLoss) so "checkpoints destroyed"
  /// is distinguishable from "never checkpointed". `slots_skipped`, when
  /// non-null, receives the number of corrupted generations passed over.
  StatusOr<StreamCheckpoint> LoadLastGood(int* slots_skipped = nullptr);

  /// Slot directory names currently present, oldest first.
  std::vector<std::string> ListSlots() const;

  const std::string& root() const { return root_; }
  uint64_t next_seq() const { return next_seq_; }
  /// Attempts consumed by the most recent retried operation.
  int last_attempts() const { return retry_.last_attempts(); }
  /// The breaker guarding the save path (pass-through unless configured).
  const flow::CircuitBreaker& breaker() const { return *breaker_; }

 private:
  StreamCheckpointStore(std::string root, CheckpointStoreOptions options);

  std::string SlotPath(uint64_t seq) const;

  std::string root_;
  CheckpointStoreOptions options_;
  RetryPolicy retry_;
  /// Heap-allocated (owns a mutex) so the store stays movable.
  std::shared_ptr<flow::CircuitBreaker> breaker_;
  uint64_t next_seq_ = 0;
};

}  // namespace cdibot

#endif  // CDIBOT_STORAGE_CHECKPOINT_STORE_H_
