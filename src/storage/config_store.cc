#include "storage/config_store.h"

#include <cstdlib>

#include "common/strings.h"

namespace cdibot {

int64_t ConfigStore::Set(const std::string& key, const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  data_[key] = value;
  return ++version_;
}

int64_t ConfigStore::SetInt(const std::string& key, int64_t value) {
  return Set(key, StrFormat("%lld", static_cast<long long>(value)));
}

int64_t ConfigStore::SetDouble(const std::string& key, double value) {
  return Set(key, StrFormat("%.17g", value));
}

StatusOr<std::string> ConfigStore::Get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = data_.find(key);
  if (it == data_.end()) return Status::NotFound("no config key " + key);
  return it->second;
}

StatusOr<int64_t> ConfigStore::GetInt(const std::string& key) const {
  CDIBOT_ASSIGN_OR_RETURN(const std::string text, Get(key));
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("config " + key + " is not an int: " +
                                   text);
  }
  return static_cast<int64_t>(v);
}

StatusOr<double> ConfigStore::GetDouble(const std::string& key) const {
  CDIBOT_ASSIGN_OR_RETURN(const std::string text, Get(key));
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("config " + key + " is not a double: " +
                                   text);
  }
  return v;
}

std::string ConfigStore::GetOr(const std::string& key,
                               const std::string& fallback) const {
  auto v = Get(key);
  return v.ok() ? v.value() : fallback;
}

StatusOr<double> ConfigStore::GetDoubleOr(const std::string& key,
                                          double fallback) const {
  auto v = Get(key);
  if (!v.ok()) return fallback;
  return GetDouble(key);
}

Status ConfigStore::Delete(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = data_.find(key);
  if (it == data_.end()) return Status::NotFound("no config key " + key);
  data_.erase(it);
  ++version_;
  return Status::OK();
}

std::vector<std::string> ConfigStore::KeysWithPrefix(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (auto it = data_.lower_bound(prefix); it != data_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

int64_t ConfigStore::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

}  // namespace cdibot
