#ifndef CDIBOT_CDIBOT_H_
#define CDIBOT_CDIBOT_H_

/// Umbrella header: the library's public surface in one include.
///
/// Applications embedding the CDI pipeline include this and nothing else;
/// the per-module headers below remain the real API and can still be
/// included individually by code that wants a narrower dependency (the
/// library's own sources never include the umbrella).
///
/// What it covers, in data-plane order:
///  * the zero-copy event plane — interner, SoA rows, refs/spans
///    (common/interner.h, event/event_view.h),
///  * event description and period resolution (event/catalog.h,
///    event/period_resolver.h),
///  * the event weight model of Eqs. 1-3 (weights/event_weights.h),
///  * the per-VM and fleet CDI math of Algorithm 1 (cdi/vm_cdi.h,
///    cdi/indicator.h, cdi/baselines.h, cdi/aggregate.h),
///  * the batch job, event log, and streaming engine (cdi/pipeline.h,
///    storage/event_log.h, stream/streaming_engine.h),
///  * the daily watchdog and drill-down history (cdi/monitor.h),
///  * input sanitation / quarantine (chaos/quarantine.h),
///  * process observability — metrics, traces, statusz (obs/statusz.h).
#include "cdi/aggregate.h"
#include "cdi/baselines.h"
#include "cdi/indicator.h"
#include "cdi/monitor.h"
#include "cdi/pipeline.h"
#include "cdi/vm_cdi.h"
#include "chaos/quarantine.h"
#include "common/interner.h"
#include "common/statusor.h"
#include "common/thread_pool.h"
#include "common/time.h"
#include "event/catalog.h"
#include "event/event.h"
#include "event/event_view.h"
#include "event/period_resolver.h"
#include "obs/statusz.h"
#include "storage/event_log.h"
#include "stream/streaming_engine.h"
#include "weights/event_weights.h"

#endif  // CDIBOT_CDIBOT_H_
