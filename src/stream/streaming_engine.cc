#include "stream/streaming_engine.h"

#include <algorithm>
#include <functional>
#include <utility>

namespace cdibot {

StreamingCdiEngine::StreamingCdiEngine(const EventCatalog* catalog,
                                       const EventWeightModel* weights,
                                       StreamingCdiOptions options)
    : catalog_(catalog),
      weights_(weights),
      options_(options),
      resolver_(catalog),
      mu_(std::make_unique<std::mutex>()) {
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Before any event arrives the watermark sits at the earliest instant
  // that could still affect the window, so nothing counts as late.
  watermark_ = options_.window.start - kEventSearchMargin;
  max_event_time_ = watermark_;
}

StatusOr<StreamingCdiEngine> StreamingCdiEngine::Create(
    const EventCatalog* catalog, const EventWeightModel* weights,
    StreamingCdiOptions options) {
  if (catalog == nullptr || weights == nullptr) {
    return Status::InvalidArgument("catalog and weights are required");
  }
  if (options.window.empty()) {
    return Status::InvalidArgument("evaluation window must be non-empty");
  }
  if (options.allowed_lateness.IsNegative()) {
    return Status::InvalidArgument("allowed_lateness must be >= 0");
  }
  options.num_shards = std::max<size_t>(1, options.num_shards);
  return StreamingCdiEngine(catalog, weights, std::move(options));
}

size_t StreamingCdiEngine::ShardIndex(const std::string& vm_id) const {
  return std::hash<std::string>{}(vm_id) % shards_.size();
}

Status StreamingCdiEngine::RegisterVm(const VmServiceInfo& vm) {
  if (vm.vm_id.empty()) {
    return Status::InvalidArgument("vm_id must be non-empty");
  }
  // Adopt any events that arrived before the registration.
  std::vector<RawEvent> adopted;
  {
    std::lock_guard<std::mutex> lock(*mu_);
    auto it = orphans_.find(vm.vm_id);
    if (it != orphans_.end()) {
      adopted = std::move(it->second);
      orphans_.erase(it);
    }
  }
  Shard& shard = *shards_[ShardIndex(vm.vm_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  VmState& state = shard.vms[vm.vm_id];
  state.info = vm;
  for (RawEvent& ev : adopted) state.events.push_back(std::move(ev));
  if (!state.dirty) {
    state.dirty = true;
    shard.dirty_vms.push_back(vm.vm_id);
  }
  return Status::OK();
}

void StreamingCdiEngine::ObserveEventTime(TimePoint t) {
  if (max_event_time_ < t) max_event_time_ = t;
  const TimePoint candidate = max_event_time_ - options_.allowed_lateness;
  if (watermark_ < candidate) watermark_ = candidate;
}

Status StreamingCdiEngine::Ingest(const RawEvent& event) {
  if (event.target.empty()) {
    return Status::InvalidArgument("event target must be non-empty");
  }
  const Interval relevant(options_.window.start - kEventSearchMargin,
                          options_.window.end + kEventSearchMargin);
  {
    std::lock_guard<std::mutex> lock(*mu_);
    ++stats_.events_ingested;
    const bool late = event.time < watermark_;
    ObserveEventTime(event.time);
    if (!relevant.Contains(event.time)) {
      // Can never intersect the window after resolution-time clamping.
      ++stats_.events_out_of_window;
      return Status::OK();
    }
    if (late) ++stats_.events_late;
  }

  Shard& shard = *shards_[ShardIndex(event.target)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.vms.find(event.target);
    if (it != shard.vms.end()) {
      VmState& state = it->second;
      state.events.push_back(event);
      if (!state.dirty) {
        state.dirty = true;
        shard.dirty_vms.push_back(event.target);
      }
      return Status::OK();
    }
  }
  // Target not registered (yet): park the event. RegisterVm drains the
  // orphan buffer before touching the shard, so re-checking under the
  // shard lock after parking closes the race where a registration slips
  // between the lookup above and the insertion below.
  {
    std::lock_guard<std::mutex> lock(*mu_);
    orphans_[event.target].push_back(event);
    ++stats_.events_orphaned;
  }
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.vms.find(event.target);
    if (it == shard.vms.end()) return Status::OK();
    // Registration raced us: move the parked events into the VM state.
    std::vector<RawEvent> parked;
    {
      std::lock_guard<std::mutex> inner(*mu_);
      auto oit = orphans_.find(event.target);
      if (oit != orphans_.end()) {
        parked = std::move(oit->second);
        orphans_.erase(oit);
      }
    }
    VmState& state = it->second;
    for (RawEvent& ev : parked) state.events.push_back(std::move(ev));
    if (!parked.empty() && !state.dirty) {
      state.dirty = true;
      shard.dirty_vms.push_back(event.target);
    }
  }
  return Status::OK();
}

Status StreamingCdiEngine::IngestBatch(const std::vector<RawEvent>& events) {
  for (const RawEvent& ev : events) {
    CDIBOT_RETURN_IF_ERROR(Ingest(ev));
  }
  return Status::OK();
}

void StreamingCdiEngine::AdvanceWatermarkTo(TimePoint t) {
  std::lock_guard<std::mutex> lock(*mu_);
  if (watermark_ < t) watermark_ = t;
}

void StreamingCdiEngine::RecomputeVmLocked(Shard& shard, VmState& state) {
  // Retract the VM's resident contribution before folding the revision in.
  if (state.has_output && !state.output.skipped && state.error.ok()) {
    shard.cdi_partial.RemoveVm(state.output.record.cdi);
    shard.baseline_partial.RemoveVm(state.output.baseline,
                                    state.output.record.cdi.service_time);
  }

  // Feed exactly the events the batch job's log search would return for
  // this VM, so the resolver sees identical inputs (including identical
  // data-quality counters).
  const Interval service =
      state.info.service_period.ClampTo(options_.window);
  std::vector<RawEvent> raw;
  if (!service.empty()) {
    const Interval search(service.start - kEventSearchMargin,
                          service.end + kEventSearchMargin);
    for (const RawEvent& ev : state.events) {
      if (search.Contains(ev.time)) raw.push_back(ev);
    }
  }

  state.error = ComputeVmDailyCdi(std::move(raw), state.info,
                                  options_.window, resolver_, *weights_,
                                  &state.output);
  state.has_output = true;
  state.dirty = false;
  if (state.error.ok() && !state.output.skipped) {
    shard.cdi_partial.AddVm(state.output.record.cdi);
    shard.baseline_partial.AddVm(state.output.baseline,
                                 state.output.record.cdi.service_time);
  }
}

void StreamingCdiEngine::DrainDirty() {
  struct Work {
    Shard* shard;
    std::string vm_id;
  };
  std::vector<Work> work;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (std::string& vm_id : shard->dirty_vms) {
      work.push_back(Work{shard.get(), std::move(vm_id)});
    }
    shard->dirty_vms.clear();
  }
  if (work.empty()) return;

  auto recompute = [this, &work](size_t i) {
    Shard& shard = *work[i].shard;
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.vms.find(work[i].vm_id);
    if (it == shard.vms.end() || !it->second.dirty) return;
    RecomputeVmLocked(shard, it->second);
  };
  if (options_.pool != nullptr && work.size() > 1) {
    options_.pool->ParallelFor(work.size(), recompute);
  } else {
    for (size_t i = 0; i < work.size(); ++i) recompute(i);
  }

  std::lock_guard<std::mutex> lock(*mu_);
  stats_.vms_recomputed += work.size();
}

StatusOr<VmCdi> StreamingCdiEngine::FleetCdi() {
  DrainDirty();
  FleetCdiPartial total;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.Merge(shard->cdi_partial);
  }
  return total.Finalize();
}

StatusOr<DailyCdiResult> StreamingCdiEngine::Snapshot() {
  DrainDirty();

  DailyCdiResult result;
  FleetCdiPartial fleet_partial;
  UnavailabilityPartial baseline_partial;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    fleet_partial.Merge(shard->cdi_partial);
    baseline_partial.Merge(shard->baseline_partial);
    for (auto& [vm_id, state] : shard->vms) {
      if (!state.error.ok()) {
        ++result.vms_failed;
        result.resolve_stats.Merge(state.output.resolve_stats);
        if (result.first_vm_error.ok()) {
          result.first_vm_error = Status::Internal(
              "vm " + vm_id + ": " + state.error.ToString());
        }
        continue;
      }
      if (state.output.skipped) {
        ++result.vms_skipped;
        continue;
      }
      ++result.vms_evaluated;
      result.resolve_stats.Merge(state.output.resolve_stats);
      result.fleet_service_time += state.output.record.cdi.service_time;
      result.per_vm.push_back(state.output.record);
      for (const EventCdiRecord& rec : state.output.events) {
        result.per_event.push_back(rec);
      }
    }
  }
  result.fleet = fleet_partial.Finalize();
  result.fleet_baseline = baseline_partial.Finalize();

  // Shard-hash iteration order is an implementation detail; emit rows in a
  // deterministic order so snapshots diff cleanly across runs.
  std::sort(result.per_vm.begin(), result.per_vm.end(),
            [](const VmCdiRecord& a, const VmCdiRecord& b) {
              return a.vm_id < b.vm_id;
            });
  std::sort(result.per_event.begin(), result.per_event.end(),
            [](const EventCdiRecord& a, const EventCdiRecord& b) {
              return std::tie(a.vm_id, a.event_name) <
                     std::tie(b.vm_id, b.event_name);
            });

  std::lock_guard<std::mutex> lock(*mu_);
  ++stats_.snapshots_taken;
  return result;
}

StreamCheckpoint StreamingCdiEngine::Checkpoint() const {
  StreamCheckpoint ckpt;
  ckpt.window = options_.window;
  {
    std::lock_guard<std::mutex> lock(*mu_);
    ckpt.watermark = watermark_;
    ckpt.max_event_time = max_event_time_;
    ckpt.events_ingested = stats_.events_ingested;
    ckpt.events_late = stats_.events_late;
    ckpt.events_out_of_window = stats_.events_out_of_window;
    ckpt.events_orphaned = stats_.events_orphaned;
    ckpt.vms_recomputed = stats_.vms_recomputed;
    for (const auto& [target, events] : orphans_) {
      for (const RawEvent& ev : events) ckpt.orphan_events.push_back(ev);
    }
  }
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [vm_id, state] : shard->vms) {
      ckpt.vms.push_back(CheckpointVmEntry{
          .vm_id = state.info.vm_id,
          .dims = state.info.dims,
          .service_period = state.info.service_period});
      for (const RawEvent& ev : state.events) ckpt.events.push_back(ev);
    }
  }
  std::sort(ckpt.vms.begin(), ckpt.vms.end(),
            [](const CheckpointVmEntry& a, const CheckpointVmEntry& b) {
              return a.vm_id < b.vm_id;
            });
  return ckpt;
}

StatusOr<StreamingCdiEngine> StreamingCdiEngine::Restore(
    const StreamCheckpoint& ckpt, const EventCatalog* catalog,
    const EventWeightModel* weights, StreamingCdiOptions options) {
  options.window = ckpt.window;
  CDIBOT_ASSIGN_OR_RETURN(StreamingCdiEngine engine,
                          Create(catalog, weights, std::move(options)));
  for (const CheckpointVmEntry& vm : ckpt.vms) {
    CDIBOT_RETURN_IF_ERROR(engine.RegisterVm(VmServiceInfo{
        .vm_id = vm.vm_id,
        .dims = vm.dims,
        .service_period = vm.service_period}));
  }
  // Place buffered events directly: they were already admitted (and
  // filtered) by the original engine, so they bypass the ingest-side
  // watermark/window accounting, which is restored verbatim below.
  for (const RawEvent& ev : ckpt.events) {
    Shard& shard = *engine.shards_[engine.ShardIndex(ev.target)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.vms.find(ev.target);
    if (it == shard.vms.end()) {
      return Status::InvalidArgument(
          "checkpoint event for unregistered vm: " + ev.target);
    }
    it->second.events.push_back(ev);
  }
  {
    std::lock_guard<std::mutex> lock(*engine.mu_);
    for (const RawEvent& ev : ckpt.orphan_events) {
      engine.orphans_[ev.target].push_back(ev);
    }
    engine.watermark_ = ckpt.watermark;
    engine.max_event_time_ = ckpt.max_event_time;
    engine.stats_.events_ingested = ckpt.events_ingested;
    engine.stats_.events_late = ckpt.events_late;
    engine.stats_.events_out_of_window = ckpt.events_out_of_window;
    engine.stats_.events_orphaned = ckpt.events_orphaned;
    engine.stats_.vms_recomputed = ckpt.vms_recomputed;
  }
  return engine;
}

StreamingCdiStats StreamingCdiEngine::stats() const {
  std::lock_guard<std::mutex> lock(*mu_);
  StreamingCdiStats copy = stats_;
  copy.watermark = watermark_;
  return copy;
}

TimePoint StreamingCdiEngine::watermark() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return watermark_;
}

size_t StreamingCdiEngine::num_vms() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->vms.size();
  }
  return n;
}

}  // namespace cdibot
