#include "stream/streaming_engine.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <set>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cdibot {

namespace {

// Ingest is the per-update hot path: each registry touch below is a single
// relaxed atomic op on a cached handle (stream_throughput pins the cost).
// Restore() repopulates engine-local stats_ from the checkpoint without
// touching these — the registry counts only what this process observed.
struct StreamCounters {
  obs::Counter* ingested;
  obs::Counter* late;
  obs::Counter* out_of_window;
  obs::Counter* orphaned;
  obs::Counter* recomputed;
  obs::Counter* snapshots;
  obs::Counter* shed;
  obs::Counter* deferred;
  obs::Gauge* watermark_ms;
};

const StreamCounters& Counters() {
  static const StreamCounters c = [] {
    auto& reg = obs::MetricsRegistry::Global();
    return StreamCounters{
        .ingested = reg.GetCounter("stream.events_ingested"),
        .late = reg.GetCounter("stream.events_late"),
        .out_of_window = reg.GetCounter("stream.events_out_of_window"),
        .orphaned = reg.GetCounter("stream.events_orphaned"),
        .recomputed = reg.GetCounter("stream.vms_recomputed"),
        .snapshots = reg.GetCounter("stream.snapshots"),
        .shed = reg.GetCounter("stream.events_shed"),
        .deferred = reg.GetCounter("stream.vms_deferred"),
        .watermark_ms = reg.GetGauge("stream.watermark_ms"),
    };
  }();
  return c;
}

/// Content fingerprint of an event for distinct-received accounting. Any
/// corruption (skewed time, flipped severity) changes the fingerprint, so
/// only a faithful redelivery of an already-seen event collapses into it.
/// attrs is an ordered map, so the canonical string is deterministic.
uint64_t EventFingerprint(const RawEvent& ev) {
  std::string canon = ev.name;
  canon += '\x1f';
  canon += std::to_string(ev.time.millis());
  canon += '\x1f';
  canon += ev.target;
  canon += '\x1f';
  canon += std::to_string(static_cast<int>(ev.level));
  canon += '\x1f';
  canon += std::to_string(ev.expire_interval.millis());
  for (const auto& [key, value] : ev.attrs) {
    canon += '\x1f';
    canon += key;
    canon += '=';
    canon += value;
  }
  return std::hash<std::string>{}(canon);
}

}  // namespace

StreamingCdiEngine::StreamingCdiEngine(const EventCatalog* catalog,
                                       const EventWeightModel* weights,
                                       StreamingCdiOptions options)
    : catalog_(catalog),
      weights_(weights),
      options_(options),
      resolver_(catalog),
      mu_(std::make_unique<std::mutex>()),
      quarantine_(std::make_unique<chaos::QuarantineSink>()) {
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Before any event arrives the watermark sits at the earliest instant
  // that could still affect the window, so nothing counts as late.
  watermark_ = options_.window.start - kEventSearchMargin;
  max_event_time_ = watermark_;
}

StatusOr<StreamingCdiEngine> StreamingCdiEngine::Create(
    const EventCatalog* catalog, const EventWeightModel* weights,
    StreamingCdiOptions options) {
  if (catalog == nullptr || weights == nullptr) {
    return Status::InvalidArgument("catalog and weights are required");
  }
  if (options.window.empty()) {
    return Status::InvalidArgument("evaluation window must be non-empty");
  }
  if (options.allowed_lateness.IsNegative()) {
    return Status::InvalidArgument("allowed_lateness must be >= 0");
  }
  options.num_shards = std::max<size_t>(1, options.num_shards);
  return StreamingCdiEngine(catalog, weights, std::move(options));
}

size_t StreamingCdiEngine::ShardIndex(const std::string& vm_id) const {
  return std::hash<std::string>{}(vm_id) % shards_.size();
}

Status StreamingCdiEngine::RegisterVm(const VmServiceInfo& vm) {
  if (vm.vm_id.empty()) {
    return Status::InvalidArgument("vm_id must be non-empty");
  }
  // Adopt any events that arrived before the registration.
  std::vector<RawEvent> adopted;
  {
    std::lock_guard<std::mutex> lock(*mu_);
    auto it = orphans_.find(vm.vm_id);
    if (it != orphans_.end()) {
      adopted = std::move(it->second);
      orphans_.erase(it);
    }
  }
  Shard& shard = *shards_[ShardIndex(vm.vm_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  VmState& state = shard.vms[vm.vm_id];
  state.info = vm;
  for (const RawEvent& ev : adopted) state.events.Append(ev);
  if (!state.dirty) {
    state.dirty = true;
    shard.dirty_vms.push_back(vm.vm_id);
  }
  return Status::OK();
}

void StreamingCdiEngine::ObserveEventTime(TimePoint t) {
  if (max_event_time_ < t) max_event_time_ = t;
  const TimePoint candidate = max_event_time_ - options_.allowed_lateness;
  if (watermark_ < candidate) {
    watermark_ = candidate;
    Counters().watermark_ms->Set(static_cast<double>(watermark_.millis()));
  }
}

Status StreamingCdiEngine::Ingest(const RawEvent& event) {
  const auto defect = chaos::ValidateRawEvent(event);
  if (defect.has_value()) {
    // Malformed input is diverted, not an error: the stream keeps flowing
    // and the affected VM's snapshot carries the degradation instead.
    quarantine_->Quarantine(event, *defect);
    Counters().ingested->Increment();
    std::lock_guard<std::mutex> lock(*mu_);
    ++stats_.events_ingested;
    if (!event.target.empty()) {
      // The corrupted event did physically arrive for this target.
      delivery_[event.target].fingerprints.insert(EventFingerprint(event));
    }
    return Status::OK();
  }
  const Interval relevant(options_.window.start - kEventSearchMargin,
                          options_.window.end + kEventSearchMargin);
  Counters().ingested->Increment();
  {
    std::lock_guard<std::mutex> lock(*mu_);
    ++stats_.events_ingested;
    delivery_[event.target].fingerprints.insert(EventFingerprint(event));
    const bool late = event.time < watermark_;
    ObserveEventTime(event.time);
    if (!relevant.Contains(event.time)) {
      // Can never intersect the window after resolution-time clamping.
      ++stats_.events_out_of_window;
      Counters().out_of_window->Increment();
      return Status::OK();
    }
    if (late) {
      ++stats_.events_late;
      Counters().late->Increment();
    }
  }

  Shard& shard = *shards_[ShardIndex(event.target)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.vms.find(event.target);
    if (it != shard.vms.end()) {
      VmState& state = it->second;
      state.events.Append(event);
      if (!state.dirty) {
        state.dirty = true;
        shard.dirty_vms.push_back(event.target);
      }
      return Status::OK();
    }
  }
  // Target not registered (yet): park the event. RegisterVm drains the
  // orphan buffer before touching the shard, so re-checking under the
  // shard lock after parking closes the race where a registration slips
  // between the lookup above and the insertion below.
  {
    std::lock_guard<std::mutex> lock(*mu_);
    orphans_[event.target].push_back(event);
    ++stats_.events_orphaned;
    Counters().orphaned->Increment();
  }
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.vms.find(event.target);
    if (it == shard.vms.end()) return Status::OK();
    // Registration raced us: move the parked events into the VM state.
    std::vector<RawEvent> parked;
    {
      std::lock_guard<std::mutex> inner(*mu_);
      auto oit = orphans_.find(event.target);
      if (oit != orphans_.end()) {
        parked = std::move(oit->second);
        orphans_.erase(oit);
      }
    }
    VmState& state = it->second;
    for (const RawEvent& ev : parked) state.events.Append(ev);
    if (!parked.empty() && !state.dirty) {
      state.dirty = true;
      shard.dirty_vms.push_back(event.target);
    }
  }
  return Status::OK();
}

Status StreamingCdiEngine::IngestBatch(const std::vector<RawEvent>& events) {
  for (const RawEvent& ev : events) {
    CDIBOT_RETURN_IF_ERROR(Ingest(ev));
  }
  return Status::OK();
}

void StreamingCdiEngine::AdvanceWatermarkTo(TimePoint t) {
  std::lock_guard<std::mutex> lock(*mu_);
  if (watermark_ < t) {
    watermark_ = t;
    Counters().watermark_ms->Set(static_cast<double>(watermark_.millis()));
  }
}

void StreamingCdiEngine::ExpectDelivery(const std::string& target,
                                        uint64_t count) {
  std::lock_guard<std::mutex> lock(*mu_);
  delivery_[target].expected += count;
}

void StreamingCdiEngine::RecordShed(const std::string& target,
                                    uint64_t count) {
  if (count == 0) return;
  Counters().shed->Add(count);
  std::lock_guard<std::mutex> lock(*mu_);
  shed_by_target_[target] += count;
  stats_.events_shed += count;
}

void StreamingCdiEngine::RecomputeVmLocked(Shard& shard, VmState& state) {
  // Retract the VM's resident contribution before folding the revision in.
  if (state.has_output && !state.output.skipped && state.error.ok()) {
    shard.cdi_partial.RemoveVm(state.output.record.cdi);
    shard.baseline_partial.RemoveVm(state.output.baseline,
                                    state.output.record.cdi.service_time);
  }

  // Feed exactly the events the batch job's log query would return for
  // this VM — a zero-copy span over the retention buffer with the same
  // margin-extended time filter — so the resolver sees identical inputs
  // (including identical data-quality counters).
  const Interval service =
      state.info.service_period.ClampTo(options_.window);
  EventSpan span;
  if (!service.empty()) {
    span = EventSpan(Interval(service.start - kEventSearchMargin,
                              service.end + kEventSearchMargin));
    if (!state.events.empty()) {
      span.AddSegment(EventSpan::Segment{
          .rows = &state.events,
          .indices = nullptr,
          .first = 0,
          .last = static_cast<uint32_t>(state.events.size())});
    }
  }

  VmDailyError verr;
  auto out_or = ComputeVmDailyCdi(span, state.info, options_.window,
                                  resolver_, *weights_, nullptr, &verr);
  if (out_or.ok()) {
    state.output = std::move(out_or).value();
    state.error = Status::OK();
  } else {
    // A failing VM keeps the counters of the work that ran (snapshot
    // reporting reads them) but contributes nothing to the aggregates.
    state.error = out_or.status();
    state.output = VmDailyOutput{};
    state.output.resolve_stats = verr.resolve_stats;
    state.output.quality = verr.quality;
  }
  state.has_output = true;
  state.dirty = false;
  if (state.error.ok() && !state.output.skipped) {
    shard.cdi_partial.AddVm(state.output.record.cdi);
    shard.baseline_partial.AddVm(state.output.baseline,
                                 state.output.record.cdi.service_time);
  }
}

size_t StreamingCdiEngine::DrainDirty(const Deadline& deadline) {
  TRACE_SPAN("stream.drain_dirty");
  struct Work {
    Shard* shard;
    std::string vm_id;
  };
  std::vector<Work> work;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (std::string& vm_id : shard->dirty_vms) {
      work.push_back(Work{shard.get(), std::move(vm_id)});
    }
    shard->dirty_vms.clear();
  }
  if (work.empty()) return 0;

  std::atomic<size_t> recomputed{0};
  std::atomic<size_t> deferred{0};
  auto recompute = [&](size_t i) {
    Shard& shard = *work[i].shard;
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.vms.find(work[i].vm_id);
    if (it == shard.vms.end() || !it->second.dirty) return;
    // Budget check per VM: an expired deadline re-queues the VM (its dirty
    // flag never cleared) for the next drain instead of computing it now.
    if (deadline.Expired()) {
      shard.dirty_vms.push_back(work[i].vm_id);
      deferred.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    RecomputeVmLocked(shard, it->second);
    recomputed.fetch_add(1, std::memory_order_relaxed);
  };
  if (options_.pool != nullptr && work.size() > 1) {
    options_.pool->ParallelFor(work.size(), recompute);
  } else {
    for (size_t i = 0; i < work.size(); ++i) recompute(i);
  }

  Counters().recomputed->Add(recomputed.load());
  Counters().deferred->Add(deferred.load());
  std::lock_guard<std::mutex> lock(*mu_);
  stats_.vms_recomputed += recomputed.load();
  return deferred.load();
}

StatusOr<VmCdi> StreamingCdiEngine::FleetCdi() {
  TRACE_SPAN("stream.fleet_cdi");
  DrainDirty();
  FleetCdiPartial total;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.Merge(shard->cdi_partial);
  }
  return total.Finalize();
}

StatusOr<DailyCdiResult> StreamingCdiEngine::Snapshot() {
  return SnapshotImpl(Deadline());
}

StatusOr<DailyCdiResult> StreamingCdiEngine::Preview(const Deadline& deadline) {
  return SnapshotImpl(deadline);
}

StatusOr<DailyCdiResult> StreamingCdiEngine::SnapshotImpl(
    const Deadline& deadline) {
  TRACE_SPAN("stream.snapshot");
  static obs::Histogram* snapshot_ns =
      obs::MetricsRegistry::Global().GetHistogram("stream.snapshot_ns");
  obs::ScopedTimer timer(snapshot_ns);
  DrainDirty(deadline);

  // Delivery shortfalls, shed counts, and quarantine counts per target,
  // gathered before the shard sweep (mu_ and the shard locks are never
  // held together).
  std::map<std::string, uint64_t> missing_by_target;
  std::map<std::string, uint64_t> shed_by_target;
  {
    std::lock_guard<std::mutex> lock(*mu_);
    for (const auto& [target, d] : delivery_) {
      const uint64_t received = d.received();
      if (d.expected > received) {
        missing_by_target[target] = d.expected - received;
      }
    }
    shed_by_target = shed_by_target_;
  }
  const std::map<std::string, uint64_t> quarantined_by_target =
      quarantine_->counts_by_target();

  DailyCdiResult result;
  UnavailabilityPartial baseline_partial;
  std::set<std::string> sampled_reasons;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    baseline_partial.Merge(shard->baseline_partial);
    for (auto& [vm_id, state] : shard->vms) {
      // A VM still dirty after the bounded drain was deferred: its stale
      // output (if any) is reported below, a never-computed VM contributes
      // nothing but the deferral count.
      if (state.dirty) {
        ++result.vms_deferred;
        if (!state.has_output) continue;
      }
      // The per-VM compute sees only post-quarantine events, so its own
      // quality counters are folded together with the ingest-side sink,
      // delivery accounting, and upstream shed reports here.
      DataQuality quality = state.output.quality;
      if (auto it = quarantined_by_target.find(vm_id);
          it != quarantined_by_target.end()) {
        quality.events_quarantined += it->second;
      }
      if (auto it = missing_by_target.find(vm_id);
          it != missing_by_target.end()) {
        quality.events_missing += it->second;
      }
      if (auto it = shed_by_target.find(vm_id); it != shed_by_target.end()) {
        quality.events_shed += it->second;
      }
      quality.Refresh();
      if (!state.error.ok()) {
        ++result.vms_failed;
        result.resolve_stats.Merge(state.output.resolve_stats);
        result.quality.Merge(quality);
        const std::string reason = state.error.ToString();
        if (result.first_vm_error.ok()) {
          result.first_vm_error =
              Status::Internal("vm " + vm_id + ": " + reason);
        }
        if (result.vm_error_samples.size() <
                DailyCdiResult::kMaxVmErrorSamples &&
            sampled_reasons.insert(reason).second) {
          result.vm_error_samples.push_back("vm " + vm_id + ": " + reason);
        }
        continue;
      }
      if (state.output.skipped) {
        ++result.vms_skipped;
        continue;
      }
      ++result.vms_evaluated;
      if (quality.degraded) ++result.vms_degraded;
      result.quality.Merge(quality);
      result.resolve_stats.Merge(state.output.resolve_stats);
      result.fleet_service_time += state.output.record.cdi.service_time;
      VmCdiRecord record = state.output.record;
      record.quality = quality;
      result.per_vm.push_back(std::move(record));
      for (const EventCdiRecord& rec : state.output.events) {
        result.per_event.push_back(rec);
      }
    }
  }
  // Snapshots fold the fleet value canonically (ascending vm_id, single
  // left fold) instead of merging the per-shard partials: the partial
  // grouping depends on the hash-shard layout, and FP addition is not
  // associative, so only the canonical fold is bit-identical to the batch
  // job and to a scatter/gather over shard workers. The contributing row
  // set below is exactly the partials' content (computed, non-skipped,
  // non-failed VMs — including deferred VMs reporting a stale output).
  // FleetCdi() keeps the cheap partial merge; its last-ulp grouping
  // sensitivity is acceptable for an incremental read.
  CanonicalCdiFold fleet_fold;
  for (const VmCdiRecord& rec : result.per_vm) {
    fleet_fold.Add(rec.vm_id, rec.cdi);
  }
  result.fleet = fleet_fold.Finalize();
  result.fleet_baseline = baseline_partial.Finalize();

  // Shard-hash iteration order is an implementation detail; emit rows in a
  // deterministic order so snapshots diff cleanly across runs.
  std::sort(result.per_vm.begin(), result.per_vm.end(),
            [](const VmCdiRecord& a, const VmCdiRecord& b) {
              return a.vm_id < b.vm_id;
            });
  std::sort(result.per_event.begin(), result.per_event.end(),
            [](const EventCdiRecord& a, const EventCdiRecord& b) {
              return std::tie(a.vm_id, a.event_name) <
                     std::tie(b.vm_id, b.event_name);
            });

  Counters().snapshots->Increment();
  std::lock_guard<std::mutex> lock(*mu_);
  ++stats_.snapshots_taken;
  return result;
}

StreamCheckpoint StreamingCdiEngine::Checkpoint() const {
  TRACE_SPAN("stream.checkpoint");
  StreamCheckpoint ckpt;
  ckpt.window = options_.window;
  {
    std::lock_guard<std::mutex> lock(*mu_);
    ckpt.watermark = watermark_;
    ckpt.max_event_time = max_event_time_;
    ckpt.events_ingested = stats_.events_ingested;
    ckpt.events_late = stats_.events_late;
    ckpt.events_out_of_window = stats_.events_out_of_window;
    ckpt.events_orphaned = stats_.events_orphaned;
    ckpt.vms_recomputed = stats_.vms_recomputed;
    for (const auto& [target, events] : orphans_) {
      for (const RawEvent& ev : events) ckpt.orphan_events.push_back(ev);
    }
    // Fingerprint sets are not persisted; a restored engine carries the
    // distinct count forward as received_base.
    for (const auto& [target, d] : delivery_) {
      CheckpointTargetQuality tq;
      tq.target = target;
      tq.received = d.received();
      tq.expected = d.expected;
      ckpt.target_quality.push_back(std::move(tq));
    }
  }
  ckpt.quarantined_by_reason = quarantine_->CountsByReason();
  {
    const std::map<std::string, uint64_t> quarantined =
        quarantine_->counts_by_target();
    for (auto& tq : ckpt.target_quality) {
      if (auto it = quarantined.find(tq.target); it != quarantined.end()) {
        tq.quarantined = it->second;
      }
    }
    // Targets that only ever produced quarantined events (no manifest, no
    // attributable delivery) still need a row so the counter survives a
    // restart.
    for (const auto& [target, count] : quarantined) {
      const bool present =
          std::any_of(ckpt.target_quality.begin(), ckpt.target_quality.end(),
                      [&](const CheckpointTargetQuality& tq) {
                        return tq.target == target;
                      });
      if (!present) {
        CheckpointTargetQuality tq;
        tq.target = target;
        tq.quarantined = count;
        ckpt.target_quality.push_back(std::move(tq));
      }
    }
  }
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [vm_id, state] : shard->vms) {
      ckpt.vms.push_back(CheckpointVmEntry{
          .vm_id = state.info.vm_id,
          .dims = state.info.dims,
          .service_period = state.info.service_period});
      for (uint32_t row = 0; row < state.events.size(); ++row) {
        ckpt.events.push_back(state.events.Materialize(row));
      }
    }
  }
  std::sort(ckpt.vms.begin(), ckpt.vms.end(),
            [](const CheckpointVmEntry& a, const CheckpointVmEntry& b) {
              return a.vm_id < b.vm_id;
            });
  return ckpt;
}

StatusOr<StreamingCdiEngine> StreamingCdiEngine::Restore(
    const StreamCheckpoint& ckpt, const EventCatalog* catalog,
    const EventWeightModel* weights, StreamingCdiOptions options) {
  options.window = ckpt.window;
  CDIBOT_ASSIGN_OR_RETURN(StreamingCdiEngine engine,
                          Create(catalog, weights, std::move(options)));
  for (const CheckpointVmEntry& vm : ckpt.vms) {
    CDIBOT_RETURN_IF_ERROR(engine.RegisterVm(VmServiceInfo{
        .vm_id = vm.vm_id,
        .dims = vm.dims,
        .service_period = vm.service_period}));
  }
  // Place buffered events directly: they were already admitted (and
  // filtered) by the original engine, so they bypass the ingest-side
  // watermark/window accounting, which is restored verbatim below.
  for (const RawEvent& ev : ckpt.events) {
    Shard& shard = *engine.shards_[engine.ShardIndex(ev.target)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.vms.find(ev.target);
    if (it == shard.vms.end()) {
      return Status::InvalidArgument(
          "checkpoint event for unregistered vm: " + ev.target);
    }
    it->second.events.Append(ev);
  }
  {
    std::lock_guard<std::mutex> lock(*engine.mu_);
    for (const RawEvent& ev : ckpt.orphan_events) {
      engine.orphans_[ev.target].push_back(ev);
    }
    engine.watermark_ = ckpt.watermark;
    engine.max_event_time_ = ckpt.max_event_time;
    engine.stats_.events_ingested = ckpt.events_ingested;
    engine.stats_.events_late = ckpt.events_late;
    engine.stats_.events_out_of_window = ckpt.events_out_of_window;
    engine.stats_.events_orphaned = ckpt.events_orphaned;
    engine.stats_.vms_recomputed = ckpt.vms_recomputed;
    for (const CheckpointTargetQuality& tq : ckpt.target_quality) {
      DeliveryState& d = engine.delivery_[tq.target];
      d.expected = tq.expected;
      d.received_base = tq.received;
      if (tq.quarantined > 0) {
        engine.quarantine_->RestoreTargetCount(tq.target, tq.quarantined);
      }
    }
  }
  engine.quarantine_->MergeCountsByReason(ckpt.quarantined_by_reason);
  return engine;
}

StreamCheckpoint StreamingCdiEngine::ExtractRange(
    const std::string& lo, const std::optional<std::string>& hi) {
  TRACE_SPAN("stream.extract_range");
  const auto below_hi = [&](const std::string& id) {
    return !hi.has_value() || id < *hi;
  };
  StreamCheckpoint frag;
  frag.window = options_.window;

  // Per-target accounting rows, merged across the delivery/shed/quarantine
  // maps below (one target may appear in several).
  std::map<std::string, CheckpointTargetQuality> quality;
  const auto row = [&](const std::string& target) -> CheckpointTargetQuality& {
    auto [it, inserted] = quality.try_emplace(target);
    if (inserted) it->second.target = target;
    return it->second;
  };

  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    auto it = shard->vms.lower_bound(lo);
    while (it != shard->vms.end() && below_hi(it->first)) {
      VmState& state = it->second;
      // Retract the resident contribution, exactly as a recompute would.
      if (state.has_output && !state.output.skipped && state.error.ok()) {
        shard->cdi_partial.RemoveVm(state.output.record.cdi);
        shard->baseline_partial.RemoveVm(state.output.baseline,
                                         state.output.record.cdi.service_time);
      }
      frag.vms.push_back(CheckpointVmEntry{
          .vm_id = state.info.vm_id,
          .dims = state.info.dims,
          .service_period = state.info.service_period});
      for (uint32_t r = 0; r < state.events.size(); ++r) {
        frag.events.push_back(state.events.Materialize(r));
      }
      // Stale ids may linger in dirty_vms; DrainDirty skips missing ids.
      it = shard->vms.erase(it);
    }
  }
  {
    std::lock_guard<std::mutex> lock(*mu_);
    frag.watermark = watermark_;
    frag.max_event_time = max_event_time_;
    for (auto it = orphans_.lower_bound(lo);
         it != orphans_.end() && below_hi(it->first);) {
      for (RawEvent& ev : it->second) {
        frag.orphan_events.push_back(std::move(ev));
      }
      it = orphans_.erase(it);
    }
    // Delivery fingerprints collapse into a received count, the same
    // restore caveat Checkpoint() documents: a duplicate redelivered
    // across the handoff counts as distinct at the destination.
    for (auto it = delivery_.lower_bound(lo);
         it != delivery_.end() && below_hi(it->first);) {
      CheckpointTargetQuality& tq = row(it->first);
      tq.received = it->second.received();
      tq.expected = it->second.expected;
      it = delivery_.erase(it);
    }
    for (auto it = shed_by_target_.lower_bound(lo);
         it != shed_by_target_.end() && below_hi(it->first);) {
      row(it->first).shed = it->second;
      it = shed_by_target_.erase(it);
    }
  }
  // Per-target quarantine attribution moves with the range; the
  // reason-keyed totals stay behind (they count what THIS engine
  // diverted, mirroring the engine-local ingest stats).
  for (const auto& [target, count] : quarantine_->counts_by_target()) {
    if (target >= lo && below_hi(target)) {
      row(target).quarantined = quarantine_->ExtractTargetCount(target);
    }
  }
  for (auto& [target, tq] : quality) {
    frag.target_quality.push_back(std::move(tq));
  }
  std::sort(frag.vms.begin(), frag.vms.end(),
            [](const CheckpointVmEntry& a, const CheckpointVmEntry& b) {
              return a.vm_id < b.vm_id;
            });
  return frag;
}

Status StreamingCdiEngine::InstallVms(const StreamCheckpoint& fragment) {
  TRACE_SPAN("stream.install_vms");
  for (const CheckpointVmEntry& vm : fragment.vms) {
    CDIBOT_RETURN_IF_ERROR(RegisterVm(VmServiceInfo{
        .vm_id = vm.vm_id,
        .dims = vm.dims,
        .service_period = vm.service_period}));
  }
  // Buffered events were already admitted and filtered by the source
  // engine, so they bypass ingest-side watermark/window accounting (the
  // watermark is unioned below) — the same contract as Restore().
  for (const RawEvent& ev : fragment.events) {
    Shard& shard = *shards_[ShardIndex(ev.target)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.vms.find(ev.target);
    if (it == shard.vms.end()) {
      return Status::InvalidArgument("fragment event for unregistered vm: " +
                                     ev.target);
    }
    it->second.events.Append(ev);
  }
  for (const RawEvent& ev : fragment.orphan_events) {
    // The target may have registered here since the extract; adopt
    // directly in that case, park otherwise.
    Shard& shard = *shards_[ShardIndex(ev.target)];
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.vms.find(ev.target);
      if (it != shard.vms.end()) {
        VmState& state = it->second;
        state.events.Append(ev);
        if (!state.dirty) {
          state.dirty = true;
          shard.dirty_vms.push_back(ev.target);
        }
        continue;
      }
    }
    std::lock_guard<std::mutex> lock(*mu_);
    orphans_[ev.target].push_back(ev);
  }
  {
    std::lock_guard<std::mutex> lock(*mu_);
    for (const CheckpointTargetQuality& tq : fragment.target_quality) {
      if (tq.expected > 0 || tq.received > 0) {
        DeliveryState& d = delivery_[tq.target];
        d.expected += tq.expected;
        d.received_base += tq.received;
      }
      if (tq.shed > 0) {
        shed_by_target_[tq.target] += tq.shed;
        stats_.events_shed += tq.shed;
      }
      if (tq.quarantined > 0) {
        quarantine_->RestoreTargetCount(tq.target, tq.quarantined);
      }
    }
    // Watermark union: adopt the source's event-time horizon without ever
    // regressing this engine's own.
    if (max_event_time_ < fragment.max_event_time) {
      max_event_time_ = fragment.max_event_time;
    }
    if (watermark_ < fragment.watermark) watermark_ = fragment.watermark;
    const TimePoint candidate = max_event_time_ - options_.allowed_lateness;
    if (watermark_ < candidate) watermark_ = candidate;
  }
  return Status::OK();
}

StreamingCdiStats StreamingCdiEngine::stats() const {
  std::lock_guard<std::mutex> lock(*mu_);
  StreamingCdiStats copy = stats_;
  copy.watermark = watermark_;
  return copy;
}

TimePoint StreamingCdiEngine::watermark() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return watermark_;
}

size_t StreamingCdiEngine::num_vms() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->vms.size();
  }
  return n;
}

}  // namespace cdibot
