#ifndef CDIBOT_STREAM_STREAMING_ENGINE_H_
#define CDIBOT_STREAM_STREAMING_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "cdi/aggregate.h"
#include "cdi/baselines.h"
#include "cdi/pipeline.h"
#include "chaos/quarantine.h"
#include "common/statusor.h"
#include "common/thread_pool.h"
#include "event/period_resolver.h"
#include "storage/stream_checkpoint.h"

namespace cdibot {

/// Tuning knobs for the streaming engine.
struct StreamingCdiOptions {
  /// The evaluation window the engine maintains results for (typically one
  /// UTC day — the same window the batch DailyCdiJob would be given).
  Interval window;
  /// The event-time watermark trails the maximum ingested event time by
  /// this much: events older than the watermark are counted as late but
  /// still folded in (CDI is a correctness metric, so late data revises
  /// the affected VM rather than being dropped).
  Duration allowed_lateness = Duration::Minutes(5);
  /// Number of state shards. Each shard owns a disjoint set of VMs plus a
  /// mergeable partial aggregate, so snapshots touch only per-shard
  /// partials and dirty VMs.
  size_t num_shards = 16;
  /// Optional worker pool for recomputing dirty VMs in parallel. Borrowed;
  /// must outlive the engine.
  ThreadPool* pool = nullptr;
};

/// Observability counters for the engine.
struct StreamingCdiStats {
  size_t events_ingested = 0;
  /// Events that arrived behind the watermark (still processed).
  size_t events_late = 0;
  /// Events outside window +/- kEventSearchMargin (cannot affect the
  /// window; dropped on ingest).
  size_t events_out_of_window = 0;
  /// Events for targets with no registered VM, buffered until the VM
  /// appears (mid-day churn registers VMs after their first events).
  size_t events_orphaned = 0;
  /// Total per-VM recomputations performed so far.
  size_t vms_recomputed = 0;
  size_t snapshots_taken = 0;
  /// Events reported via RecordShed: dropped by upstream admission control
  /// before reaching Ingest. They surface as DataQuality::events_shed on
  /// the affected VMs' snapshot rows.
  size_t events_shed = 0;
  TimePoint watermark;
};

/// StreamingCdiEngine is the incremental counterpart of the batch
/// DailyCdiJob: it ingests RawEvents as they arrive — out of order, late,
/// or duplicated — maintains per-VM resolved-period state sharded across a
/// ThreadPool, and emits DailyCdiResult-compatible snapshots where only the
/// VMs touched by new events since the previous snapshot are recomputed.
///
/// Equivalence guarantee: after the same events and VM registrations, a
/// Snapshot() matches DailyCdiJob::Run on the same inputs to within
/// floating-point aggregation error (< 1e-9 relative; the per-VM math is
/// literally the same ComputeVmDailyCdi call, and period resolution is
/// arrival-order invariant). The differential suite in
/// tests/stream_batch_equivalence_test.cc pins this property.
///
/// Thread safety: Ingest/RegisterVm/Snapshot are individually thread-safe
/// (per-shard locking plus an engine mutex for watermark and stats).
///
/// Degraded-mode operation: a structurally malformed event is diverted to
/// the engine's quarantine sink instead of failing Ingest, and collectors
/// may announce per-target delivery counts via ExpectDelivery; snapshots
/// then annotate each VM's row with a DataQuality record (quarantined
/// count, missing count, degraded flag) so a CDI computed from an impaired
/// stream is flagged rather than silently wrong — the paper's position
/// that a stability metric must itself keep working through instability.
class StreamingCdiEngine {
 public:
  /// `catalog` and `weights` must outlive the engine.
  static StatusOr<StreamingCdiEngine> Create(const EventCatalog* catalog,
                                             const EventWeightModel* weights,
                                             StreamingCdiOptions options);

  StreamingCdiEngine(StreamingCdiEngine&&) = default;
  StreamingCdiEngine& operator=(StreamingCdiEngine&&) = default;

  /// Declares a VM and its service window (clamped into the engine window
  /// at snapshot time, like the batch job). Re-registering an id replaces
  /// its service info — mid-day churn shrinks or extends the window — and
  /// marks the VM dirty. Events that arrived before registration are
  /// adopted from the orphan buffer.
  Status RegisterVm(const VmServiceInfo& vm);

  /// Feeds one raw event. Advances the watermark, routes the event to its
  /// target VM's shard, and marks that VM dirty; no recomputation happens
  /// until the next snapshot touches the VM. O(1) amortized regardless of
  /// fleet size. A structurally malformed event (empty name or target,
  /// impossible severity, ...) is diverted to the quarantine sink and the
  /// call still returns OK — instability in the input degrades the
  /// affected VM's data-quality annotation, never the pipeline itself.
  Status Ingest(const RawEvent& event);
  Status IngestBatch(const std::vector<RawEvent>& events);

  /// Declares that `target`'s collector sent `count` more events than
  /// previously announced (a delivery manifest). At snapshot time the
  /// engine compares the announcement against the DISTINCT events actually
  /// received for the target — duplicates collapse, so a duplicated stream
  /// cannot mask a drop — and reports the shortfall as
  /// DataQuality::events_missing, the silent-collector-gap signature.
  void ExpectDelivery(const std::string& target, uint64_t count);

  /// Records that upstream admission control (flow::BackpressureQueue)
  /// shed `count` events bound for `target`. Shed events never reach
  /// Ingest, so this is the only way the engine learns about them; at
  /// snapshot time they surface as DataQuality::events_shed on the
  /// target's row, flagging its CDI as degraded-by-overload. Shed counts
  /// are engine-local and deliberately not persisted in checkpoints
  /// (mirroring the quarantine fingerprint sets): the supervisor re-reports
  /// them after a restore if the queue still holds the accounting.
  void RecordShed(const std::string& target, uint64_t count = 1);

  /// Sink holding every event Ingest diverted. Owned by the engine.
  const chaos::QuarantineSink& quarantine() const { return *quarantine_; }

  /// Explicitly advances the watermark (e.g. on an idle stream). The
  /// watermark never regresses.
  void AdvanceWatermarkTo(TimePoint t);

  /// Recomputes every dirty VM (in parallel when a pool is configured),
  /// folds the revisions into the per-shard partial aggregates, and returns
  /// the fleet-level CDI by merging the shard partials. Cost is
  /// O(dirty VMs + shards), independent of fleet size when the stream is
  /// quiet.
  ///
  /// DEPRECATED as a consumer API: new read paths should go through
  /// serve::CdiQueryService (fleet_fidelity = kPartialMerge keeps this
  /// method's exact bits) and gain caching, staleness bounds, and
  /// admission control. Kept for the facade itself and existing callers.
  StatusOr<VmCdi> FleetCdi();

  /// Full batch-compatible snapshot: per-VM rows, per-event drill-down
  /// rows, fleet aggregates, baselines, and data-quality counters, exactly
  /// as DailyCdiJob::Run would report them. Recomputes dirty VMs first;
  /// assembling the row vectors is O(fleet) by necessity (the result lists
  /// every VM), but the recomputation work stays proportional to the dirty
  /// set.
  ///
  /// DEPRECATED as a consumer API: prefer serve::CdiQueryService with
  /// include_detail (a kFresh detail query is exactly this snapshot).
  StatusOr<DailyCdiResult> Snapshot();

  /// Deadline-bounded snapshot: recomputes dirty VMs only until `deadline`
  /// expires, then assembles the result from what is resident. VMs whose
  /// recompute was deferred stay dirty (the next Snapshot/Preview picks
  /// them up); a deferred VM with a previous output contributes its stale
  /// row, one never computed contributes nothing. The deferral count lands
  /// in DailyCdiResult::vms_deferred, so a non-zero value marks the result
  /// as a best-effort preview rather than a settled snapshot.
  ///
  /// DEPRECATED as a consumer API: prefer serve::CdiQueryService with a
  /// finite CdiQuery::deadline, which routes here and adds the serving
  /// layers on top.
  StatusOr<DailyCdiResult> Preview(const Deadline& deadline);

  /// Serializes the engine's durable state (window, watermark, registered
  /// VMs, buffered raw events, quarantine and delivery counters) for
  /// storage::SaveStreamCheckpoint. The derived per-VM results are not
  /// persisted; a restored engine lazily recomputes them on the first
  /// snapshot.
  StreamCheckpoint Checkpoint() const;

  /// Rebuilds an engine from a checkpoint: registers the VMs, replays the
  /// buffered events, and restores the watermark, so a restarted engine
  /// resumes exactly where the checkpoint left off.
  static StatusOr<StreamingCdiEngine> Restore(const StreamCheckpoint& ckpt,
                                              const EventCatalog* catalog,
                                              const EventWeightModel* weights,
                                              StreamingCdiOptions options);

  /// Removes every VM whose id falls in [lo, hi) — hi nullopt means
  /// unbounded — and returns their durable state as a checkpoint FRAGMENT
  /// in the standard StreamCheckpoint format, ready for InstallVms on
  /// another engine. The fragment carries the range's registered VMs,
  /// their buffered events, orphaned events for unregistered targets in
  /// the range (mid-day churn: a VM registering after a rebalance must
  /// find its early events at its NEW owner), the per-target
  /// delivery/shed/quarantine accounting, and this engine's watermark pair
  /// for watermark union at the destination. Extracted VMs' contributions
  /// are retracted from the partial aggregates; like Checkpoint(),
  /// delivery fingerprints collapse into a received count. This is the
  /// shard-rebalance handoff primitive.
  StreamCheckpoint ExtractRange(const std::string& lo,
                                const std::optional<std::string>& hi);

  /// Installs a fragment produced by ExtractRange on another engine:
  /// registers the VMs, adopts their buffered and orphaned events, folds
  /// the per-target accounting in additively, and unions the watermark
  /// (never regressing this engine's own). After extract+install, the
  /// union of both engines' snapshots is state-identical to the
  /// pre-handoff pair.
  Status InstallVms(const StreamCheckpoint& fragment);

  StreamingCdiStats stats() const;
  const Interval& window() const { return options_.window; }
  TimePoint watermark() const;
  size_t num_vms() const;

 private:
  struct VmState {
    VmServiceInfo info;
    /// Retention buffer: events for this VM inside window +/-
    /// kEventSearchMargin, in arrival order (the resolver sorts
    /// internally, so arrival order is irrelevant to the result — see the
    /// permutation-invariance fuzz tests). Stored as SoA rows with
    /// interned ids; recomputes cut a zero-copy EventSpan over them
    /// instead of copying RawEvents, and checkpointing materializes.
    EventRows events;
    /// True iff the VM is queued in the shard's dirty list. Default false:
    /// RegisterVm marks the fresh state dirty itself, which keeps the flag
    /// and the queue in lockstep.
    bool dirty = false;
    /// Valid once the VM has been computed; its contribution is resident
    /// in the shard partials and retracted before a recompute.
    bool has_output = false;
    VmDailyOutput output;
    /// Result of the last recompute; a failing VM keeps its (partial)
    /// output for resolver-counter reporting but contributes nothing to
    /// the partial aggregates, mirroring DailyCdiJob::Run.
    Status error;
  };

  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, VmState> vms;
    /// Mergeable partials over the shard's computed VMs; snapshots merge
    /// these instead of re-aggregating the whole fleet.
    FleetCdiPartial cdi_partial;
    UnavailabilityPartial baseline_partial;
    std::vector<std::string> dirty_vms;
  };

  StreamingCdiEngine(const EventCatalog* catalog,
                     const EventWeightModel* weights,
                     StreamingCdiOptions options);

  /// Per-target delivery accounting (guarded by mu_). `received` counts
  /// DISTINCT events by fingerprint so injected duplicates cannot cancel
  /// out drops; fingerprints are not persisted, so a restore folds the
  /// prior distinct count into `received_base`.
  struct DeliveryState {
    uint64_t expected = 0;
    uint64_t received_base = 0;
    std::unordered_set<uint64_t> fingerprints;
    uint64_t received() const { return received_base + fingerprints.size(); }
  };

  size_t ShardIndex(const std::string& vm_id) const;
  void ObserveEventTime(TimePoint t);
  /// Recomputes one dirty VM inside `shard` (shard lock held by caller or
  /// exclusivity guaranteed) and updates the shard partials.
  void RecomputeVmLocked(Shard& shard, VmState& state);
  /// Recomputes dirty VMs across all shards until `deadline` expires; VMs
  /// not reached in time are re-queued (still dirty). Returns how many
  /// recomputes were deferred (0 with the default infinite deadline).
  size_t DrainDirty(const Deadline& deadline = Deadline());
  /// Shared implementation of Snapshot (infinite deadline) and Preview.
  StatusOr<DailyCdiResult> SnapshotImpl(const Deadline& deadline);

  const EventCatalog* catalog_;
  const EventWeightModel* weights_;
  StreamingCdiOptions options_;
  PeriodResolver resolver_;
  /// Shards are heap-allocated so the engine stays movable.
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Guards watermark, stats, and the orphan buffer. Heap-allocated so the
  /// engine stays movable (shards are too, for the same reason).
  std::unique_ptr<std::mutex> mu_;
  TimePoint watermark_;
  TimePoint max_event_time_;
  StreamingCdiStats stats_;
  /// Events whose target has no registered VM yet, keyed by target.
  std::map<std::string, std::vector<RawEvent>> orphans_;
  /// Delivery-manifest accounting per target (guarded by mu_).
  std::map<std::string, DeliveryState> delivery_;
  /// Shed counts per target reported by RecordShed (guarded by mu_).
  std::map<std::string, uint64_t> shed_by_target_;
  /// Malformed-input sink. Heap-allocated: it owns a mutex, and the engine
  /// must stay movable.
  std::unique_ptr<chaos::QuarantineSink> quarantine_;
};

}  // namespace cdibot

#endif  // CDIBOT_STREAM_STREAMING_ENGINE_H_
