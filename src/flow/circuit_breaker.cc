#include "flow/circuit_breaker.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace cdibot::flow {

std::string_view BreakerStateToString(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(std::string name, CircuitBreakerOptions options)
    : name_(std::move(name)),
      options_(std::move(options)),
      rng_(options_.jitter_seed) {
  options_.half_open_probes = std::max(1, options_.half_open_probes);
  options_.cooldown_jitter = std::clamp(options_.cooldown_jitter, 0.0, 4.0);
  if (options_.cooldown < Duration::Zero()) {
    options_.cooldown = Duration::Zero();
  }
  auto& registry = obs::MetricsRegistry::Global();
  const std::string prefix = "flow.breaker." + name_;
  state_gauge_ = registry.GetGauge(prefix + ".state");
  trips_counter_ = registry.GetCounter(prefix + ".trips");
  rejected_counter_ = registry.GetCounter(prefix + ".rejected");
  state_gauge_->Set(static_cast<double>(BreakerState::kClosed));
}

int64_t CircuitBreaker::NowMs() const {
  return options_.clock ? options_.clock() : Deadline::NowSteadyMillis();
}

void CircuitBreaker::TripLocked(int64_t now_ms) {
  state_ = BreakerState::kOpen;
  ++stats_.trips;
  trips_counter_->Increment();
  consecutive_failures_ = 0;
  probes_in_flight_ = 0;
  probe_successes_ = 0;
  // Jitter only ever extends the cooldown, so a fleet of breakers tripped
  // by one outage fans its probes out instead of retrying in lockstep.
  const double scale = 1.0 + options_.cooldown_jitter * rng_.NextDouble();
  const auto cooldown_ms = static_cast<int64_t>(
      static_cast<double>(options_.cooldown.millis()) * scale);
  reopen_at_ms_ = now_ms + std::max<int64_t>(0, cooldown_ms);
  state_gauge_->Set(static_cast<double>(state_));
  CDIBOT_LOG_EVERY_N(Warning, 16)
      << "circuit breaker '" << name_ << "' tripped open (cooldown "
      << Duration::Millis(cooldown_ms).ToString() << ")";
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled()) {
    ++stats_.allowed;
    return true;
  }
  switch (state_) {
    case BreakerState::kClosed:
      ++stats_.allowed;
      return true;
    case BreakerState::kOpen:
      if (NowMs() < reopen_at_ms_) {
        ++stats_.rejected;
        rejected_counter_->Increment();
        return false;
      }
      state_ = BreakerState::kHalfOpen;
      probes_in_flight_ = 0;
      probe_successes_ = 0;
      state_gauge_->Set(static_cast<double>(state_));
      [[fallthrough]];
    case BreakerState::kHalfOpen:
      if (probes_in_flight_ >= options_.half_open_probes) {
        ++stats_.rejected;
        rejected_counter_->Increment();
        return false;
      }
      ++probes_in_flight_;
      ++stats_.probes;
      ++stats_.allowed;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.successes;
  if (!enabled()) return;
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kOpen:
      // A straggler from before the trip; ignore.
      break;
    case BreakerState::kHalfOpen:
      probes_in_flight_ = std::max(0, probes_in_flight_ - 1);
      if (++probe_successes_ >= options_.half_open_probes) {
        state_ = BreakerState::kClosed;
        consecutive_failures_ = 0;
        ++stats_.closes;
        state_gauge_->Set(static_cast<double>(state_));
        CDIBOT_LOG_EVERY_N(Info, 16)
            << "circuit breaker '" << name_ << "' closed after "
            << probe_successes_ << " successful probe(s)";
      }
      break;
  }
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.failures;
  if (!enabled()) return;
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        TripLocked(NowMs());
      }
      break;
    case BreakerState::kOpen:
      // A straggler from before the trip; ignore.
      break;
    case BreakerState::kHalfOpen:
      // One failed probe reopens immediately — the dependency is still sick.
      TripLocked(NowMs());
      break;
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

BreakerStats CircuitBreaker::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace cdibot::flow
