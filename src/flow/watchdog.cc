#include "flow/watchdog.h"

#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace cdibot::flow {

Watchdog::Watchdog(std::string name, WatchdogOptions options)
    : name_(std::move(name)), options_(options) {
  auto& registry = obs::MetricsRegistry::Global();
  const std::string prefix = "flow.watchdog." + name_;
  heartbeat_gauge_ = registry.GetGauge(prefix + ".last_heartbeat_ms");
  stalled_gauge_ = registry.GetGauge(prefix + ".stalled");
  stalls_counter_ = registry.GetCounter(prefix + ".stalls");
  recoveries_counter_ = registry.GetCounter(prefix + ".recoveries");
  stalled_gauge_->Set(0.0);
}

void Watchdog::Heartbeat(TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = true;
  stalled_ = false;
  if (now > last_heartbeat_) last_heartbeat_ = now;
  ++stats_.heartbeats;
  heartbeat_gauge_->Set(static_cast<double>(last_heartbeat_.millis()));
  stalled_gauge_->Set(0.0);
}

bool Watchdog::Poll(TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_) return false;
  if (stalled_) return true;
  if (now - last_heartbeat_ <= options_.stall_timeout) return false;
  stalled_ = true;
  ++stats_.stalls;
  stalls_counter_->Increment();
  stalled_gauge_->Set(1.0);
  CDIBOT_LOG_EVERY_N(Warning, 16)
      << "watchdog '" << name_ << "' detected stall: no heartbeat since "
      << last_heartbeat_.ToString() << " (now " << now.ToString() << ")";
  return true;
}

void Watchdog::NoteRecovery() {
  std::lock_guard<std::mutex> lock(mu_);
  stalled_ = false;
  armed_ = false;  // re-arm on the restarted stage's first heartbeat
  ++stats_.recoveries;
  recoveries_counter_->Increment();
  stalled_gauge_->Set(0.0);
}

TimePoint Watchdog::last_heartbeat() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_heartbeat_;
}

WatchdogStats Watchdog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace cdibot::flow
