#ifndef CDIBOT_FLOW_BACKPRESSURE_QUEUE_H_
#define CDIBOT_FLOW_BACKPRESSURE_QUEUE_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "event/event.h"
#include "obs/metrics.h"

namespace cdibot::flow {

/// Flow-control class of a telemetry item, mirroring the paper's severity
/// ordering of the CDI sub-metrics: CDI-U (unavailability) outranks CDI-P
/// (performance) outranks CDI-C (control plane). Admission control sheds the
/// lowest class first and NEVER sheds unavailability-class events — losing a
/// downtime event would silently understate the one number the platform
/// exists to report, while a shed performance/control event merely degrades
/// (and is accounted as degrading) the affected VM's data quality.
enum class FlowClass : int {
  kUnavailability = 0,
  kPerformance = 1,
  kControlPlane = 2,
};

inline constexpr int kNumFlowClasses = 3;

std::string_view FlowClassToString(FlowClass c);

/// Maps an event's stability category onto its flow class (the identity
/// mapping today; the indirection keeps flow decoupled from how categories
/// evolve).
FlowClass FlowClassForCategory(StabilityCategory category);

/// Tuning for a BasicBackpressureQueue.
struct FlowOptions {
  /// Hard bound on queued items — the queue's memory ceiling.
  size_t capacity = 4096;
  /// Depth at or above which admission control starts shedding sheddable
  /// classes (0 = 7/8 of capacity). Must be <= capacity.
  size_t high_watermark = 0;
  /// Depth at or below which shedding stops (0 = capacity / 2). The gap
  /// between the watermarks is the hysteresis band: once overloaded, the
  /// queue keeps shedding until the consumer has caught up well below the
  /// trip point, instead of oscillating around it.
  size_t low_watermark = 0;
  /// Prefix for the queue's obs metrics (<prefix>.depth, <prefix>.shed,
  /// ...). Queues sharing a prefix share the metrics, exactly as the
  /// pre-template implementation's global counters did. The serving layer
  /// instantiates its own queue under "serve.queue".
  std::string metric_prefix = "flow.queue";
};

/// Outcome of one admission attempt.
enum class AdmitResult : int {
  kAdmitted = 0,
  /// Shed by admission control (queue above the high watermark, or full and
  /// the arrival displaced by nothing). Never returned for unavailability.
  kShed = 1,
  /// Queue full of unavailability-class items; nothing was evictable. The
  /// producer must apply real backpressure (block, or drain the consumer).
  kQueueFull = 2,
};

/// Counters describing every admission decision the queue ever made.
/// QuarantineSink-style: cheap enough to keep always-on, rich enough that a
/// degraded run can say exactly what was lost and why.
struct ShedStats {
  uint64_t pushed = 0;    ///< admission attempts
  uint64_t admitted = 0;  ///< entered the queue (includes later-evicted)
  uint64_t popped = 0;    ///< delivered to the consumer
  uint64_t shed_total = 0;
  /// Shed counts indexed by FlowClass ordinal ([kUnavailability] is always
  /// zero — pinned by the shed-ordering tests).
  uint64_t shed_by_class[kNumFlowClasses] = {};
  /// Shed counts indexed by Severity ordinal - 1.
  uint64_t shed_by_level[kNumSeverityLevels] = {};
  /// Queued sheddable items displaced to make room for an unavailability
  /// arrival when the queue was full (counted in shed_total too).
  uint64_t evictions = 0;
  /// TryPush calls that found the queue full of unshedddable items.
  uint64_t full_rejections = 0;
  /// Transitions into shedding mode (high-watermark crossings).
  uint64_t shed_mode_entries = 0;
  size_t peak_depth = 0;
};

/// Traits for the telemetry event type the queue was originally built for.
struct RawEventFlowTraits {
  static Severity LevelOf(const RawEvent& event) { return event.level; }
};

/// A bounded MPMC queue with watermark-hysteresis admission control and
/// severity-aware load shedding, generic over the queued item type — the
/// overload joint between producers and a bounded consumer. `T` must be
/// movable; `Traits::LevelOf(const T&)` supplies the Severity used for
/// within-class shed ordering.
///
/// Instantiations: `BackpressureQueue` (T = RawEvent, the telemetry →
/// streaming-engine joint) and the serving layer's query-admission queue
/// (T = serve ticket, where FlowClass encodes cached vs ad-hoc cost).
///
/// Behavior by regime:
///  * Below the high watermark every arrival is admitted and delivered
///    strictly FIFO, so a shed-free run is indistinguishable (bit-identical
///    downstream, in both content and order) from a run without the queue.
///  * At or above the high watermark the queue enters shedding mode:
///    performance- and control-class arrivals are shed at admission
///    (control first — the lower-weight class — then performance; within a
///    class nothing is ordered, arrivals simply stop entering), while
///    unavailability items are always admitted. Shedding mode persists
///    until depth falls to the low watermark (hysteresis).
///  * At hard capacity an unavailability arrival evicts the newest
///    lowest-class queued item to make room; only when the whole queue is
///    unavailability-class does Push block (TryPush returns kQueueFull) —
///    bounded memory and no-U-loss, traded against producer backpressure.
///
/// Every shed/evicted item is counted in ShedStats and reported through
/// the shed callback so the consumer can account the loss (DataQuality for
/// telemetry, a ResourceExhausted response for queries): output computed
/// from a shed stream is *degraded*, never silently wrong.
///
/// Thread safety: all methods are safe from any number of producer and
/// consumer threads (single mutex; the shed callback runs outside it).
template <typename T, typename Traits = RawEventFlowTraits>
class BasicBackpressureQueue {
 public:
  /// Called for every shed or evicted item, outside the queue lock.
  using ShedCallback = std::function<void(const T&, FlowClass)>;

  explicit BasicBackpressureQueue(FlowOptions options = {})
      : options_(std::move(options)) {
    options_.capacity = std::max<size_t>(1, options_.capacity);
    if (options_.high_watermark == 0 ||
        options_.high_watermark > options_.capacity) {
      options_.high_watermark = std::max<size_t>(1, options_.capacity * 7 / 8);
    }
    if (options_.low_watermark == 0 ||
        options_.low_watermark >= options_.high_watermark) {
      options_.low_watermark =
          std::min(options_.high_watermark - 1, options_.capacity / 2);
    }
    auto& registry = obs::MetricsRegistry::Global();
    depth_gauge_ = registry.GetGauge(options_.metric_prefix + ".depth");
    peak_depth_gauge_ =
        registry.GetGauge(options_.metric_prefix + ".peak_depth");
    admitted_counter_ =
        registry.GetCounter(options_.metric_prefix + ".admitted");
    shed_counter_ = registry.GetCounter(options_.metric_prefix + ".shed");
    eviction_counter_ =
        registry.GetCounter(options_.metric_prefix + ".evictions");
  }

  /// Non-blocking admission. kQueueFull only when the queue holds nothing
  /// but unavailability-class items.
  AdmitResult TryPush(T item, FlowClass klass) { return Admit(item, klass); }

  /// Blocking admission: sheddable classes never block (they are admitted
  /// or shed immediately); an unavailability item waits for space when the
  /// queue is full of its own class. Returns false if the queue closed
  /// while waiting (the item is dropped — only possible during teardown).
  bool Push(T item, FlowClass klass) {
    while (true) {
      // Admit leaves `item` intact on kQueueFull, so the loop can retry
      // with the same item once the consumer makes room.
      if (Admit(item, klass) != AdmitResult::kQueueFull) return true;
      std::unique_lock<std::mutex> lock(mu_);
      // Sheddable classes never reach here (they are admitted or shed
      // above); an unavailability producer blocks until the consumer makes
      // room.
      not_full_.wait(lock,
                     [this] { return closed_ || depth_ < options_.capacity; });
      if (closed_) return false;
    }
  }

  /// Blocking pop; returns false once the queue is closed AND drained.
  bool Pop(T* out) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return closed_ || depth_ > 0; });
      if (depth_ == 0) return false;  // closed and drained
      PopLocked(out);
    }
    not_full_.notify_one();
    return true;
  }

  /// Non-blocking pop; false when currently empty.
  bool TryPop(T* out) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (depth_ == 0) return false;
      PopLocked(out);
    }
    not_full_.notify_one();
    return true;
  }

  /// Closes the queue: producers are rejected, consumers drain the
  /// remainder and then see false from Pop.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return depth_;
  }

  bool shedding() const {
    std::lock_guard<std::mutex> lock(mu_);
    return shedding_;
  }

  ShedStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  const FlowOptions& options() const { return options_; }

  void set_shed_callback(ShedCallback cb) {
    std::lock_guard<std::mutex> lock(mu_);
    shed_callback_ = std::move(cb);
  }

 private:
  struct Item {
    T value;
    uint64_t seq = 0;
  };

  /// Bands order delivery-independent storage by shed priority. Band 0 is
  /// unavailability (never shed). Sheddable bands are ranked so that HIGHER
  /// indices are shed first: performance outranks control plane, and within
  /// a class higher severities outrank lower ones.
  static constexpr size_t kNumBands =
      1 + 2 * static_cast<size_t>(kNumSeverityLevels);

  static size_t BandFor(FlowClass klass, Severity level) {
    if (klass == FlowClass::kUnavailability) return 0;
    const size_t base = klass == FlowClass::kPerformance
                            ? 0
                            : static_cast<size_t>(kNumSeverityLevels);
    const int ordinal =
        std::clamp(static_cast<int>(level), 1, kNumSeverityLevels);
    // Within a class, lower severities land in higher bands (shed first).
    return 1 + base + static_cast<size_t>(kNumSeverityLevels - ordinal);
  }

  /// One non-blocking admission attempt. `item` is consumed only on
  /// kAdmitted/kShed; on kQueueFull it is left intact so a blocking Push
  /// can retry with the same item.
  AdmitResult Admit(T& item, FlowClass klass) {
    // Shed/evicted items leave the lock before the callback sees them.
    T shed_item;
    FlowClass shed_class = klass;
    bool have_shed = false;
    AdmitResult result;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return AdmitResult::kQueueFull;
      ++stats_.pushed;
      const Severity level = Traits::LevelOf(item);
      const size_t band = BandFor(klass, level);
      if (band != 0 && (shedding_ || depth_ >= options_.capacity)) {
        // Admission shed: the queue is over its high watermark (or at hard
        // capacity) and this class is expendable under the CDI-U > CDI-P >
        // CDI-C ordering.
        CountShedLocked(klass, level);
        shed_item = std::move(item);
        shed_class = klass;
        have_shed = true;
        result = AdmitResult::kShed;
      } else if (depth_ >= options_.capacity) {
        // Unavailability arrival into a full queue: displace the newest
        // item of the most expendable band so the U item still fits in
        // bounded memory.
        size_t victim_band = kNumBands;
        for (size_t b = kNumBands; b-- > 1;) {
          if (!bands_[b].empty()) {
            victim_band = b;
            break;
          }
        }
        if (victim_band == kNumBands) {
          // Queue entirely unavailability-class: nothing may be dropped,
          // so the producer must exert real backpressure.
          ++stats_.full_rejections;
          return AdmitResult::kQueueFull;
        }
        Item victim = std::move(bands_[victim_band].back());
        bands_[victim_band].pop_back();
        --depth_;
        ++stats_.evictions;
        eviction_counter_->Increment();
        const FlowClass victim_class =
            victim_band <= static_cast<size_t>(kNumSeverityLevels)
                ? FlowClass::kPerformance
                : FlowClass::kControlPlane;
        CountShedLocked(victim_class, Traits::LevelOf(victim.value));
        shed_item = std::move(victim.value);
        shed_class = victim_class;
        have_shed = true;
        bands_[0].push_back(Item{std::move(item), next_seq_++});
        ++depth_;
        ++stats_.admitted;
        admitted_counter_->Increment();
        result = AdmitResult::kAdmitted;
      } else {
        bands_[band].push_back(Item{std::move(item), next_seq_++});
        ++depth_;
        ++stats_.admitted;
        admitted_counter_->Increment();
        result = AdmitResult::kAdmitted;
      }
      UpdateWatermarksLocked();
      SetDepthGaugeLocked();
    }
    if (result == AdmitResult::kAdmitted) not_empty_.notify_one();
    if (have_shed && shed_callback_) shed_callback_(shed_item, shed_class);
    return result;
  }

  /// Removes the globally oldest item (smallest seq across bands) into
  /// `*out`. Requires depth_ > 0 and the lock held.
  void PopLocked(T* out) {
    // FIFO across bands: deliver the globally oldest item (smallest seq).
    size_t best_band = kNumBands;
    uint64_t best_seq = 0;
    for (size_t b = 0; b < kNumBands; ++b) {
      if (bands_[b].empty()) continue;
      const uint64_t seq = bands_[b].front().seq;
      if (best_band == kNumBands || seq < best_seq) {
        best_band = b;
        best_seq = seq;
      }
    }
    *out = std::move(bands_[best_band].front().value);
    bands_[best_band].pop_front();
    --depth_;
    ++stats_.popped;
    UpdateWatermarksLocked();
    SetDepthGaugeLocked();
  }

  /// Records one shed item (lock held); the caller is responsible for the
  /// callback outside the lock.
  void CountShedLocked(FlowClass klass, Severity level) {
    ++stats_.shed_total;
    ++stats_.shed_by_class[static_cast<int>(klass)];
    const int ordinal =
        std::clamp(static_cast<int>(level), 1, kNumSeverityLevels);
    ++stats_.shed_by_level[ordinal - 1];
    shed_counter_->Increment();
  }

  /// Updates shedding mode from the current depth (lock held).
  void UpdateWatermarksLocked() {
    if (!shedding_ && depth_ >= options_.high_watermark) {
      shedding_ = true;
      ++stats_.shed_mode_entries;
    } else if (shedding_ && depth_ <= options_.low_watermark) {
      shedding_ = false;
    }
  }

  void SetDepthGaugeLocked() {
    depth_gauge_->Set(static_cast<double>(depth_));
    if (depth_ > stats_.peak_depth) {
      stats_.peak_depth = depth_;
      peak_depth_gauge_->Set(static_cast<double>(depth_));
    }
  }

  FlowOptions options_;
  ShedCallback shed_callback_;

  obs::Gauge* depth_gauge_ = nullptr;
  obs::Gauge* peak_depth_gauge_ = nullptr;
  obs::Counter* admitted_counter_ = nullptr;
  obs::Counter* shed_counter_ = nullptr;
  obs::Counter* eviction_counter_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Item> bands_[kNumBands];
  size_t depth_ = 0;
  uint64_t next_seq_ = 0;
  bool shedding_ = false;
  bool closed_ = false;
  ShedStats stats_;
};

/// The telemetry instantiation: the overload joint between event producers
/// and the streaming CDI consumer. (Pre-template name, kept for every
/// existing call site.)
using BackpressureQueue = BasicBackpressureQueue<RawEvent>;

}  // namespace cdibot::flow

#endif  // CDIBOT_FLOW_BACKPRESSURE_QUEUE_H_
