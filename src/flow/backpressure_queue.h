#ifndef CDIBOT_FLOW_BACKPRESSURE_QUEUE_H_
#define CDIBOT_FLOW_BACKPRESSURE_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string_view>
#include <vector>

#include "event/event.h"

namespace cdibot::flow {

/// Flow-control class of a telemetry item, mirroring the paper's severity
/// ordering of the CDI sub-metrics: CDI-U (unavailability) outranks CDI-P
/// (performance) outranks CDI-C (control plane). Admission control sheds the
/// lowest class first and NEVER sheds unavailability-class events — losing a
/// downtime event would silently understate the one number the platform
/// exists to report, while a shed performance/control event merely degrades
/// (and is accounted as degrading) the affected VM's data quality.
enum class FlowClass : int {
  kUnavailability = 0,
  kPerformance = 1,
  kControlPlane = 2,
};

inline constexpr int kNumFlowClasses = 3;

std::string_view FlowClassToString(FlowClass c);

/// Maps an event's stability category onto its flow class (the identity
/// mapping today; the indirection keeps flow decoupled from how categories
/// evolve).
FlowClass FlowClassForCategory(StabilityCategory category);

/// Tuning for a BackpressureQueue.
struct FlowOptions {
  /// Hard bound on queued items — the queue's memory ceiling.
  size_t capacity = 4096;
  /// Depth at or above which admission control starts shedding sheddable
  /// classes (0 = 7/8 of capacity). Must be <= capacity.
  size_t high_watermark = 0;
  /// Depth at or below which shedding stops (0 = capacity / 2). The gap
  /// between the watermarks is the hysteresis band: once overloaded, the
  /// queue keeps shedding until the consumer has caught up well below the
  /// trip point, instead of oscillating around it.
  size_t low_watermark = 0;
};

/// Outcome of one admission attempt.
enum class AdmitResult : int {
  kAdmitted = 0,
  /// Shed by admission control (queue above the high watermark, or full and
  /// the arrival displaced by nothing). Never returned for unavailability.
  kShed = 1,
  /// Queue full of unavailability-class items; nothing was evictable. The
  /// producer must apply real backpressure (block, or drain the consumer).
  kQueueFull = 2,
};

/// Counters describing every admission decision the queue ever made.
/// QuarantineSink-style: cheap enough to keep always-on, rich enough that a
/// degraded run can say exactly what was lost and why.
struct ShedStats {
  uint64_t pushed = 0;    ///< admission attempts
  uint64_t admitted = 0;  ///< entered the queue (includes later-evicted)
  uint64_t popped = 0;    ///< delivered to the consumer
  uint64_t shed_total = 0;
  /// Shed counts indexed by FlowClass ordinal ([kUnavailability] is always
  /// zero — pinned by the shed-ordering tests).
  uint64_t shed_by_class[kNumFlowClasses] = {};
  /// Shed counts indexed by Severity ordinal - 1.
  uint64_t shed_by_level[kNumSeverityLevels] = {};
  /// Queued sheddable items displaced to make room for an unavailability
  /// arrival when the queue was full (counted in shed_total too).
  uint64_t evictions = 0;
  /// TryPush calls that found the queue full of unshedddable items.
  uint64_t full_rejections = 0;
  /// Transitions into shedding mode (high-watermark crossings).
  uint64_t shed_mode_entries = 0;
  size_t peak_depth = 0;
};

/// A bounded MPMC queue with watermark-hysteresis admission control and
/// severity-aware load shedding — the overload joint between telemetry
/// producers and the streaming CDI consumer.
///
/// Behavior by regime:
///  * Below the high watermark every arrival is admitted and delivered
///    strictly FIFO, so a shed-free run is indistinguishable (bit-identical
///    downstream, in both content and order) from a run without the queue.
///  * At or above the high watermark the queue enters shedding mode:
///    performance- and control-class arrivals are shed at admission
///    (control first — the lower-weight class — then performance; within a
///    class nothing is ordered, arrivals simply stop entering), while
///    unavailability events are always admitted. Shedding mode persists
///    until depth falls to the low watermark (hysteresis).
///  * At hard capacity an unavailability arrival evicts the newest
///    lowest-class queued item to make room; only when the whole queue is
///    unavailability-class does Push block (TryPush returns kQueueFull) —
///    bounded memory and no-U-loss, traded against producer backpressure.
///
/// Every shed/evicted event is counted in ShedStats and reported through
/// the shed callback so the pipeline can annotate the affected VM's
/// DataQuality: the CDI computed from a shed stream is *degraded*, never
/// silently wrong.
///
/// Thread safety: all methods are safe from any number of producer and
/// consumer threads (single mutex; the shed callback runs outside it).
class BackpressureQueue {
 public:
  /// Called for every shed or evicted event, outside the queue lock.
  using ShedCallback = std::function<void(const RawEvent&, FlowClass)>;

  explicit BackpressureQueue(FlowOptions options = {});

  /// Non-blocking admission. kQueueFull only when the queue holds nothing
  /// but unavailability-class items.
  AdmitResult TryPush(RawEvent event, FlowClass klass);

  /// Blocking admission: sheddable classes never block (they are admitted
  /// or shed immediately); an unavailability event waits for space when the
  /// queue is full of its own class. Returns false if the queue closed
  /// while waiting (the event is dropped — only possible during teardown).
  bool Push(RawEvent event, FlowClass klass);

  /// Blocking pop; returns false once the queue is closed AND drained.
  bool Pop(RawEvent* out);

  /// Non-blocking pop; false when currently empty.
  bool TryPop(RawEvent* out);

  /// Closes the queue: producers are rejected, consumers drain the
  /// remainder and then see false from Pop.
  void Close();
  bool closed() const;

  size_t depth() const;
  bool shedding() const;
  ShedStats stats() const;
  const FlowOptions& options() const { return options_; }

  void set_shed_callback(ShedCallback cb);

 private:
  struct Item {
    RawEvent event;
    uint64_t seq = 0;
  };

  /// Bands order delivery-independent storage by shed priority. Band 0 is
  /// unavailability (never shed). Sheddable bands are ranked so that HIGHER
  /// indices are shed first: performance outranks control plane, and within
  /// a class higher severities outrank lower ones.
  static constexpr size_t kNumBands =
      1 + 2 * static_cast<size_t>(kNumSeverityLevels);
  static size_t BandFor(FlowClass klass, Severity level);

  /// One non-blocking admission attempt. `event` is consumed only on
  /// kAdmitted/kShed; on kQueueFull it is left intact so a blocking Push can
  /// retry with the same event.
  AdmitResult Admit(RawEvent& event, FlowClass klass);
  /// Removes the globally oldest item (smallest seq across bands) into
  /// `*out`. Requires depth_ > 0 and the lock held.
  void PopLocked(RawEvent* out);
  /// Records one shed event (lock held); the caller is responsible for the
  /// callback outside the lock.
  void CountShedLocked(FlowClass klass, Severity level);
  size_t DepthLocked() const;
  /// Updates shedding mode from the current depth (lock held).
  void UpdateWatermarksLocked();
  void SetDepthGaugeLocked();

  FlowOptions options_;
  ShedCallback shed_callback_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Item> bands_[kNumBands];
  size_t depth_ = 0;
  uint64_t next_seq_ = 0;
  bool shedding_ = false;
  bool closed_ = false;
  ShedStats stats_;
};

}  // namespace cdibot::flow

#endif  // CDIBOT_FLOW_BACKPRESSURE_QUEUE_H_
