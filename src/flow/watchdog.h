#ifndef CDIBOT_FLOW_WATCHDOG_H_
#define CDIBOT_FLOW_WATCHDOG_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/time.h"

namespace cdibot::obs {
class Counter;
class Gauge;
}  // namespace cdibot::obs

namespace cdibot::flow {

/// Tuning for a Watchdog.
struct WatchdogOptions {
  /// How long a stage may go without a heartbeat before it is considered
  /// stalled. Measured in the same clock the heartbeats use (the simulator
  /// feeds event time, so stall detection is deterministic under test).
  Duration stall_timeout = Duration::Minutes(30);
};

/// Counters describing the watchdog's life so far.
struct WatchdogStats {
  uint64_t heartbeats = 0;
  /// Distinct stall episodes detected (a stall is counted once when first
  /// observed, not per Poll).
  uint64_t stalls = 0;
  uint64_t recoveries = 0;
};

/// Heartbeat-based stall detector for a pipeline stage. The stage (or the
/// pump feeding it) calls Heartbeat() whenever it makes progress; a
/// supervisor calls Poll() and, when it returns true, restarts the stage and
/// calls NoteRecovery(). Crashes that merely kill a stage leave its queue
/// intact — the watchdog is what turns "the consumer went quiet" into a
/// restart instead of an ever-deepening backlog.
///
/// The clock is caller-supplied (TimePoint event time), so the simulator
/// drives stall detection deterministically; production callers would feed
/// wall time. Heartbeats also export "flow.watchdog.<name>.*" gauges so a
/// stalled stage is visible in statusz before the supervisor reacts.
///
/// Thread safety: all methods are safe to call concurrently.
class Watchdog {
 public:
  explicit Watchdog(std::string name, WatchdogOptions options = {});

  /// Records stage progress at `now` and ends any current stall episode.
  void Heartbeat(TimePoint now);

  /// True when the stage has heartbeated at least once and then gone silent
  /// for longer than stall_timeout. The first Poll observing an episode
  /// increments the stall counter; subsequent Polls keep returning true
  /// without recounting.
  bool Poll(TimePoint now);

  /// Records that the supervisor restarted the stage. The stall episode
  /// ends; detection re-arms on the next Heartbeat.
  void NoteRecovery();

  TimePoint last_heartbeat() const;
  WatchdogStats stats() const;
  const std::string& name() const { return name_; }

 private:
  const std::string name_;
  const WatchdogOptions options_;

  mutable std::mutex mu_;
  bool armed_ = false;    // at least one heartbeat seen
  bool stalled_ = false;  // currently inside a stall episode
  TimePoint last_heartbeat_;
  WatchdogStats stats_;

  // Per-name statusz handles, resolved once at construction; the registry
  // owns the metric objects.
  obs::Gauge* heartbeat_gauge_;
  obs::Gauge* stalled_gauge_;
  obs::Counter* stalls_counter_;
  obs::Counter* recoveries_counter_;
};

}  // namespace cdibot::flow

#endif  // CDIBOT_FLOW_WATCHDOG_H_
