#ifndef CDIBOT_FLOW_CIRCUIT_BREAKER_H_
#define CDIBOT_FLOW_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "common/rng.h"
#include "common/time.h"

namespace cdibot::obs {
class Counter;
class Gauge;
}  // namespace cdibot::obs

namespace cdibot::flow {

/// Circuit breaker state machine.
enum class BreakerState : int {
  kClosed = 0,    ///< healthy: every call allowed
  kOpen = 1,      ///< tripped: calls rejected until the cooldown elapses
  kHalfOpen = 2,  ///< probing: a bounded number of trial calls allowed
};

std::string_view BreakerStateToString(BreakerState s);

/// Tuning for a CircuitBreaker.
struct CircuitBreakerOptions {
  /// Consecutive failures that trip the breaker open. 0 disables the
  /// breaker entirely (Allow always true, Record* only keeps stats), which
  /// is the default so wrapping an existing call site changes nothing until
  /// a threshold is configured.
  int failure_threshold = 0;
  /// How long the breaker stays open before probing. The actual cooldown is
  /// jittered (see cooldown_jitter) so many breakers tripped by the same
  /// outage do not probe the recovering dependency in lockstep.
  Duration cooldown = Duration::Seconds(5);
  /// Fractional cooldown extension drawn per trip from the seeded rng:
  /// actual = cooldown * (1 + cooldown_jitter * U[0,1)). Only ever extends,
  /// never shortens, so tests can bound the earliest probe exactly.
  double cooldown_jitter = 0.2;
  /// Successful probes required in half-open before closing. A single probe
  /// failure reopens immediately.
  int half_open_probes = 1;
  /// Seed for the cooldown jitter stream (deterministic schedules).
  uint64_t jitter_seed = 0;
  /// Monotonic clock in milliseconds. Defaults to Deadline::NowSteadyMillis;
  /// tests inject a fake to step through cooldowns without sleeping.
  std::function<int64_t()> clock = {};
};

/// Counters for every decision the breaker ever made.
struct BreakerStats {
  uint64_t allowed = 0;
  uint64_t rejected = 0;  ///< fast-failed while open
  uint64_t failures = 0;
  uint64_t successes = 0;
  uint64_t trips = 0;    ///< closed/half-open -> open transitions
  uint64_t probes = 0;   ///< trial calls admitted while half-open
  uint64_t closes = 0;   ///< half-open -> closed transitions
};

/// A closed -> open -> half-open circuit breaker for a flaky dependency
/// (primarily the checkpoint store's IO path). Where RetryPolicy *amplifies*
/// load against a failing dependency — every logical call becomes
/// max_attempts physical ones — the breaker does the opposite: after
/// `failure_threshold` consecutive failures it fails fast without touching
/// the dependency at all, then probes it with a trickle of trial calls after
/// a jittered cooldown, closing again only once probes succeed.
///
/// Usage: call Allow() before the guarded operation (false = fail fast with
/// an Unavailable-style error), then RecordSuccess()/RecordFailure() with
/// the outcome. State, trips, and rejections are exported per-name through
/// the metrics registry ("flow.breaker.<name>.*") so transitions are
/// visible in statusz.
///
/// Thread safety: all methods are safe to call concurrently.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(std::string name, CircuitBreakerOptions options = {});

  /// False when failure_threshold == 0 (pass-through mode).
  bool enabled() const { return options_.failure_threshold > 0; }

  /// True if the guarded call may proceed. While open, flips to half-open
  /// once the cooldown has elapsed and admits up to half_open_probes trial
  /// calls; otherwise rejects.
  bool Allow();

  /// Reports the outcome of an allowed call.
  void RecordSuccess();
  void RecordFailure();

  BreakerState state() const;
  BreakerStats stats() const;
  const std::string& name() const { return name_; }

 private:
  /// Transitions to open and schedules the next probe window (lock held).
  void TripLocked(int64_t now_ms);
  int64_t NowMs() const;

  const std::string name_;
  CircuitBreakerOptions options_;

  mutable std::mutex mu_;
  Rng rng_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int probes_in_flight_ = 0;
  int probe_successes_ = 0;
  int64_t reopen_at_ms_ = 0;
  BreakerStats stats_;

  // Per-name statusz handles ("flow.breaker.<name>.*"), resolved once at
  // construction; the registry owns the metric objects.
  obs::Gauge* state_gauge_;
  obs::Counter* trips_counter_;
  obs::Counter* rejected_counter_;
};

}  // namespace cdibot::flow

#endif  // CDIBOT_FLOW_CIRCUIT_BREAKER_H_
