#include "flow/backpressure_queue.h"

namespace cdibot::flow {

std::string_view FlowClassToString(FlowClass c) {
  switch (c) {
    case FlowClass::kUnavailability:
      return "unavailability";
    case FlowClass::kPerformance:
      return "performance";
    case FlowClass::kControlPlane:
      return "control_plane";
  }
  return "unknown";
}

FlowClass FlowClassForCategory(StabilityCategory category) {
  switch (category) {
    case StabilityCategory::kUnavailability:
      return FlowClass::kUnavailability;
    case StabilityCategory::kPerformance:
      return FlowClass::kPerformance;
    case StabilityCategory::kControlPlane:
      return FlowClass::kControlPlane;
  }
  return FlowClass::kPerformance;
}

}  // namespace cdibot::flow
