#include "flow/backpressure_queue.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace cdibot::flow {
namespace {

obs::Gauge& DepthGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("flow.queue.depth");
  return *g;
}

obs::Gauge& PeakDepthGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("flow.queue.peak_depth");
  return *g;
}

obs::Counter& AdmittedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("flow.queue.admitted");
  return *c;
}

obs::Counter& ShedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("flow.queue.shed");
  return *c;
}

obs::Counter& EvictionCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("flow.queue.evictions");
  return *c;
}

}  // namespace

std::string_view FlowClassToString(FlowClass c) {
  switch (c) {
    case FlowClass::kUnavailability:
      return "unavailability";
    case FlowClass::kPerformance:
      return "performance";
    case FlowClass::kControlPlane:
      return "control_plane";
  }
  return "unknown";
}

FlowClass FlowClassForCategory(StabilityCategory category) {
  switch (category) {
    case StabilityCategory::kUnavailability:
      return FlowClass::kUnavailability;
    case StabilityCategory::kPerformance:
      return FlowClass::kPerformance;
    case StabilityCategory::kControlPlane:
      return FlowClass::kControlPlane;
  }
  return FlowClass::kPerformance;
}

BackpressureQueue::BackpressureQueue(FlowOptions options) : options_(options) {
  options_.capacity = std::max<size_t>(1, options_.capacity);
  if (options_.high_watermark == 0 || options_.high_watermark > options_.capacity) {
    options_.high_watermark = std::max<size_t>(1, options_.capacity * 7 / 8);
  }
  if (options_.low_watermark == 0 || options_.low_watermark >= options_.high_watermark) {
    options_.low_watermark =
        std::min(options_.high_watermark - 1, options_.capacity / 2);
  }
}

size_t BackpressureQueue::BandFor(FlowClass klass, Severity level) {
  if (klass == FlowClass::kUnavailability) return 0;
  const size_t base =
      klass == FlowClass::kPerformance ? 0 : static_cast<size_t>(kNumSeverityLevels);
  const int ordinal =
      std::clamp(static_cast<int>(level), 1, kNumSeverityLevels);
  // Within a class, lower severities land in higher bands (shed first).
  return 1 + base + static_cast<size_t>(kNumSeverityLevels - ordinal);
}

void BackpressureQueue::CountShedLocked(FlowClass klass, Severity level) {
  ++stats_.shed_total;
  ++stats_.shed_by_class[static_cast<int>(klass)];
  const int ordinal =
      std::clamp(static_cast<int>(level), 1, kNumSeverityLevels);
  ++stats_.shed_by_level[ordinal - 1];
  ShedCounter().Increment();
}

size_t BackpressureQueue::DepthLocked() const { return depth_; }

void BackpressureQueue::UpdateWatermarksLocked() {
  if (!shedding_ && depth_ >= options_.high_watermark) {
    shedding_ = true;
    ++stats_.shed_mode_entries;
  } else if (shedding_ && depth_ <= options_.low_watermark) {
    shedding_ = false;
  }
}

void BackpressureQueue::SetDepthGaugeLocked() {
  DepthGauge().Set(static_cast<double>(depth_));
  if (depth_ > stats_.peak_depth) {
    stats_.peak_depth = depth_;
    PeakDepthGauge().Set(static_cast<double>(depth_));
  }
}

AdmitResult BackpressureQueue::Admit(RawEvent& event, FlowClass klass) {
  // Shed/evicted events leave the lock before the callback sees them.
  RawEvent shed_event;
  FlowClass shed_class = klass;
  bool have_shed = false;
  AdmitResult result;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return AdmitResult::kQueueFull;
    ++stats_.pushed;
    const size_t band = BandFor(klass, event.level);
    if (band != 0 && (shedding_ || depth_ >= options_.capacity)) {
      // Admission shed: the queue is over its high watermark (or at hard
      // capacity) and this class is expendable under the CDI-U > CDI-P >
      // CDI-C ordering.
      CountShedLocked(klass, event.level);
      shed_event = std::move(event);
      shed_class = klass;
      have_shed = true;
      result = AdmitResult::kShed;
    } else if (depth_ >= options_.capacity) {
      // Unavailability arrival into a full queue: displace the newest item
      // of the most expendable band so the U event still fits in bounded
      // memory.
      size_t victim_band = kNumBands;
      for (size_t b = kNumBands; b-- > 1;) {
        if (!bands_[b].empty()) {
          victim_band = b;
          break;
        }
      }
      if (victim_band == kNumBands) {
        // Queue entirely unavailability-class: nothing may be dropped, so
        // the producer must exert real backpressure.
        ++stats_.full_rejections;
        return AdmitResult::kQueueFull;
      }
      Item victim = std::move(bands_[victim_band].back());
      bands_[victim_band].pop_back();
      --depth_;
      ++stats_.evictions;
      EvictionCounter().Increment();
      const FlowClass victim_class =
          victim_band <= static_cast<size_t>(kNumSeverityLevels)
              ? FlowClass::kPerformance
              : FlowClass::kControlPlane;
      CountShedLocked(victim_class, victim.event.level);
      shed_event = std::move(victim.event);
      shed_class = victim_class;
      have_shed = true;
      bands_[0].push_back(Item{std::move(event), next_seq_++});
      ++depth_;
      ++stats_.admitted;
      AdmittedCounter().Increment();
      result = AdmitResult::kAdmitted;
    } else {
      bands_[band].push_back(Item{std::move(event), next_seq_++});
      ++depth_;
      ++stats_.admitted;
      AdmittedCounter().Increment();
      result = AdmitResult::kAdmitted;
    }
    UpdateWatermarksLocked();
    SetDepthGaugeLocked();
  }
  if (result == AdmitResult::kAdmitted) not_empty_.notify_one();
  if (have_shed && shed_callback_) shed_callback_(shed_event, shed_class);
  return result;
}

AdmitResult BackpressureQueue::TryPush(RawEvent event, FlowClass klass) {
  return Admit(event, klass);
}

bool BackpressureQueue::Push(RawEvent event, FlowClass klass) {
  while (true) {
    // Admit leaves `event` intact on kQueueFull, so the loop can retry with
    // the same event once the consumer makes room.
    if (Admit(event, klass) != AdmitResult::kQueueFull) return true;
    std::unique_lock<std::mutex> lock(mu_);
    // Sheddable classes never reach here (they are admitted or shed above);
    // an unavailability producer blocks until the consumer makes room.
    not_full_.wait(lock,
                   [this] { return closed_ || depth_ < options_.capacity; });
    if (closed_) return false;
  }
}

void BackpressureQueue::PopLocked(RawEvent* out) {
  // FIFO across bands: deliver the globally oldest item (smallest seq).
  size_t best_band = kNumBands;
  uint64_t best_seq = 0;
  for (size_t b = 0; b < kNumBands; ++b) {
    if (bands_[b].empty()) continue;
    const uint64_t seq = bands_[b].front().seq;
    if (best_band == kNumBands || seq < best_seq) {
      best_band = b;
      best_seq = seq;
    }
  }
  *out = std::move(bands_[best_band].front().event);
  bands_[best_band].pop_front();
  --depth_;
  ++stats_.popped;
  UpdateWatermarksLocked();
  SetDepthGaugeLocked();
}

bool BackpressureQueue::Pop(RawEvent* out) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || depth_ > 0; });
    if (depth_ == 0) return false;  // closed and drained
    PopLocked(out);
  }
  not_full_.notify_one();
  return true;
}

bool BackpressureQueue::TryPop(RawEvent* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (depth_ == 0) return false;
    PopLocked(out);
  }
  not_full_.notify_one();
  return true;
}

void BackpressureQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool BackpressureQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t BackpressureQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_;
}

bool BackpressureQueue::shedding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shedding_;
}

ShedStats BackpressureQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BackpressureQueue::set_shed_callback(ShedCallback cb) {
  std::lock_guard<std::mutex> lock(mu_);
  shed_callback_ = std::move(cb);
}

}  // namespace cdibot::flow
