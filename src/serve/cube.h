#ifndef CDIBOT_SERVE_CUBE_H_
#define CDIBOT_SERVE_CUBE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cdi/drilldown.h"
#include "common/statusor.h"
#include "common/time.h"
#include "obs/metrics.h"

namespace cdibot::serve {

/// Maintenance counters for one cube (also mirrored to <prefix>.cube.*).
struct CubeStats {
  uint64_t refreshes = 0;       ///< snapshots folded in
  uint64_t views = 0;           ///< materialized (group-by × filter) views
  uint64_t groups_recomputed = 0;
  uint64_t groups_reused = 0;   ///< groups whose members were bit-unchanged
  uint64_t answers = 0;
};

/// Incrementally maintained drill-down cube over one source's per-VM rows.
///
/// A "view" is one (group-by dimensions, filter) combination — region,
/// region × az, az filtered to one region, ... — materialized lazily on
/// first query. Each view keeps, per group, the member rows' bits and the
/// folded GroupCdi. On Refresh (a new engine snapshot, i.e. a watermark
/// advance) every view's membership is recomputed from the new rows, but a
/// group's Eq.-4 fold is re-run only when its member rows actually changed
/// — bitwise — so a quiet region costs a comparison, not a fold.
///
/// Bit-identity contract (pinned by the differential suite): Answer() is
/// bitwise equal to RunDrilldown(rows, query) over the current rows, for
/// every double. This holds because members are stored in row order —
/// snapshots sort per_vm ascending by vm_id, the same order RunDrilldown
/// folds in — and an unchanged group's cached fold is definitionally the
/// fold of the same bits.
///
/// Thread safety: none; the owning CdiQueryService serializes access.
class DrilldownCube {
 public:
  explicit DrilldownCube(const std::string& metric_prefix = "serve");

  /// Replaces the cube's row set with a new snapshot's per_vm rows
  /// (assumed sorted by vm_id, as SnapshotImpl emits them) and
  /// re-validates every materialized view against it. `watermark` is the
  /// snapshot's source watermark, recorded as the cube's as-of point.
  void Refresh(std::vector<VmCdiRecord> rows, TimePoint watermark);

  /// Answers a drill-down query from the materialized view, creating the
  /// view on first use. Returns exactly what RunDrilldown(rows(), query)
  /// would, bit for bit.
  StatusOr<DrilldownResult> Answer(const DrilldownQuery& query);

  const std::vector<VmCdiRecord>& rows() const { return rows_; }
  TimePoint as_of() const { return as_of_; }
  bool loaded() const { return loaded_; }
  CubeStats stats() const { return stats_; }

 private:
  struct GroupState {
    /// Indices into rows_ of the group's members, ascending (= fold order).
    std::vector<uint32_t> members;
    DrilldownGroup folded;
    /// False when Refresh found the membership bits unchanged.
    bool dirty = true;
  };

  struct View {
    DrilldownQuery query;
    /// Groups keyed by their dimension values (sorted — answer order).
    std::map<std::vector<std::string>, GroupState> groups;
    size_t records_filtered = 0;
  };

  /// Rebuilds `view`'s membership from rows_, marking changed groups
  /// dirty. Called on view creation and after every Refresh.
  void RevalidateView(View& view);
  /// Folds one dirty group (members in ascending row order — the
  /// RunDrilldown order).
  void FoldGroup(const View& view, const std::vector<std::string>& values,
                 GroupState& state);
  static std::string ViewKey(const DrilldownQuery& query);

  std::vector<VmCdiRecord> rows_;
  TimePoint as_of_;
  bool loaded_ = false;
  DataQuality rows_quality_;
  std::map<std::string, View> views_;
  CubeStats stats_;

  obs::Counter* refresh_counter_;
  obs::Counter* recompute_counter_;
  obs::Counter* reuse_counter_;
  obs::Gauge* view_gauge_;
};

}  // namespace cdibot::serve

#endif  // CDIBOT_SERVE_CUBE_H_
