#ifndef CDIBOT_SERVE_QUERY_H_
#define CDIBOT_SERVE_QUERY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cdi/drilldown.h"
#include "cdi/pipeline.h"
#include "common/time.h"

namespace cdibot::serve {

/// How stale an answer the caller will accept. The serving layer treats
/// freshness as a first-class response dimension (SPEC-RG's position):
/// every response says what watermark it reflects and how far behind the
/// source that is, so a cached answer is *bounded-stale*, never silently
/// old.
enum class Consistency : int {
  /// Bypass the result cache and re-pull the source before answering.
  kFresh = 0,
  /// Serve from cache only while the cached entry still reflects the
  /// source's current watermark; any watermark advance invalidates.
  kCached = 1,
  /// Serve from cache while the entry's watermark lags the source by at
  /// most CdiQuery::max_staleness.
  kStaleOk = 2,
};

std::string_view ConsistencyToString(Consistency c);

/// Which fleet-CDI code path the response's `fleet` field reflects. The
/// two legacy read paths do not produce bitwise-identical doubles (the
/// canonical ascending-vm_id fold vs the cheap shard-partial merge differ
/// in grouping, documented at StreamingCdiEngine::FleetCdi), and callers
/// re-routed through the facade must keep the exact bits they always got.
enum class FleetFidelity : int {
  /// CanonicalCdiFold over per-VM rows — the Snapshot()/gather path,
  /// bit-identical across topologies.
  kCanonical = 0,
  /// The engine's O(shards) partial merge — the FleetCdi() fast path.
  kPartialMerge = 1,
};

std::string_view FleetFidelityToString(FleetFidelity f);

/// The one query-shaped read request every CDI consumer sends, whether the
/// backing engine is batch, streaming single-node, or a sharded fleet.
struct CdiQuery {
  /// Placement-dimension pre-filter (exact match on every pair), applied
  /// before grouping. Empty = whole fleet.
  std::map<std::string, std::string> filter;
  /// Drill-down dimensions, most-significant first (region, az, cluster,
  /// arch, ...). Empty = fleet-level answer only.
  std::vector<std::string> group_by;
  /// End-to-end time budget: propagated into the source pull (the engine's
  /// deadline-bounded Preview), and checked again at admission and
  /// execution by the QueryServer. Default = infinite.
  Deadline deadline;
  Consistency consistency = Consistency::kCached;
  /// Acceptable watermark lag for kStaleOk.
  Duration max_staleness = Duration::Minutes(5);
  FleetFidelity fleet_fidelity = FleetFidelity::kCanonical;
  /// Attach the full batch-compatible DailyCdiResult to the response
  /// (CdiQueryResponse::detail) — the re-route path for legacy
  /// Snapshot()/Preview() callers that consume whole result tables.
  bool include_detail = false;
};

/// Canonical cache key: a stable serialization of everything that changes
/// the *answer* — filter (sorted by construction), group-by (order kept:
/// region/az and az/region are different cubes), fidelity, detail flag.
/// Deliberately excludes deadline and consistency: those say how hard to
/// try and how stale is acceptable, not what is being asked, so a kFresh
/// pull warms the cache for the kCached callers asking the same question.
std::string CanonicalQueryKey(const CdiQuery& query);

/// The one response shape. Carries the answer plus the three trust
/// annotations the paper's degraded-not-wrong stance requires: DataQuality
/// (what the input lost), the staleness watermark (what point in the
/// stream the answer reflects), and the deferred count (how partial a
/// deadline-bounded pull was).
struct CdiQueryResponse {
  /// Fleet-level Eq.-4 aggregate, via the path `fleet_fidelity` selected.
  VmCdi fleet;
  /// Downtime Percentage / AIR / MTBF / MTTR over the same inputs
  /// (canonical-pull path; zero-valued for pure kPartialMerge answers).
  UnavailabilityStats fleet_baseline;
  /// Drill-down rows for `group_by` (empty for fleet-only queries),
  /// bit-identical to RunDrilldown over the source's per-VM rows.
  DrilldownResult drilldown;
  /// Full batch-compatible result, present when the query asked for it.
  /// Shared: cache hits hand out the same immutable payload.
  std::shared_ptr<const DailyCdiResult> detail;
  /// Merged input-integrity counters over the evaluated VMs.
  DataQuality quality;
  /// VMs whose recompute a deadline deferred (non-zero marks the answer a
  /// best-effort preview — degraded, not wrong).
  size_t vms_deferred = 0;
  /// The source watermark this answer reflects.
  TimePoint as_of_watermark;
  /// Source watermark minus as_of_watermark at serve time (zero for a
  /// freshly pulled answer).
  Duration staleness;
  /// True when the ARC result cache supplied the answer.
  bool served_from_cache = false;
  /// True when the materialized cube answered without a source pull.
  bool served_from_cube = false;
};

/// Renders a response as a strict-JSON document (the query endpoint
/// payload; validated by tests/strict_json.h). Per-VM rows of `detail` are
/// summarized as counts, not dumped — endpoint payloads stay bounded.
std::string RenderResponseJson(const CdiQuery& query,
                               const CdiQueryResponse& response);

}  // namespace cdibot::serve

#endif  // CDIBOT_SERVE_QUERY_H_
