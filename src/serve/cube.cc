#include "serve/cube.h"

#include <bit>
#include <utility>

namespace cdibot::serve {
namespace {

/// Bitwise double equality: the cube's reuse test must be exact, not
/// tolerant — reusing a fold across a == comparison that waves through
/// -0.0 vs +0.0 would break the bit-identity contract.
bool SameBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

bool SameRecordBits(const VmCdiRecord& a, const VmCdiRecord& b) {
  return a.vm_id == b.vm_id &&
         SameBits(a.cdi.unavailability, b.cdi.unavailability) &&
         SameBits(a.cdi.performance, b.cdi.performance) &&
         SameBits(a.cdi.control_plane, b.cdi.control_plane) &&
         a.cdi.service_time == b.cdi.service_time &&
         a.quality.events_quarantined == b.quality.events_quarantined &&
         a.quality.events_missing == b.quality.events_missing &&
         a.quality.events_shed == b.quality.events_shed &&
         a.quality.degraded == b.quality.degraded;
}

bool MatchesFilter(const VmCdiRecord& rec,
                   const std::map<std::string, std::string>& filter) {
  for (const auto& [dim, want] : filter) {
    auto it = rec.dims.find(dim);
    if (it == rec.dims.end() || it->second != want) return false;
  }
  return true;
}

}  // namespace

DrilldownCube::DrilldownCube(const std::string& metric_prefix) {
  auto& registry = obs::MetricsRegistry::Global();
  refresh_counter_ = registry.GetCounter(metric_prefix + ".cube.refreshes");
  recompute_counter_ =
      registry.GetCounter(metric_prefix + ".cube.groups_recomputed");
  reuse_counter_ = registry.GetCounter(metric_prefix + ".cube.groups_reused");
  view_gauge_ = registry.GetGauge(metric_prefix + ".cube.views");
}

std::string DrilldownCube::ViewKey(const DrilldownQuery& query) {
  std::string key = "g:";
  for (const std::string& dim : query.dimensions) {
    key += std::to_string(dim.size()) + '.' + dim;
  }
  key += "|f:";
  for (const auto& [dim, value] : query.filter) {
    key += std::to_string(dim.size()) + '.' + dim;
    key += std::to_string(value.size()) + '.' + value;
  }
  return key;
}

void DrilldownCube::Refresh(std::vector<VmCdiRecord> rows,
                            TimePoint watermark) {
  // Re-validate every materialized view against the incoming rows while
  // the outgoing ones are still addressable: a group whose member rows are
  // bit-identical across the swap keeps its fold; everything else is
  // marked dirty and re-folded lazily by the next Answer.
  for (auto& [key, view] : views_) {
    (void)key;
    std::map<std::vector<std::string>, std::vector<uint32_t>> membership;
    size_t filtered = 0;
    std::vector<std::string> values(view.query.dimensions.size());
    for (uint32_t i = 0; i < rows.size(); ++i) {
      const VmCdiRecord& rec = rows[i];
      if (!MatchesFilter(rec, view.query.filter)) {
        ++filtered;
        continue;
      }
      for (size_t d = 0; d < view.query.dimensions.size(); ++d) {
        auto it = rec.dims.find(view.query.dimensions[d]);
        values[d] = it == rec.dims.end() ? "" : it->second;
      }
      membership[values].push_back(i);
    }
    view.records_filtered = filtered;

    std::map<std::vector<std::string>, GroupState> next;
    for (auto& [group_values, members] : membership) {
      GroupState state;
      auto old_it = view.groups.find(group_values);
      bool unchanged = old_it != view.groups.end() &&
                       !old_it->second.dirty &&
                       old_it->second.members.size() == members.size();
      if (unchanged) {
        for (size_t k = 0; k < members.size(); ++k) {
          if (!SameRecordBits(rows_[old_it->second.members[k]],
                              rows[members[k]])) {
            unchanged = false;
            break;
          }
        }
      }
      if (unchanged) {
        state.folded = old_it->second.folded;
        state.dirty = false;
        ++stats_.groups_reused;
        reuse_counter_->Increment();
      }
      state.members = std::move(members);
      next.emplace(group_values, std::move(state));
    }
    view.groups = std::move(next);
  }

  rows_ = std::move(rows);
  rows_quality_ = DataQuality{};
  for (const VmCdiRecord& rec : rows_) rows_quality_.Merge(rec.quality);
  as_of_ = watermark;
  loaded_ = true;
  ++stats_.refreshes;
  refresh_counter_->Increment();
}

void DrilldownCube::FoldGroup(const View& view,
                              const std::vector<std::string>& values,
                              GroupState& state) {
  (void)view;
  CdiAccumulator u, p, c;
  Duration service;
  DataQuality quality;
  for (uint32_t idx : state.members) {
    const VmCdiRecord& rec = rows_[idx];
    u.Add(rec.cdi.service_time, rec.cdi.unavailability);
    p.Add(rec.cdi.service_time, rec.cdi.performance);
    c.Add(rec.cdi.service_time, rec.cdi.control_plane);
    service += rec.cdi.service_time;
    quality.Merge(rec.quality);
  }
  std::string key;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) key += '/';
    key += values[i];
  }
  state.folded = DrilldownGroup{
      .values = values,
      .key = std::move(key),
      .cdi = VmCdi{.unavailability = u.Value(),
                   .performance = p.Value(),
                   .control_plane = c.Value(),
                   .service_time = service},
      .vm_count = state.members.size(),
      .quality = quality};
  state.dirty = false;
  ++stats_.groups_recomputed;
  recompute_counter_->Increment();
}

StatusOr<DrilldownResult> DrilldownCube::Answer(const DrilldownQuery& query) {
  if (!loaded_) {
    return Status::FailedPrecondition("cube has no snapshot loaded");
  }
  if (query.dimensions.empty()) {
    return Status::InvalidArgument("drill-down needs at least one dimension");
  }
  for (size_t i = 0; i < query.dimensions.size(); ++i) {
    if (query.dimensions[i].empty()) {
      return Status::InvalidArgument("drill-down dimension name is empty");
    }
    for (size_t j = i + 1; j < query.dimensions.size(); ++j) {
      if (query.dimensions[i] == query.dimensions[j]) {
        return Status::InvalidArgument("duplicate drill-down dimension: " +
                                       query.dimensions[i]);
      }
    }
  }

  const std::string key = ViewKey(query);
  auto it = views_.find(key);
  if (it == views_.end()) {
    // First query of this (group-by, filter) shape: materialize the view.
    View view;
    view.query = query;
    it = views_.emplace(key, std::move(view)).first;
    RevalidateView(it->second);
    stats_.views = views_.size();
    view_gauge_->Set(static_cast<double>(views_.size()));
  }

  View& view = it->second;
  DrilldownResult result;
  result.records_scanned = rows_.size();
  result.records_filtered = view.records_filtered;
  result.groups.reserve(view.groups.size());
  for (auto& [values, state] : view.groups) {
    if (state.dirty) FoldGroup(view, values, state);
    result.groups.push_back(state.folded);
    result.quality.Merge(state.folded.quality);
  }
  ++stats_.answers;
  return result;
}

void DrilldownCube::RevalidateView(View& view) {
  view.groups.clear();
  view.records_filtered = 0;
  std::vector<std::string> values(view.query.dimensions.size());
  for (uint32_t i = 0; i < rows_.size(); ++i) {
    const VmCdiRecord& rec = rows_[i];
    if (!MatchesFilter(rec, view.query.filter)) {
      ++view.records_filtered;
      continue;
    }
    for (size_t d = 0; d < view.query.dimensions.size(); ++d) {
      auto it = rec.dims.find(view.query.dimensions[d]);
      values[d] = it == rec.dims.end() ? "" : it->second;
    }
    view.groups[values].members.push_back(i);
  }
}

}  // namespace cdibot::serve
