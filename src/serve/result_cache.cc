#include "serve/result_cache.h"

#include <algorithm>
#include <utility>

namespace cdibot::serve {

ArcResultCache::ArcResultCache(size_t capacity,
                               const std::string& metric_prefix)
    : capacity_(capacity) {
  auto& registry = obs::MetricsRegistry::Global();
  lookup_counter_ = registry.GetCounter(metric_prefix + ".cache.lookups");
  hit_counter_ = registry.GetCounter(metric_prefix + ".cache.hits");
  miss_counter_ = registry.GetCounter(metric_prefix + ".cache.misses");
  stale_counter_ =
      registry.GetCounter(metric_prefix + ".cache.stale_rejections");
  eviction_counter_ = registry.GetCounter(metric_prefix + ".cache.evictions");
  ghost_hit_counter_ =
      registry.GetCounter(metric_prefix + ".cache.ghost_hits");
  resident_gauge_ = registry.GetGauge(metric_prefix + ".cache.resident");
  target_gauge_ = registry.GetGauge(metric_prefix + ".cache.target_t1");
}

std::list<std::string>& ArcResultCache::ListFor(Where w) {
  switch (w) {
    case Where::kT1:
      return t1_;
    case Where::kT2:
      return t2_;
    case Where::kB1:
      return b1_;
    case Where::kB2:
      return b2_;
  }
  return t1_;
}

void ArcResultCache::MoveLocked(Index::iterator it, Where to) {
  Node& node = it->second;
  std::list<std::string>& src = ListFor(node.where);
  std::list<std::string>& dst = ListFor(to);
  dst.splice(dst.begin(), src, node.pos);
  node.where = to;
  node.pos = dst.begin();
}

void ArcResultCache::DemoteToGhostLocked(Index::iterator it) {
  Node& node = it->second;
  const Where ghost = node.where == Where::kT2 ? Where::kB2 : Where::kB1;
  node.entry = Entry{};  // drop the payload; the key alone is the ghost
  MoveLocked(it, ghost);
  // Ghost bounds: |T1|+|B1| <= c, |L1|+|L2| <= 2c.
  if (ghost == Where::kB1) {
    TrimGhostLocked(Where::kB1, capacity_ > t1_.size()
                                    ? capacity_ - t1_.size()
                                    : 0);
  } else {
    const size_t resident_and_b1 = t1_.size() + t2_.size() + b1_.size();
    TrimGhostLocked(Where::kB2, 2 * capacity_ > resident_and_b1
                                    ? 2 * capacity_ - resident_and_b1
                                    : 0);
  }
}

void ArcResultCache::TrimGhostLocked(Where w, size_t max) {
  std::list<std::string>& list = ListFor(w);
  while (list.size() > max) {
    index_.erase(list.back());
    list.pop_back();
  }
}

void ArcResultCache::ReplaceLocked(bool ghost_hit_in_b2) {
  // Stale rejections demote entries outside REPLACE, so the ARC invariant
  // "|T1|+|T2| == c whenever |L1|+|L2| >= c" can be temporarily broken;
  // with resident room there is nothing to evict.
  if (t1_.size() + t2_.size() < capacity_) return;
  if (!t1_.empty() &&
      (t1_.size() > p_ || (ghost_hit_in_b2 && t1_.size() == p_))) {
    DemoteToGhostLocked(index_.find(t1_.back()));
  } else if (!t2_.empty()) {
    DemoteToGhostLocked(index_.find(t2_.back()));
  } else if (!t1_.empty()) {
    DemoteToGhostLocked(index_.find(t1_.back()));
  }
  ++stats_.evictions;
  eviction_counter_->Increment();
}

void ArcResultCache::SetGaugesLocked() {
  stats_.resident = t1_.size() + t2_.size();
  stats_.target_t1 = p_;
  resident_gauge_->Set(static_cast<double>(stats_.resident));
  target_gauge_->Set(static_cast<double>(p_));
}

void ArcResultCache::Put(const std::string& key, Entry entry) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end() &&
      (it->second.where == Where::kT1 || it->second.where == Where::kT2)) {
    // Resident: refresh the payload (a recompute after a stale rejection
    // that raced another thread's Put) and promote.
    it->second.entry = std::move(entry);
    MoveLocked(it, Where::kT2);
    ++stats_.insertions;
    SetGaugesLocked();
    return;
  }
  if (it != index_.end() && it->second.where == Where::kB1) {
    // ARC Case II: ghost hit in B1 — recency is winning; grow T1's target.
    const size_t delta = std::max<size_t>(1, b2_.size() / b1_.size());
    p_ = std::min(capacity_, p_ + delta);
    ++stats_.ghost_hits;
    ghost_hit_counter_->Increment();
    ReplaceLocked(false);
    it->second.entry = std::move(entry);
    MoveLocked(it, Where::kT2);
  } else if (it != index_.end() && it->second.where == Where::kB2) {
    // ARC Case III: ghost hit in B2 — frequency is winning; shrink T1's
    // target.
    const size_t delta = std::max<size_t>(1, b1_.size() / b2_.size());
    p_ = p_ > delta ? p_ - delta : 0;
    ++stats_.ghost_hits;
    ghost_hit_counter_->Increment();
    ReplaceLocked(true);
    it->second.entry = std::move(entry);
    MoveLocked(it, Where::kT2);
  } else {
    // ARC Case IV: a brand-new key.
    if (t1_.size() + b1_.size() >= capacity_) {
      if (t1_.size() < capacity_) {
        TrimGhostLocked(Where::kB1,
                        b1_.empty() ? 0 : b1_.size() - 1);  // drop B1 LRU
        ReplaceLocked(false);
      } else {
        // B1 empty and T1 full: evict T1 LRU outright (no ghost).
        auto victim = index_.find(t1_.back());
        t1_.pop_back();
        index_.erase(victim);
        ++stats_.evictions;
        eviction_counter_->Increment();
      }
    } else if (t1_.size() + t2_.size() + b1_.size() + b2_.size() >=
               capacity_) {
      if (t1_.size() + t2_.size() + b1_.size() + b2_.size() >=
          2 * capacity_) {
        TrimGhostLocked(Where::kB2,
                        b2_.empty() ? 0 : b2_.size() - 1);  // drop B2 LRU
      }
      if (t1_.size() + t2_.size() >= capacity_) ReplaceLocked(false);
    }
    t1_.push_front(key);
    index_[key] = Node{Where::kT1, t1_.begin(), std::move(entry)};
  }
  ++stats_.insertions;
  SetGaugesLocked();
}

CacheStats ArcResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace cdibot::serve
