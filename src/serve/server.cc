#include "serve/server.h"

#include <utility>

namespace cdibot::serve {

namespace {

flow::FlowOptions WithServePrefix(flow::FlowOptions flow) {
  if (flow.metric_prefix == "flow.queue") flow.metric_prefix = "serve.queue";
  return flow;
}

}  // namespace

QueryServer::QueryServer(CdiQueryService* service, QueryServerOptions options)
    : service_(service),
      options_(std::move(options)),
      queue_(WithServePrefix(options_.flow)) {
  auto& registry = obs::MetricsRegistry::Global();
  const std::string& prefix = queue_.options().metric_prefix;
  submit_counter_ = registry.GetCounter(prefix + ".submitted");
  shed_counter_ = registry.GetCounter(prefix + ".query_shed");
  deadline_drop_counter_ = registry.GetCounter(prefix + ".deadline_drops");

  queue_.set_shed_callback([this](const QueryTicket& ticket, flow::FlowClass) {
    // Shed at admission (or evicted to make room): the caller still gets a
    // definitive answer, immediately.
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.shed;
    }
    shed_counter_->Increment();
    if (ticket.promise) {
      ticket.promise->set_value(Status::ResourceExhausted(
          "query shed by admission control (server overloaded)"));
    }
  });

  const size_t workers = std::max<size_t>(1, options_.workers);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryServer::~QueryServer() { Shutdown(); }

flow::FlowClass QueryServer::Classify(const CdiQuery& query) const {
  // Cheap-to-serve queries (cache hit or up-to-date cube) are the
  // never-shed class: rejecting them saves nothing and they are the bulk
  // of dashboard traffic. Expensive ad-hoc queries shed first, finest
  // granularity first (class + the traits' severity ladder).
  if (service_->ProbablyCheap(query)) {
    return flow::FlowClass::kUnavailability;
  }
  if (query.group_by.size() <= 1 && !query.include_detail) {
    return flow::FlowClass::kPerformance;
  }
  return flow::FlowClass::kControlPlane;
}

std::future<StatusOr<CdiQueryResponse>> QueryServer::Submit(
    const CdiQuery& query) {
  QueryTicket ticket;
  ticket.query = query;
  ticket.promise =
      std::make_shared<std::promise<StatusOr<CdiQueryResponse>>>();
  auto future = ticket.promise->get_future();
  submit_counter_->Increment();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (shutdown_) {
      ticket.promise->set_value(
          Status::ResourceExhausted("query server is shut down"));
      return future;
    }
  }
  const flow::FlowClass klass = Classify(query);
  auto promise = ticket.promise;  // keep reachable past the move below
  const flow::AdmitResult admit = queue_.TryPush(std::move(ticket), klass);
  switch (admit) {
    case flow::AdmitResult::kAdmitted: {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.admitted;
      break;
    }
    case flow::AdmitResult::kShed:
      // The shed callback already fulfilled the promise.
      break;
    case flow::AdmitResult::kQueueFull:
      // Queue entirely never-shed class; unlike the telemetry joint there
      // is no correctness reason to block a query producer — reject.
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.shed;
      }
      shed_counter_->Increment();
      promise->set_value(Status::ResourceExhausted(
          "query queue full of unsheddable work"));
      break;
  }
  return future;
}

void QueryServer::WorkerLoop() {
  QueryTicket ticket;
  while (queue_.Pop(&ticket)) {
    if (!ticket.promise) continue;
    if (ticket.query.deadline.Expired()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.deadline_drops;
      }
      deadline_drop_counter_->Increment();
      ticket.promise->set_value(Status::ResourceExhausted(
          "query deadline expired while queued"));
      continue;
    }
    auto response = service_->Query(ticket.query);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.executed;
    }
    ticket.promise->set_value(std::move(response));
  }
}

void QueryServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  queue_.Close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Drain anything the workers left behind (Close lets consumers drain,
  // but all workers may already have exited).
  QueryTicket ticket;
  while (queue_.TryPop(&ticket)) {
    if (ticket.promise) {
      ticket.promise->set_value(
          Status::ResourceExhausted("query server is shut down"));
    }
  }
}

ServerStats QueryServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace cdibot::serve
