#ifndef CDIBOT_SERVE_HEATMAP_H_
#define CDIBOT_SERVE_HEATMAP_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "common/time.h"
#include "event/catalog.h"
#include "event/event_view.h"

namespace cdibot::serve {

/// One fleet × time damage-heatmap request (the CloudHeatMap view: rows
/// are placement groups, columns are time buckets, cells are damage).
struct HeatmapSpec {
  /// Time axis; must be non-empty and divisible into `buckets` columns.
  Interval window;
  /// Number of time-bucket columns (1..4096).
  size_t buckets = 24;
  /// Placement dimension for the row axis ("region", "az", "cluster",
  /// ...). Targets missing the dimension land in the "" row.
  std::string group_dim = "region";
};

/// The rendered grid, stored SoA: row keys, bucket bounds, and one dense
/// row-major value plane per CDI category. A cell holds "damage minutes":
/// the summed overlap of each event's effective period (logged duration
/// when present, else the catalog/default expiration) with the bucket —
/// the same max-overlap proxy the paper's heatmap view plots, cheap enough
/// to render straight off the event log's SoA columns without resolving
/// periods per VM.
struct HeatmapGrid {
  std::vector<std::string> row_keys;  ///< sorted group values
  int64_t bucket_start_ms = 0;
  int64_t bucket_width_ms = 0;
  size_t buckets = 0;
  /// Row-major planes, size row_keys.size() * buckets.
  std::vector<double> unavailability;
  std::vector<double> performance;
  std::vector<double> control_plane;
  /// Events whose target had no dims entry (grouped under "").
  size_t targets_unmapped = 0;
  /// Events skipped because their name is not in the catalog.
  size_t events_unknown = 0;

  size_t rows() const { return row_keys.size(); }
  size_t CellIndex(size_t row, size_t bucket) const {
    return row * buckets + bucket;
  }
};

/// Builds a heatmap over `events` (a zero-copy span cut from the event
/// log or a retention buffer). `dims_by_target` maps each VM/NC target to
/// its placement dims (the fleet topology); `catalog` supplies each event
/// name's category and default duration. Events outside spec.window are
/// clipped to it; events that do not intersect it contribute nothing.
StatusOr<HeatmapGrid> BuildHeatmap(
    const EventSpan& events, const EventCatalog& catalog,
    const std::map<std::string, std::map<std::string, std::string>>&
        dims_by_target,
    const HeatmapSpec& spec);

/// Renders the grid as a strict-JSON document (validated by
/// tests/strict_json.h): spec echo, bucket bounds, row keys, and the three
/// category planes as nested arrays.
std::string RenderHeatmapJson(const HeatmapSpec& spec,
                              const HeatmapGrid& grid);

}  // namespace cdibot::serve

#endif  // CDIBOT_SERVE_HEATMAP_H_
