#include "serve/heatmap.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace cdibot::serve {
namespace {

void AppendJsonEscaped(std::string_view text, std::string* out) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      *out += c;
    }
  }
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendPlane(const HeatmapGrid& grid, const std::vector<double>& plane,
                 std::string* out) {
  *out += '[';
  for (size_t r = 0; r < grid.rows(); ++r) {
    if (r > 0) *out += ',';
    *out += '[';
    for (size_t b = 0; b < grid.buckets; ++b) {
      if (b > 0) *out += ',';
      *out += JsonNumber(plane[grid.CellIndex(r, b)]);
    }
    *out += ']';
  }
  *out += ']';
}

}  // namespace

StatusOr<HeatmapGrid> BuildHeatmap(
    const EventSpan& events, const EventCatalog& catalog,
    const std::map<std::string, std::map<std::string, std::string>>&
        dims_by_target,
    const HeatmapSpec& spec) {
  if (spec.window.length().millis() <= 0) {
    return Status::InvalidArgument("heatmap window must be non-empty");
  }
  if (spec.buckets == 0 || spec.buckets > 4096) {
    return Status::InvalidArgument("heatmap buckets must be in 1..4096");
  }
  if (spec.group_dim.empty()) {
    return Status::InvalidArgument("heatmap group_dim must be set");
  }

  HeatmapGrid grid;
  grid.buckets = spec.buckets;
  grid.bucket_start_ms = spec.window.start.millis();
  grid.bucket_width_ms = std::max<int64_t>(
      1, spec.window.length().millis() / static_cast<int64_t>(spec.buckets));

  // Pass 1: row keys. Interned target ids make the group lookup a small
  // per-target cache instead of a per-event map walk over the SoA rows.
  std::map<uint32_t, std::string> group_by_target_id;
  auto group_of = [&](const EventRef& ev) -> const std::string& {
    auto it = group_by_target_id.find(ev.target_id());
    if (it == group_by_target_id.end()) {
      std::string group;
      auto dims_it = dims_by_target.find(std::string(ev.target()));
      if (dims_it == dims_by_target.end()) {
        ++grid.targets_unmapped;
      } else {
        auto dim_it = dims_it->second.find(spec.group_dim);
        if (dim_it != dims_it->second.end()) group = dim_it->second;
      }
      it = group_by_target_id.emplace(ev.target_id(), std::move(group)).first;
    }
    return it->second;
  };

  std::map<std::string, size_t> row_index;
  events.ForEach([&](const EventRef& ev) {
    row_index.emplace(group_of(ev), 0);
  });
  grid.row_keys.reserve(row_index.size());
  for (auto& [key, idx] : row_index) {
    idx = grid.row_keys.size();
    grid.row_keys.push_back(key);
  }
  const size_t cells = grid.row_keys.size() * grid.buckets;
  grid.unavailability.assign(cells, 0.0);
  grid.performance.assign(cells, 0.0);
  grid.control_plane.assign(cells, 0.0);

  // Pass 2: spread each event's effective period over the buckets it
  // overlaps, straight from the SoA columns (time_ms / duration_ms /
  // expire_ms; no RawEvent materialization).
  const int64_t window_start = spec.window.start.millis();
  const int64_t window_end = spec.window.end.millis();
  events.ForEach([&](const EventRef& ev) {
    const auto handle = catalog.FindHandleById(ev.name_id());
    if (!handle.has_value()) {
      ++grid.events_unknown;
      return;
    }
    const EventSpec& es = *handle->spec;
    // Effective period: the logged duration when the event carries one,
    // else the spec's resolution default — a damage *proxy* rendered
    // without running the full period resolver.
    int64_t duration_ms = ev.LoggedDurationMsOrNeg();
    if (duration_ms < 0) {
      switch (es.period_kind) {
        case PeriodKind::kLoggedDuration:
          duration_ms = es.default_duration.millis();
          break;
        case PeriodKind::kWindowed:
          duration_ms = es.window.millis();
          break;
        case PeriodKind::kStateful:
          duration_ms = es.window.millis();
          break;
      }
    }
    // kLoggedDuration events stamp the END of the impact; others the start.
    int64_t start_ms = ev.time_ms();
    if (es.period_kind == PeriodKind::kLoggedDuration) {
      start_ms -= duration_ms;
    }
    int64_t end_ms = start_ms + std::max<int64_t>(duration_ms, 0);
    start_ms = std::max(start_ms, window_start);
    end_ms = std::min(end_ms, window_end);
    if (end_ms <= start_ms) return;

    const size_t row = row_index.find(group_of(ev))->second;
    const int64_t first_bucket =
        (start_ms - window_start) / grid.bucket_width_ms;
    const int64_t last_bucket =
        (end_ms - 1 - window_start) / grid.bucket_width_ms;
    std::vector<double>* plane = nullptr;
    switch (es.category) {
      case StabilityCategory::kUnavailability:
        plane = &grid.unavailability;
        break;
      case StabilityCategory::kPerformance:
        plane = &grid.performance;
        break;
      case StabilityCategory::kControlPlane:
        plane = &grid.control_plane;
        break;
    }
    if (plane == nullptr) return;
    for (int64_t b = first_bucket;
         b <= last_bucket && b < static_cast<int64_t>(grid.buckets); ++b) {
      const int64_t bucket_start = window_start + b * grid.bucket_width_ms;
      const int64_t bucket_end = bucket_start + grid.bucket_width_ms;
      const int64_t overlap =
          std::min(end_ms, bucket_end) - std::max(start_ms, bucket_start);
      if (overlap > 0) {
        (*plane)[grid.CellIndex(row, static_cast<size_t>(b))] +=
            static_cast<double>(overlap) / 60000.0;  // minutes
      }
    }
  });
  return grid;
}

std::string RenderHeatmapJson(const HeatmapSpec& spec,
                              const HeatmapGrid& grid) {
  std::string out = "{\"spec\":{\"group_dim\":\"";
  AppendJsonEscaped(spec.group_dim, &out);
  char buf[220];
  std::snprintf(buf, sizeof(buf),
                "\",\"window_start_ms\":%" PRId64 ",\"window_end_ms\":%" PRId64
                ",\"buckets\":%zu},",
                spec.window.start.millis(), spec.window.end.millis(),
                grid.buckets);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "\"bucket_start_ms\":%" PRId64 ",\"bucket_width_ms\":%" PRId64
                ",",
                grid.bucket_start_ms, grid.bucket_width_ms);
  out += buf;
  out += "\"rows\":[";
  for (size_t r = 0; r < grid.rows(); ++r) {
    if (r > 0) out += ',';
    out += '"';
    AppendJsonEscaped(grid.row_keys[r], &out);
    out += '"';
  }
  out += "],\"unavailability\":";
  AppendPlane(grid, grid.unavailability, &out);
  out += ",\"performance\":";
  AppendPlane(grid, grid.performance, &out);
  out += ",\"control_plane\":";
  AppendPlane(grid, grid.control_plane, &out);
  std::snprintf(buf, sizeof(buf),
                ",\"targets_unmapped\":%zu,\"events_unknown\":%zu}",
                grid.targets_unmapped, grid.events_unknown);
  out += buf;
  return out;
}

}  // namespace cdibot::serve
