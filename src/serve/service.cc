#include "serve/service.h"

#include <chrono>
#include <utility>

namespace cdibot::serve {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The freshness predicate shared by Get, Peek, and the admission probe:
/// does `entry` (computed at entry.as_of) still satisfy `query` now that
/// the source watermark is `wm`?
bool EntryFresh(const ArcResultCache::Entry& entry, const CdiQuery& query,
                TimePoint wm) {
  switch (query.consistency) {
    case Consistency::kFresh:
      return false;
    case Consistency::kCached:
      return entry.as_of == wm;
    case Consistency::kStaleOk:
      return entry.as_of <= wm
                 ? (wm - entry.as_of) <= query.max_staleness
                 : true;  // entry ahead of a regressed clock: serve it
  }
  return false;
}

}  // namespace

CdiQueryService::CdiQueryService(CdiReadSource* source,
                                 CdiQueryServiceOptions options)
    : source_(source),
      options_(std::move(options)),
      cache_(options_.cache_entries, options_.metric_prefix),
      cube_(options_.metric_prefix) {
  auto& registry = obs::MetricsRegistry::Global();
  query_counter_ = registry.GetCounter(options_.metric_prefix + ".queries");
  pull_counter_ =
      registry.GetCounter(options_.metric_prefix + ".source_pulls");
  deadline_counter_ =
      registry.GetCounter(options_.metric_prefix + ".deadline_rejections");
  latency_histogram_ =
      registry.GetHistogram(options_.metric_prefix + ".query_latency_ns");
}

Status CdiQueryService::Validate(const CdiQuery& query) {
  for (size_t i = 0; i < query.group_by.size(); ++i) {
    if (query.group_by[i].empty()) {
      return Status::InvalidArgument("group_by dimension name is empty");
    }
    for (size_t j = i + 1; j < query.group_by.size(); ++j) {
      if (query.group_by[i] == query.group_by[j]) {
        return Status::InvalidArgument("duplicate group_by dimension: " +
                                       query.group_by[i]);
      }
    }
  }
  for (const auto& [dim, value] : query.filter) {
    (void)value;
    if (dim.empty()) {
      return Status::InvalidArgument("filter dimension name is empty");
    }
  }
  return Status::OK();
}

StatusOr<CdiQueryResponse> CdiQueryService::Query(const CdiQuery& query) {
  const uint64_t start_ns = NowNs();
  Status valid = Validate(query);
  if (!valid.ok()) return valid;
  query_counter_->Increment();
  if (query.deadline.Expired()) {
    deadline_counter_->Increment();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries;
    ++stats_.deadline_rejections;
    return Status::ResourceExhausted("query deadline expired before serving");
  }

  const TimePoint wm = source_->watermark();
  const std::string key = CanonicalQueryKey(query);
  if (query.consistency != Consistency::kFresh) {
    auto entry = cache_.Get(key, [&](const ArcResultCache::Entry& e) {
      return EntryFresh(e, query, wm);
    });
    if (entry.has_value()) {
      CdiQueryResponse response = *entry->response;
      response.served_from_cache = true;
      response.staleness =
          entry->as_of <= wm ? wm - entry->as_of : Duration::Zero();
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.queries;
        ++stats_.cache_hits;
      }
      latency_histogram_->Record(NowNs() - start_ns);
      return response;
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.queries;
  auto response = ComputeLocked(query, wm);
  if (response.ok()) {
    cache_.Put(key, ArcResultCache::Entry{
                        std::make_shared<CdiQueryResponse>(*response),
                        response->as_of_watermark});
  }
  latency_histogram_->Record(NowNs() - start_ns);
  return response;
}

StatusOr<CdiQueryResponse> CdiQueryService::ComputeLocked(
    const CdiQuery& query, TimePoint wm) {
  bool need_pull = true;
  if (options_.materialize_cubes && cube_.loaded() &&
      query.consistency != Consistency::kFresh) {
    if (query.consistency == Consistency::kCached) {
      need_pull = cube_.as_of() != wm;
    } else {  // kStaleOk
      need_pull = cube_.as_of() <= wm
                      ? (wm - cube_.as_of()) > query.max_staleness
                      : false;
    }
  }

  if (need_pull) {
    auto pulled = source_->Pull(query.deadline);
    if (!pulled.ok()) return pulled.status();
    ++stats_.source_pulls;
    pull_counter_->Increment();
    last_fleet_ = pulled->fleet;
    last_baseline_ = pulled->fleet_baseline;
    last_quality_ = pulled->quality;
    last_deferred_ = pulled->vms_deferred;
    auto detail = std::make_shared<DailyCdiResult>(std::move(*pulled));
    last_detail_ = detail;
    // The cube keeps its own copy of the rows: detail is handed out to
    // callers as an immutable payload, while the cube's rows are its
    // private diff baseline.
    cube_.Refresh(detail->per_vm, wm);
  } else {
    ++stats_.cube_answers;
  }

  CdiQueryResponse response;
  response.as_of_watermark = cube_.as_of();
  response.staleness =
      cube_.as_of() <= wm ? wm - cube_.as_of() : Duration::Zero();
  response.served_from_cube = !need_pull;
  response.quality = last_quality_;
  response.vms_deferred = last_deferred_;
  response.fleet_baseline = last_baseline_;
  if (query.fleet_fidelity == FleetFidelity::kPartialMerge) {
    // The legacy FleetCdi() fast path: same code, same bits.
    auto quick = source_->QuickFleetCdi();
    if (!quick.ok()) return quick.status();
    response.fleet = *quick;
  } else {
    response.fleet = last_fleet_;
  }
  if (!query.group_by.empty()) {
    DrilldownQuery dq{.dimensions = query.group_by, .filter = query.filter};
    if (options_.materialize_cubes) {
      auto drilled = cube_.Answer(dq);
      if (!drilled.ok()) return drilled.status();
      response.drilldown = std::move(*drilled);
    } else {
      // Reference path (cubes off): recompute from the rows directly. The
      // differential suite pins this bit-identical to the cube path.
      auto drilled = RunDrilldown(last_detail_->per_vm, dq);
      if (!drilled.ok()) return drilled.status();
      response.drilldown = std::move(*drilled);
    }
  }
  if (query.include_detail) response.detail = last_detail_;
  return response;
}

bool CdiQueryService::ProbablyCheap(const CdiQuery& query) const {
  if (Validate(query).ok() == false) return false;
  if (query.consistency == Consistency::kFresh) return false;
  const TimePoint wm = source_->watermark();
  const std::string key = CanonicalQueryKey(query);
  if (cache_.Peek(key, [&](const ArcResultCache::Entry& e) {
        return EntryFresh(e, query, wm);
      })) {
    return true;
  }
  // An up-to-date cube answers without a source pull — cheap as well.
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.materialize_cubes || !cube_.loaded()) return false;
  if (query.consistency == Consistency::kCached) return cube_.as_of() == wm;
  return cube_.as_of() <= wm ? (wm - cube_.as_of()) <= query.max_staleness
                             : true;
}

CubeStats CdiQueryService::cube_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cube_.stats();
}

ServeStats CdiQueryService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace cdibot::serve
