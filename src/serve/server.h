#ifndef CDIBOT_SERVE_SERVER_H_
#define CDIBOT_SERVE_SERVER_H_

#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "flow/backpressure_queue.h"
#include "serve/service.h"

namespace cdibot::serve {

/// One admitted query in flight: the request plus the promise its caller
/// is waiting on. shared_ptr because the shed callback only sees a const
/// reference, yet must still fulfill the promise with the rejection.
struct QueryTicket {
  CdiQuery query;
  std::shared_ptr<std::promise<StatusOr<CdiQueryResponse>>> promise;
};

/// Within-class shed ordering for query tickets: coarser queries rank
/// higher (shed later) — a fleet-level dashboard read is cheaper and
/// serves more consumers than a four-dimension ad-hoc drill-down.
struct QueryTicketFlowTraits {
  static Severity LevelOf(const QueryTicket& ticket) {
    const size_t dims = ticket.query.group_by.size();
    if (ticket.query.include_detail || dims >= 3) return Severity::kInfo;
    if (dims == 2) return Severity::kWarning;
    if (dims == 1) return Severity::kCritical;
    return Severity::kFatal;  // fleet-only
  }
};

struct QueryServerOptions {
  /// Worker threads executing admitted queries.
  size_t workers = 2;
  /// Admission-queue tuning; metric_prefix defaults to "serve.queue" here
  /// (the flow default "flow.queue" belongs to the telemetry joint).
  flow::FlowOptions flow;
};

/// Per-server admission counters.
struct ServerStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t executed = 0;
  uint64_t deadline_drops = 0;  ///< admitted but expired before a worker ran it
};

/// QueryServer puts admission control in front of CdiQueryService: callers
/// Submit and wait on a future, worker threads drain the queue, and under
/// overload the BasicBackpressureQueue sheds the expensive tail first.
///
/// Classification (the serving-layer reuse of the CDI-U > CDI-P > CDI-C
/// shed ladder): a query the service can answer cheaply right now (cache
/// or fresh cube — ProbablyCheap) is kUnavailability class and is NEVER
/// shed; a coarse ad-hoc query (<= 1 drill-down dimension, no detail) is
/// kPerformance; fine-grained or detail-carrying ad-hoc queries are
/// kControlPlane and shed first. A shed or expired ticket resolves its
/// future with ResourceExhausted — the caller always gets an answer.
class QueryServer {
 public:
  /// `service` is borrowed and must outlive the server.
  explicit QueryServer(CdiQueryService* service, QueryServerOptions options = {});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Classifies, admits, and (eventually) executes `query`. The returned
  /// future is always fulfilled: with the response, or with
  /// ResourceExhausted when the ticket was shed at admission, dropped
  /// because its deadline expired in the queue, or rejected at shutdown.
  std::future<StatusOr<CdiQueryResponse>> Submit(const CdiQuery& query);

  /// Stops accepting queries, drains the queue, joins the workers.
  void Shutdown();

  ServerStats stats() const;
  flow::ShedStats queue_stats() const { return queue_.stats(); }
  const CdiQueryService& service() const { return *service_; }

 private:
  using Queue =
      flow::BasicBackpressureQueue<QueryTicket, QueryTicketFlowTraits>;

  flow::FlowClass Classify(const CdiQuery& query) const;
  void WorkerLoop();

  CdiQueryService* service_;
  QueryServerOptions options_;
  Queue queue_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  ServerStats stats_;
  bool shutdown_ = false;

  obs::Counter* submit_counter_;
  obs::Counter* shed_counter_;
  obs::Counter* deadline_drop_counter_;
};

}  // namespace cdibot::serve

#endif  // CDIBOT_SERVE_SERVER_H_
