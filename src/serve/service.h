#ifndef CDIBOT_SERVE_SERVICE_H_
#define CDIBOT_SERVE_SERVICE_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/statusor.h"
#include "serve/cube.h"
#include "serve/query.h"
#include "serve/result_cache.h"
#include "shard/coordinator.h"
#include "stream/streaming_engine.h"

namespace cdibot::serve {

/// The engine-agnostic read interface the serving layer sits on. One
/// implementation per topology: a single-node StreamingCdiEngine, a
/// sharded fleet behind a ShardCoordinator, or a fixed batch result in
/// tests. The facade never talks to an engine directly — every read goes
/// through this seam, which is what lets cached, cube and fresh answers
/// share one code path.
class CdiReadSource {
 public:
  virtual ~CdiReadSource() = default;

  virtual std::string_view name() const = 0;

  /// The source's current event-time watermark, cheap enough to call on
  /// every query (it is the cache-invalidation clock). Implementations
  /// must not ping remote shards here — the coordinator uses its gossiped
  /// min watermark, not the blocking Watermark() RPC.
  virtual TimePoint watermark() const = 0;

  /// Pulls the full batch-compatible result. An expiring deadline bounds
  /// the recompute (engine Preview semantics: deferred VMs stay dirty and
  /// the result is marked partial — degraded, not wrong).
  virtual StatusOr<DailyCdiResult> Pull(const Deadline& deadline) = 0;

  /// The cheap fleet-only read (the engine's O(shards) partial merge).
  /// Kept distinct from Pull because its doubles are NOT bit-identical to
  /// the canonical fold, and re-routed FleetCdi() callers must keep the
  /// exact bits they always got (FleetFidelity::kPartialMerge).
  virtual StatusOr<VmCdi> QuickFleetCdi() = 0;
};

/// Read source over a single-node streaming engine.
class EngineSource : public CdiReadSource {
 public:
  /// `engine` is borrowed and must outlive the source.
  explicit EngineSource(StreamingCdiEngine* engine) : engine_(engine) {}

  std::string_view name() const override { return "streaming-engine"; }
  TimePoint watermark() const override { return engine_->watermark(); }
  StatusOr<DailyCdiResult> Pull(const Deadline& deadline) override {
    return deadline.IsInfinite() ? engine_->Snapshot()
                                 : engine_->Preview(deadline);
  }
  StatusOr<VmCdi> QuickFleetCdi() override { return engine_->FleetCdi(); }

 private:
  StreamingCdiEngine* engine_;
};

/// Read source over a sharded fleet. Degraded-not-wrong passes through:
/// a gather with dead shards yields a result whose DataQuality/degraded
/// markers the response surfaces verbatim.
class CoordinatorSource : public CdiReadSource {
 public:
  /// `coordinator` is borrowed and must outlive the source.
  explicit CoordinatorSource(shard::ShardCoordinator* coordinator)
      : coordinator_(coordinator) {}

  std::string_view name() const override { return "shard-fleet"; }
  /// The fleet-wide min watermark from coordinator bookkeeping — cheap, no
  /// shard ping (ShardCoordinator::Watermark() would block on every
  /// worker, which a per-query clock must never do).
  TimePoint watermark() const override {
    return coordinator_->stats().min_watermark;
  }
  StatusOr<DailyCdiResult> Pull(const Deadline& deadline) override {
    return deadline.IsInfinite() ? coordinator_->Snapshot()
                                 : coordinator_->Preview(deadline);
  }
  StatusOr<VmCdi> QuickFleetCdi() override {
    return coordinator_->FleetCdi();
  }

 private:
  shard::ShardCoordinator* coordinator_;
};

struct CdiQueryServiceOptions {
  /// ARC result-cache capacity in entries; 0 disables the result cache
  /// (the differential suite's cache-off arm).
  size_t cache_entries = 256;
  /// false additionally disables cube materialization: every query
  /// recomputes RunDrilldown from a fresh source pull (the fully
  /// cache-off reference path).
  bool materialize_cubes = true;
  /// Obs metric prefix for the cache/cube/query metrics.
  std::string metric_prefix = "serve";
};

/// Per-service query counters (also mirrored to <prefix>.query.*).
struct ServeStats {
  uint64_t queries = 0;
  uint64_t cache_hits = 0;
  uint64_t cube_answers = 0;  ///< answered from the cube without a pull
  uint64_t source_pulls = 0;
  uint64_t deadline_rejections = 0;
};

/// CdiQueryService is the unified read facade: every consumer — dashboard,
/// watchdog, sim loop, bench driver — sends a CdiQuery and gets a
/// CdiQueryResponse, regardless of which engine topology is behind it.
///
/// Layering per query (consistency permitting): ARC result cache →
/// materialized drill-down cube (refreshed only on watermark advance) →
/// source pull. All three produce bit-identical answers; the differential
/// suite pins cache-on == cache-off across watermark advances, shard
/// rebalance, and chaos surge.
///
/// Thread safety: Query is safe from multiple threads (one service mutex
/// around cube refresh + source pulls; the cache has its own lock).
class CdiQueryService {
 public:
  /// `source` is borrowed and must outlive the service.
  CdiQueryService(CdiReadSource* source, CdiQueryServiceOptions options = {});

  StatusOr<CdiQueryResponse> Query(const CdiQuery& query);

  /// Admission-control probe: true when `query` would (right now) be
  /// answered by cache or an up-to-date cube — i.e. cheaply. The
  /// QueryServer classifies probe-hit queries into the never-shed flow
  /// class. Advisory: the answer can change between probe and execution.
  bool ProbablyCheap(const CdiQuery& query) const;

  CacheStats cache_stats() const { return cache_.stats(); }
  CubeStats cube_stats() const;
  ServeStats stats() const;
  const CdiReadSource& source() const { return *source_; }

 private:
  /// Validates the query shape. Status::OK for answerable queries.
  static Status Validate(const CdiQuery& query);
  /// Computes a response from the cube/source (cache already missed).
  StatusOr<CdiQueryResponse> ComputeLocked(const CdiQuery& query,
                                           TimePoint source_watermark);

  CdiReadSource* source_;
  CdiQueryServiceOptions options_;
  mutable ArcResultCache cache_;

  mutable std::mutex mu_;
  DrilldownCube cube_;
  /// Fleet metadata from the last pull (parallel to the cube's rows).
  VmCdi last_fleet_;
  UnavailabilityStats last_baseline_;
  DataQuality last_quality_;
  size_t last_deferred_ = 0;
  std::shared_ptr<const DailyCdiResult> last_detail_;
  ServeStats stats_;

  obs::Counter* query_counter_;
  obs::Counter* pull_counter_;
  obs::Counter* deadline_counter_;
  obs::Histogram* latency_histogram_;
};

}  // namespace cdibot::serve

#endif  // CDIBOT_SERVE_SERVICE_H_
