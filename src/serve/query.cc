#include "serve/query.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace cdibot::serve {
namespace {

void AppendJsonEscaped(std::string_view text, std::string* out) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      *out += c;
    }
  }
}

std::string JsonNumber(double v) {
  // JSON has no literal for NaN/Inf; render non-finite values as null
  // rather than corrupting the document.
  if (!std::isfinite(v)) return "null";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendCdi(const VmCdi& cdi, std::string* out) {
  *out += "{\"cdi_u\":" + JsonNumber(cdi.unavailability);
  *out += ",\"cdi_p\":" + JsonNumber(cdi.performance);
  *out += ",\"cdi_c\":" + JsonNumber(cdi.control_plane);
  *out += ",\"service_minutes\":" + JsonNumber(cdi.service_time.minutes());
  *out += '}';
}

void AppendQuality(const DataQuality& q, std::string* out) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"quarantined\":%" PRIu64 ",\"missing\":%" PRIu64
                ",\"shed\":%" PRIu64 ",\"degraded\":%s}",
                q.events_quarantined, q.events_missing, q.events_shed,
                q.degraded ? "true" : "false");
  *out += buf;
}

}  // namespace

std::string_view ConsistencyToString(Consistency c) {
  switch (c) {
    case Consistency::kFresh:
      return "fresh";
    case Consistency::kCached:
      return "cached";
    case Consistency::kStaleOk:
      return "stale-ok";
  }
  return "unknown";
}

std::string_view FleetFidelityToString(FleetFidelity f) {
  switch (f) {
    case FleetFidelity::kCanonical:
      return "canonical";
    case FleetFidelity::kPartialMerge:
      return "partial-merge";
  }
  return "unknown";
}

std::string CanonicalQueryKey(const CdiQuery& query) {
  // Field markers keep distinct queries from colliding after
  // concatenation; values are length-prefixed for the same reason (a
  // filter value containing '|' must not masquerade as a field break).
  std::string key;
  key += "f:";
  for (const auto& [dim, value] : query.filter) {
    key += std::to_string(dim.size()) + '.' + dim;
    key += std::to_string(value.size()) + '.' + value;
  }
  key += "|g:";
  for (const std::string& dim : query.group_by) {
    key += std::to_string(dim.size()) + '.' + dim;
  }
  key += "|fid:";
  key += FleetFidelityToString(query.fleet_fidelity);
  key += query.include_detail ? "|d1" : "|d0";
  return key;
}

std::string RenderResponseJson(const CdiQuery& query,
                               const CdiQueryResponse& response) {
  std::string out = "{\"query\":{";
  out += "\"consistency\":\"";
  out += ConsistencyToString(query.consistency);
  out += "\",\"fleet_fidelity\":\"";
  out += FleetFidelityToString(query.fleet_fidelity);
  out += "\",\"filter\":{";
  bool first = true;
  for (const auto& [dim, value] : query.filter) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(dim, &out);
    out += "\":\"";
    AppendJsonEscaped(value, &out);
    out += '"';
  }
  out += "},\"group_by\":[";
  for (size_t i = 0; i < query.group_by.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    AppendJsonEscaped(query.group_by[i], &out);
    out += '"';
  }
  out += "]},\"fleet\":";
  AppendCdi(response.fleet, &out);
  out += ",\"fleet_baseline\":{\"downtime_percentage\":" +
         JsonNumber(response.fleet_baseline.downtime_percentage);
  out += ",\"annual_interruption_rate\":" +
         JsonNumber(response.fleet_baseline.annual_interruption_rate);
  out += ",\"interruptions\":" +
         std::to_string(response.fleet_baseline.interruption_count);
  out += "},\"groups\":[";
  for (size_t i = 0; i < response.drilldown.groups.size(); ++i) {
    const DrilldownGroup& g = response.drilldown.groups[i];
    if (i > 0) out += ',';
    out += "{\"key\":\"";
    AppendJsonEscaped(g.key, &out);
    out += "\",\"values\":[";
    for (size_t v = 0; v < g.values.size(); ++v) {
      if (v > 0) out += ',';
      out += '"';
      AppendJsonEscaped(g.values[v], &out);
      out += '"';
    }
    out += "],\"vm_count\":" + std::to_string(g.vm_count);
    out += ",\"cdi\":";
    AppendCdi(g.cdi, &out);
    out += ",\"quality\":";
    AppendQuality(g.quality, &out);
    out += '}';
  }
  out += "],\"quality\":";
  AppendQuality(response.quality, &out);
  if (response.detail != nullptr) {
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  ",\"detail\":{\"per_vm_rows\":%zu,\"per_event_rows\":%zu,"
                  "\"vms_evaluated\":%zu,\"vms_failed\":%zu}",
                  response.detail->per_vm.size(),
                  response.detail->per_event.size(),
                  response.detail->vms_evaluated, response.detail->vms_failed);
    out += buf;
  }
  char buf[220];
  std::snprintf(buf, sizeof(buf),
                ",\"vms_deferred\":%zu,\"as_of_watermark_ms\":%" PRId64
                ",\"staleness_ms\":%" PRId64
                ",\"served_from_cache\":%s,\"served_from_cube\":%s}",
                response.vms_deferred, response.as_of_watermark.millis(),
                response.staleness.millis(),
                response.served_from_cache ? "true" : "false",
                response.served_from_cube ? "true" : "false");
  out += buf;
  return out;
}

}  // namespace cdibot::serve
