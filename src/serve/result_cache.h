#ifndef CDIBOT_SERVE_RESULT_CACHE_H_
#define CDIBOT_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/time.h"
#include "obs/metrics.h"
#include "serve/query.h"

namespace cdibot::serve {

/// Counters for one cache instance (monotonic; also mirrored into the obs
/// registry under <prefix>.cache.*).
struct CacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  /// Hits rejected because the entry's watermark violated the query's
  /// consistency mode — counted separately from plain misses because they
  /// are the invalidation signal (watermark advanced past the entry).
  uint64_t stale_rejections = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Ghost-list hits that adapted the ARC target split.
  uint64_t ghost_hits = 0;
  size_t resident = 0;   ///< |T1| + |T2|
  size_t target_t1 = 0;  ///< ARC's adaptive p
};

/// An ARC (Adaptive Replacement Cache) over canonicalized query keys.
///
/// Why ARC over plain LRU: the serving workload is a mix of a small hot
/// set of dashboard queries (hit over and over — frequency) and sweeps of
/// ad-hoc drill-downs (each key seen once — recency). LRU lets one sweep
/// flush the dashboard set; ARC splits residency into a recency list (T1,
/// seen once) and a frequency list (T2, seen twice+), with ghost lists
/// (B1/B2, keys only) steering the adaptive target `p` toward whichever
/// list is producing would-have-been hits. Scan resistance falls out: a
/// sweep churns T1 while the hot set sits untouched in T2.
///
/// Entries carry the source watermark they were computed at; the service
/// layer decides at lookup time whether that watermark still satisfies the
/// query's consistency mode (watermark advance = invalidation), so an
/// entry is never served beyond its staleness bound.
///
/// Thread safety: all methods lock a single internal mutex; values are
/// immutable shared_ptrs, so a returned payload stays valid after
/// eviction.
class ArcResultCache {
 public:
  struct Entry {
    std::shared_ptr<const CdiQueryResponse> response;
    /// Source watermark the response was computed from.
    TimePoint as_of;
  };

  /// `capacity` is the max resident entries (c in the ARC paper); 0
  /// disables the cache entirely (every Get misses, Put is a no-op) — the
  /// cache-off arm of the differential suite. `metric_prefix` names the
  /// obs metrics ("<prefix>.cache.hits", ...).
  explicit ArcResultCache(size_t capacity,
                          const std::string& metric_prefix = "serve");

  /// Looks up `key`. A hit promotes the entry (T1→T2 or T2 MRU). A miss
  /// leaves ghost bookkeeping to the following Put. `stale_ok` is a
  /// caller-supplied predicate result: when false, a resident entry is
  /// treated as a consistency violation — counted as stale_rejection, the
  /// entry is dropped (its key demoted to ghost), and nullopt returned.
  template <typename StalePredicate>
  std::optional<Entry> Get(const std::string& key, StalePredicate&& fresh) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.lookups;
    lookup_counter_->Increment();
    auto it = index_.find(key);
    if (it == index_.end() || it->second.where == Where::kB1 ||
        it->second.where == Where::kB2) {
      ++stats_.misses;
      miss_counter_->Increment();
      return std::nullopt;
    }
    Node& node = it->second;
    if (!fresh(node.entry)) {
      // Watermark invalidation: drop the payload but remember the key in
      // the ghost list its residency list feeds — the key's re-admission
      // after recompute should still adapt p as a ghost hit would.
      ++stats_.stale_rejections;
      stale_counter_->Increment();
      DemoteToGhostLocked(it);
      SetGaugesLocked();  // the demotion changed |T1|+|T2|
      ++stats_.misses;
      miss_counter_->Increment();
      return std::nullopt;
    }
    // ARC hit path: any resident hit moves to T2 MRU.
    MoveLocked(it, Where::kT2);
    ++stats_.hits;
    hit_counter_->Increment();
    return node.entry;
  }

  /// Non-mutating residency probe for admission control: true when `key`
  /// is resident AND `fresh` accepts it. No promotion, no stats.
  template <typename StalePredicate>
  bool Peek(const std::string& key, StalePredicate&& fresh) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end() || it->second.where == Where::kB1 ||
        it->second.where == Where::kB2) {
      return false;
    }
    return fresh(it->second.entry);
  }

  /// Inserts (or replaces) the value for `key`, running the ARC REQUEST
  /// logic for a miss: ghost hits adapt p, REPLACE evicts one resident
  /// entry to its ghost list, and the key lands in T1 (brand new) or T2
  /// (returning ghost).
  void Put(const std::string& key, Entry entry);

  CacheStats stats() const;
  size_t capacity() const { return capacity_; }

 private:
  enum class Where : int { kT1, kT2, kB1, kB2 };

  struct Node {
    Where where = Where::kT1;
    /// Position in the list for `where` (list stores keys, MRU at front).
    std::list<std::string>::iterator pos;
    Entry entry;  ///< empty for ghost nodes
  };

  using Index = std::unordered_map<std::string, Node>;

  std::list<std::string>& ListFor(Where w);
  /// Moves a resident node to the MRU end of `to` (T1 or T2).
  void MoveLocked(Index::iterator it, Where to);
  /// Drops a resident node's payload, moving its key to the matching
  /// ghost list (T1→B1, T2→B2).
  void DemoteToGhostLocked(Index::iterator it);
  /// ARC REPLACE: evicts the LRU of T1 or T2 (per p and the hint) to its
  /// ghost list.
  void ReplaceLocked(bool ghost_hit_in_b2);
  /// Trims a ghost list to its ARC bound, erasing forgotten keys.
  void TrimGhostLocked(Where w, size_t max);
  void SetGaugesLocked();

  const size_t capacity_;

  mutable std::mutex mu_;
  std::list<std::string> t1_, t2_, b1_, b2_;  // MRU at front
  Index index_;
  size_t p_ = 0;  ///< ARC adaptive target for |T1|
  CacheStats stats_;

  obs::Counter* lookup_counter_;
  obs::Counter* hit_counter_;
  obs::Counter* miss_counter_;
  obs::Counter* stale_counter_;
  obs::Counter* eviction_counter_;
  obs::Counter* ghost_hit_counter_;
  obs::Gauge* resident_gauge_;
  obs::Gauge* target_gauge_;
};

}  // namespace cdibot::serve

#endif  // CDIBOT_SERVE_RESULT_CACHE_H_
