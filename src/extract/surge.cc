#include "extract/surge.h"

namespace cdibot {

StatusOr<SurgeDetector> SurgeDetector::Create(Options options) {
  if (options.baseline_days < 3) {
    return Status::InvalidArgument("baseline_days must be >= 3");
  }
  if (!(options.surge_multiplier > 1.0)) {
    return Status::InvalidArgument("surge_multiplier must be > 1");
  }
  return SurgeDetector(options);
}

std::vector<SurgeAlert> SurgeDetector::ObserveDay(
    TimePoint day, const std::vector<RawEvent>& events) {
  // Today's per-event counts and distinct targets.
  std::map<std::string, size_t> counts;
  std::map<std::string, std::set<std::string>> targets;
  for (const RawEvent& ev : events) {
    ++counts[ev.name];
    targets[ev.name].insert(ev.target);
  }

  std::vector<SurgeAlert> alerts;
  for (const auto& [name, count] : counts) {
    History& hist = history_[name];
    // Alert decision against the existing baseline (before adding today).
    if (hist.daily_counts.size() >= options_.baseline_days &&
        count >= options_.min_count) {
      double mean = 0.0;
      for (size_t c : hist.daily_counts) mean += static_cast<double>(c);
      mean /= static_cast<double>(hist.daily_counts.size());
      const size_t affected = targets[name].size();
      if (static_cast<double>(count) > options_.surge_multiplier * mean &&
          affected >= options_.min_affected_targets) {
        alerts.push_back(SurgeAlert{.event_name = name,
                                    .day = day,
                                    .count = count,
                                    .baseline_mean = mean,
                                    .affected_targets = affected});
      }
    }
  }

  // Every known event's history advances (absent events count 0 today;
  // names first seen today were inserted by the alert loop above).
  for (auto& [name, hist] : history_) {
    auto it = counts.find(name);
    hist.daily_counts.push_back(it == counts.end() ? 0 : it->second);
    if (hist.daily_counts.size() > options_.baseline_days) {
      hist.daily_counts.pop_front();
    }
  }
  return alerts;
}

}  // namespace cdibot
