#ifndef CDIBOT_EXTRACT_SURGE_H_
#define CDIBOT_EXTRACT_SURGE_H_

#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "common/time.h"
#include "event/event.h"

namespace cdibot {

/// An alert raised by the surge monitor (Sec. II-F2: "for the unexpected
/// surge in events and the potential batch of missing operations it may
/// trigger, we establish an alert mechanism ... if the surge is influenced
/// by multiple customers, engineers are requested to intervene").
struct SurgeAlert {
  std::string event_name;
  TimePoint day;
  /// Today's event count vs the trailing baseline mean.
  size_t count = 0;
  double baseline_mean = 0.0;
  /// Distinct targets affected today — the "multiple customers" signal.
  size_t affected_targets = 0;
};

/// SurgeDetector watches per-event daily volumes and flags days whose
/// count is far above the trailing baseline AND touches many distinct
/// targets (a single noisy VM is an operations problem, not a surge).
class SurgeDetector {
 public:
  struct Options {
    /// Trailing days forming the baseline. >= 3.
    size_t baseline_days = 7;
    /// Alert when count > multiplier * baseline mean (and above min_count).
    double surge_multiplier = 3.0;
    /// Counts below this never alert (cold-start noise floor).
    size_t min_count = 10;
    /// Minimum distinct affected targets for an alert.
    size_t min_affected_targets = 3;
  };

  static StatusOr<SurgeDetector> Create(Options options);
  static StatusOr<SurgeDetector> Create() { return Create(Options()); }

  /// Feeds one day of raw events; returns the alerts for that day. Events
  /// are grouped internally by name; counts also update the baseline so a
  /// persistent surge alerts once and then becomes the new normal.
  std::vector<SurgeAlert> ObserveDay(TimePoint day,
                                     const std::vector<RawEvent>& events);

 private:
  explicit SurgeDetector(Options options) : options_(options) {}

  struct History {
    std::deque<size_t> daily_counts;
  };

  Options options_;
  std::map<std::string, History> history_;
};

}  // namespace cdibot

#endif  // CDIBOT_EXTRACT_SURGE_H_
