#include "extract/metric_rules.h"

#include <cmath>

#include "obs/metrics.h"

namespace cdibot {

MetricThresholdExtractor MetricThresholdExtractor::BuiltIn() {
  return MetricThresholdExtractor({
      // Fig. 1 / Table IV: cloud-disk read latency spike -> slow_io.
      MetricThresholdRule{.metric = "read_latency",
                          .event_name = "slow_io",
                          .direction = ThresholdDirection::kAbove,
                          .threshold = 20.0,
                          .level = Severity::kWarning,
                          .escalation_threshold = 50.0,
                          .escalated_level = Severity::kCritical},
      // Table IV: vCPU contention -> vcpu_high.
      MetricThresholdRule{.metric = "cpu_steal",
                          .event_name = "vcpu_high",
                          .direction = ThresholdDirection::kAbove,
                          .threshold = 0.15,
                          .level = Severity::kWarning,
                          .escalation_threshold = 0.30,
                          .escalated_level = Severity::kCritical},
      MetricThresholdRule{.metric = "packet_loss_rate",
                          .event_name = "packet_loss",
                          .direction = ThresholdDirection::kAbove,
                          .threshold = 0.01,
                          .level = Severity::kWarning},
      // Case 7: power at TDP risks frequency throttling.
      MetricThresholdRule{.metric = "cpu_power_tdp_ratio",
                          .event_name = "inspect_cpu_power_tdp",
                          .direction = ThresholdDirection::kAbove,
                          .threshold = 0.98,
                          .level = Severity::kWarning},
  });
}

std::vector<RawEvent> MetricThresholdExtractor::Extract(
    const MetricSeries& series) const {
  std::vector<RawEvent> out;
  for (const MetricThresholdRule& rule : rules_) {
    if (rule.metric != series.metric) continue;
    for (const MetricPoint& pt : series.points) {
      const bool violated = rule.direction == ThresholdDirection::kAbove
                                ? pt.value > rule.threshold
                                : pt.value < rule.threshold;
      if (!violated) continue;
      Severity level = rule.level;
      if (!std::isnan(rule.escalation_threshold)) {
        const bool escalated =
            rule.direction == ThresholdDirection::kAbove
                ? pt.value > rule.escalation_threshold
                : pt.value < rule.escalation_threshold;
        if (escalated) level = rule.escalated_level;
      }
      RawEvent ev;
      ev.name = rule.event_name;
      ev.time = pt.time;
      ev.target = series.target;
      ev.level = level;
      ev.expire_interval = rule.expire_interval;
      out.push_back(std::move(ev));
    }
  }
  static obs::Counter* scanned = obs::MetricsRegistry::Global().GetCounter(
      "extract.metric_points_scanned");
  static obs::Counter* extracted =
      obs::MetricsRegistry::Global().GetCounter("extract.metric_events");
  scanned->Add(series.points.size());
  extracted->Add(out.size());
  return out;
}

}  // namespace cdibot
