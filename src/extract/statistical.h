#ifndef CDIBOT_EXTRACT_STATISTICAL_H_
#define CDIBOT_EXTRACT_STATISTICAL_H_

#include <string>
#include <vector>

#include "anomaly/dspot.h"
#include "anomaly/evt.h"
#include "anomaly/stl.h"
#include "common/statusor.h"
#include "event/event.h"
#include "telemetry/metric_series.h"

namespace cdibot {

/// Statistic-based event extraction (Sec. II-C, second bullet): combines
/// seasonal-trend decomposition with EVT threshold setting — the
/// BacktrackSTL + SPOT pairing the paper cites. Each metric sample is
/// deseasonalized online; residuals exceeding the SPOT extreme threshold
/// emit one windowed event.
class StatisticalExtractor {
 public:
  /// Tail detector driving the extraction.
  enum class Detector {
    /// Upper-tail SPOT: spikes only (the common latency/error-rate case).
    kSpot = 0,
    /// Bidirectional drift-aware DSPOT: spikes AND dips (Case 7's zeroed
    /// collector is a dip the upper-only detector misses).
    kDSpot = 1,
  };

  struct Options {
    /// Seasonal period in samples (1440 = daily at one-minute sampling).
    size_t period = 1440;
    /// SPOT target anomaly probability (per side for kDSpot).
    double q = 1e-4;
    /// Initial-calibration quantile level for the peaks threshold.
    double level = 0.98;
    /// Name of the emitted event.
    std::string event_name = "metric_anomaly";
    Severity event_level = Severity::kCritical;
    Detector detector = Detector::kSpot;
    /// BacktrackSTL-style robust component updates: anomalies do not
    /// contaminate the trend/seasonal model.
    bool robust_stl = false;
  };

  /// Calibrates the STL + SPOT chain on `calibration` (>= 2 periods of
  /// clean data recommended) and returns a ready extractor.
  static StatusOr<StatisticalExtractor> Calibrate(
      const MetricSeries& calibration, Options options);

  /// Feeds one observation; returns an event when it is anomalous. Events
  /// from the kDSpot detector carry a "direction" attribute ("spike" or
  /// "dip").
  std::optional<RawEvent> Observe(const MetricPoint& point,
                                  const std::string& target);

  /// Batch form over a series.
  std::vector<RawEvent> ExtractAll(const MetricSeries& series);

 private:
  StatisticalExtractor(Options options, OnlineStl stl,
                       std::optional<SpotDetector> spot,
                       std::optional<DSpotDetector> dspot)
      : options_(std::move(options)),
        stl_(std::move(stl)),
        spot_(std::move(spot)),
        dspot_(std::move(dspot)) {}

  Options options_;
  OnlineStl stl_;
  std::optional<SpotDetector> spot_;
  std::optional<DSpotDetector> dspot_;
};

/// The "deep learning" failure-prediction stand-in (Sec. II-C, third
/// bullet; refs. [7][8]): a logistic scorer over host health features. The
/// paper's TAAT/MISP transformers are proprietary models trained on
/// production telemetry; a calibrated logistic model exercises the same
/// pipeline contract — features in, risk score out, nc_down_prediction
/// event when the score crosses a threshold.
class FailurePredictor {
 public:
  /// Host health features, normalized to roughly [0, 1].
  struct Features {
    double corrected_memory_errors = 0.0;  ///< rate vs. alert budget
    double disk_reallocated_sectors = 0.0;
    double cpu_throttle_ratio = 0.0;
    double nic_error_rate = 0.0;
    double fan_speed_deviation = 0.0;
  };

  /// Creates a predictor with the default calibrated weights and decision
  /// threshold in (0, 1).
  static StatusOr<FailurePredictor> Create(double threshold = 0.7);

  /// Failure risk score in (0, 1).
  double Score(const Features& f) const;

  /// Emits an nc_down_prediction event when Score > threshold.
  std::optional<RawEvent> Predict(const std::string& nc_id, TimePoint now,
                                  const Features& f) const;

 private:
  explicit FailurePredictor(double threshold) : threshold_(threshold) {}
  double threshold_;
};

}  // namespace cdibot

#endif  // CDIBOT_EXTRACT_STATISTICAL_H_
