#ifndef CDIBOT_EXTRACT_METRIC_RULES_H_
#define CDIBOT_EXTRACT_METRIC_RULES_H_

#include <limits>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "event/event.h"
#include "telemetry/metric_series.h"

namespace cdibot {

/// Direction of a threshold violation.
enum class ThresholdDirection : int { kAbove = 0, kBelow = 1 };

/// Expert threshold rule on a metric (Sec. II-C): every sample violating
/// the threshold emits one windowed event — a persistently compromised VM
/// therefore produces consecutive events whose windows tile the episode
/// (Sec. IV-B1). A second, higher (or lower) escalation threshold upgrades
/// the severity, modeling "events with identical names may correspond to
/// varying levels" (Table II).
struct MetricThresholdRule {
  std::string metric;      ///< metric name this rule applies to
  std::string event_name;  ///< emitted event name, e.g. slow_io
  ThresholdDirection direction = ThresholdDirection::kAbove;
  double threshold = 0.0;
  Severity level = Severity::kWarning;
  /// Optional escalation: beyond this value the event is emitted at
  /// `escalated_level`. Disabled when NaN.
  double escalation_threshold = std::numeric_limits<double>::quiet_NaN();
  Severity escalated_level = Severity::kCritical;
  Duration expire_interval = Duration::Hours(24);
};

/// Applies threshold rules to metric series.
class MetricThresholdExtractor {
 public:
  explicit MetricThresholdExtractor(std::vector<MetricThresholdRule> rules)
      : rules_(std::move(rules)) {}

  /// The built-in rules for the paper's metric events: slow_io over
  /// read_latency, vcpu_high over cpu_steal, packet_loss over loss rate,
  /// and inspect_cpu_power_tdp over the power/TDP ratio (Case 7).
  static MetricThresholdExtractor BuiltIn();

  /// Emits one event per violating sample of `series` (rules whose metric
  /// name differs are skipped).
  std::vector<RawEvent> Extract(const MetricSeries& series) const;

  size_t num_rules() const { return rules_.size(); }

 private:
  std::vector<MetricThresholdRule> rules_;
};

}  // namespace cdibot

#endif  // CDIBOT_EXTRACT_METRIC_RULES_H_
