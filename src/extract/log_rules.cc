#include "extract/log_rules.h"

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cdibot {

StatusOr<LogRuleExtractor> LogRuleExtractor::Create(
    std::vector<LogRule> rules) {
  std::vector<CompiledRule> compiled;
  compiled.reserve(rules.size());
  for (LogRule& rule : rules) {
    if (rule.event_name.empty()) {
      return Status::InvalidArgument("log rule needs an event name");
    }
    try {
      compiled.push_back(
          CompiledRule{rule, std::regex(rule.pattern,
                                        std::regex::ECMAScript |
                                            std::regex::optimize)});
    } catch (const std::regex_error& e) {
      return Status::InvalidArgument("bad regex for " + rule.event_name +
                                     ": " + e.what());
    }
  }
  return LogRuleExtractor(std::move(compiled));
}

StatusOr<LogRuleExtractor> LogRuleExtractor::BuiltIn() {
  return Create({
      // Example 1: "eth0 NIC Link is Down" at 12:16:28 becomes nic_flapping.
      LogRule{.event_name = "nic_flapping",
              .pattern = R"(NIC Link is Down)",
              .level = Severity::kCritical},
      // Sec. IV-B1: QEMU live upgrade logs its pause in milliseconds.
      LogRule{.event_name = "qemu_live_upgrade",
              .pattern = R"(qemu: live upgrade complete, pause=(\d+)ms)",
              .level = Severity::kWarning,
              .duration_group = 1},
      LogRule{.event_name = "vm_crash",
              .pattern = R"(guest panic|kvm: vcpu fatal error)",
              .level = Severity::kFatal},
      LogRule{.event_name = "vm_hang",
              .pattern = R"(watchdog: guest unresponsive)",
              .level = Severity::kFatal},
      LogRule{.event_name = "gpu_drop",
              .pattern = R"(GPU has fallen off the bus)",
              .level = Severity::kFatal},
  });
}

std::optional<RawEvent> LogRuleExtractor::Extract(const LogLine& line) const {
  for (const CompiledRule& compiled : rules_) {
    std::smatch match;
    if (!std::regex_search(line.text, match, compiled.re)) continue;
    RawEvent ev;
    ev.name = compiled.rule.event_name;
    ev.time = line.time;
    ev.target = line.target;
    ev.level = compiled.rule.level;
    ev.expire_interval = compiled.rule.expire_interval;
    if (compiled.rule.duration_group > 0 &&
        static_cast<size_t>(compiled.rule.duration_group) < match.size()) {
      ev.attrs["duration_ms"] =
          match[static_cast<size_t>(compiled.rule.duration_group)].str();
    }
    return ev;
  }
  return std::nullopt;
}

std::vector<RawEvent> LogRuleExtractor::ExtractAll(
    const std::vector<LogLine>& lines) const {
  TRACE_SPAN("extract.log_rules");
  std::vector<RawEvent> out;
  for (const LogLine& line : lines) {
    auto ev = Extract(line);
    if (ev.has_value()) out.push_back(std::move(*ev));
  }
  static obs::Counter* scanned = obs::MetricsRegistry::Global().GetCounter(
      "extract.log_lines_scanned");
  static obs::Counter* extracted =
      obs::MetricsRegistry::Global().GetCounter("extract.log_events");
  scanned->Add(lines.size());
  extracted->Add(out.size());
  return out;
}

}  // namespace cdibot
