#ifndef CDIBOT_EXTRACT_LOG_RULES_H_
#define CDIBOT_EXTRACT_LOG_RULES_H_

#include <optional>
#include <regex>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "event/event.h"
#include "telemetry/log_stream.h"

namespace cdibot {

/// One expert-authored log extraction rule (Sec. II-C, "Expert rules"):
/// log lines matching `pattern` become events named `event_name`. If the
/// regex has a capture group named by index `duration_group` (>0), its
/// integer value becomes the event's duration_ms attribute (the
/// qemu_live_upgrade case).
struct LogRule {
  std::string event_name;
  std::string pattern;
  Severity level = Severity::kWarning;
  /// 1-based regex capture group holding an impact duration in ms; 0 = none.
  int duration_group = 0;
  Duration expire_interval = Duration::Hours(24);
};

/// Compiles expert log rules and extracts events from log lines. Lines that
/// match no rule are discarded (Fig. 1 discards two of the three NIC log
/// entries). Rules are tried in registration order; the first match wins.
class LogRuleExtractor {
 public:
  /// Compiles `rules`; fails with InvalidArgument on a bad regex.
  static StatusOr<LogRuleExtractor> Create(std::vector<LogRule> rules);

  /// The built-in expert rule set covering the paper's log events
  /// (nic_flapping, qemu_live_upgrade, vm crash/hang markers).
  static StatusOr<LogRuleExtractor> BuiltIn();

  /// Extracts from one line; nullopt when no rule matches.
  std::optional<RawEvent> Extract(const LogLine& line) const;

  /// Extracts from a batch, preserving time order of the matches.
  std::vector<RawEvent> ExtractAll(const std::vector<LogLine>& lines) const;

  size_t num_rules() const { return rules_.size(); }

 private:
  struct CompiledRule {
    LogRule rule;
    std::regex re;
  };
  explicit LogRuleExtractor(std::vector<CompiledRule> rules)
      : rules_(std::move(rules)) {}

  std::vector<CompiledRule> rules_;
};

}  // namespace cdibot

#endif  // CDIBOT_EXTRACT_LOG_RULES_H_
