#include "extract/statistical.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cdibot {

StatusOr<StatisticalExtractor> StatisticalExtractor::Calibrate(
    const MetricSeries& calibration, Options options) {
  if (options.event_name.empty()) {
    return Status::InvalidArgument("extractor needs an event name");
  }
  CDIBOT_ASSIGN_OR_RETURN(
      OnlineStl stl,
      OnlineStl::Create(options.period, 0.05, 0.1, options.robust_stl));
  std::vector<double> residuals;
  residuals.reserve(calibration.points.size());
  for (const MetricPoint& pt : calibration.points) {
    residuals.push_back(stl.Observe(pt.value));
  }
  // The first period's residuals are zero while the seasonal profile
  // initializes; calibrate the tail model on the remainder.
  if (residuals.size() < options.period + 10) {
    return Status::InvalidArgument(
        "calibration series too short for the configured period");
  }
  residuals.erase(residuals.begin(),
                  residuals.begin() + static_cast<long>(options.period));
  std::optional<SpotDetector> spot;
  std::optional<DSpotDetector> dspot;
  if (options.detector == Detector::kSpot) {
    CDIBOT_ASSIGN_OR_RETURN(
        SpotDetector det,
        SpotDetector::Calibrate(residuals, options.q, options.level));
    spot = std::move(det);
  } else {
    DSpotDetector::Options dopts;
    dopts.q = options.q;
    dopts.level = options.level;
    CDIBOT_ASSIGN_OR_RETURN(DSpotDetector det,
                            DSpotDetector::Calibrate(residuals, dopts));
    dspot = std::move(det);
  }
  return StatisticalExtractor(std::move(options), std::move(stl),
                              std::move(spot), std::move(dspot));
}

std::optional<RawEvent> StatisticalExtractor::Observe(
    const MetricPoint& point, const std::string& target) {
  const double residual = stl_.Observe(point.value);
  const char* direction = nullptr;
  if (spot_.has_value()) {
    if (spot_->Observe(residual)) direction = "spike";
  } else {
    switch (dspot_->Observe(residual)) {
      case AnomalyDirection::kSpike:
        direction = "spike";
        break;
      case AnomalyDirection::kDip:
        direction = "dip";
        break;
      case AnomalyDirection::kNone:
        break;
    }
  }
  if (direction == nullptr) return std::nullopt;
  RawEvent ev;
  ev.name = options_.event_name;
  ev.time = point.time;
  ev.target = target;
  ev.level = options_.event_level;
  ev.expire_interval = Duration::Hours(24);
  ev.attrs["direction"] = direction;
  return ev;
}

std::vector<RawEvent> StatisticalExtractor::ExtractAll(
    const MetricSeries& series) {
  TRACE_SPAN("extract.statistical");
  std::vector<RawEvent> out;
  for (const MetricPoint& pt : series.points) {
    auto ev = Observe(pt, series.target);
    if (ev.has_value()) out.push_back(std::move(*ev));
  }
  static obs::Counter* observed = obs::MetricsRegistry::Global().GetCounter(
      "extract.statistical_points_observed");
  static obs::Counter* extracted = obs::MetricsRegistry::Global().GetCounter(
      "extract.statistical_events");
  observed->Add(series.points.size());
  extracted->Add(out.size());
  return out;
}

StatusOr<FailurePredictor> FailurePredictor::Create(double threshold) {
  if (!(threshold > 0.0) || !(threshold < 1.0)) {
    return Status::InvalidArgument("threshold must be in (0, 1)");
  }
  return FailurePredictor(threshold);
}

double FailurePredictor::Score(const Features& f) const {
  // Calibrated so an all-zero host scores ~0.02 and a host with several
  // saturated indicators scores > 0.9.
  const double z = -4.0 + 3.2 * f.corrected_memory_errors +
                   2.8 * f.disk_reallocated_sectors +
                   1.6 * f.cpu_throttle_ratio + 2.4 * f.nic_error_rate +
                   1.2 * f.fan_speed_deviation;
  return 1.0 / (1.0 + std::exp(-z));
}

std::optional<RawEvent> FailurePredictor::Predict(const std::string& nc_id,
                                                  TimePoint now,
                                                  const Features& f) const {
  if (Score(f) <= threshold_) return std::nullopt;
  RawEvent ev;
  ev.name = "nc_down_prediction";
  ev.time = now;
  ev.target = nc_id;
  ev.level = Severity::kCritical;
  ev.expire_interval = Duration::Hours(24);
  return ev;
}

}  // namespace cdibot
