#include "event/period_resolver.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cdibot {
namespace {

// Emits `ev` into `out` after clamping into optional bounds; drops empties.
void EmitClamped(ResolvedEvent ev, const std::optional<Interval>& bounds,
                 std::vector<ResolvedEvent>* out, ResolveStats* stats) {
  if (bounds.has_value()) {
    ev.period = ev.period.ClampTo(*bounds);
  }
  if (ev.period.empty()) return;
  ++stats->resolved;
  out->push_back(std::move(ev));
}

}  // namespace

PeriodResolver::PeriodResolver(const EventCatalog* catalog)
    : catalog_(catalog) {}

StatusOr<std::vector<ResolvedEvent>> PeriodResolver::Resolve(
    std::vector<RawEvent> raw, std::optional<Interval> bounds,
    ResolveStats* stats) const {
  TRACE_SPAN("resolve.resolve");
  ResolveStats local_stats;
  ResolveStats* s = stats != nullptr ? stats : &local_stats;
  *s = ResolveStats{};

  // Sort by (target, parent event, time) so stateful start/end details of
  // the same issue stream interleave chronologically — sorting by the raw
  // detail name would batch all starts before all ends and break both the
  // consecutive-run dedup and the pairing.
  struct Keyed {
    std::string parent;
    RawEvent event;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(raw.size());
  for (RawEvent& ev : raw) {
    auto spec_or = catalog_->Find(ev.name);
    if (!spec_or.ok()) {
      ++s->unknown_dropped;
      continue;
    }
    keyed.push_back(Keyed{spec_or->name, std::move(ev)});
  }
  // The (name, level) tie-breakers make the order — and therefore the
  // stateful dedup/pairing outcome — deterministic even when two details
  // of the same issue share a timestamp, so resolution is invariant under
  // arrival-order permutations of the input.
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    return std::tie(a.event.target, a.parent, a.event.time, a.event.name,
                    a.event.level) < std::tie(b.event.target, b.parent,
                                              b.event.time, b.event.name,
                                              b.event.level);
  });

  std::vector<ResolvedEvent> out;
  out.reserve(keyed.size());

  // Pending stateful start details keyed by (parent name, target).
  struct PendingStart {
    TimePoint time;
    Severity level;
  };
  std::map<std::pair<std::string, std::string>, PendingStart> pending;
  // Last seen detail name per (parent, target), for consecutive-run dedup.
  std::map<std::pair<std::string, std::string>, std::string> last_detail;

  for (Keyed& item : keyed) {
    RawEvent& ev = item.event;
    auto spec_or = catalog_->Find(ev.name);
    if (!spec_or.ok()) continue;  // filtered above; defensive
    const EventSpec& spec = spec_or.value();

    switch (spec.period_kind) {
      case PeriodKind::kLoggedDuration: {
        Duration d = spec.default_duration;
        auto logged = ev.LoggedDuration();
        if (logged.ok()) d = logged.value();
        EmitClamped(
            ResolvedEvent{.name = spec.name,
                          .target = ev.target,
                          .period = Interval(ev.time - d, ev.time),
                          .level = ev.level,
                          .category = spec.category},
            bounds, &out, s);
        break;
      }
      case PeriodKind::kWindowed: {
        EmitClamped(
            ResolvedEvent{.name = spec.name,
                          .target = ev.target,
                          .period = Interval(ev.time - spec.window, ev.time),
                          .level = ev.level,
                          .category = spec.category},
            bounds, &out, s);
        break;
      }
      case PeriodKind::kStateful: {
        const auto key = std::make_pair(spec.name, ev.target);
        // Sec. IV-B2: among consecutive occurrences of the same detail,
        // keep only the earliest.
        auto ld = last_detail.find(key);
        if (ld != last_detail.end() && ld->second == ev.name) {
          ++s->duplicate_details_dropped;
          break;
        }
        last_detail[key] = ev.name;

        if (ev.name == spec.start_detail) {
          pending[key] = PendingStart{ev.time, ev.level};
        } else {  // end detail
          auto pit = pending.find(key);
          if (pit == pending.end()) {
            ++s->dangling_end_dropped;
            break;
          }
          EmitClamped(
              ResolvedEvent{.name = spec.name,
                            .target = ev.target,
                            .period = Interval(pit->second.time, ev.time),
                            .level = pit->second.level,
                            .category = spec.category},
              bounds, &out, s);
          pending.erase(pit);
        }
        break;
      }
    }
  }

  // Close unpaired starts at start + expire (clamped to bounds.end).
  for (const auto& [key, start] : pending) {
    auto spec_or = catalog_->Find(key.first);
    if (!spec_or.ok()) continue;
    const EventSpec& spec = spec_or.value();
    TimePoint end = start.time + spec.expire_interval;
    if (bounds.has_value() && bounds->end < end) end = bounds->end;
    ++s->unpaired_start_closed;
    EmitClamped(ResolvedEvent{.name = spec.name,
                              .target = key.second,
                              .period = Interval(start.time, end),
                              .level = start.level,
                              .category = spec.category},
                bounds, &out, s);
    // EmitClamped already incremented resolved if kept.
  }

  // Fleet-wide rollup of the per-call ResolveStats, so statusz shows the
  // same data-quality counters the pipeline aggregates per VM.
  static obs::Counter* resolved =
      obs::MetricsRegistry::Global().GetCounter("resolve.events_resolved");
  static obs::Counter* unknown =
      obs::MetricsRegistry::Global().GetCounter("resolve.unknown_dropped");
  static obs::Counter* duplicates = obs::MetricsRegistry::Global().GetCounter(
      "resolve.duplicate_details_dropped");
  static obs::Counter* dangling = obs::MetricsRegistry::Global().GetCounter(
      "resolve.dangling_end_dropped");
  static obs::Counter* unpaired = obs::MetricsRegistry::Global().GetCounter(
      "resolve.unpaired_start_closed");
  resolved->Add(s->resolved);
  unknown->Add(s->unknown_dropped);
  duplicates->Add(s->duplicate_details_dropped);
  dangling->Add(s->dangling_end_dropped);
  unpaired->Add(s->unpaired_start_closed);

  return out;
}

}  // namespace cdibot
