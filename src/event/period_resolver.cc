#include "event/period_resolver.h"

#include <algorithm>
#include <string_view>
#include <tuple>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cdibot {
namespace {

/// One sortable unit of resolution work. Both entry points (owning
/// RawEvents, non-owning EventRefs) lower their input to Items, so the
/// core below is the single definition of sort order, stateful pairing,
/// and emission order — the properties the equivalence suites pin.
struct Item {
  std::string_view target;
  std::string_view parent;  // parent spec name (== name for stateless)
  std::string_view name;    // raw name as extracted (detail name if stateful)
  int64_t time_ms = 0;
  Severity level = Severity::kWarning;
  const EventSpec* spec = nullptr;
  uint32_t parent_name_id = StringInterner::kInvalidId;
  uint32_t target_id = StringInterner::kInvalidId;
  /// Valid logged duration_ms, or -1 (absent/unparseable/negative) — the
  /// cases where kLoggedDuration resolution falls back to the spec default.
  int64_t logged_ms = -1;
  /// For stateful details: whether this is the start detail.
  bool is_start = false;
};

// Sort by (target, parent event, time) so stateful start/end details of
// the same issue stream interleave chronologically — sorting by the raw
// detail name would batch all starts before all ends and break both the
// consecutive-run dedup and the pairing. The (name, level) tie-breakers
// make the order — and therefore the stateful dedup/pairing outcome —
// deterministic even when two details of the same issue share a
// timestamp, so resolution is invariant under arrival-order permutations
// of the input.
bool ItemLess(const Item& a, const Item& b) {
  return std::tie(a.target, a.parent, a.time_ms, a.name, a.level) <
         std::tie(b.target, b.parent, b.time_ms, b.name, b.level);
}

/// The resolution core (Sec. IV-B): sorts `items`, derives each event's
/// [start, end) period per its spec's PeriodKind, and calls
/// `emit(item, period, level)` for every kept period. Stateful pairing
/// state is local to one contiguous (target, parent) group of the sorted
/// order. Unpaired starts are closed after the main loop in
/// (parent, target) order — the iteration order of the keyed map the
/// pre-view resolver held them in, preserved so the refactor cannot
/// reorder output.
template <typename Emit>
void ResolveSorted(std::vector<Item>& items,
                   const std::optional<Interval>& bounds, ResolveStats* s,
                   const Emit& emit) {
  std::sort(items.begin(), items.end(), ItemLess);

  // Clamps into optional bounds and drops empties before emitting.
  auto emit_clamped = [&](const Item& item, TimePoint start, TimePoint end,
                          Severity level) {
    Interval period(start, end);
    if (bounds.has_value()) period = period.ClampTo(*bounds);
    if (period.empty()) return;
    ++s->resolved;
    emit(item, period, level);
  };

  struct Closure {
    const Item* item;  // the unpaired start detail
    int64_t start_ms;
    Severity level;
  };
  std::vector<Closure> closures;

  // Per-group stateful state: last seen detail name (consecutive-run
  // dedup, Sec. IV-B2 / Example 2) and the single currently-open start.
  std::string_view group_target;
  std::string_view group_parent;
  bool in_group = false;
  std::string_view last_detail;
  bool has_last_detail = false;
  Closure open{};
  bool has_open = false;

  auto flush_group = [&] {
    if (has_open) closures.push_back(open);
    has_open = false;
    has_last_detail = false;
  };

  for (const Item& item : items) {
    if (!in_group || item.target != group_target ||
        item.parent != group_parent) {
      flush_group();
      group_target = item.target;
      group_parent = item.parent;
      in_group = true;
    }
    const EventSpec& spec = *item.spec;
    const TimePoint time = TimePoint::FromMillis(item.time_ms);

    switch (spec.period_kind) {
      case PeriodKind::kLoggedDuration: {
        const Duration d = item.logged_ms >= 0 ? Duration::Millis(item.logged_ms)
                                               : spec.default_duration;
        emit_clamped(item, time - d, time, item.level);
        break;
      }
      case PeriodKind::kWindowed: {
        emit_clamped(item, time - spec.window, time, item.level);
        break;
      }
      case PeriodKind::kStateful: {
        // Among consecutive occurrences of the same detail, keep only the
        // earliest.
        if (has_last_detail && last_detail == item.name) {
          ++s->duplicate_details_dropped;
          break;
        }
        last_detail = item.name;
        has_last_detail = true;

        if (item.is_start) {
          open = Closure{&item, item.time_ms, item.level};
          has_open = true;
        } else {  // end detail
          if (!has_open) {
            ++s->dangling_end_dropped;
            break;
          }
          emit_clamped(*open.item, TimePoint::FromMillis(open.start_ms), time,
                       open.level);
          has_open = false;
        }
        break;
      }
    }
  }
  flush_group();

  // Close unpaired starts at start + expire (clamped to bounds.end).
  std::sort(closures.begin(), closures.end(),
            [](const Closure& a, const Closure& b) {
              return std::tie(a.item->parent, a.item->target) <
                     std::tie(b.item->parent, b.item->target);
            });
  for (const Closure& c : closures) {
    const TimePoint start = TimePoint::FromMillis(c.start_ms);
    TimePoint end = start + c.item->spec->expire_interval;
    if (bounds.has_value() && bounds->end < end) end = bounds->end;
    ++s->unpaired_start_closed;
    emit_clamped(*c.item, start, end, c.level);
  }
}

/// Fleet-wide rollup of the per-call ResolveStats, so statusz shows the
/// same data-quality counters the pipeline aggregates per VM.
void RollUpStats(const ResolveStats& s) {
  static obs::Counter* resolved =
      obs::MetricsRegistry::Global().GetCounter("resolve.events_resolved");
  static obs::Counter* unknown =
      obs::MetricsRegistry::Global().GetCounter("resolve.unknown_dropped");
  static obs::Counter* duplicates = obs::MetricsRegistry::Global().GetCounter(
      "resolve.duplicate_details_dropped");
  static obs::Counter* dangling = obs::MetricsRegistry::Global().GetCounter(
      "resolve.dangling_end_dropped");
  static obs::Counter* unpaired = obs::MetricsRegistry::Global().GetCounter(
      "resolve.unpaired_start_closed");
  resolved->Add(s.resolved);
  unknown->Add(s.unknown_dropped);
  duplicates->Add(s.duplicate_details_dropped);
  dangling->Add(s.dangling_end_dropped);
  unpaired->Add(s.unpaired_start_closed);
}

}  // namespace

PeriodResolver::PeriodResolver(const EventCatalog* catalog)
    : catalog_(catalog) {}

StatusOr<std::vector<ResolvedEvent>> PeriodResolver::Resolve(
    std::vector<RawEvent> raw, std::optional<Interval> bounds,
    ResolveStats* stats) const {
  TRACE_SPAN("resolve.resolve");
  ResolveStats local_stats;
  ResolveStats* s = stats != nullptr ? stats : &local_stats;
  *s = ResolveStats{};

  std::vector<Item> items;
  items.reserve(raw.size());
  for (const RawEvent& ev : raw) {
    auto handle = catalog_->FindHandle(ev.name);
    if (!handle.has_value()) {
      ++s->unknown_dropped;
      continue;
    }
    Item item;
    item.target = ev.target;
    item.parent = handle->spec->name;
    item.name = ev.name;
    item.time_ms = ev.time.millis();
    item.level = ev.level;
    item.spec = handle->spec;
    item.parent_name_id = handle->name_id;
    auto logged = ev.LoggedDuration();
    item.logged_ms = logged.ok() ? logged->millis() : -1;
    item.is_start = handle->spec->period_kind == PeriodKind::kStateful &&
                    ev.name == handle->spec->start_detail;
    items.push_back(item);
  }

  std::vector<ResolvedEvent> out;
  out.reserve(items.size());
  ResolveSorted(items, bounds, s,
                [&out](const Item& item, const Interval& period,
                       Severity level) {
                  out.push_back(ResolvedEvent{
                      .name = item.spec->name,
                      .target = std::string(item.target),
                      .period = period,
                      .level = level,
                      .category = item.spec->category});
                });
  RollUpStats(*s);
  return out;
}

StatusOr<std::vector<ResolvedEventView>> PeriodResolver::ResolveRefs(
    const std::vector<EventRef>& events, std::optional<Interval> bounds,
    ResolveStats* stats) const {
  TRACE_SPAN("resolve.resolve_refs");
  ResolveStats local_stats;
  ResolveStats* s = stats != nullptr ? stats : &local_stats;
  *s = ResolveStats{};

  std::vector<Item> items;
  items.reserve(events.size());
  for (const EventRef& ev : events) {
    // Catalog handles carry GlobalInterner ids; the id fast path is only
    // sound when the ref's rows intern there too (they always do in the
    // pipeline — tests may build standalone EventRows on a private
    // interner, which falls back to name lookup).
    const bool global_ids = ev.rows()->interner() == &GlobalInterner();
    std::optional<EventCatalog::SpecHandle> handle =
        global_ids ? catalog_->FindHandleById(ev.name_id()) : std::nullopt;
    if (!handle.has_value()) handle = catalog_->FindHandle(ev.name());
    if (!handle.has_value()) {
      ++s->unknown_dropped;
      continue;
    }
    Item item;
    item.target = ev.target();
    item.parent = handle->spec->name;
    item.name = ev.name();
    item.time_ms = ev.time_ms();
    item.level = ev.level();
    item.spec = handle->spec;
    item.parent_name_id = handle->name_id;
    item.target_id = ev.target_id();
    item.logged_ms = ev.LoggedDurationMsOrNeg();
    item.is_start =
        handle->spec->period_kind == PeriodKind::kStateful &&
        (global_ids ? ev.name_id() == handle->start_detail_id
                    : ev.name() == handle->spec->start_detail);
    items.push_back(item);
  }

  std::vector<ResolvedEventView> out;
  out.reserve(items.size());
  ResolveSorted(items, bounds, s,
                [&out](const Item& item, const Interval& period,
                       Severity level) {
                  out.push_back(ResolvedEventView{
                      .name_id = item.parent_name_id,
                      .target_id = item.target_id,
                      .period = period,
                      .level = level,
                      .category = item.spec->category});
                });
  RollUpStats(*s);
  return out;
}

}  // namespace cdibot
