#include "event/event.h"

#include <cstdlib>

#include "common/strings.h"

namespace cdibot {

std::string_view StabilityCategoryToString(StabilityCategory c) {
  switch (c) {
    case StabilityCategory::kUnavailability:
      return "unavailability";
    case StabilityCategory::kPerformance:
      return "performance";
    case StabilityCategory::kControlPlane:
      return "control_plane";
  }
  return "unknown";
}

StatusOr<StabilityCategory> StabilityCategoryFromString(std::string_view s) {
  if (s == "unavailability") return StabilityCategory::kUnavailability;
  if (s == "performance") return StabilityCategory::kPerformance;
  if (s == "control_plane") return StabilityCategory::kControlPlane;
  return Status::InvalidArgument("unknown stability category: " +
                                 std::string(s));
}

std::string_view SeverityToString(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kCritical:
      return "critical";
    case Severity::kFatal:
      return "fatal";
  }
  return "unknown";
}

StatusOr<Severity> SeverityFromString(std::string_view s) {
  if (s == "info") return Severity::kInfo;
  if (s == "warning") return Severity::kWarning;
  if (s == "critical") return Severity::kCritical;
  if (s == "fatal") return Severity::kFatal;
  return Status::InvalidArgument("unknown severity: " + std::string(s));
}

StatusOr<Duration> RawEvent::LoggedDuration() const {
  auto it = attrs.find("duration_ms");
  if (it == attrs.end()) {
    return Status::NotFound("event has no duration_ms attribute");
  }
  char* end = nullptr;
  const long long ms = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0' || ms < 0) {
    return Status::InvalidArgument("bad duration_ms: " + it->second);
  }
  return Duration::Millis(ms);
}

std::string RawEvent::ToString() const {
  return StrFormat("RawEvent{%s @ %s on %s, level=%s}", name.c_str(),
                   time.ToString().c_str(), target.c_str(),
                   std::string(SeverityToString(level)).c_str());
}

std::string ResolvedEvent::ToString() const {
  return StrFormat("ResolvedEvent{%s on %s, %s, level=%s, cat=%s}",
                   name.c_str(), target.c_str(), period.ToString().c_str(),
                   std::string(SeverityToString(level)).c_str(),
                   std::string(StabilityCategoryToString(category)).c_str());
}

}  // namespace cdibot
