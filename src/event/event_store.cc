#include "event/event_store.h"

#include <algorithm>

namespace cdibot {
namespace {

bool Matches(const RawEvent& ev, const EventQuery& q) {
  if (q.time_range.has_value() && !q.time_range->Contains(ev.time)) {
    return false;
  }
  if (!q.target.empty() && ev.target != q.target) return false;
  if (!q.name.empty() && ev.name != q.name) return false;
  if (q.min_level.has_value() && ev.level < *q.min_level) return false;
  return true;
}

void SortByTime(std::vector<RawEvent>* events) {
  std::stable_sort(events->begin(), events->end(),
                   [](const RawEvent& a, const RawEvent& b) {
                     return a.time < b.time;
                   });
}

}  // namespace

void EventStore::Append(RawEvent event) {
  by_target_[event.target].push_back(events_.size());
  events_.push_back(std::move(event));
}

void EventStore::AppendBatch(std::vector<RawEvent> events) {
  events_.reserve(events_.size() + events.size());
  for (auto& ev : events) Append(std::move(ev));
}

std::vector<RawEvent> EventStore::Query(const EventQuery& query) const {
  std::vector<RawEvent> out;
  if (!query.target.empty()) {
    auto it = by_target_.find(query.target);
    if (it == by_target_.end()) return out;
    for (size_t idx : it->second) {
      if (Matches(events_[idx], query)) out.push_back(events_[idx]);
    }
  } else {
    for (const RawEvent& ev : events_) {
      if (Matches(ev, query)) out.push_back(ev);
    }
  }
  SortByTime(&out);
  return out;
}

std::vector<RawEvent> EventStore::ForTarget(const std::string& target) const {
  std::vector<RawEvent> out;
  auto it = by_target_.find(target);
  if (it == by_target_.end()) return out;
  out.reserve(it->second.size());
  for (size_t idx : it->second) out.push_back(events_[idx]);
  SortByTime(&out);
  return out;
}

std::vector<std::string> EventStore::Targets() const {
  std::vector<std::string> out;
  out.reserve(by_target_.size());
  for (const auto& [target, _] : by_target_) out.push_back(target);
  std::sort(out.begin(), out.end());
  return out;
}

std::unordered_map<std::string, size_t> EventStore::CountsByName() const {
  std::unordered_map<std::string, size_t> out;
  for (const RawEvent& ev : events_) ++out[ev.name];
  return out;
}

void EventStore::Clear() {
  events_.clear();
  by_target_.clear();
}

}  // namespace cdibot
