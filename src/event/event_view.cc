#include "event/event_view.h"

#include <cstdlib>

namespace cdibot {
namespace {

const std::map<std::string, std::string>& EmptyAttrs() {
  static const std::map<std::string, std::string>* empty =
      new std::map<std::string, std::string>();
  return *empty;
}

/// Parses `s` as a canonical non-negative duration_ms value: the full
/// string must parse, the value must be >= 0, and printing it back must
/// reproduce `s` exactly (no leading zeros, no '+', no whitespace). Only
/// then can the column encoding round-trip the original attrs map.
bool ParseCanonicalDurationMs(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long long ms = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || ms < 0) return false;
  if (std::to_string(ms) != s) return false;
  *out = static_cast<int64_t>(ms);
  return true;
}

}  // namespace

uint32_t EventRows::Append(const RawEvent& event) {
  const auto row = static_cast<uint32_t>(time_ms_.size());
  time_ms_.push_back(event.time.millis());
  expire_ms_.push_back(event.expire_interval.millis());
  name_id_.push_back(interner_->Intern(event.name));
  target_id_.push_back(interner_->Intern(event.target));
  level_.push_back(static_cast<int32_t>(event.level));

  int64_t dur = -1;
  bool canonical = event.attrs.empty();
  if (!canonical && event.attrs.size() == 1) {
    const auto& [key, value] = *event.attrs.begin();
    canonical = key == "duration_ms" && ParseCanonicalDurationMs(value, &dur);
  }
  if (!canonical) {
    dur = -1;  // overflow rows answer duration questions from the side table
    extra_attrs_.emplace(row, event.attrs);
  }
  duration_ms_.push_back(dur);
  return row;
}

void EventRows::clear() {
  time_ms_.clear();
  expire_ms_.clear();
  duration_ms_.clear();
  name_id_.clear();
  target_id_.clear();
  level_.clear();
  extra_attrs_.clear();
}

const std::map<std::string, std::string>& EventRows::extra_attrs(
    uint32_t row) const {
  auto it = extra_attrs_.find(row);
  return it == extra_attrs_.end() ? EmptyAttrs() : it->second;
}

RawEvent EventRows::Materialize(uint32_t row) const {
  RawEvent ev;
  ev.name = std::string(name(row));
  ev.time = time(row);
  ev.target = std::string(target(row));
  ev.expire_interval = expire_interval(row);
  ev.level = level(row);
  if (has_extra_attrs(row)) {
    ev.attrs = extra_attrs(row);
  } else if (duration_ms_[row] >= 0) {
    ev.attrs.emplace("duration_ms", std::to_string(duration_ms_[row]));
  }
  return ev;
}

StatusOr<Duration> EventRef::LoggedDuration() const {
  if (rows_->has_extra_attrs(row_)) {
    // Overflow row: evaluate against the verbatim attrs, reproducing
    // RawEvent::LoggedDuration exactly (including its error statuses).
    const auto& attrs = rows_->extra_attrs(row_);
    auto it = attrs.find("duration_ms");
    if (it == attrs.end()) {
      return Status::NotFound("event has no duration_ms attribute");
    }
    char* end = nullptr;
    const long long ms = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0' || ms < 0) {
      return Status::InvalidArgument("bad duration_ms: " + it->second);
    }
    return Duration::Millis(ms);
  }
  const int64_t dur = rows_->duration_ms(row_);
  if (dur < 0) {
    return Status::NotFound("event has no duration_ms attribute");
  }
  return Duration::Millis(dur);
}

int64_t EventRef::LoggedDurationMsOrNeg() const {
  if (rows_->has_extra_attrs(row_)) {
    const auto& attrs = rows_->extra_attrs(row_);
    auto it = attrs.find("duration_ms");
    if (it == attrs.end()) return -1;
    char* end = nullptr;
    const long long ms = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0' || ms < 0) return -1;
    return static_cast<int64_t>(ms);
  }
  return rows_->duration_ms(row_);
}

}  // namespace cdibot
