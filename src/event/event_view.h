#ifndef CDIBOT_EVENT_EVENT_VIEW_H_
#define CDIBOT_EVENT_EVENT_VIEW_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/statusor.h"
#include "common/time.h"
#include "event/event.h"

namespace cdibot {

class EventRef;

/// EventRows is the owning SoA container of the zero-copy data plane: one
/// raw event per row, fields split into parallel columns (times, levels,
/// expirations, durations, interned name/target ids). An EventLog partition
/// and a streaming VM's retention buffer are EventRows; EventRef/EventSpan
/// are non-owning views into them.
///
/// Attrs handling: the overwhelmingly common attrs shapes — empty, or
/// exactly {"duration_ms": "<canonical non-negative integer>"} — are fully
/// encoded in the duration column. Any other shape (extra keys,
/// unparseable or non-canonical duration strings) keeps its original map
/// verbatim in a side table keyed by row, so Materialize() reproduces the
/// appended RawEvent bit-for-bit and malformed-duration semantics
/// (quarantine reason kBadDurationAttr) survive the columnar encoding.
class EventRows {
 public:
  /// `interner` must outlive the container. Defaults to the process-wide
  /// interner, which every data-plane structure shares so ids compare
  /// across containers.
  explicit EventRows(StringInterner* interner = &GlobalInterner())
      : interner_(interner) {}

  /// Appends one event; interns its name and target. Returns the row index.
  uint32_t Append(const RawEvent& event);

  size_t size() const { return time_ms_.size(); }
  bool empty() const { return time_ms_.empty(); }
  void clear();

  // Column accessors (row must be < size()).
  int64_t time_ms(uint32_t row) const { return time_ms_[row]; }
  TimePoint time(uint32_t row) const {
    return TimePoint::FromMillis(time_ms_[row]);
  }
  uint32_t name_id(uint32_t row) const { return name_id_[row]; }
  uint32_t target_id(uint32_t row) const { return target_id_[row]; }
  int32_t level_ordinal(uint32_t row) const { return level_[row]; }
  Severity level(uint32_t row) const {
    return static_cast<Severity>(level_[row]);
  }
  int64_t expire_ms(uint32_t row) const { return expire_ms_[row]; }
  Duration expire_interval(uint32_t row) const {
    return Duration::Millis(expire_ms_[row]);
  }
  /// Canonical logged duration in ms; -1 when the row has none (or the
  /// row's attrs overflowed — consult has_extra_attrs()).
  int64_t duration_ms(uint32_t row) const { return duration_ms_[row]; }
  /// True when the row's attrs did not fit the canonical encoding and live
  /// in the side table.
  bool has_extra_attrs(uint32_t row) const {
    return !extra_attrs_.empty() && extra_attrs_.count(row) > 0;
  }
  /// The side-table attrs of an overflow row (empty map for canonical rows).
  const std::map<std::string, std::string>& extra_attrs(uint32_t row) const;

  std::string_view name(uint32_t row) const {
    return interner_->NameOf(name_id_[row]);
  }
  std::string_view target(uint32_t row) const {
    return interner_->NameOf(target_id_[row]);
  }

  /// Reconstructs the RawEvent exactly as appended (cold path: export,
  /// checkpointing, quarantine samples).
  RawEvent Materialize(uint32_t row) const;

  const StringInterner* interner() const { return interner_; }

 private:
  std::vector<int64_t> time_ms_;
  std::vector<int64_t> expire_ms_;
  std::vector<int64_t> duration_ms_;
  std::vector<uint32_t> name_id_;
  std::vector<uint32_t> target_id_;
  std::vector<int32_t> level_;
  /// Rows whose attrs are not canonically encodable, verbatim.
  std::unordered_map<uint32_t, std::map<std::string, std::string>>
      extra_attrs_;
  StringInterner* interner_;
};

/// Non-owning reference to one row of an EventRows — the zero-copy stand-in
/// for `const RawEvent&` on the hot path. Valid while the underlying
/// EventRows exists and is not cleared; appends do not invalidate refs.
class EventRef {
 public:
  EventRef() = default;
  EventRef(const EventRows* rows, uint32_t row) : rows_(rows), row_(row) {}

  std::string_view name() const { return rows_->name(row_); }
  std::string_view target() const { return rows_->target(row_); }
  uint32_t name_id() const { return rows_->name_id(row_); }
  uint32_t target_id() const { return rows_->target_id(row_); }
  TimePoint time() const { return rows_->time(row_); }
  int64_t time_ms() const { return rows_->time_ms(row_); }
  Severity level() const { return rows_->level(row_); }
  int32_t level_ordinal() const { return rows_->level_ordinal(row_); }
  Duration expire_interval() const { return rows_->expire_interval(row_); }
  int64_t expire_ms() const { return rows_->expire_ms(row_); }
  bool has_extra_attrs() const { return rows_->has_extra_attrs(row_); }

  /// Mirrors RawEvent::LoggedDuration exactly: NotFound when the event has
  /// no duration_ms attribute, InvalidArgument when it has one that does
  /// not parse as a non-negative integer.
  StatusOr<Duration> LoggedDuration() const;

  /// Allocation-free form for the resolver hot path: the logged duration
  /// in ms when the event carries a valid duration_ms attribute, -1
  /// otherwise (absent, unparseable, or negative) — exactly the cases
  /// where resolution falls back to the spec default.
  int64_t LoggedDurationMsOrNeg() const;

  RawEvent Materialize() const { return rows_->Materialize(row_); }

  const EventRows* rows() const { return rows_; }
  uint32_t row() const { return row_; }

 private:
  const EventRows* rows_ = nullptr;
  uint32_t row_ = 0;
};

/// EventSpan is the result of an EventLog query: an ordered list of row
/// segments (whole partitions or per-target row-index lists) plus a time
/// filter applied during iteration. It never copies event data — iterating
/// yields EventRefs into the log's own partitions.
///
/// Validity: a span borrows from the log (or retention buffer) it was cut
/// from and stays valid until that container is mutated. Appending to an
/// EventLog may add rows a previously cut span will not see and may
/// reallocate per-target index vectors; cut spans immediately before use.
class EventSpan {
 public:
  struct Segment {
    const EventRows* rows = nullptr;
    /// Row indices of the segment; nullptr means the contiguous range
    /// [first, last) of `rows`.
    const uint32_t* indices = nullptr;
    uint32_t first = 0;
    uint32_t last = 0;

    uint32_t count() const { return last - first; }
    uint32_t row_at(uint32_t i) const {
      return indices != nullptr ? indices[i] : first + i;
    }
  };

  EventSpan() = default;
  /// A span whose iteration only yields events with time in `filter`.
  explicit EventSpan(const Interval& filter)
      : filter_(filter), has_filter_(true) {}

  void AddSegment(const Segment& seg) {
    if (seg.count() == 0) return;
    if (n_inline_ < kInlineSegments) {
      inline_[n_inline_++] = seg;
    } else {
      overflow_.push_back(seg);
    }
  }

  size_t segment_count() const { return n_inline_ + overflow_.size(); }
  const Segment& segment(size_t i) const {
    return i < n_inline_ ? inline_[i] : overflow_[i - n_inline_];
  }

  /// Sum of segment sizes before time filtering — an upper bound on the
  /// number of refs iteration yields, for reserve().
  size_t UpperBound() const {
    size_t n = 0;
    for (size_t i = 0; i < segment_count(); ++i) n += segment(i).count();
    return n;
  }

  bool empty() const { return segment_count() == 0; }

  /// Calls `fn(const EventRef&)` for every event passing the time filter,
  /// in segment order then segment-internal order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t s = 0; s < segment_count(); ++s) {
      const Segment& seg = segment(s);
      for (uint32_t i = 0; i < seg.count(); ++i) {
        const uint32_t row = seg.row_at(i);
        if (has_filter_) {
          const int64_t t = seg.rows->time_ms(row);
          if (t < filter_.start.millis() || t >= filter_.end.millis()) {
            continue;
          }
        }
        fn(EventRef(seg.rows, row));
      }
    }
  }

  /// Materializes every ref passing the filter (compat/cold paths only).
  std::vector<RawEvent> MaterializeAll() const {
    std::vector<RawEvent> out;
    out.reserve(UpperBound());
    ForEach([&out](const EventRef& ev) { out.push_back(ev.Materialize()); });
    return out;
  }

  bool has_filter() const { return has_filter_; }
  const Interval& filter() const { return filter_; }

 private:
  /// A daily job query for one VM rarely touches more than a few daily
  /// partitions, so segments live inline and cutting a span allocates
  /// nothing.
  static constexpr size_t kInlineSegments = 8;
  std::array<Segment, kInlineSegments> inline_ = {};
  size_t n_inline_ = 0;
  std::vector<Segment> overflow_;
  Interval filter_;
  bool has_filter_ = false;
};

/// The view counterpart of ResolvedEvent: interned ids instead of owned
/// strings. Produced by PeriodResolver::ResolveSpan on the hot path.
struct ResolvedEventView {
  uint32_t name_id = StringInterner::kInvalidId;
  uint32_t target_id = StringInterner::kInvalidId;
  Interval period;
  Severity level = Severity::kWarning;
  StabilityCategory category = StabilityCategory::kPerformance;
};

/// The view counterpart of WeightedEvent — the (t_s, t_e, w) triple of
/// Sec. IV-A with the drill-down name carried as an interned id.
struct WeightedEventView {
  Interval period;
  double weight = 0.0;
  uint32_t name_id = StringInterner::kInvalidId;
  StabilityCategory category = StabilityCategory::kPerformance;
};

}  // namespace cdibot

#endif  // CDIBOT_EVENT_EVENT_VIEW_H_
