#ifndef CDIBOT_EVENT_OVERRIDES_H_
#define CDIBOT_EVENT_OVERRIDES_H_

#include <optional>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "event/catalog.h"

namespace cdibot {

/// A per-scenario adjustment to one event's catalog spec — the
/// configuration mechanism of Sec. VIII-A: "though our existing events are
/// designed for generic use cases, they can be customized for particular
/// scenarios via configuration adjustment. For example, due to the
/// sensitivity to network fluctuations, Redis instances might necessitate
/// a higher warning level."
struct EventOverride {
  std::string event_name;
  /// New default severity, when set.
  std::optional<Severity> level;
  /// New detection window (windowed events only), when set.
  std::optional<Duration> window;
  /// New expiration interval, when set.
  std::optional<Duration> expire_interval;
};

/// Returns a copy of `base` with the overrides applied. Fails with NotFound
/// for unknown events and InvalidArgument for a window override on a
/// non-windowed event.
StatusOr<EventCatalog> ApplyOverrides(
    const EventCatalog& base, const std::vector<EventOverride>& overrides);

}  // namespace cdibot

#endif  // CDIBOT_EVENT_OVERRIDES_H_
