#include "event/overrides.h"

#include <map>

namespace cdibot {

StatusOr<EventCatalog> ApplyOverrides(
    const EventCatalog& base, const std::vector<EventOverride>& overrides) {
  // Index overrides; validate against the base catalog.
  std::map<std::string, const EventOverride*> by_name;
  for (const EventOverride& ov : overrides) {
    CDIBOT_ASSIGN_OR_RETURN(const EventSpec spec, base.Find(ov.event_name));
    if (spec.name != ov.event_name) {
      return Status::InvalidArgument(
          "override must target the parent event, not a detail: " +
          ov.event_name);
    }
    if (ov.window.has_value() && spec.period_kind != PeriodKind::kWindowed) {
      return Status::InvalidArgument(
          "window override on non-windowed event: " + ov.event_name);
    }
    if (ov.window.has_value() && ov.window->millis() <= 0) {
      return Status::InvalidArgument("window must be positive: " +
                                     ov.event_name);
    }
    if (ov.expire_interval.has_value() &&
        ov.expire_interval->millis() <= 0) {
      return Status::InvalidArgument("expire_interval must be positive: " +
                                     ov.event_name);
    }
    by_name[ov.event_name] = &ov;
  }

  EventCatalog out;
  for (EventSpec spec : base.specs()) {
    auto it = by_name.find(spec.name);
    if (it != by_name.end()) {
      const EventOverride& ov = *it->second;
      if (ov.level.has_value()) spec.default_level = *ov.level;
      if (ov.window.has_value()) spec.window = *ov.window;
      if (ov.expire_interval.has_value()) {
        spec.expire_interval = *ov.expire_interval;
      }
    }
    CDIBOT_RETURN_IF_ERROR(out.Register(std::move(spec)));
  }
  return out;
}

}  // namespace cdibot
