#include "event/catalog.h"

namespace cdibot {

Status EventCatalog::Register(EventSpec spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("event spec must have a name");
  }
  if (index_.count(spec.name) > 0) {
    return Status::AlreadyExists("event already registered: " + spec.name);
  }
  if (spec.period_kind == PeriodKind::kStateful) {
    if (spec.start_detail.empty() || spec.end_detail.empty()) {
      return Status::InvalidArgument(
          "stateful event needs start_detail and end_detail: " + spec.name);
    }
    if (index_.count(spec.start_detail) > 0 ||
        index_.count(spec.end_detail) > 0) {
      return Status::AlreadyExists("detail name already registered for " +
                                   spec.name);
    }
  }
  const size_t idx = specs_.size();
  index_[spec.name] = idx;
  // Intern every name the spec answers to, so the view-path resolver can
  // go from an event's interned name id straight to its spec.
  SpecIds ids;
  ids.name_id = GlobalInterner().Intern(spec.name);
  id_index_[ids.name_id] = idx;
  if (spec.period_kind == PeriodKind::kStateful) {
    index_[spec.start_detail] = idx;
    index_[spec.end_detail] = idx;
    ids.start_detail_id = GlobalInterner().Intern(spec.start_detail);
    ids.end_detail_id = GlobalInterner().Intern(spec.end_detail);
    id_index_[ids.start_detail_id] = idx;
    id_index_[ids.end_detail_id] = idx;
  }
  ids_.push_back(ids);
  specs_.push_back(std::move(spec));
  return Status::OK();
}

StatusOr<EventSpec> EventCatalog::Find(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("unknown event: " + name);
  }
  return specs_[it->second];
}

std::optional<EventCatalog::SpecHandle> EventCatalog::FindHandle(
    std::string_view name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return HandleAt(it->second);
}

std::optional<EventCatalog::SpecHandle> EventCatalog::FindHandleById(
    uint32_t name_id) const {
  auto it = id_index_.find(name_id);
  if (it == id_index_.end()) return std::nullopt;
  return HandleAt(it->second);
}

bool EventCatalog::Contains(const std::string& name) const {
  return index_.count(name) > 0;
}

EventCatalog EventCatalog::BuiltIn() {
  EventCatalog catalog;
  auto add = [&catalog](EventSpec spec) {
    Status st = catalog.Register(std::move(spec));
    (void)st;  // BuiltIn specs are disjoint by construction.
  };

  const auto u = StabilityCategory::kUnavailability;
  const auto p = StabilityCategory::kPerformance;
  const auto c = StabilityCategory::kControlPlane;

  // --- Unavailability events (CDI-U) ---------------------------------------
  // VM crashed; detected per 1-minute liveness window.
  add({.name = "vm_crash", .category = u, .default_level = Severity::kFatal,
       .period_kind = PeriodKind::kWindowed, .window = Duration::Minutes(1)});
  // VM stalled / unresponsive (Fig. 1 mentions vm_hang).
  add({.name = "vm_hang", .category = u, .default_level = Severity::kFatal,
       .period_kind = PeriodKind::kWindowed, .window = Duration::Minutes(1)});
  // Host (NC) down takes every resident VM down; emitted per VM.
  add({.name = "nc_down", .category = u, .default_level = Severity::kFatal,
       .period_kind = PeriodKind::kWindowed, .window = Duration::Minutes(1)});
  // Planned in-place reboot: impact duration is known and logged.
  add({.name = "vm_reboot", .category = u, .default_level = Severity::kCritical,
       .period_kind = PeriodKind::kLoggedDuration,
       .default_duration = Duration::Minutes(2)});
  // DDoS blackholing makes the VM unreachable; stateful add/del pair from the
  // security team (Sec. IV-B2 / Example 2).
  add({.name = "ddos_blackhole", .category = u,
       .default_level = Severity::kFatal,
       .period_kind = PeriodKind::kStateful,
       .start_detail = "ddos_blackhole_add",
       .end_detail = "ddos_blackhole_del"});
  // Encrypted cloud-disk unavailability (Case 2 data-plane symptom).
  add({.name = "disk_unavailable", .category = u,
       .default_level = Severity::kFatal,
       .period_kind = PeriodKind::kWindowed, .window = Duration::Minutes(1)});

  // --- Performance events (CDI-P) ------------------------------------------
  // Cloud-disk read latency above threshold; 1-minute detection window
  // (Fig. 1, Table IV).
  add({.name = "slow_io", .category = p, .default_level = Severity::kCritical,
       .period_kind = PeriodKind::kWindowed, .window = Duration::Minutes(1)});
  // Network packet loss (Table IV, weight 0.3 example).
  add({.name = "packet_loss", .category = p,
       .default_level = Severity::kWarning,
       .period_kind = PeriodKind::kWindowed, .window = Duration::Minutes(1)});
  // vCPU steal/contention above threshold (Table IV, Case 5).
  add({.name = "vcpu_high", .category = p,
       .default_level = Severity::kCritical,
       .period_kind = PeriodKind::kWindowed, .window = Duration::Minutes(1)});
  // NIC link flapping from host logs (Example 1).
  add({.name = "nic_flapping", .category = p,
       .default_level = Severity::kCritical,
       .period_kind = PeriodKind::kWindowed, .window = Duration::Minutes(1)});
  // QEMU live upgrade; logs the pause in milliseconds (Sec. IV-B1).
  add({.name = "qemu_live_upgrade", .category = p,
       .default_level = Severity::kWarning,
       .period_kind = PeriodKind::kLoggedDuration,
       .default_duration = Duration::Millis(500)});
  // Live migration of the VM itself causes a brief brown-out.
  add({.name = "live_migration", .category = p,
       .default_level = Severity::kWarning,
       .period_kind = PeriodKind::kLoggedDuration,
       .default_duration = Duration::Seconds(2)});
  // Scheduling data error left the VM without exclusive cores (Case 6).
  add({.name = "vm_allocation_failed", .category = p,
       .default_level = Severity::kCritical,
       .period_kind = PeriodKind::kWindowed, .window = Duration::Minutes(5)});
  // CPU power reached TDP; frequency throttling risk (Case 7).
  add({.name = "inspect_cpu_power_tdp", .category = p,
       .default_level = Severity::kWarning,
       .period_kind = PeriodKind::kWindowed, .window = Duration::Minutes(5)});
  // GPU dropped from the passthrough VM: major compute loss (Sec. IV-C).
  add({.name = "gpu_drop", .category = p, .default_level = Severity::kFatal,
       .period_kind = PeriodKind::kWindowed, .window = Duration::Minutes(1)});
  // Memory bandwidth contention on shared hosts.
  add({.name = "mem_bw_contention", .category = p,
       .default_level = Severity::kWarning,
       .period_kind = PeriodKind::kWindowed, .window = Duration::Minutes(1)});

  // --- Control-plane events (CDI-C) -----------------------------------------
  // Management-operation failures (Definition 1 / Sec. IV-A examples).
  for (const char* name :
       {"vm_start_failed", "vm_stop_failed", "vm_release_failed",
        "vm_resize_failed", "vm_create_failed"}) {
    add({.name = name, .category = c, .default_level = Severity::kCritical,
         .period_kind = PeriodKind::kWindowed,
         .window = Duration::Minutes(5)});
  }
  // Management API errors / console login failures / metric loss (Case 2).
  add({.name = "api_error", .category = c,
       .default_level = Severity::kCritical,
       .period_kind = PeriodKind::kWindowed, .window = Duration::Minutes(1)});
  add({.name = "console_unavailable", .category = c,
       .default_level = Severity::kCritical,
       .period_kind = PeriodKind::kWindowed, .window = Duration::Minutes(1)});
  add({.name = "monitoring_loss", .category = c,
       .default_level = Severity::kWarning,
       .period_kind = PeriodKind::kWindowed, .window = Duration::Minutes(1)});

  // --- Informational events that feed rules but not the CDI directly -------
  // IDC ticket: network cable repaired (Fig. 1). Modeled as a zero-damage
  // informational performance event.
  add({.name = "net_cable_repaired", .category = p,
       .default_level = Severity::kInfo,
       .period_kind = PeriodKind::kLoggedDuration,
       .default_duration = Duration::Millis(0)});

  return catalog;
}

}  // namespace cdibot
