#ifndef CDIBOT_EVENT_CATALOG_H_
#define CDIBOT_EVENT_CATALOG_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/statusor.h"
#include "common/time.h"
#include "event/event.h"

namespace cdibot {

/// How an event's period is derived (Sec. IV-B).
enum class PeriodKind : int {
  /// Stateless event whose impact duration is measured and logged by the
  /// extractor (e.g. qemu_live_upgrade logs milliseconds): the event's
  /// timestamp is the end time and start = end - logged duration.
  kLoggedDuration = 0,
  /// Stateless event extracted per detection window (e.g. slow_io, checked
  /// each minute): duration approximated by the window size; a persistently
  /// compromised VM emits consecutive events covering consecutive windows.
  kWindowed = 1,
  /// Stateful event represented by paired detail events from other teams
  /// (e.g. ddos_blackhole = ddos_blackhole_add .. ddos_blackhole_del).
  kStateful = 2,
};

/// Static description of one event name: which CDI sub-metric it feeds,
/// default expert severity, expiration, and how to resolve its period.
struct EventSpec {
  std::string name;
  StabilityCategory category = StabilityCategory::kPerformance;
  Severity default_level = Severity::kWarning;
  Duration expire_interval = Duration::Hours(24);
  PeriodKind period_kind = PeriodKind::kWindowed;
  /// Detection window for kWindowed events.
  Duration window = Duration::Minutes(1);
  /// Fallback duration for kLoggedDuration events missing the attribute.
  Duration default_duration = Duration::Minutes(1);
  /// Names of the start/end detail events for kStateful events.
  std::string start_detail;
  std::string end_detail;
};

/// EventCatalog is the registry of known event names. The Event Extractor
/// stamps events from catalog defaults; the PeriodResolver and CDI pipeline
/// consult it to classify and resolve each event. A catalog is immutable
/// once built and safe for concurrent reads.
class EventCatalog {
 public:
  EventCatalog() = default;

  /// Registers a spec. Fails with AlreadyExists on duplicate names (including
  /// a stateful spec's detail names, which are also reserved).
  Status Register(EventSpec spec);

  /// Looks up the spec for `name`. For stateful events, detail names
  /// (start/end) resolve to their parent spec.
  StatusOr<EventSpec> Find(const std::string& name) const;

  /// A borrowed, allocation-free view of one registered spec together with
  /// its interned ids (GlobalInterner): the parent name id plus the
  /// start/end detail ids for stateful specs (kInvalidId otherwise). The
  /// spec pointer is valid until the next Register — catalogs are
  /// immutable once built, so in practice for the catalog's lifetime.
  struct SpecHandle {
    const EventSpec* spec = nullptr;
    uint32_t name_id = StringInterner::kInvalidId;
    uint32_t start_detail_id = StringInterner::kInvalidId;
    uint32_t end_detail_id = StringInterner::kInvalidId;
  };

  /// Zero-copy lookup by name (parent or stateful detail). nullopt for
  /// unknown names.
  std::optional<SpecHandle> FindHandle(std::string_view name) const;

  /// Zero-copy lookup by interned name id (parent or stateful detail).
  /// nullopt for ids that name no registered spec.
  std::optional<SpecHandle> FindHandleById(uint32_t name_id) const;

  bool Contains(const std::string& name) const;

  /// All registered (parent) specs, in registration order.
  const std::vector<EventSpec>& specs() const { return specs_; }

  /// Builds the default catalog covering every event named in the paper
  /// (Fig. 1, Table IV, Cases 1–8) plus the control-plane operation events.
  static EventCatalog BuiltIn();

 private:
  // Transparent hashing so FindHandle(string_view) never materializes a
  // std::string for the lookup key.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  /// Interned ids of specs_[i]'s names, parallel to specs_.
  struct SpecIds {
    uint32_t name_id = StringInterner::kInvalidId;
    uint32_t start_detail_id = StringInterner::kInvalidId;
    uint32_t end_detail_id = StringInterner::kInvalidId;
  };

  SpecHandle HandleAt(size_t idx) const {
    return SpecHandle{&specs_[idx], ids_[idx].name_id,
                      ids_[idx].start_detail_id, ids_[idx].end_detail_id};
  }

  std::vector<EventSpec> specs_;
  std::vector<SpecIds> ids_;
  // Maps both parent names and stateful detail names to indexes in specs_.
  std::unordered_map<std::string, size_t, StringHash, std::equal_to<>> index_;
  // Same mapping keyed by interned name id, for the view-path resolver.
  std::unordered_map<uint32_t, size_t> id_index_;
};

}  // namespace cdibot

#endif  // CDIBOT_EVENT_CATALOG_H_
