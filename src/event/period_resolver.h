#ifndef CDIBOT_EVENT_PERIOD_RESOLVER_H_
#define CDIBOT_EVENT_PERIOD_RESOLVER_H_

#include <optional>
#include <vector>

#include "common/statusor.h"
#include "common/time.h"
#include "event/catalog.h"
#include "event/event.h"
#include "event/event_view.h"

namespace cdibot {

/// Counters describing what a Resolve() call did with its input; used by the
/// pipeline for data-quality monitoring (the paper's Case 7 motivates
/// watching for silently dropped or zeroed data).
struct ResolveStats {
  size_t resolved = 0;
  /// Raw events whose name is not in the catalog (dropped).
  size_t unknown_dropped = 0;
  /// Consecutive duplicate stateful detail events (Sec. IV-B2 keeps only the
  /// earliest of a run; Example 2 drops the add at t3 and the del at t5).
  size_t duplicate_details_dropped = 0;
  /// End details with no preceding start detail (dirty data, dropped).
  size_t dangling_end_dropped = 0;
  /// Start details with no subsequent end; closed at start + expire_interval
  /// (clamped to the analysis bounds when provided).
  size_t unpaired_start_closed = 0;

  /// Folds another counter set in (fleet rollup of per-VM resolutions).
  void Merge(const ResolveStats& o) {
    resolved += o.resolved;
    unknown_dropped += o.unknown_dropped;
    duplicate_details_dropped += o.duplicate_details_dropped;
    dangling_end_dropped += o.dangling_end_dropped;
    unpaired_start_closed += o.unpaired_start_closed;
  }
};

/// PeriodResolver implements Sec. IV-B: it converts raw extraction-timestamp
/// events into ResolvedEvents with a [start, end) period.
///
///  * kLoggedDuration events end at their timestamp and start
///    `duration_ms` (or the spec's default) earlier.
///  * kWindowed events end at their timestamp and start one detection window
///    earlier; consecutive emissions naturally tile a persistent issue.
///  * kStateful events pair a start detail with the nearest subsequent end
///    detail per (event, target); within a run of identical consecutive
///    details only the earliest is kept (Example 2).
///
/// The resolver is stateless and safe for concurrent use.
class PeriodResolver {
 public:
  /// `catalog` must outlive the resolver.
  explicit PeriodResolver(const EventCatalog* catalog);

  /// Resolves a batch of raw events (any mix of targets and names; order
  /// does not matter — events are sorted internally). When `bounds` is
  /// given, resolved periods are clamped into it and events that fall
  /// entirely outside are dropped; unpaired stateful starts are closed at
  /// min(start + expire, bounds.end).
  StatusOr<std::vector<ResolvedEvent>> Resolve(
      std::vector<RawEvent> raw,
      std::optional<Interval> bounds = std::nullopt,
      ResolveStats* stats = nullptr) const;

  /// The zero-copy counterpart of Resolve: consumes non-owning refs into
  /// SoA event storage and produces interned-id views. Both entry points
  /// run the identical resolution core (same sort key, same dedup/pairing,
  /// same emission order), so for the same events they produce the same
  /// periods in the same order — the bit-identity the batch<->stream
  /// equivalence suite pins.
  StatusOr<std::vector<ResolvedEventView>> ResolveRefs(
      const std::vector<EventRef>& events,
      std::optional<Interval> bounds = std::nullopt,
      ResolveStats* stats = nullptr) const;

 private:
  const EventCatalog* catalog_;
};

}  // namespace cdibot

#endif  // CDIBOT_EVENT_PERIOD_RESOLVER_H_
