#ifndef CDIBOT_EVENT_EVENT_H_
#define CDIBOT_EVENT_EVENT_H_

#include <map>
#include <string>
#include <string_view>

#include "common/statusor.h"
#include "common/time.h"

namespace cdibot {

/// The three stability-issue categories of Definition 1 in the paper. Every
/// event belongs to exactly one category, and the CDI splits into one
/// sub-metric per category (Sec. IV-A).
enum class StabilityCategory : int {
  kUnavailability = 0,  ///< VM cannot provide compute at all (CDI-U).
  kPerformance = 1,     ///< VM available but below expectation (CDI-P).
  kControlPlane = 2,    ///< VM cannot be managed: start/stop/resize (CDI-C).
};

inline constexpr int kNumStabilityCategories = 3;

std::string_view StabilityCategoryToString(StabilityCategory c);
StatusOr<StabilityCategory> StabilityCategoryFromString(std::string_view s);

/// Expert-assigned severity levels in increasing order (Sec. IV-C uses
/// m = 4 levels; Example 3 places "critical" third of four).
enum class Severity : int {
  kInfo = 1,
  kWarning = 2,
  kCritical = 3,
  kFatal = 4,
};

inline constexpr int kNumSeverityLevels = 4;

std::string_view SeverityToString(Severity s);
StatusOr<Severity> SeverityFromString(std::string_view s);

/// A raw CloudBot event as produced by the Event Extractor — the fields of
/// Table II. A raw event is an observation at a single extraction timestamp;
/// the PeriodResolver later turns streams of raw events into ResolvedEvents
/// with a start/end period (Sec. IV-B).
struct RawEvent {
  /// Interpretable event name, e.g. "slow_io". Keys into the EventCatalog.
  std::string name;
  /// Timestamp when the event was extracted.
  TimePoint time;
  /// Target of the event: a VM id or a physical-machine (NC) id.
  std::string target;
  /// Interval between extraction and expiration of the event.
  Duration expire_interval;
  /// Severity determined by the particular conditions of the target; events
  /// with identical names may carry different levels.
  Severity level = Severity::kWarning;
  /// Optional extractor-supplied attributes. A "duration_ms" attribute holds
  /// the measured impact duration for logged-duration events (e.g.
  /// qemu_live_upgrade logs its pause time in milliseconds).
  std::map<std::string, std::string> attrs;

  /// Convenience accessor for the "duration_ms" attribute.
  /// Returns NotFound when absent, InvalidArgument when unparseable.
  StatusOr<Duration> LoggedDuration() const;

  std::string ToString() const;
};

/// An event after period resolution: the (t_s, t_e, w)-ready representation
/// of Sec. IV-A, minus the weight (attached by the weights module). This is
/// the unit Algorithm 1 consumes.
struct ResolvedEvent {
  std::string name;
  std::string target;
  Interval period;
  Severity level = Severity::kWarning;
  StabilityCategory category = StabilityCategory::kPerformance;

  std::string ToString() const;
};

/// A ResolvedEvent with its composite weight (Eq. 3) attached; the exact
/// e = (t_s, t_e, w) triple of Sec. IV-A.
struct WeightedEvent {
  Interval period;
  double weight = 0.0;
  /// Carried through for event-level drill-down (Sec. VI-C).
  std::string name;
  std::string target;
  StabilityCategory category = StabilityCategory::kPerformance;
};

}  // namespace cdibot

#endif  // CDIBOT_EVENT_EVENT_H_
