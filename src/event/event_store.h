#ifndef CDIBOT_EVENT_EVENT_STORE_H_
#define CDIBOT_EVENT_EVENT_STORE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"
#include "common/time.h"
#include "event/event.h"

namespace cdibot {

/// Filter for EventStore queries; unset fields match everything.
struct EventQuery {
  /// Restricts to events extracted within this interval when non-empty.
  std::optional<Interval> time_range;
  /// Restricts to a single target when non-empty.
  std::string target;
  /// Restricts to a single event name when non-empty.
  std::string name;
  /// Minimum severity level (inclusive).
  std::optional<Severity> min_level;
};

/// In-memory raw-event store — the SLS-like short-term layer of Fig. 4 that
/// the daily CDI job reads. Events are appended as extracted and queried by
/// time range, target, and name. Appends keep insertion order; queries return
/// results sorted by extraction time.
///
/// Thread-compatible: concurrent reads are safe once loading has finished.
class EventStore {
 public:
  EventStore() = default;

  /// Appends one event.
  void Append(RawEvent event);

  /// Appends a batch.
  void AppendBatch(std::vector<RawEvent> events);

  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Returns all events matching `query`, sorted by extraction time.
  std::vector<RawEvent> Query(const EventQuery& query) const;

  /// All events for one target, sorted by time (fast path used by the
  /// per-VM CDI computation).
  std::vector<RawEvent> ForTarget(const std::string& target) const;

  /// Distinct targets that have at least one stored event.
  std::vector<std::string> Targets() const;

  /// Number of events per event name (used by the weight module's
  /// ticket-rank inputs and by surge alerting, Sec. II-F2).
  std::unordered_map<std::string, size_t> CountsByName() const;

  /// Drops all events.
  void Clear();

 private:
  std::vector<RawEvent> events_;
  // target -> indexes into events_, in append order.
  std::unordered_map<std::string, std::vector<size_t>> by_target_;
};

}  // namespace cdibot

#endif  // CDIBOT_EVENT_EVENT_STORE_H_
