#ifndef CDIBOT_SHARD_HOST_H_
#define CDIBOT_SHARD_HOST_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "common/statusor.h"
#include "common/time.h"
#include "shard/channel.h"
#include "shard/service.h"
#include "shard/socket_transport.h"
#include "shard/worker.h"
#include "stream/streaming_engine.h"

namespace cdibot::shard {

/// Wraps a freshly connected socket transport; the network chaos layer
/// uses this hook to interpose its fault-injecting decorator between the
/// coordinator and the wire. `shard` identifies the peer so per-shard
/// fault schedules stay deterministic across reconnects.
using SocketDecorator = std::function<std::unique_ptr<Transport>(
    std::unique_ptr<SocketTransport> transport, size_t shard)>;

/// Where one shard's worker lives and how to reach it. The coordinator
/// supervises workers exclusively through this interface, so the session
/// layer (connect, handshake, replay) is identical whether the worker is a
/// thread sharing the address space, a thread behind a Unix socket, or a
/// separate process the kernel can kill -9.
///
/// Lifecycle: hosts start dead; Respawn() launches (or relaunches) the
/// worker; Connect() dials a fresh transport to it; Kill() crashes it
/// (losing all in-memory engine state). Respawn after Kill models the
/// supervisor restarting a failed process.
///
/// Threading: calls on one host are serialized by the coordinator's
/// per-shard handle mutex; Alive() may be called concurrently.
class ShardHost {
 public:
  virtual ~ShardHost() = default;

  /// Launches or relaunches the worker. The worker starts with no engine
  /// (kInit creates it), so a respawned worker is indistinguishable from a
  /// brand-new one — which is the point.
  virtual Status Respawn() = 0;

  /// Dials a new transport to the worker, waiting up to `deadline`. A
  /// worker that has not finished binding yet returns Unavailable
  /// (retryable); callers wrap Connect in the reconnect backoff policy.
  virtual StatusOr<std::unique_ptr<Transport>> Connect(
      const Deadline& deadline) = 0;

  /// Hard-kills the worker, destroying its engine. Idempotent.
  virtual void Kill() = 0;

  virtual bool Alive() = 0;
};

/// The original PR-6 topology: worker thread + in-process channel pair.
/// The pair is created by Respawn() and handed out by the next Connect();
/// a second Connect() without a Respawn() fails FailedPrecondition (an
/// in-process channel cannot be re-dialed — there is no wire to redial).
class InProcessHost final : public ShardHost {
 public:
  InProcessHost(size_t index, const EventCatalog* catalog,
                const EventWeightModel* weights, StreamingCdiOptions options,
                size_t channel_capacity);
  ~InProcessHost() override;

  Status Respawn() override;
  StatusOr<std::unique_ptr<Transport>> Connect(
      const Deadline& deadline) override;
  void Kill() override;
  bool Alive() override;

 private:
  const size_t index_;
  const EventCatalog* catalog_;
  const EventWeightModel* weights_;
  StreamingCdiOptions options_;
  const size_t channel_capacity_;
  std::unique_ptr<ShardWorker> worker_;
  std::unique_ptr<Transport> coordinator_end_;
};

/// A worker thread serving a ShardService over a Unix-domain socket: real
/// wire framing, torn frames, reconnects — without process-spawn cost.
/// Connections can drop and redial while the engine lives on, which is
/// what exercises session *resumption* (vs restore).
class SocketThreadHost final : public ShardHost {
 public:
  SocketThreadHost(size_t index, const EventCatalog* catalog,
                   const EventWeightModel* weights,
                   StreamingCdiOptions options, std::string socket_path,
                   SocketTransportOptions transport_options,
                   SocketDecorator decorator);
  ~SocketThreadHost() override;

  Status Respawn() override;
  StatusOr<std::unique_ptr<Transport>> Connect(
      const Deadline& deadline) override;
  void Kill() override;
  bool Alive() override;

 private:
  const size_t index_;
  const std::string socket_path_;
  const SocketTransportOptions transport_options_;
  const SocketDecorator decorator_;
  std::unique_ptr<ShardService> service_;
  std::unique_ptr<ShardServer> server_;
};

/// A real child process running the shard_worker binary, reachable only
/// through its Unix socket and killable with SIGKILL — the honest failure
/// boundary. Alive() reaps zombies (waitpid WNOHANG) so an externally
/// killed worker reads as dead, not undead.
class ProcessHost final : public ShardHost {
 public:
  ProcessHost(size_t index, std::string binary, std::string socket_path,
              SocketTransportOptions transport_options,
              SocketDecorator decorator);
  ~ProcessHost() override;

  Status Respawn() override;
  StatusOr<std::unique_ptr<Transport>> Connect(
      const Deadline& deadline) override;
  void Kill() override;
  bool Alive() override;

  int pid() const { return pid_; }

 private:
  const size_t index_;
  const std::string binary_;
  const std::string socket_path_;
  const SocketTransportOptions transport_options_;
  const SocketDecorator decorator_;
  int pid_ = -1;
};

}  // namespace cdibot::shard

#endif  // CDIBOT_SHARD_HOST_H_
