#include "shard/worker.h"

#include <utility>

namespace cdibot::shard {

ShardWorker::ShardWorker(size_t index, const EventCatalog* catalog,
                         const EventWeightModel* weights,
                         StreamingCdiOptions options,
                         std::unique_ptr<Transport> transport)
    : index_(index),
      service_(index, catalog, weights, std::move(options)),
      transport_(std::move(transport)) {}

ShardWorker::~ShardWorker() { Kill(); }

void ShardWorker::Start() {
  if (alive_.load(std::memory_order_acquire)) return;
  alive_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
}

void ShardWorker::Kill() {
  if (transport_ != nullptr) transport_->Close();
  if (thread_.joinable()) thread_.join();
  // The crash loses everything in memory: the engine dies with the
  // channel. (Coordinator-side checkpoints + outbox replay rebuild it.)
  service_.ResetEngine();
  alive_.store(false, std::memory_order_release);
}

void ShardWorker::Serve() {
  while (true) {
    auto frame_or = transport_->Recv();
    if (!frame_or.ok()) break;  // channel closed: clean shutdown or kill
    std::string response = service_.Handle(frame_or.value());
    // A failed send means the peer closed mid-request; exit quietly.
    if (!transport_->Send(std::move(response)).ok()) break;
  }
}

}  // namespace cdibot::shard
