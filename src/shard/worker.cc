#include "shard/worker.h"

#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cdibot::shard {

namespace {

struct WorkerMetrics {
  obs::Counter* requests;
  obs::Counter* malformed;
  obs::Histogram* handle_ns;
};

const WorkerMetrics& Metrics() {
  static const WorkerMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    return WorkerMetrics{
        .requests = reg.GetCounter("shard.worker_requests"),
        .malformed = reg.GetCounter("shard.worker_malformed_frames"),
        .handle_ns = reg.GetHistogram("shard.worker_handle_ns"),
    };
  }();
  return m;
}

}  // namespace

ShardWorker::ShardWorker(size_t index, const EventCatalog* catalog,
                         const EventWeightModel* weights,
                         StreamingCdiOptions options,
                         std::unique_ptr<Transport> transport)
    : index_(index),
      catalog_(catalog),
      weights_(weights),
      options_(std::move(options)),
      transport_(std::move(transport)) {}

ShardWorker::~ShardWorker() { Kill(); }

Status ShardWorker::Start() {
  CDIBOT_ASSIGN_OR_RETURN(
      StreamingCdiEngine engine,
      StreamingCdiEngine::Create(catalog_, weights_, options_));
  engine_.emplace(std::move(engine));
  alive_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void ShardWorker::Kill() {
  if (transport_ != nullptr) transport_->Close();
  if (thread_.joinable()) thread_.join();
  // The crash loses everything in memory: the engine dies with the
  // channel. (Coordinator-side checkpoints + outbox replay rebuild it.)
  engine_.reset();
  alive_.store(false, std::memory_order_release);
}

void ShardWorker::Serve() {
  while (true) {
    auto frame_or = transport_->Recv();
    if (!frame_or.ok()) break;  // channel closed: clean shutdown or kill
    Metrics().requests->Increment();
    obs::ScopedTimer timer(Metrics().handle_ns);
    std::string response = Handle(frame_or.value());
    // A failed send means the peer closed mid-request; exit quietly.
    if (!transport_->Send(std::move(response)).ok()) break;
  }
}

std::string ShardWorker::Handle(const std::string& frame) {
  auto req_or = DecodeRequestHeader(frame);
  if (!req_or.ok()) {
    Metrics().malformed->Increment();
    // No parseable request id; echo id 0 so the coordinator's stale-frame
    // draining discards it rather than mistaking it for a live response.
    return EncodeStatusResponse(0, MessageKind::kPing, req_or.status());
  }
  RequestFrame req = std::move(req_or).value();
  WireReader& r = req.reader;
  const auto status_response = [&](const Status& st) {
    return EncodeStatusResponse(req.request_id, req.kind, st);
  };

  switch (req.kind) {
    case MessageKind::kPing: {
      ShardPing ping;
      ping.watermark = engine_->watermark();
      ping.num_vms = engine_->num_vms();
      return EncodePingResponse(req.request_id, ping);
    }
    case MessageKind::kRegisterVm: {
      VmServiceInfo vm = DecodeVmServiceInfo(r);
      if (!r.ok()) break;
      return status_response(engine_->RegisterVm(vm));
    }
    case MessageKind::kIngestBatch: {
      const uint32_t n = r.Count();
      for (uint32_t i = 0; i < n && r.ok(); ++i) {
        const RawEvent ev = DecodeRawEvent(r);
        if (!r.ok()) break;
        const Status st = engine_->Ingest(ev);
        if (!st.ok()) return status_response(st);
      }
      if (!r.ok()) break;
      return status_response(Status::OK());
    }
    case MessageKind::kGather: {
      const int64_t budget_ms = r.I64();
      if (!r.ok()) break;
      const Deadline deadline = budget_ms < 0
                                    ? Deadline()
                                    : Deadline::After(
                                          Duration::Millis(budget_ms));
      auto result_or = engine_->Preview(deadline);
      if (!result_or.ok()) return status_response(result_or.status());
      const DailyCdiResult& result = result_or.value();
      ShardSnapshot snap;
      snap.per_vm = result.per_vm;
      snap.per_event = result.per_event;
      snap.baseline_interruptions = result.fleet_baseline.interruption_count;
      snap.baseline_downtime = result.fleet_baseline.downtime;
      snap.fleet_service_time = result.fleet_service_time;
      snap.resolve_stats = result.resolve_stats;
      snap.quality = result.quality;
      snap.vms_evaluated = result.vms_evaluated;
      snap.vms_skipped = result.vms_skipped;
      snap.vms_failed = result.vms_failed;
      snap.vms_deferred = result.vms_deferred;
      snap.vms_degraded = result.vms_degraded;
      snap.vm_error_samples = result.vm_error_samples;
      snap.first_vm_error = result.first_vm_error;
      snap.watermark = engine_->watermark();
      snap.num_vms = engine_->num_vms();
      return EncodeGatherResponse(req.request_id, snap);
    }
    case MessageKind::kExtractRange: {
      const std::string lo = r.Str();
      const bool has_hi = r.Bool();
      std::string hi = r.Str();
      if (!r.ok()) break;
      const StreamCheckpoint fragment = engine_->ExtractRange(
          lo, has_hi ? std::optional<std::string>(std::move(hi))
                     : std::nullopt);
      return EncodeCheckpointResponse(req.request_id, req.kind, fragment);
    }
    case MessageKind::kInstallVms: {
      const StreamCheckpoint fragment = DecodeCheckpoint(r);
      if (!r.ok()) break;
      return status_response(engine_->InstallVms(fragment));
    }
    case MessageKind::kExpectDelivery: {
      const std::string target = r.Str();
      const uint64_t count = r.U64();
      if (!r.ok()) break;
      engine_->ExpectDelivery(target, count);
      return status_response(Status::OK());
    }
    case MessageKind::kRecordShed: {
      const std::string target = r.Str();
      const uint64_t count = r.U64();
      if (!r.ok()) break;
      engine_->RecordShed(target, count);
      return status_response(Status::OK());
    }
    case MessageKind::kAdvanceWatermark: {
      const TimePoint to = r.Time();
      if (!r.ok()) break;
      engine_->AdvanceWatermarkTo(to);
      return status_response(Status::OK());
    }
    case MessageKind::kCheckpoint:
      return EncodeCheckpointResponse(req.request_id, req.kind,
                                      engine_->Checkpoint());
    case MessageKind::kRestore: {
      StreamCheckpoint ckpt = DecodeCheckpoint(r);
      if (!r.ok()) break;
      auto engine_or =
          StreamingCdiEngine::Restore(ckpt, catalog_, weights_, options_);
      if (!engine_or.ok()) return status_response(engine_or.status());
      engine_.emplace(std::move(engine_or).value());
      return status_response(Status::OK());
    }
  }
  Metrics().malformed->Increment();
  return status_response(r.status());
}

}  // namespace cdibot::shard
