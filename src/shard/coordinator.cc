#include "shard/coordinator.h"

#include <algorithm>
#include <tuple>
#include <unordered_set>
#include <utility>

#include "obs/trace.h"

namespace cdibot::shard {

namespace {

/// Extra wait beyond the worker's compute budget before a gather response
/// is declared a straggler: covers queueing and serialization, not compute.
constexpr int64_t kGatherGraceMs = 250;

struct CoordMetrics {
  obs::Histogram* gather_ns;
  obs::Histogram* gather_shard_ns;
  obs::Counter* gathers;
  obs::Counter* degraded_gathers;
  obs::Counter* rebalances;
  obs::Counter* vms_moved;
  obs::Counter* failures;
  obs::Counter* recoveries;
  obs::Counter* events_routed;
  obs::Counter* events_shed;
  obs::Counter* batches_flushed;
  obs::Gauge* shards_alive;
  obs::Gauge* min_watermark_ms;
};

const CoordMetrics& Metrics() {
  static const CoordMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    return CoordMetrics{
        .gather_ns = reg.GetHistogram("shard.gather_ns"),
        .gather_shard_ns = reg.GetHistogram("shard.gather_shard_ns"),
        .gathers = reg.GetCounter("shard.gathers"),
        .degraded_gathers = reg.GetCounter("shard.degraded_gathers"),
        .rebalances = reg.GetCounter("shard.rebalances"),
        .vms_moved = reg.GetCounter("shard.vms_moved"),
        .failures = reg.GetCounter("shard.failures"),
        .recoveries = reg.GetCounter("shard.recoveries"),
        .events_routed = reg.GetCounter("shard.events_routed"),
        .events_shed = reg.GetCounter("shard.events_shed"),
        .batches_flushed = reg.GetCounter("shard.batches_flushed"),
        .shards_alive = reg.GetGauge("shard.shards_alive"),
        .min_watermark_ms = reg.GetGauge("shard.min_watermark_ms"),
    };
  }();
  return m;
}

/// Decodes a response frame and surfaces transport-level garbage and
/// worker-side errors uniformly. The returned frame backs hdr.reader.
Status CheckResponse(const StatusOr<std::string>& frame_or,
                     ResponseFrame* hdr) {
  CDIBOT_RETURN_IF_ERROR(frame_or.status());
  CDIBOT_ASSIGN_OR_RETURN(*hdr, DecodeResponseHeader(frame_or.value()));
  return hdr->status;
}

}  // namespace

ShardCoordinator::ShardCoordinator(const EventCatalog* catalog,
                                   const EventWeightModel* weights,
                                   ShardTopologyOptions options)
    : catalog_(catalog),
      weights_(weights),
      options_(std::move(options)),
      map_(options_.num_shards) {}

ShardCoordinator::~ShardCoordinator() {
  for (auto& q : queues_) q->Close();
  for (auto& h : handles_) {
    if (h->worker != nullptr) h->worker->Kill();
  }
}

StatusOr<std::unique_ptr<ShardCoordinator>> ShardCoordinator::Create(
    const EventCatalog* catalog, const EventWeightModel* weights,
    ShardTopologyOptions options) {
  if (catalog == nullptr || weights == nullptr) {
    return Status::InvalidArgument(
        "ShardCoordinator requires a catalog and a weight model");
  }
  options.num_shards = std::max<size_t>(1, options.num_shards);
  options.ingest_batch_size = std::max<size_t>(1, options.ingest_batch_size);
  std::unique_ptr<ShardCoordinator> coord(
      new ShardCoordinator(catalog, weights, std::move(options)));
  CDIBOT_RETURN_IF_ERROR(coord->StartWorkers());
  return coord;
}

Status ShardCoordinator::StartWorkers() {
  const size_t n = options_.num_shards;
  auto& reg = obs::MetricsRegistry::Global();
  handles_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto h = std::make_unique<Handle>();
    TransportPair pair = MakeInProcessPair(options_.channel_capacity);
    h->worker = std::make_unique<ShardWorker>(
        i, catalog_, weights_, options_.engine, std::move(pair.worker_end));
    CDIBOT_RETURN_IF_ERROR(h->worker->Start());
    h->channel = std::move(pair.coordinator_end);
    h->alive.store(true, std::memory_order_release);
    h->depth_gauge =
        reg.GetGauge("shard.queue_depth." + std::to_string(i));
    handles_.push_back(std::move(h));
  }
  pool_ = std::make_unique<ThreadPool>(n);
  if (options_.flow_control) {
    queues_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      auto q = std::make_unique<flow::BackpressureQueue>(options_.flow);
      q->set_shed_callback([this](const RawEvent& ev, flow::FlowClass) {
        {
          std::lock_guard<std::mutex> lock(shed_mu_);
          ++shed_pending_[ev.target];
        }
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.events_shed;
        }
        Metrics().events_shed->Increment();
      });
      queues_.push_back(std::move(q));
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.num_shards = n;
  }
  Metrics().shards_alive->Set(static_cast<double>(n));
  return Status::OK();
}

void ShardCoordinator::MarkDead(Handle& h) {
  if (!h.alive.exchange(false, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shard_failures;
  }
  Metrics().failures->Increment();
  size_t alive = 0;
  for (const auto& other : handles_) {
    if (other->alive.load(std::memory_order_acquire)) ++alive;
  }
  Metrics().shards_alive->Set(static_cast<double>(alive));
}

StatusOr<std::string> ShardCoordinator::CallLocked(Handle& h,
                                                   uint64_t request_id,
                                                   const std::string& frame,
                                                   const Deadline& deadline) {
  Status sent = h.channel->Send(frame);
  if (!sent.ok()) {
    if (sent.code() == StatusCode::kUnavailable) MarkDead(h);
    return sent;
  }
  while (true) {
    auto frame_or = h.channel->Recv(deadline);
    if (!frame_or.ok()) {
      if (frame_or.status().code() == StatusCode::kUnavailable) MarkDead(h);
      return frame_or.status();
    }
    auto hdr_or = DecodeResponseHeader(frame_or.value());
    // Undecodable frames and responses to earlier abandoned (timed-out)
    // requests are drained and discarded; only the matching id returns.
    if (!hdr_or.ok()) continue;
    if (hdr_or.value().request_id != request_id) continue;
    return std::move(frame_or).value();
  }
}

Status ShardCoordinator::MutateLocked(Handle& h, uint64_t request_id,
                                      std::string frame) {
  // Mutations always wait out the worker (infinite deadline): an abandoned
  // mutation would be half-applied from the coordinator's point of view,
  // and the outbox must stay an exact replay log.
  ResponseFrame hdr;
  CDIBOT_RETURN_IF_ERROR(
      CheckResponse(CallLocked(h, request_id, frame, Deadline()), &hdr));
  h.outbox.push_back(OutboxEntry{request_id, std::move(frame)});
  return Status::OK();
}

std::shared_lock<std::shared_mutex> ShardCoordinator::ReadTopology() const {
  // Passing through the gate first makes writers starvation-free: a writer
  // waiting inside WriteTopology() holds the gate, which parks every new
  // reader here until the in-flight readers drain and the writer commits.
  std::lock_guard<std::mutex> gate(topo_gate_);
  return std::shared_lock<std::shared_mutex>(topo_mu_);
}

std::unique_lock<std::shared_mutex> ShardCoordinator::WriteTopology() const {
  std::lock_guard<std::mutex> gate(topo_gate_);
  return std::unique_lock<std::shared_mutex>(topo_mu_);
}

Status ShardCoordinator::RegisterVm(const VmServiceInfo& vm) {
  return RegisterVms({vm});
}

Status ShardCoordinator::RegisterVms(const std::vector<VmServiceInfo>& vms) {
  std::unique_lock<std::shared_mutex> topo = WriteTopology();
  // The first bulk registration defines the balanced cut; later arrivals
  // route by the existing map so no silent handoff happens outside
  // Rebalance().
  const bool recut = registry_.empty();
  for (const VmServiceInfo& vm : vms) {
    if (vm.vm_id.empty()) {
      return Status::InvalidArgument("VM registration without an id");
    }
    registry_[vm.vm_id] = vm;
  }
  if (recut && !registry_.empty()) {
    std::vector<std::string> ids;
    ids.reserve(registry_.size());
    for (const auto& [id, info] : registry_) ids.push_back(id);
    map_ = ShardMap::Balanced(ids, handles_.size());
  }
  Status first_err;
  for (const VmServiceInfo& vm : vms) {
    Handle& h = *handles_[map_.OwnerOf(vm.vm_id)];
    std::lock_guard<std::mutex> lock(h.mu);
    if (!h.alive.load(std::memory_order_acquire)) {
      if (first_err.ok()) {
        first_err = Status::Unavailable("owner shard down for " + vm.vm_id);
      }
      continue;
    }
    const uint64_t id = h.next_request_id++;
    Status st = MutateLocked(h, id, EncodeRegisterVm(id, vm));
    if (!st.ok() && first_err.ok()) first_err = st;
  }
  return first_err;
}

Status ShardCoordinator::Ingest(const RawEvent& event) {
  std::shared_lock<std::shared_mutex> topo = ReadTopology();
  const size_t owner = map_.OwnerOf(event.target);
  Metrics().events_routed->Increment();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.events_routed;
  }

  if (!queues_.empty()) {
    flow::FlowClass klass = flow::FlowClass::kPerformance;
    if (const auto handle = catalog_->FindHandle(event.name)) {
      klass = flow::FlowClassForCategory(handle->spec->category);
    }
    RawEvent copy = event;
    switch (queues_[owner]->TryPush(std::move(copy), klass)) {
      case flow::AdmitResult::kAdmitted:
        break;
      case flow::AdmitResult::kShed:
        return Status::OK();  // accounted via the shed callback
      case flow::AdmitResult::kQueueFull: {
        // Full of unsheddable events: apply real backpressure by draining
        // to the shard ourselves, then admit.
        PumpQueueLocked(owner);
        {
          Handle& h = *handles_[owner];
          std::lock_guard<std::mutex> lock(h.mu);
          Status st = FlushPendingLocked(h);
          if (!st.ok() && st.code() != StatusCode::kUnavailable) return st;
        }
        if (!queues_[owner]->Push(event, klass)) {
          return Status::Unavailable("admission queue closed");
        }
        break;
      }
    }
    if (queues_[owner]->depth() >= options_.ingest_batch_size) {
      PumpQueueLocked(owner);
      Handle& h = *handles_[owner];
      std::lock_guard<std::mutex> lock(h.mu);
      Status st = FlushPendingLocked(h);
      // A down shard buffers; delivery resumes after recovery.
      if (!st.ok() && st.code() != StatusCode::kUnavailable) return st;
    }
    return Status::OK();
  }

  Handle& h = *handles_[owner];
  std::lock_guard<std::mutex> lock(h.mu);
  h.pending.push_back(event);
  if (h.pending.size() >= options_.ingest_batch_size) {
    Status st = FlushPendingLocked(h);
    if (!st.ok() && st.code() != StatusCode::kUnavailable) return st;
  }
  return Status::OK();
}

Status ShardCoordinator::IngestBatch(const std::vector<RawEvent>& events) {
  for (const RawEvent& ev : events) {
    CDIBOT_RETURN_IF_ERROR(Ingest(ev));
  }
  return Status::OK();
}

Status ShardCoordinator::ExpectDelivery(const std::string& target,
                                        uint64_t count) {
  std::shared_lock<std::shared_mutex> topo = ReadTopology();
  Handle& h = *handles_[map_.OwnerOf(target)];
  std::lock_guard<std::mutex> lock(h.mu);
  if (!h.alive.load(std::memory_order_acquire)) {
    return Status::Unavailable("owner shard down for " + target);
  }
  const uint64_t id = h.next_request_id++;
  return MutateLocked(h, id, EncodeExpectDelivery(id, target, count));
}

Status ShardCoordinator::AdvanceWatermarkTo(TimePoint t) {
  {
    std::lock_guard<std::mutex> lock(wm_mu_);
    if (!wm_target_.has_value() || t > *wm_target_) wm_target_ = t;
  }
  std::shared_lock<std::shared_mutex> topo = ReadTopology();
  Status first_err;
  for (auto& hp : handles_) {
    Handle& h = *hp;
    std::lock_guard<std::mutex> lock(h.mu);
    if (!h.alive.load(std::memory_order_acquire)) continue;  // re-applied
    const uint64_t id = h.next_request_id++;
    Status st = MutateLocked(h, id, EncodeAdvanceWatermark(id, t));
    if (!st.ok() && st.code() != StatusCode::kUnavailable &&
        first_err.ok()) {
      first_err = st;
    }
  }
  return first_err;
}

void ShardCoordinator::PumpQueueLocked(size_t shard) {
  if (queues_.empty()) return;
  std::vector<RawEvent> drained;
  RawEvent ev;
  while (queues_[shard]->TryPop(&ev)) drained.push_back(std::move(ev));
  Handle& h = *handles_[shard];
  std::lock_guard<std::mutex> lock(h.mu);
  for (RawEvent& e : drained) h.pending.push_back(std::move(e));
  h.depth_gauge->Set(static_cast<double>(queues_[shard]->depth()));
}

Status ShardCoordinator::FlushPendingLocked(Handle& h) {
  if (h.pending.empty()) return Status::OK();
  if (!h.alive.load(std::memory_order_acquire)) {
    return Status::Unavailable("shard down");
  }
  const uint64_t id = h.next_request_id++;
  CDIBOT_RETURN_IF_ERROR(
      MutateLocked(h, id, EncodeIngestBatch(id, h.pending)));
  h.pending.clear();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.batches_flushed;
  }
  Metrics().batches_flushed->Increment();
  return Status::OK();
}

Status ShardCoordinator::FlushAllLocked() {
  Status first_err;
  for (size_t i = 0; i < handles_.size(); ++i) {
    PumpQueueLocked(i);
    Handle& h = *handles_[i];
    std::lock_guard<std::mutex> lock(h.mu);
    Status st = FlushPendingLocked(h);
    if (!st.ok() && st.code() != StatusCode::kUnavailable && first_err.ok()) {
      first_err = st;
    }
  }
  std::map<std::string, uint64_t> sheds;
  {
    std::lock_guard<std::mutex> lock(shed_mu_);
    sheds.swap(shed_pending_);
  }
  for (const auto& [target, count] : sheds) {
    Handle& h = *handles_[map_.OwnerOf(target)];
    std::lock_guard<std::mutex> lock(h.mu);
    Status st;
    if (h.alive.load(std::memory_order_acquire)) {
      const uint64_t id = h.next_request_id++;
      st = MutateLocked(h, id, EncodeRecordShed(id, target, count));
    } else {
      st = Status::Unavailable("shard down");
    }
    if (!st.ok()) {
      std::lock_guard<std::mutex> shed_lock(shed_mu_);
      shed_pending_[target] += count;
      if (st.code() != StatusCode::kUnavailable && first_err.ok()) {
        first_err = st;
      }
    }
  }
  return first_err;
}

Status ShardCoordinator::Flush() {
  std::shared_lock<std::shared_mutex> topo = ReadTopology();
  return FlushAllLocked();
}

StatusOr<DailyCdiResult> ShardCoordinator::Snapshot() {
  std::shared_lock<std::shared_mutex> topo = ReadTopology();
  return GatherLocked(Deadline());
}

StatusOr<DailyCdiResult> ShardCoordinator::Preview(const Deadline& deadline) {
  std::shared_lock<std::shared_mutex> topo = ReadTopology();
  return GatherLocked(deadline);
}

StatusOr<VmCdi> ShardCoordinator::FleetCdi() {
  CDIBOT_ASSIGN_OR_RETURN(DailyCdiResult result, Snapshot());
  return result.fleet;
}

StatusOr<DailyCdiResult> ShardCoordinator::GatherLocked(
    const Deadline& deadline) {
  CDIBOT_RETURN_IF_ERROR(FlushAllLocked());
  const CoordMetrics& m = Metrics();
  obs::ScopedTimer gather_timer(m.gather_ns);
  TRACE_SPAN("shard.gather");

  const size_t n = handles_.size();
  const int64_t budget_ms =
      deadline.IsInfinite() ? -1 : deadline.Remaining().millis();
  std::vector<std::optional<ShardSnapshot>> snaps(n);
  // Scatter: every shard computes its local snapshot concurrently; each
  // channel is serialized by its handle mutex, the slots are disjoint.
  pool_->ParallelFor(n, [&](size_t i) {
    Handle& h = *handles_[i];
    std::lock_guard<std::mutex> lock(h.mu);
    if (!h.alive.load(std::memory_order_acquire)) return;
    obs::ScopedTimer shard_timer(m.gather_shard_ns);
    const uint64_t id = h.next_request_id++;
    const Deadline recv_deadline =
        deadline.IsInfinite()
            ? Deadline()
            : Deadline::After(deadline.Remaining() +
                              Duration::Millis(kGatherGraceMs));
    auto frame_or =
        CallLocked(h, id, EncodeGather(id, budget_ms), recv_deadline);
    ResponseFrame hdr;
    if (!CheckResponse(frame_or, &hdr).ok()) return;  // straggler or dead
    ShardSnapshot snap = DecodeSnapshot(hdr.reader);
    if (!hdr.reader.ok()) return;
    h.last_watermark = snap.watermark;
    snaps[i] = std::move(snap);
  });

  // Gather: merge in shard-index order. Doubles fold through the canonical
  // ascending-vm_id fleet fold; the baseline merges as raw integer sums —
  // both bit-identical to a single-node snapshot over the same rows.
  DailyCdiResult out;
  CanonicalCdiFold fold;
  uint64_t base_interruptions = 0;
  Duration base_downtime;
  std::unordered_set<std::string> sample_reasons;
  size_t responded = 0;
  bool shard_missing = false;
  for (size_t i = 0; i < n; ++i) {
    if (!snaps[i].has_value()) {
      shard_missing = true;
      out.vms_deferred += OwnedVmCountLocked(i);
      continue;
    }
    ++responded;
    ShardSnapshot& s = *snaps[i];
    for (VmCdiRecord& row : s.per_vm) {
      fold.Add(row.vm_id, row.cdi);
      out.per_vm.push_back(std::move(row));
    }
    for (EventCdiRecord& row : s.per_event) {
      out.per_event.push_back(std::move(row));
    }
    base_interruptions += s.baseline_interruptions;
    base_downtime += s.baseline_downtime;
    out.fleet_service_time += s.fleet_service_time;
    out.resolve_stats.Merge(s.resolve_stats);
    out.quality.Merge(s.quality);
    out.vms_evaluated += s.vms_evaluated;
    out.vms_skipped += s.vms_skipped;
    out.vms_failed += s.vms_failed;
    out.vms_deferred += s.vms_deferred;
    out.vms_degraded += s.vms_degraded;
    if (out.first_vm_error.ok() && !s.first_vm_error.ok()) {
      out.first_vm_error = s.first_vm_error;
    }
    for (std::string& sample : s.vm_error_samples) {
      if (out.vm_error_samples.size() >= DailyCdiResult::kMaxVmErrorSamples) {
        break;
      }
      // One exemplar per distinct reason fleet-wide, like the single-node
      // job ("vm <id>: <reason>" — dedup on the reason part).
      const size_t sep = sample.find(": ");
      const std::string reason =
          sep == std::string::npos ? sample : sample.substr(sep + 2);
      if (sample_reasons.insert(reason).second) {
        out.vm_error_samples.push_back(std::move(sample));
      }
    }
  }
  if (responded == 0) {
    return Status::Unavailable("no shard responded to the gather");
  }
  out.fleet = fold.Finalize();
  out.fleet_baseline =
      UnavailabilityPartial::FromRaw(base_interruptions, base_downtime,
                                     out.fleet_service_time)
          .Finalize();
  std::sort(out.per_vm.begin(), out.per_vm.end(),
            [](const VmCdiRecord& a, const VmCdiRecord& b) {
              return a.vm_id < b.vm_id;
            });
  std::sort(out.per_event.begin(), out.per_event.end(),
            [](const EventCdiRecord& a, const EventCdiRecord& b) {
              return std::tie(a.vm_id, a.event_name) <
                     std::tie(b.vm_id, b.event_name);
            });
  if (shard_missing) {
    // Missing shards degrade the result, they never silently shrink the
    // fleet: their VMs are counted deferred and the quality flag is set
    // AFTER the merges so no Refresh() can clear it.
    out.quality.degraded = true;
  }

  m.gathers->Increment();
  if (shard_missing) m.degraded_gathers->Increment();
  TimePoint min_wm;
  bool first = true;
  for (auto& hp : handles_) {
    std::lock_guard<std::mutex> lock(hp->mu);
    if (first || hp->last_watermark < min_wm) min_wm = hp->last_watermark;
    first = false;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.gathers;
    if (shard_missing) ++stats_.degraded_gathers;
    stats_.min_watermark = min_wm;
  }
  m.min_watermark_ms->Set(static_cast<double>(min_wm.millis()));
  return out;
}

TimePoint ShardCoordinator::Watermark() {
  std::shared_lock<std::shared_mutex> topo = ReadTopology();
  TimePoint min_wm;
  bool first = true;
  for (auto& hp : handles_) {
    Handle& h = *hp;
    std::lock_guard<std::mutex> lock(h.mu);
    if (h.alive.load(std::memory_order_acquire)) {
      const uint64_t id = h.next_request_id++;
      auto frame_or = CallLocked(h, id, EncodePing(id), Deadline());
      ResponseFrame hdr;
      if (CheckResponse(frame_or, &hdr).ok()) {
        const TimePoint wm = hdr.reader.Time();
        if (hdr.reader.ok()) h.last_watermark = wm;
      }
    }
    // A dead shard contributes its last reported watermark: the global
    // value stalls (truthfully) until the shard recovers.
    if (first || h.last_watermark < min_wm) min_wm = h.last_watermark;
    first = false;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.min_watermark = min_wm;
  }
  Metrics().min_watermark_ms->Set(static_cast<double>(min_wm.millis()));
  return min_wm;
}

Status ShardCoordinator::CheckpointShardsLocked() {
  Status first_err;
  for (auto& hp : handles_) {
    Handle& h = *hp;
    std::lock_guard<std::mutex> lock(h.mu);
    if (!h.alive.load(std::memory_order_acquire)) continue;
    const uint64_t id = h.next_request_id++;
    auto frame_or = CallLocked(h, id, EncodeCheckpointRequest(id), Deadline());
    ResponseFrame hdr;
    Status st = CheckResponse(frame_or, &hdr);
    if (st.ok()) {
      StreamCheckpoint ckpt = DecodeCheckpoint(hdr.reader);
      st = hdr.reader.status();
      if (st.ok()) {
        h.last_checkpoint = std::move(ckpt);
        h.has_checkpoint = true;
        // Everything acknowledged so far is inside the checkpoint; the
        // outbox restarts as the post-checkpoint replay log.
        h.outbox.clear();
      }
    }
    if (!st.ok() && first_err.ok()) first_err = st;
  }
  return first_err;
}

Status ShardCoordinator::CheckpointShards() {
  std::shared_lock<std::shared_mutex> topo = ReadTopology();
  return CheckpointShardsLocked();
}

Status ShardCoordinator::Rebalance() {
  std::unique_lock<std::shared_mutex> topo = WriteTopology();
  TRACE_SPAN("shard.rebalance");
  Status first_err = FlushAllLocked();

  std::vector<std::string> ids;
  ids.reserve(registry_.size());
  for (const auto& [id, info] : registry_) ids.push_back(id);
  const ShardMap target = ShardMap::Balanced(ids, handles_.size());
  const std::vector<ShardMap::Move> moves = ShardMap::Diff(map_, target);

  for (const ShardMap::Move& move : moves) {
    Handle& src = *handles_[move.from];
    Handle& dst = *handles_[move.to];
    if (!src.alive.load(std::memory_order_acquire) ||
        !dst.alive.load(std::memory_order_acquire)) {
      if (first_err.ok()) {
        first_err = Status::Unavailable("rebalance move skipped: shard down");
      }
      continue;
    }
    StreamCheckpoint frag;
    {
      std::lock_guard<std::mutex> lock(src.mu);
      const uint64_t id = src.next_request_id++;
      auto frame_or = CallLocked(
          src, id, EncodeExtractRange(id, move.range.lo, move.range.hi),
          Deadline());
      ResponseFrame hdr;
      Status st = CheckResponse(frame_or, &hdr);
      if (st.ok()) {
        frag = DecodeCheckpoint(hdr.reader);
        st = hdr.reader.status();
      }
      if (!st.ok()) {
        if (first_err.ok()) first_err = st;
        continue;
      }
    }
    const size_t moved_vms = frag.vms.size();
    Status install;
    {
      std::lock_guard<std::mutex> lock(dst.mu);
      const uint64_t id = dst.next_request_id++;
      install = MutateLocked(dst, id, EncodeInstallVms(id, frag));
    }
    if (!install.ok()) {
      // Put the extracted state back where it came from; if the source is
      // gone too, park the fragment for reinstall at recovery time.
      bool restored = false;
      {
        std::lock_guard<std::mutex> lock(src.mu);
        if (src.alive.load(std::memory_order_acquire)) {
          const uint64_t id = src.next_request_id++;
          restored =
              MutateLocked(src, id, EncodeInstallVms(id, frag)).ok();
        }
      }
      if (!restored) {
        parked_.push_back(ParkedFragment{move.range, std::move(frag)});
      }
      if (first_err.ok()) first_err = install;
      continue;
    }
    // Ownership flips only after the transfer succeeded, so an aborted
    // rebalance leaves every range with exactly one live owner.
    map_.Assign(move.range, move.to);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.vms_moved += moved_vms;
    }
    Metrics().vms_moved->Add(static_cast<double>(moved_vms));
  }

  // The extracts mutated source shards in ways outbox replay cannot redo
  // (an extract is not an acknowledged *inbound* mutation), so recovery
  // baselines must advance past them: checkpoint everything now.
  Status ckpt = CheckpointShardsLocked();
  if (first_err.ok()) first_err = ckpt;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rebalances;
  }
  Metrics().rebalances->Increment();
  return first_err;
}

Status ShardCoordinator::InjectShardFailure(size_t shard) {
  std::unique_lock<std::shared_mutex> topo = WriteTopology();
  if (shard >= handles_.size()) {
    return Status::InvalidArgument("no such shard");
  }
  Handle& h = *handles_[shard];
  std::lock_guard<std::mutex> lock(h.mu);
  if (!h.alive.load(std::memory_order_acquire)) return Status::OK();
  h.worker->Kill();  // closes the channel and destroys the engine
  MarkDead(h);
  return Status::OK();
}

Status ShardCoordinator::RecoverShard(size_t shard) {
  std::unique_lock<std::shared_mutex> topo = WriteTopology();
  if (shard >= handles_.size()) {
    return Status::InvalidArgument("no such shard");
  }
  Handle& h = *handles_[shard];
  std::lock_guard<std::mutex> lock(h.mu);
  if (h.alive.load(std::memory_order_acquire)) return Status::OK();

  TransportPair pair = MakeInProcessPair(options_.channel_capacity);
  auto worker = std::make_unique<ShardWorker>(
      shard, catalog_, weights_, options_.engine, std::move(pair.worker_end));
  CDIBOT_RETURN_IF_ERROR(worker->Start());
  h.worker = std::move(worker);
  h.channel = std::move(pair.coordinator_end);
  h.alive.store(true, std::memory_order_release);

  const auto fail = [&](Status st) {
    h.worker->Kill();
    h.alive.store(false, std::memory_order_release);
    return st;
  };

  // Restore the checkpoint baseline, then replay every acknowledged
  // mutation since, verbatim and in order: the rebuilt engine is
  // bit-identical to the dead one at its last acknowledged request.
  if (h.has_checkpoint) {
    const uint64_t id = h.next_request_id++;
    ResponseFrame hdr;
    Status st = CheckResponse(
        CallLocked(h, id, EncodeRestore(id, h.last_checkpoint), Deadline()),
        &hdr);
    if (!st.ok()) return fail(st);
  }
  for (const OutboxEntry& entry : h.outbox) {
    ResponseFrame hdr;
    Status st = CheckResponse(
        CallLocked(h, entry.request_id, entry.frame, Deadline()), &hdr);
    if (!st.ok()) return fail(st);
  }
  // Watermark advances are monotonic; re-applying the high-water target is
  // idempotent and covers advances the shard missed while down.
  std::optional<TimePoint> wm_target;
  {
    std::lock_guard<std::mutex> wm_lock(wm_mu_);
    wm_target = wm_target_;
  }
  if (wm_target.has_value()) {
    const uint64_t id = h.next_request_id++;
    Status st = MutateLocked(h, id, EncodeAdvanceWatermark(id, *wm_target));
    if (!st.ok()) return fail(st);
  }
  // Fragments orphaned by a failed rebalance transfer go to their owner.
  for (auto it = parked_.begin(); it != parked_.end();) {
    if (map_.OwnerOf(it->range.lo) != shard) {
      ++it;
      continue;
    }
    const uint64_t id = h.next_request_id++;
    Status st = MutateLocked(h, id, EncodeInstallVms(id, it->fragment));
    if (!st.ok()) return fail(st);
    it = parked_.erase(it);
  }

  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.shards_recovered;
  }
  Metrics().recoveries->Increment();
  size_t alive = 0;
  for (const auto& other : handles_) {
    if (other->alive.load(std::memory_order_acquire)) ++alive;
  }
  Metrics().shards_alive->Set(static_cast<double>(alive));
  return Status::OK();
}

bool ShardCoordinator::ShardAlive(size_t shard) const {
  if (shard >= handles_.size()) return false;
  return handles_[shard]->alive.load(std::memory_order_acquire);
}

ShardMap ShardCoordinator::Map() const {
  std::shared_lock<std::shared_mutex> topo = ReadTopology();
  return map_;
}

size_t ShardCoordinator::OwnedVmCountLocked(size_t shard) const {
  size_t count = 0;
  for (const auto& [id, info] : registry_) {
    if (map_.OwnerOf(id) == shard) ++count;
  }
  return count;
}

ShardFleetStats ShardCoordinator::stats() const {
  ShardFleetStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  out.num_shards = handles_.size();
  out.shards_alive = 0;
  for (const auto& h : handles_) {
    if (h->alive.load(std::memory_order_acquire)) ++out.shards_alive;
  }
  return out;
}

}  // namespace cdibot::shard
