#include "shard/coordinator.h"

#include <stdlib.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <tuple>
#include <unordered_set>
#include <utility>

#include "obs/trace.h"

namespace cdibot::shard {

namespace {

/// Extra wait beyond the worker's compute budget before a gather response
/// is declared a straggler: covers queueing and serialization, not compute.
constexpr int64_t kGatherGraceMs = 250;

struct CoordMetrics {
  obs::Histogram* gather_ns;
  obs::Histogram* gather_shard_ns;
  obs::Counter* gathers;
  obs::Counter* degraded_gathers;
  obs::Counter* rebalances;
  obs::Counter* vms_moved;
  obs::Counter* failures;
  obs::Counter* recoveries;
  obs::Counter* events_routed;
  obs::Counter* events_shed;
  obs::Counter* batches_flushed;
  obs::Counter* reconnects;
  obs::Counter* sessions_resumed;
  obs::Counter* sessions_restored;
  obs::Counter* call_retries;
  obs::Counter* heartbeats;
  obs::Counter* heartbeat_failures;
  obs::Histogram* heartbeat_rtt_ns;
  obs::Gauge* shards_alive;
  obs::Gauge* min_watermark_ms;
};

const CoordMetrics& Metrics() {
  static const CoordMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    return CoordMetrics{
        .gather_ns = reg.GetHistogram("shard.gather_ns"),
        .gather_shard_ns = reg.GetHistogram("shard.gather_shard_ns"),
        .gathers = reg.GetCounter("shard.gathers"),
        .degraded_gathers = reg.GetCounter("shard.degraded_gathers"),
        .rebalances = reg.GetCounter("shard.rebalances"),
        .vms_moved = reg.GetCounter("shard.vms_moved"),
        .failures = reg.GetCounter("shard.failures"),
        .recoveries = reg.GetCounter("shard.recoveries"),
        .events_routed = reg.GetCounter("shard.events_routed"),
        .events_shed = reg.GetCounter("shard.events_shed"),
        .batches_flushed = reg.GetCounter("shard.batches_flushed"),
        .reconnects = reg.GetCounter("shard.transport.reconnects"),
        .sessions_resumed = reg.GetCounter("shard.transport.sessions_resumed"),
        .sessions_restored =
            reg.GetCounter("shard.transport.sessions_restored"),
        .call_retries = reg.GetCounter("shard.transport.call_retries"),
        .heartbeats = reg.GetCounter("shard.transport.heartbeats"),
        .heartbeat_failures =
            reg.GetCounter("shard.transport.heartbeat_failures"),
        .heartbeat_rtt_ns =
            reg.GetHistogram("shard.transport.heartbeat_rtt_ns"),
        .shards_alive = reg.GetGauge("shard.shards_alive"),
        .min_watermark_ms = reg.GetGauge("shard.min_watermark_ms"),
    };
  }();
  return m;
}

/// Coordinator-side per-kind RPC instrumentation: round-trip latency and
/// frame sizes for completed exchanges, keyed by the request kind.
struct RpcCallMetrics {
  obs::Histogram* call_ns;
  obs::Histogram* send_bytes;
  obs::Histogram* recv_bytes;
};

constexpr uint32_t kNumKinds =
    static_cast<uint32_t>(MessageKind::kObsSnapshot) + 1;

/// Reads the kind tag straight out of an encoded request frame (the u32
/// after the u64 request id, little-endian on the wire) and returns that
/// kind's metrics row; null for frames too short or kinds out of range.
const RpcCallMetrics* CallMetricsForFrame(const std::string& frame) {
  if (frame.size() < 12) return nullptr;
  const auto* b = reinterpret_cast<const unsigned char*>(frame.data() + 8);
  const uint32_t kind = static_cast<uint32_t>(b[0]) |
                        static_cast<uint32_t>(b[1]) << 8 |
                        static_cast<uint32_t>(b[2]) << 16 |
                        static_cast<uint32_t>(b[3]) << 24;
  if (kind == 0 || kind >= kNumKinds) return nullptr;
  static const std::array<RpcCallMetrics, kNumKinds>& table = *[] {
    auto* t = new std::array<RpcCallMetrics, kNumKinds>{};
    auto& reg = obs::MetricsRegistry::Global();
    for (uint32_t k = 1; k < kNumKinds; ++k) {
      const std::string base =
          std::string("shard.rpc.") +
          MessageKindName(static_cast<MessageKind>(k));
      (*t)[k] = RpcCallMetrics{
          .call_ns = reg.GetHistogram(base + ".call_ns"),
          .send_bytes = reg.GetHistogram(base + ".send_bytes"),
          .recv_bytes = reg.GetHistogram(base + ".recv_bytes"),
      };
    }
    return t;
  }();
  return &table[kind];
}

/// Decodes a response frame and surfaces transport-level garbage and
/// worker-side errors uniformly. The returned frame backs hdr.reader.
Status CheckResponse(const StatusOr<std::string>& frame_or,
                     ResponseFrame* hdr) {
  CDIBOT_RETURN_IF_ERROR(frame_or.status());
  CDIBOT_ASSIGN_OR_RETURN(*hdr, DecodeResponseHeader(frame_or.value()));
  return hdr->status;
}

/// One request/response exchange on a transport that is not yet installed
/// as a handle's channel (session handshake traffic). Discards frames that
/// do not decode or answer an abandoned id.
StatusOr<std::string> RoundTrip(Transport& t, uint64_t request_id,
                                const std::string& frame,
                                const Deadline& deadline) {
  CDIBOT_RETURN_IF_ERROR(t.Send(frame));
  while (true) {
    auto frame_or = t.Recv(deadline);
    if (!frame_or.ok()) return frame_or.status();
    auto hdr_or = DecodeResponseHeader(frame_or.value());
    if (!hdr_or.ok()) continue;
    if (hdr_or.value().request_id != request_id) continue;
    return std::move(frame_or).value();
  }
}

/// True for establish-time failures the worker decided (engine rejected
/// the options, unsupported config): retrying cannot change the answer.
bool EstablishPermanent(const Status& st) {
  switch (st.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kInternal:
    case StatusCode::kUnimplemented:
    case StatusCode::kOutOfRange:
      return true;
    default:
      return false;
  }
}

}  // namespace

ShardCoordinator::ShardCoordinator(const EventCatalog* catalog,
                                   const EventWeightModel* weights,
                                   ShardTopologyOptions options)
    : catalog_(catalog),
      weights_(weights),
      options_(std::move(options)),
      map_(options_.num_shards) {}

ShardCoordinator::~ShardCoordinator() {
  {
    std::lock_guard<std::mutex> lock(heartbeat_mu_);
    heartbeat_stop_ = true;
  }
  heartbeat_cv_.notify_all();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  for (auto& q : queues_) q->Close();
  for (auto& h : handles_) {
    if (h->channel != nullptr) h->channel->Close();
    if (h->host != nullptr) h->host->Kill();
  }
  for (const std::string& path : socket_paths_) ::unlink(path.c_str());
  if (!owned_socket_dir_.empty()) ::rmdir(owned_socket_dir_.c_str());
}

StatusOr<std::unique_ptr<ShardCoordinator>> ShardCoordinator::Create(
    const EventCatalog* catalog, const EventWeightModel* weights,
    ShardTopologyOptions options) {
  if (catalog == nullptr || weights == nullptr) {
    return Status::InvalidArgument(
        "ShardCoordinator requires a catalog and a weight model");
  }
  options.num_shards = std::max<size_t>(1, options.num_shards);
  options.ingest_batch_size = std::max<size_t>(1, options.ingest_batch_size);
  std::unique_ptr<ShardCoordinator> coord(
      new ShardCoordinator(catalog, weights, std::move(options)));
  CDIBOT_RETURN_IF_ERROR(coord->StartWorkers());
  return coord;
}

std::unique_ptr<ShardHost> ShardCoordinator::MakeHost(size_t shard) {
  switch (options_.transport) {
    case ShardTransportMode::kInProcess:
      return std::make_unique<InProcessHost>(shard, catalog_, weights_,
                                             options_.engine,
                                             options_.channel_capacity);
    case ShardTransportMode::kSocketThread: {
      std::string path =
          options_.socket_dir + "/shard-" + std::to_string(shard) + ".sock";
      socket_paths_.push_back(path);
      return std::make_unique<SocketThreadHost>(
          shard, catalog_, weights_, options_.engine, std::move(path),
          options_.socket, options_.transport_decorator);
    }
    case ShardTransportMode::kSocketProcess: {
      std::string path =
          options_.socket_dir + "/shard-" + std::to_string(shard) + ".sock";
      socket_paths_.push_back(path);
      return std::make_unique<ProcessHost>(shard, options_.worker_binary,
                                           std::move(path), options_.socket,
                                           options_.transport_decorator);
    }
  }
  return nullptr;
}

Status ShardCoordinator::StartWorkers() {
  const size_t n = options_.num_shards;
  if (options_.transport != ShardTransportMode::kInProcess) {
    if (options_.transport == ShardTransportMode::kSocketProcess) {
      if (options_.worker_binary.empty()) {
        return Status::InvalidArgument(
            "kSocketProcess requires worker_binary");
      }
      if (!options_.weight_spec.has_value()) {
        return Status::InvalidArgument(
            "kSocketProcess requires weight_spec: a child process cannot "
            "borrow the coordinator's weight model");
      }
    }
    if (options_.socket_dir.empty()) {
      char tmpl[] = "/tmp/cdibot-shard-XXXXXX";
      if (::mkdtemp(tmpl) == nullptr) {
        return Status::Internal("mkdtemp failed for shard socket dir");
      }
      owned_socket_dir_ = tmpl;
      options_.socket_dir = owned_socket_dir_;
    }
  }

  auto& reg = obs::MetricsRegistry::Global();
  handles_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto h = std::make_unique<Handle>();
    h->index = i;
    h->host = MakeHost(i);
    CDIBOT_RETURN_IF_ERROR(h->host->Respawn());
    h->depth_gauge =
        reg.GetGauge("shard.queue_depth." + std::to_string(i));
    h->connected_gauge =
        reg.GetGauge("shard.session.connected." + std::to_string(i));
    h->outbox_gauge =
        reg.GetGauge("shard.session.outbox_depth." + std::to_string(i));
    handles_.push_back(std::move(h));
  }
  for (auto& hp : handles_) {
    std::lock_guard<std::mutex> lock(hp->mu);
    // The handshake runs kInit, so an engine that rejects the options
    // fails Create() here — same contract as the in-process-only fleet.
    CDIBOT_RETURN_IF_ERROR(EstablishWithRetryLocked(*hp));
  }
  pool_ = std::make_unique<ThreadPool>(n);
  if (options_.flow_control) {
    queues_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      auto q = std::make_unique<flow::BackpressureQueue>(options_.flow);
      q->set_shed_callback([this](const RawEvent& ev, flow::FlowClass) {
        {
          std::lock_guard<std::mutex> lock(shed_mu_);
          ++shed_pending_[ev.target];
        }
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.events_shed;
        }
        Metrics().events_shed->Increment();
      });
      queues_.push_back(std::move(q));
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.num_shards = n;
  }
  Metrics().shards_alive->Set(static_cast<double>(n));
  if (options_.session.heartbeat_interval > Duration::Zero()) {
    heartbeat_thread_ = std::thread([this] { HeartbeatLoop(); });
  }
  return Status::OK();
}

void ShardCoordinator::MarkDead(Handle& h) {
  if (!h.alive.exchange(false, std::memory_order_acq_rel)) return;
  if (h.connected_gauge != nullptr) h.connected_gauge->Set(0.0);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shard_failures;
  }
  Metrics().failures->Increment();
  size_t alive = 0;
  for (const auto& other : handles_) {
    if (other->alive.load(std::memory_order_acquire)) ++alive;
  }
  Metrics().shards_alive->Set(static_cast<double>(alive));
}

StatusOr<std::string> ShardCoordinator::AttemptLocked(
    Handle& h, uint64_t request_id, const std::string& frame,
    const Deadline& deadline) {
  if (h.channel == nullptr) {
    return Status::Unavailable("no connection to shard");
  }
  const RpcCallMetrics* rpc = CallMetricsForFrame(frame);
  const uint64_t start_ns = obs::MonotonicNowNs();
  CDIBOT_RETURN_IF_ERROR(h.channel->Send(frame));
  while (true) {
    auto frame_or = h.channel->Recv(deadline);
    if (!frame_or.ok()) return frame_or.status();
    auto hdr_or = DecodeResponseHeader(frame_or.value());
    // Undecodable frames and responses to earlier abandoned (timed-out)
    // requests are drained and discarded; only the matching id returns.
    if (!hdr_or.ok()) continue;
    if (hdr_or.value().request_id != request_id) continue;
    if (rpc != nullptr) {
      rpc->call_ns->Record(obs::MonotonicNowNs() - start_ns);
      rpc->send_bytes->Record(frame.size());
      rpc->recv_bytes->Record(frame_or.value().size());
    }
    return std::move(frame_or).value();
  }
}

Status ShardCoordinator::EstablishSessionLocked(Handle& h) {
  if (h.host == nullptr) return Status::Internal("shard has no host");
  if (!h.host->Alive()) return Status::Unavailable("shard host dead");
  if (h.channel != nullptr) {
    h.channel->Close();
    h.channel.reset();
  }
  const ShardSessionOptions& s = options_.session;

  // Dial with full-jitter backoff: a freshly spawned worker may not have
  // bound its socket yet, and under chaos the first dial often dies.
  RetryPolicy policy(s.reconnect_backoff,
                     /*jitter_seed=*/static_cast<uint64_t>(h.index) + 1);
  std::unique_ptr<Transport> channel;
  Status dialed = policy.Run([&] {
    auto t_or = h.host->Connect(Deadline::After(s.connect_timeout));
    if (!t_or.ok()) return t_or.status();
    channel = std::move(t_or).value();
    return Status::OK();
  });
  if (!dialed.ok()) return dialed;

  // Handshake steps share a per-step budget: the connect timeout, tightened
  // by the per-attempt call timeout when one is configured (a swallowed
  // handshake response must turn into a quick redial, not a long stall).
  const Duration step_budget =
      (!s.call_timeout.IsZero() && s.call_timeout < s.connect_timeout)
          ? s.call_timeout
          : s.connect_timeout;

  // kHello: does the worker still hold an engine from a previous session?
  uint64_t id = h.next_request_id++;
  ResponseFrame hdr;
  // The frame must outlive hdr.reader, which points into it.
  StatusOr<std::string> hello_frame_or =
      RoundTrip(*channel, id, EncodeHello(id), Deadline::After(step_budget));
  CDIBOT_RETURN_IF_ERROR(CheckResponse(hello_frame_or, &hdr));
  const HelloInfo hello = DecodeHelloInfo(hdr.reader);
  CDIBOT_RETURN_IF_ERROR(hdr.reader.status());

  if (!hello.engine_ready) {
    // The engine itself is gone (fresh or respawned worker): any recorded
    // rebuild progress is void, start over.
    h.rebuild_stage = Handle::RebuildStage::kStart;
    h.replay_cursor = 0;
    h.session_complete = false;
  }
  const bool rebuilt = !h.session_complete;
  if (!h.session_complete) {
    // Rebuild: init, restore the checkpoint baseline, then replay every
    // acknowledged mutation since — verbatim, original ids, original order
    // — so the rebuilt engine is bit-identical to the dead one at its last
    // acknowledged request. Each step commits its progress only after the
    // worker confirmed it, so a connection lost mid-handshake resumes here
    // instead of restarting (kInit and kRestore re-execute harmlessly when
    // their confirmation was the lost frame; replayed ids the worker
    // already applied come back as dedup-acknowledged no-ops).
    if (h.rebuild_stage == Handle::RebuildStage::kStart) {
      id = h.next_request_id++;
      CDIBOT_RETURN_IF_ERROR(CheckResponse(
          RoundTrip(
              *channel, id,
              EncodeInit(id, options_.engine.window,
                         options_.engine.allowed_lateness,
                         static_cast<uint32_t>(options_.engine.num_shards),
                         options_.weight_spec, options_.worker_tracing),
              Deadline::After(step_budget)),
          &hdr));
      h.rebuild_stage = Handle::RebuildStage::kInitDone;
    }
    if (h.rebuild_stage == Handle::RebuildStage::kInitDone) {
      if (h.has_checkpoint) {
        id = h.next_request_id++;
        CDIBOT_RETURN_IF_ERROR(CheckResponse(
            RoundTrip(*channel, id, EncodeRestore(id, h.last_checkpoint),
                      Deadline::After(step_budget)),
            &hdr));
      }
      h.rebuild_stage = Handle::RebuildStage::kRestoreDone;
    }
    for (; h.replay_cursor < h.outbox.size(); ++h.replay_cursor) {
      const OutboxEntry& entry = h.outbox[h.replay_cursor];
      CDIBOT_RETURN_IF_ERROR(CheckResponse(
          RoundTrip(*channel, entry.request_id, entry.frame,
                    Deadline::After(step_budget)),
          &hdr));
    }
    h.session_complete = true;
  }

  h.channel = std::move(channel);
  h.alive.store(true, std::memory_order_release);
  if (h.connected_gauge != nullptr) h.connected_gauge->Set(1.0);
  if (h.ever_connected) {
    Metrics().reconnects->Increment();
    (rebuilt ? Metrics().sessions_restored : Metrics().sessions_resumed)
        ->Increment();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.reconnects;
    if (rebuilt) {
      ++stats_.sessions_restored;
    } else {
      ++stats_.sessions_resumed;
    }
  }
  h.ever_connected = true;
  return Status::OK();
}

Status ShardCoordinator::EstablishWithRetryLocked(Handle& h) {
  const size_t max_attempts =
      std::max<size_t>(1, options_.session.max_call_attempts);
  Status est;
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    est = EstablishSessionLocked(h);
    if (est.ok()) return est;
    if (EstablishPermanent(est)) break;
    if (h.host == nullptr || !h.host->Alive()) break;
  }
  return est;
}

Status ShardCoordinator::ResolveInFlightLocked(Handle& h) {
  if (!h.in_flight.has_value()) return Status::OK();
  const ShardSessionOptions& s = options_.session;
  const Deadline attempt_deadline = s.call_timeout.IsZero()
                                        ? Deadline()
                                        : Deadline::After(s.call_timeout);
  // Resend the parked frame with its ORIGINAL id: the worker either dedups
  // (it applied the original before the transport died) or applies it now.
  // Either way the outcome becomes known, exactly once.
  auto frame_or = AttemptLocked(h, h.in_flight->request_id,
                                h.in_flight->frame, attempt_deadline);
  CDIBOT_RETURN_IF_ERROR(frame_or.status());
  auto hdr_or = DecodeResponseHeader(frame_or.value());
  CDIBOT_RETURN_IF_ERROR(hdr_or.status());
  ResponseFrame hdr = std::move(hdr_or).value();

  OutboxEntry entry = std::move(*h.in_flight);
  h.in_flight.reset();

  auto req_or = DecodeRequestHeader(entry.frame);
  const MessageKind kind =
      req_or.ok() ? req_or.value().kind : MessageKind::kPing;
  if (kind == MessageKind::kExtractRange) {
    // The rebalance that issued this extract gave up on the move. The
    // extracted VMs exist only in the response fragment now — install
    // them straight back where they came from, as an ordinary (outboxed)
    // mutation, so they cannot evaporate.
    if (hdr.status.ok()) {
      StreamCheckpoint fragment = DecodeCheckpoint(hdr.reader);
      if (hdr.reader.ok() && !fragment.vms.empty()) {
        const uint64_t id = h.next_request_id++;
        return MutateLocked(h, id, EncodeInstallVms(id, fragment));
      }
    }
    return Status::OK();
  }
  // A worker-rejected mutation is a deterministic failure: it did not
  // apply, so it stays out of the replay log. The original caller already
  // saw a transport error for this request; the data-quality trail (shed /
  // deferred accounting) is how its absence surfaces.
  if (hdr.status.ok()) h.outbox.push_back(std::move(entry));
  if (h.outbox_gauge != nullptr) {
    h.outbox_gauge->Set(static_cast<double>(h.outbox.size()));
  }
  return Status::OK();
}

StatusOr<std::string> ShardCoordinator::CallLocked(Handle& h,
                                                   uint64_t request_id,
                                                   const std::string& frame,
                                                   const Deadline& deadline) {
  const ShardSessionOptions& s = options_.session;
  const size_t max_attempts = std::max<size_t>(1, s.max_call_attempts);
  Status last = Status::Unavailable("shard call never attempted");
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      Metrics().call_retries->Increment();
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.call_retries;
    }
    if (deadline.Expired()) {
      last = Status::Aborted("shard call deadline expired");
      break;
    }
    if (h.channel == nullptr || h.channel->closed()) {
      Status est = EstablishSessionLocked(h);
      if (!est.ok()) {
        last = est;
        // The worker rejecting the handshake (bad engine options) is
        // permanent; a dead host cannot come back without RecoverShard;
        // anything else (chaos eating the hello) is worth another dial.
        if (EstablishPermanent(est)) break;
        if (h.host == nullptr || !h.host->Alive()) break;
        continue;
      }
    }
    if (h.in_flight.has_value() && h.in_flight->request_id != request_id) {
      Status resolved = ResolveInFlightLocked(h);
      if (!resolved.ok()) {
        last = resolved;
        if (h.channel != nullptr) {
          h.channel->Close();
          h.channel.reset();
        }
        continue;
      }
    }
    Deadline attempt_deadline = deadline;
    if (!s.call_timeout.IsZero() &&
        (deadline.IsInfinite() || s.call_timeout < deadline.Remaining())) {
      attempt_deadline = Deadline::After(s.call_timeout);
    }
    auto frame_or = AttemptLocked(h, request_id, frame, attempt_deadline);
    if (frame_or.ok()) return frame_or;
    last = frame_or.status();
    // Backpressure is not a connection problem; surface it untouched.
    if (last.code() == StatusCode::kResourceExhausted) break;
    // With no per-attempt timeout configured, Aborted means the caller's
    // own deadline expired (a gather straggler): keep the channel — the
    // stale response drains on the next call.
    if (last.code() == StatusCode::kAborted &&
        (s.call_timeout.IsZero() || deadline.Expired())) {
      break;
    }
    // The connection is suspect (closed, torn frame, CRC poison, or a
    // swallowed response past its attempt budget): drop it. The next
    // attempt redials and resends the same id; the worker's session dedup
    // makes the resend exact.
    if (h.channel != nullptr) {
      h.channel->Close();
      h.channel.reset();
    }
  }
  if (last.code() == StatusCode::kUnavailable ||
      last.code() == StatusCode::kDataLoss) {
    MarkDead(h);
  }
  return last;
}

Status ShardCoordinator::MutateLocked(Handle& h, uint64_t request_id,
                                      std::string frame) {
  // Park the frame BEFORE the first send: from here until a response
  // decodes, the outcome is unknown and this slot is the one source of
  // truth for "must be resolved before any new traffic".
  h.in_flight = OutboxEntry{request_id, std::move(frame)};
  // Mutations wait out the worker (infinite overall deadline): an
  // abandoned mutation would be half-applied from the coordinator's point
  // of view, and the outbox must stay an exact replay log.
  auto frame_or = CallLocked(h, request_id, h.in_flight->frame, Deadline());
  if (!frame_or.ok()) return frame_or.status();  // outcome unknown: parked
  auto hdr_or = DecodeResponseHeader(frame_or.value());
  if (!hdr_or.ok()) return hdr_or.status();
  OutboxEntry entry = std::move(*h.in_flight);
  h.in_flight.reset();
  const Status st = hdr_or.value().status;
  // Worker-rejected mutations never applied; keep them out of the log.
  if (st.ok()) h.outbox.push_back(std::move(entry));
  if (h.outbox_gauge != nullptr) {
    h.outbox_gauge->Set(static_cast<double>(h.outbox.size()));
  }
  return st;
}

void ShardCoordinator::HeartbeatLoop() {
  const ShardSessionOptions& s = options_.session;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(heartbeat_mu_);
      heartbeat_cv_.wait_for(
          lock, std::chrono::milliseconds(s.heartbeat_interval.millis()),
          [this] { return heartbeat_stop_; });
      if (heartbeat_stop_) return;
    }
    for (auto& hp : handles_) {
      Handle& h = *hp;
      std::unique_lock<std::mutex> lock(h.mu, std::try_to_lock);
      // A shard busy with real traffic is provably alive; skip it rather
      // than queue a probe behind a long call.
      if (!lock.owns_lock()) continue;
      if (!h.alive.load(std::memory_order_acquire)) continue;
      if (h.channel == nullptr || h.channel->closed()) continue;
      const uint64_t id = h.next_request_id++;
      const auto t0 = std::chrono::steady_clock::now();
      auto frame_or = AttemptLocked(h, id, EncodePing(id),
                                    Deadline::After(s.heartbeat_timeout));
      ResponseFrame hdr;
      if (CheckResponse(frame_or, &hdr).ok()) {
        const auto rtt = std::chrono::steady_clock::now() - t0;
        Metrics().heartbeat_rtt_ns->Record(static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(rtt)
                .count()));
        Metrics().heartbeats->Increment();
        const TimePoint wm = hdr.reader.Time();
        if (hdr.reader.ok()) h.last_watermark = wm;
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++stats_.heartbeats;
      } else {
        // Probe failed: drop the connection so the next real call redials;
        // if the host itself is gone, the shard is dead, not slow.
        Metrics().heartbeat_failures->Increment();
        if (h.channel != nullptr) {
          h.channel->Close();
          h.channel.reset();
        }
        if (h.host == nullptr || !h.host->Alive()) MarkDead(h);
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++stats_.heartbeat_failures;
      }
    }
  }
}

std::shared_lock<std::shared_mutex> ShardCoordinator::ReadTopology() const {
  // Passing through the gate first makes writers starvation-free: a writer
  // waiting inside WriteTopology() holds the gate, which parks every new
  // reader here until the in-flight readers drain and the writer commits.
  std::lock_guard<std::mutex> gate(topo_gate_);
  return std::shared_lock<std::shared_mutex>(topo_mu_);
}

std::unique_lock<std::shared_mutex> ShardCoordinator::WriteTopology() const {
  std::lock_guard<std::mutex> gate(topo_gate_);
  return std::unique_lock<std::shared_mutex>(topo_mu_);
}

Status ShardCoordinator::RegisterVm(const VmServiceInfo& vm) {
  return RegisterVms({vm});
}

Status ShardCoordinator::RegisterVms(const std::vector<VmServiceInfo>& vms) {
  std::unique_lock<std::shared_mutex> topo = WriteTopology();
  // The first bulk registration defines the balanced cut; later arrivals
  // route by the existing map so no silent handoff happens outside
  // Rebalance().
  const bool recut = registry_.empty();
  for (const VmServiceInfo& vm : vms) {
    if (vm.vm_id.empty()) {
      return Status::InvalidArgument("VM registration without an id");
    }
    registry_[vm.vm_id] = vm;
  }
  if (recut && !registry_.empty()) {
    std::vector<std::string> ids;
    ids.reserve(registry_.size());
    for (const auto& [id, info] : registry_) ids.push_back(id);
    map_ = ShardMap::Balanced(ids, handles_.size());
  }
  Status first_err;
  for (const VmServiceInfo& vm : vms) {
    Handle& h = *handles_[map_.OwnerOf(vm.vm_id)];
    std::lock_guard<std::mutex> lock(h.mu);
    if (!h.alive.load(std::memory_order_acquire)) {
      if (first_err.ok()) {
        first_err = Status::Unavailable("owner shard down for " + vm.vm_id);
      }
      continue;
    }
    const uint64_t id = h.next_request_id++;
    Status st = MutateLocked(h, id, EncodeRegisterVm(id, vm));
    if (!st.ok() && first_err.ok()) first_err = st;
  }
  return first_err;
}

Status ShardCoordinator::Ingest(const RawEvent& event) {
  std::shared_lock<std::shared_mutex> topo = ReadTopology();
  const size_t owner = map_.OwnerOf(event.target);
  Metrics().events_routed->Increment();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.events_routed;
  }

  if (!queues_.empty()) {
    flow::FlowClass klass = flow::FlowClass::kPerformance;
    if (const auto handle = catalog_->FindHandle(event.name)) {
      klass = flow::FlowClassForCategory(handle->spec->category);
    }
    RawEvent copy = event;
    switch (queues_[owner]->TryPush(std::move(copy), klass)) {
      case flow::AdmitResult::kAdmitted:
        break;
      case flow::AdmitResult::kShed:
        return Status::OK();  // accounted via the shed callback
      case flow::AdmitResult::kQueueFull: {
        // Full of unsheddable events: apply real backpressure by draining
        // to the shard ourselves, then admit.
        PumpQueueLocked(owner);
        {
          Handle& h = *handles_[owner];
          std::lock_guard<std::mutex> lock(h.mu);
          Status st = FlushPendingLocked(h);
          if (!st.ok() && st.code() != StatusCode::kUnavailable) return st;
        }
        if (!queues_[owner]->Push(event, klass)) {
          return Status::Unavailable("admission queue closed");
        }
        break;
      }
    }
    if (queues_[owner]->depth() >= options_.ingest_batch_size) {
      PumpQueueLocked(owner);
      Handle& h = *handles_[owner];
      std::lock_guard<std::mutex> lock(h.mu);
      Status st = FlushPendingLocked(h);
      // A down shard buffers; delivery resumes after recovery.
      if (!st.ok() && st.code() != StatusCode::kUnavailable) return st;
    }
    return Status::OK();
  }

  Handle& h = *handles_[owner];
  std::lock_guard<std::mutex> lock(h.mu);
  h.pending.push_back(event);
  if (h.pending.size() >= options_.ingest_batch_size) {
    Status st = FlushPendingLocked(h);
    if (!st.ok() && st.code() != StatusCode::kUnavailable) return st;
  }
  return Status::OK();
}

Status ShardCoordinator::IngestBatch(const std::vector<RawEvent>& events) {
  for (const RawEvent& ev : events) {
    CDIBOT_RETURN_IF_ERROR(Ingest(ev));
  }
  return Status::OK();
}

Status ShardCoordinator::ExpectDelivery(const std::string& target,
                                        uint64_t count) {
  std::shared_lock<std::shared_mutex> topo = ReadTopology();
  Handle& h = *handles_[map_.OwnerOf(target)];
  std::lock_guard<std::mutex> lock(h.mu);
  if (!h.alive.load(std::memory_order_acquire)) {
    return Status::Unavailable("owner shard down for " + target);
  }
  const uint64_t id = h.next_request_id++;
  return MutateLocked(h, id, EncodeExpectDelivery(id, target, count));
}

Status ShardCoordinator::AdvanceWatermarkTo(TimePoint t) {
  {
    std::lock_guard<std::mutex> lock(wm_mu_);
    if (!wm_target_.has_value() || t > *wm_target_) wm_target_ = t;
  }
  std::shared_lock<std::shared_mutex> topo = ReadTopology();
  Status first_err;
  for (auto& hp : handles_) {
    Handle& h = *hp;
    std::lock_guard<std::mutex> lock(h.mu);
    if (!h.alive.load(std::memory_order_acquire)) continue;  // re-applied
    const uint64_t id = h.next_request_id++;
    Status st = MutateLocked(h, id, EncodeAdvanceWatermark(id, t));
    if (!st.ok() && st.code() != StatusCode::kUnavailable &&
        first_err.ok()) {
      first_err = st;
    }
  }
  return first_err;
}

void ShardCoordinator::PumpQueueLocked(size_t shard) {
  if (queues_.empty()) return;
  std::vector<RawEvent> drained;
  RawEvent ev;
  while (queues_[shard]->TryPop(&ev)) drained.push_back(std::move(ev));
  Handle& h = *handles_[shard];
  std::lock_guard<std::mutex> lock(h.mu);
  for (RawEvent& e : drained) h.pending.push_back(std::move(e));
  h.depth_gauge->Set(static_cast<double>(queues_[shard]->depth()));
}

Status ShardCoordinator::FlushPendingLocked(Handle& h) {
  if (h.pending.empty()) return Status::OK();
  if (!h.alive.load(std::memory_order_acquire)) {
    return Status::Unavailable("shard down");
  }
  const uint64_t id = h.next_request_id++;
  std::string frame = EncodeIngestBatch(id, h.pending);
  // Ownership of the buffered events moves into the frame here: if the
  // call's outcome ends up unknown, the parked in-flight slot (not
  // `pending`) carries them to resolution, so recovery can never deliver
  // them twice.
  h.pending.clear();
  CDIBOT_RETURN_IF_ERROR(MutateLocked(h, id, std::move(frame)));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.batches_flushed;
  }
  Metrics().batches_flushed->Increment();
  return Status::OK();
}

Status ShardCoordinator::FlushAllLocked() {
  Status first_err;
  for (size_t i = 0; i < handles_.size(); ++i) {
    PumpQueueLocked(i);
    Handle& h = *handles_[i];
    std::lock_guard<std::mutex> lock(h.mu);
    Status st = FlushPendingLocked(h);
    if (!st.ok() && st.code() != StatusCode::kUnavailable && first_err.ok()) {
      first_err = st;
    }
  }
  std::map<std::string, uint64_t> sheds;
  {
    std::lock_guard<std::mutex> lock(shed_mu_);
    sheds.swap(shed_pending_);
  }
  for (const auto& [target, count] : sheds) {
    Handle& h = *handles_[map_.OwnerOf(target)];
    std::lock_guard<std::mutex> lock(h.mu);
    Status st;
    if (h.alive.load(std::memory_order_acquire)) {
      const uint64_t id = h.next_request_id++;
      st = MutateLocked(h, id, EncodeRecordShed(id, target, count));
    } else {
      st = Status::Unavailable("shard down");
    }
    if (!st.ok()) {
      std::lock_guard<std::mutex> shed_lock(shed_mu_);
      shed_pending_[target] += count;
      if (st.code() != StatusCode::kUnavailable && first_err.ok()) {
        first_err = st;
      }
    }
  }
  return first_err;
}

Status ShardCoordinator::Flush() {
  std::shared_lock<std::shared_mutex> topo = ReadTopology();
  return FlushAllLocked();
}

StatusOr<DailyCdiResult> ShardCoordinator::Snapshot() {
  std::shared_lock<std::shared_mutex> topo = ReadTopology();
  return GatherLocked(Deadline());
}

StatusOr<DailyCdiResult> ShardCoordinator::Preview(const Deadline& deadline) {
  std::shared_lock<std::shared_mutex> topo = ReadTopology();
  return GatherLocked(deadline);
}

StatusOr<VmCdi> ShardCoordinator::FleetCdi() {
  CDIBOT_ASSIGN_OR_RETURN(DailyCdiResult result, Snapshot());
  return result.fleet;
}

void ShardCoordinator::ScatterLocked(
    const Deadline& deadline,
    const std::function<void(size_t, Handle&, const Deadline&)>& fn) {
  // Pool threads carry no trace context of their own, so hand them the
  // caller's — the per-shard RPCs (and the worker spans they induce)
  // become children of the caller's span.
  const obs::TraceContext scatter_ctx = obs::CurrentTraceContext();
  pool_->ParallelFor(handles_.size(), [&](size_t i) {
    obs::ScopedTraceContext scoped_ctx(scatter_ctx);
    Handle& h = *handles_[i];
    std::lock_guard<std::mutex> lock(h.mu);
    if (!h.alive.load(std::memory_order_acquire)) return;
    // Per-shard receive budget: the caller's remaining time plus a grace
    // window, so a straggler is dropped coordinator-side just after the
    // worker itself would have given up.
    const Deadline recv_deadline =
        deadline.IsInfinite()
            ? Deadline()
            : Deadline::After(deadline.Remaining() +
                              Duration::Millis(kGatherGraceMs));
    fn(i, h, recv_deadline);
  });
}

StatusOr<DailyCdiResult> ShardCoordinator::GatherLocked(
    const Deadline& deadline) {
  CDIBOT_RETURN_IF_ERROR(FlushAllLocked());
  const CoordMetrics& m = Metrics();
  obs::ScopedTimer gather_timer(m.gather_ns);
  TRACE_SPAN("shard.gather");

  const size_t n = handles_.size();
  const int64_t budget_ms =
      deadline.IsInfinite() ? -1 : deadline.Remaining().millis();
  std::vector<std::optional<ShardSnapshot>> snaps(n);
  // Scatter: every shard computes its local snapshot concurrently; each
  // channel is serialized by its handle mutex, the slots are disjoint.
  ScatterLocked(deadline, [&](size_t i, Handle& h,
                              const Deadline& recv_deadline) {
    TRACE_SPAN("shard.gather.shard");
    obs::ScopedTimer shard_timer(m.gather_shard_ns);
    const uint64_t id = h.next_request_id++;
    auto frame_or =
        CallLocked(h, id, EncodeGather(id, budget_ms), recv_deadline);
    ResponseFrame hdr;
    if (!CheckResponse(frame_or, &hdr).ok()) return;  // straggler or dead
    ShardSnapshot snap = DecodeSnapshot(hdr.reader);
    if (!hdr.reader.ok()) return;
    h.last_watermark = snap.watermark;
    snaps[i] = std::move(snap);
  });

  // Gather: merge in shard-index order. Doubles fold through the canonical
  // ascending-vm_id fleet fold; the baseline merges as raw integer sums —
  // both bit-identical to a single-node snapshot over the same rows.
  DailyCdiResult out;
  CanonicalCdiFold fold;
  uint64_t base_interruptions = 0;
  Duration base_downtime;
  std::unordered_set<std::string> sample_reasons;
  size_t responded = 0;
  bool shard_missing = false;
  for (size_t i = 0; i < n; ++i) {
    if (!snaps[i].has_value()) {
      shard_missing = true;
      out.vms_deferred += OwnedVmCountLocked(i);
      continue;
    }
    ++responded;
    ShardSnapshot& s = *snaps[i];
    for (VmCdiRecord& row : s.per_vm) {
      fold.Add(row.vm_id, row.cdi);
      out.per_vm.push_back(std::move(row));
    }
    for (EventCdiRecord& row : s.per_event) {
      out.per_event.push_back(std::move(row));
    }
    base_interruptions += s.baseline_interruptions;
    base_downtime += s.baseline_downtime;
    out.fleet_service_time += s.fleet_service_time;
    out.resolve_stats.Merge(s.resolve_stats);
    out.quality.Merge(s.quality);
    out.vms_evaluated += s.vms_evaluated;
    out.vms_skipped += s.vms_skipped;
    out.vms_failed += s.vms_failed;
    out.vms_deferred += s.vms_deferred;
    out.vms_degraded += s.vms_degraded;
    if (out.first_vm_error.ok() && !s.first_vm_error.ok()) {
      out.first_vm_error = s.first_vm_error;
    }
    for (std::string& sample : s.vm_error_samples) {
      if (out.vm_error_samples.size() >= DailyCdiResult::kMaxVmErrorSamples) {
        break;
      }
      // One exemplar per distinct reason fleet-wide, like the single-node
      // job ("vm <id>: <reason>" — dedup on the reason part).
      const size_t sep = sample.find(": ");
      const std::string reason =
          sep == std::string::npos ? sample : sample.substr(sep + 2);
      if (sample_reasons.insert(reason).second) {
        out.vm_error_samples.push_back(std::move(sample));
      }
    }
  }
  if (responded == 0) {
    return Status::Unavailable("no shard responded to the gather");
  }
  out.fleet = fold.Finalize();
  out.fleet_baseline =
      UnavailabilityPartial::FromRaw(base_interruptions, base_downtime,
                                     out.fleet_service_time)
          .Finalize();
  std::sort(out.per_vm.begin(), out.per_vm.end(),
            [](const VmCdiRecord& a, const VmCdiRecord& b) {
              return a.vm_id < b.vm_id;
            });
  std::sort(out.per_event.begin(), out.per_event.end(),
            [](const EventCdiRecord& a, const EventCdiRecord& b) {
              return std::tie(a.vm_id, a.event_name) <
                     std::tie(b.vm_id, b.event_name);
            });
  if (shard_missing) {
    // Missing shards degrade the result, they never silently shrink the
    // fleet: their VMs are counted deferred and the quality flag is set
    // AFTER the merges so no Refresh() can clear it.
    out.quality.degraded = true;
  }

  m.gathers->Increment();
  if (shard_missing) m.degraded_gathers->Increment();
  TimePoint min_wm;
  bool first = true;
  for (auto& hp : handles_) {
    std::lock_guard<std::mutex> lock(hp->mu);
    if (first || hp->last_watermark < min_wm) min_wm = hp->last_watermark;
    first = false;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.gathers;
    if (shard_missing) ++stats_.degraded_gathers;
    stats_.min_watermark = min_wm;
  }
  m.min_watermark_ms->Set(static_cast<double>(min_wm.millis()));
  return out;
}

TimePoint ShardCoordinator::Watermark() {
  std::shared_lock<std::shared_mutex> topo = ReadTopology();
  TimePoint min_wm;
  bool first = true;
  for (auto& hp : handles_) {
    Handle& h = *hp;
    std::lock_guard<std::mutex> lock(h.mu);
    if (h.alive.load(std::memory_order_acquire)) {
      const uint64_t id = h.next_request_id++;
      auto frame_or = CallLocked(h, id, EncodePing(id), Deadline());
      ResponseFrame hdr;
      if (CheckResponse(frame_or, &hdr).ok()) {
        const TimePoint wm = hdr.reader.Time();
        if (hdr.reader.ok()) h.last_watermark = wm;
      }
    }
    // A dead shard contributes its last reported watermark: the global
    // value stalls (truthfully) until the shard recovers.
    if (first || h.last_watermark < min_wm) min_wm = h.last_watermark;
    first = false;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.min_watermark = min_wm;
  }
  Metrics().min_watermark_ms->Set(static_cast<double>(min_wm.millis()));
  return min_wm;
}

Status ShardCoordinator::CheckpointShardsLocked() {
  Status first_err;
  for (auto& hp : handles_) {
    Handle& h = *hp;
    std::lock_guard<std::mutex> lock(h.mu);
    if (!h.alive.load(std::memory_order_acquire)) continue;
    const uint64_t id = h.next_request_id++;
    auto frame_or = CallLocked(h, id, EncodeCheckpointRequest(id), Deadline());
    ResponseFrame hdr;
    Status st = CheckResponse(frame_or, &hdr);
    if (st.ok()) {
      StreamCheckpoint ckpt = DecodeCheckpoint(hdr.reader);
      st = hdr.reader.status();
      if (st.ok()) {
        h.last_checkpoint = std::move(ckpt);
        h.has_checkpoint = true;
        // Everything acknowledged so far is inside the checkpoint; the
        // outbox restarts as the post-checkpoint replay log.
        h.outbox.clear();
        h.replay_cursor = 0;
        if (h.outbox_gauge != nullptr) h.outbox_gauge->Set(0.0);
      }
    }
    if (!st.ok() && first_err.ok()) first_err = st;
  }
  return first_err;
}

Status ShardCoordinator::CheckpointShards() {
  std::shared_lock<std::shared_mutex> topo = ReadTopology();
  return CheckpointShardsLocked();
}

StatusOr<std::vector<obs::ProcessObs>> ShardCoordinator::PullWorkerObs(
    bool include_spans, const Deadline& deadline) {
  std::shared_lock<std::shared_mutex> topo = ReadTopology();
  TRACE_SPAN("shard.obs_pull");
  const size_t n = handles_.size();
  std::vector<std::optional<obs::ProcessObs>> partial(n);
  std::vector<Status> errs(n);
  ScatterLocked(deadline, [&](size_t i, Handle& h,
                              const Deadline& recv_deadline) {
    const uint64_t id = h.next_request_id++;
    // Bracket the call with our own clock: the worker stamps now_ns while
    // handling it, i.e. somewhere inside [t0, t1]. The midpoint estimates
    // that instant on our clock to within half the round trip — good
    // enough to land its spans on the right spot of a merged trace.
    const uint64_t t0 = obs::MonotonicNowNs();
    auto frame_or =
        CallLocked(h, id, EncodeObsPull(id, include_spans), recv_deadline);
    const uint64_t t1 = obs::MonotonicNowNs();
    ResponseFrame hdr;
    Status st = CheckResponse(frame_or, &hdr);
    if (st.ok()) {
      obs::WorkerObsSnapshot snap = DecodeWorkerObs(hdr.reader);
      st = hdr.reader.status();
      if (st.ok()) {
        obs::ProcessObs p;
        p.process = "shard-" + std::to_string(i);
        const uint64_t mid = t0 + (t1 - t0) / 2;
        p.clock_offset_ns = static_cast<int64_t>(mid - snap.now_ns);
        p.snap = std::move(snap);
        partial[i] = std::move(p);
        return;
      }
    }
    errs[i] = st;
  });
  std::vector<obs::ProcessObs> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (partial[i].has_value()) out.push_back(std::move(*partial[i]));
  }
  if (out.empty()) {
    // Dead shards merely degrade the fleet view; only a fleet with no
    // reachable worker at all is an error worth failing the pull for.
    for (const Status& st : errs) {
      if (!st.ok()) return st;
    }
    return Status::Unavailable("no shard answered the obs pull");
  }
  return out;
}

Status ShardCoordinator::Rebalance() {
  std::unique_lock<std::shared_mutex> topo = WriteTopology();
  TRACE_SPAN("shard.rebalance");
  Status first_err = FlushAllLocked();

  std::vector<std::string> ids;
  ids.reserve(registry_.size());
  for (const auto& [id, info] : registry_) ids.push_back(id);
  const ShardMap target = ShardMap::Balanced(ids, handles_.size());
  const std::vector<ShardMap::Move> moves = ShardMap::Diff(map_, target);

  for (const ShardMap::Move& move : moves) {
    Handle& src = *handles_[move.from];
    Handle& dst = *handles_[move.to];
    if (!src.alive.load(std::memory_order_acquire) ||
        !dst.alive.load(std::memory_order_acquire)) {
      if (first_err.ok()) {
        first_err = Status::Unavailable("rebalance move skipped: shard down");
      }
      continue;
    }
    StreamCheckpoint frag;
    {
      std::lock_guard<std::mutex> lock(src.mu);
      const uint64_t id = src.next_request_id++;
      // The extract is parked like a mutation: if the transport dies with
      // the outcome unknown, resolution reinstalls the extracted VMs on
      // the source so they cannot be lost with the move abandoned.
      src.in_flight =
          OutboxEntry{id, EncodeExtractRange(id, move.range.lo,
                                             move.range.hi)};
      auto frame_or = CallLocked(src, id, src.in_flight->frame, Deadline());
      ResponseFrame hdr;
      Status st = CheckResponse(frame_or, &hdr);
      if (frame_or.ok()) {
        // The outcome is known (even if the worker returned an error);
        // nothing is in flight anymore.
        src.in_flight.reset();
      }
      if (st.ok()) {
        frag = DecodeCheckpoint(hdr.reader);
        st = hdr.reader.status();
      }
      if (!st.ok()) {
        if (first_err.ok()) first_err = st;
        continue;
      }
    }
    const size_t moved_vms = frag.vms.size();
    Status install;
    {
      std::lock_guard<std::mutex> lock(dst.mu);
      const uint64_t id = dst.next_request_id++;
      install = MutateLocked(dst, id, EncodeInstallVms(id, frag));
    }
    if (!install.ok()) {
      // Put the extracted state back where it came from; if the source is
      // gone too, park the fragment for reinstall at recovery time.
      bool restored = false;
      {
        std::lock_guard<std::mutex> lock(src.mu);
        if (src.alive.load(std::memory_order_acquire)) {
          const uint64_t id = src.next_request_id++;
          restored =
              MutateLocked(src, id, EncodeInstallVms(id, frag)).ok();
        }
      }
      if (!restored) {
        parked_.push_back(ParkedFragment{move.range, std::move(frag)});
      }
      if (first_err.ok()) first_err = install;
      continue;
    }
    // Ownership flips only after the transfer succeeded, so an aborted
    // rebalance leaves every range with exactly one live owner.
    map_.Assign(move.range, move.to);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.vms_moved += moved_vms;
    }
    Metrics().vms_moved->Add(static_cast<double>(moved_vms));
  }

  // The extracts mutated source shards in ways outbox replay cannot redo
  // (an extract is not an acknowledged *inbound* mutation), so recovery
  // baselines must advance past them: checkpoint everything now.
  Status ckpt = CheckpointShardsLocked();
  if (first_err.ok()) first_err = ckpt;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rebalances;
  }
  Metrics().rebalances->Increment();
  return first_err;
}

Status ShardCoordinator::InjectShardFailure(size_t shard) {
  std::unique_lock<std::shared_mutex> topo = WriteTopology();
  if (shard >= handles_.size()) {
    return Status::InvalidArgument("no such shard");
  }
  Handle& h = *handles_[shard];
  std::lock_guard<std::mutex> lock(h.mu);
  if (!h.alive.load(std::memory_order_acquire)) return Status::OK();
  // Kill the host (in-process: channel closes, engine destroyed; process
  // mode: SIGKILL — the honest crash) and drop our side of the connection.
  if (h.host != nullptr) h.host->Kill();
  if (h.channel != nullptr) {
    h.channel->Close();
    h.channel.reset();
  }
  MarkDead(h);
  return Status::OK();
}

Status ShardCoordinator::RecoverShard(size_t shard) {
  std::unique_lock<std::shared_mutex> topo = WriteTopology();
  if (shard >= handles_.size()) {
    return Status::InvalidArgument("no such shard");
  }
  Handle& h = *handles_[shard];
  std::lock_guard<std::mutex> lock(h.mu);
  if (h.alive.load(std::memory_order_acquire)) return Status::OK();

  CDIBOT_RETURN_IF_ERROR(h.host->Respawn());

  const auto fail = [&](Status st) {
    if (h.channel != nullptr) {
      h.channel->Close();
      h.channel.reset();
    }
    if (h.host != nullptr) h.host->Kill();
    h.alive.store(false, std::memory_order_release);
    return st;
  };

  // Establish rebuilds the engine: restore the checkpoint baseline, then
  // replay every acknowledged mutation since, verbatim and in order — the
  // rebuilt engine is bit-identical to the dead one at its last
  // acknowledged request.
  Status est = EstablishWithRetryLocked(h);
  if (!est.ok()) return fail(est);

  // A call interrupted by the crash resolves before any new traffic; under
  // chaos the first resolution attempts may fail with the session intact,
  // so spend the call budget on it.
  Status resolved;
  for (size_t attempt = 0;
       attempt < std::max<size_t>(1, options_.session.max_call_attempts) &&
       h.in_flight.has_value();
       ++attempt) {
    if (h.channel == nullptr || h.channel->closed()) {
      est = EstablishWithRetryLocked(h);
      if (!est.ok()) return fail(est);
    }
    resolved = ResolveInFlightLocked(h);
    if (resolved.ok()) break;
    if (h.channel != nullptr) {
      h.channel->Close();
      h.channel.reset();
    }
  }
  if (h.in_flight.has_value()) return fail(resolved);

  // Watermark advances are monotonic; re-applying the high-water target is
  // idempotent and covers advances the shard missed while down.
  std::optional<TimePoint> wm_target;
  {
    std::lock_guard<std::mutex> wm_lock(wm_mu_);
    wm_target = wm_target_;
  }
  if (wm_target.has_value()) {
    const uint64_t id = h.next_request_id++;
    Status st = MutateLocked(h, id, EncodeAdvanceWatermark(id, *wm_target));
    if (!st.ok()) return fail(st);
  }
  // Fragments orphaned by a failed rebalance transfer go to their owner.
  for (auto it = parked_.begin(); it != parked_.end();) {
    if (map_.OwnerOf(it->range.lo) != shard) {
      ++it;
      continue;
    }
    const uint64_t id = h.next_request_id++;
    Status st = MutateLocked(h, id, EncodeInstallVms(id, it->fragment));
    if (!st.ok()) return fail(st);
    it = parked_.erase(it);
  }

  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.shards_recovered;
  }
  Metrics().recoveries->Increment();
  size_t alive = 0;
  for (const auto& other : handles_) {
    if (other->alive.load(std::memory_order_acquire)) ++alive;
  }
  Metrics().shards_alive->Set(static_cast<double>(alive));
  return Status::OK();
}

bool ShardCoordinator::ShardAlive(size_t shard) const {
  if (shard >= handles_.size()) return false;
  return handles_[shard]->alive.load(std::memory_order_acquire);
}

ShardMap ShardCoordinator::Map() const {
  std::shared_lock<std::shared_mutex> topo = ReadTopology();
  return map_;
}

size_t ShardCoordinator::OwnedVmCountLocked(size_t shard) const {
  size_t count = 0;
  for (const auto& [id, info] : registry_) {
    if (map_.OwnerOf(id) == shard) ++count;
  }
  return count;
}

ShardFleetStats ShardCoordinator::stats() const {
  ShardFleetStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  out.num_shards = handles_.size();
  out.shards_alive = 0;
  for (const auto& h : handles_) {
    if (h->alive.load(std::memory_order_acquire)) ++out.shards_alive;
  }
  return out;
}

}  // namespace cdibot::shard
