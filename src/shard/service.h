#ifndef CDIBOT_SHARD_SERVICE_H_
#define CDIBOT_SHARD_SERVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "shard/message.h"
#include "shard/socket_transport.h"
#include "stream/streaming_engine.h"

namespace cdibot::shard {

/// The worker-side request handler: one engine, one frame in, one frame
/// out. Transport-agnostic — ShardWorker drives it over an in-process
/// channel, ShardServer over a socket, the worker binary over whatever the
/// coordinator dialed. Single-threaded use: one Handle() at a time.
///
/// Session state (exactly-once over a lossy transport): the engine is
/// created by a kInit request, not at construction, so a freshly spawned
/// process and a worker resuming after a dropped connection look different
/// to the coordinator's kHello probe (`engine_ready`). Mutating requests
/// are tracked by request id:
///
///   - `last_applied` is the highest tracked id applied; a request at or
///     below it already executed, so its resend returns plain OK instead
///     of executing twice (the chaos layer duplicates frames on purpose).
///   - the full response of the most recent tracked request is cached, so
///     a retry of an in-flight call whose response the network swallowed
///     gets the original bytes back — same status, same payload.
///   - kInit/kRestore reset `last_applied` to zero: a restore travels with
///     a fresh (large) id and is followed by an outbox replay using the
///     original (smaller) ids, which must execute, not dedup.
class ShardService {
 public:
  /// `catalog` must outlive the service. `weights` may be null when every
  /// kInit carries a WeightSpec (out-of-process workers build their own
  /// model); otherwise it must outlive the service. `base_options`
  /// supplies process-local knobs (thread pool); window/lateness/shards
  /// arrive via kInit.
  ShardService(size_t index, const EventCatalog* catalog,
               const EventWeightModel* weights,
               StreamingCdiOptions base_options);

  ShardService(const ShardService&) = delete;
  ShardService& operator=(const ShardService&) = delete;

  /// Decodes one request frame, applies it, returns the response frame.
  /// Malformed frames and engine errors come back as status responses —
  /// the caller's serve loop never dies on bad input.
  std::string Handle(const std::string& frame);

  /// Simulated crash: drops the engine and all session state, as if the
  /// process had been replaced. The next kHello reports engine_ready
  /// false.
  void ResetEngine();

  bool engine_ready() const { return engine_.has_value(); }
  size_t index() const { return index_; }

 private:
  std::string Dispatch(const RequestFrame& req, WireReader& r);

  const size_t index_;
  const EventCatalog* catalog_;
  const EventWeightModel* weights_;
  StreamingCdiOptions base_options_;
  /// Engine options as configured by the last kInit (restore reuses them).
  StreamingCdiOptions options_;
  /// Weight model built from a kInit WeightSpec (process mode); when set,
  /// weights_ points at it.
  std::unique_ptr<EventWeightModel> owned_weights_;
  std::optional<StreamingCdiEngine> engine_;

  uint64_t last_applied_ = 0;
  uint64_t cached_id_ = 0;
  std::string cached_response_;
};

/// Serves one ShardService over a socket listener: accept one connection,
/// answer requests until it drops, go back to accepting. The engine lives
/// in the service, not the connection — a dropped connection (chaos reset,
/// coordinator reconnect) loses nothing, which is what makes session
/// *resumption* (as opposed to restore-from-checkpoint) possible.
///
/// Stop() ends the loop cleanly; Kill() additionally resets the service's
/// engine, simulating a worker crash while keeping the listener bound so
/// the coordinator's reconnect finds a "fresh process" at the same address.
class ShardServer {
 public:
  /// `service` must outlive the server. Takes ownership of the listener.
  ShardServer(ShardService* service, SocketListener listener,
              SocketTransportOptions transport_options = {});
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Starts the accept/serve thread.
  void Start();

  /// Stops serving: closes the live connection and the listener, joins.
  /// Idempotent. The engine (if any) survives in the service.
  void Stop();

  /// Stop() + engine reset: a crash. Restart with a fresh ShardServer or
  /// by calling Start() again (the listener is closed; callers that want
  /// the same address rebuild the listener).
  void Kill();

  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void Run();

  ShardService* service_;
  SocketListener listener_;
  const SocketTransportOptions transport_options_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  /// Live connection, guarded so Stop() can close it to wake a blocked
  /// Recv on the serve thread.
  std::mutex conn_mu_;
  std::shared_ptr<SocketTransport> conn_;
};

}  // namespace cdibot::shard

#endif  // CDIBOT_SHARD_SERVICE_H_
