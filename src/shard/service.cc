#include "shard/service.h"

#include <array>
#include <utility>
#include <vector>

#include "obs/fleet.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cdibot::shard {

namespace {

struct ServiceMetrics {
  obs::Counter* requests;
  obs::Counter* malformed;
  obs::Counter* duplicates;
  obs::Histogram* handle_ns;
};

const ServiceMetrics& Metrics() {
  static const ServiceMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    return ServiceMetrics{
        .requests = reg.GetCounter("shard.worker_requests"),
        .malformed = reg.GetCounter("shard.worker_malformed_frames"),
        .duplicates = reg.GetCounter("shard.worker_duplicate_requests"),
        .handle_ns = reg.GetHistogram("shard.worker_handle_ns"),
    };
  }();
  return m;
}

/// Worker-side per-kind RPC instrumentation (latency + frame sizes). The
/// table covers every kind once, so lookup on the hot path is an index.
struct RpcMetrics {
  obs::Histogram* handle_ns;
  obs::Histogram* req_bytes;
  obs::Histogram* resp_bytes;
};

constexpr uint32_t kNumKinds =
    static_cast<uint32_t>(MessageKind::kObsSnapshot) + 1;

const RpcMetrics& WorkerRpcMetrics(MessageKind kind) {
  static const std::array<RpcMetrics, kNumKinds>& table = *[] {
    auto* t = new std::array<RpcMetrics, kNumKinds>{};
    auto& reg = obs::MetricsRegistry::Global();
    for (uint32_t k = 1; k < kNumKinds; ++k) {
      const std::string base =
          std::string("shard.rpc.") +
          MessageKindName(static_cast<MessageKind>(k));
      (*t)[k] = RpcMetrics{
          .handle_ns = reg.GetHistogram(base + ".handle_ns"),
          .req_bytes = reg.GetHistogram(base + ".req_bytes"),
          .resp_bytes = reg.GetHistogram(base + ".resp_bytes"),
      };
    }
    return t;
  }();
  return table[static_cast<uint32_t>(kind)];
}

/// Span names must be literals (SpanRecord stores the pointer).
const char* RpcSpanName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kPing: return "shard.rpc.ping";
    case MessageKind::kRegisterVm: return "shard.rpc.register_vm";
    case MessageKind::kIngestBatch: return "shard.rpc.ingest_batch";
    case MessageKind::kGather: return "shard.rpc.gather";
    case MessageKind::kExtractRange: return "shard.rpc.extract_range";
    case MessageKind::kInstallVms: return "shard.rpc.install_vms";
    case MessageKind::kExpectDelivery: return "shard.rpc.expect_delivery";
    case MessageKind::kRecordShed: return "shard.rpc.record_shed";
    case MessageKind::kAdvanceWatermark:
      return "shard.rpc.advance_watermark";
    case MessageKind::kCheckpoint: return "shard.rpc.checkpoint";
    case MessageKind::kRestore: return "shard.rpc.restore";
    case MessageKind::kHello: return "shard.rpc.hello";
    case MessageKind::kInit: return "shard.rpc.init";
    case MessageKind::kObsSnapshot: return "shard.rpc.obs_snapshot";
  }
  return "shard.rpc.unknown";
}

/// Kinds that mutate engine state and therefore participate in the
/// exactly-once session protocol (dedup + response cache). Read-only
/// kinds (ping, gather, checkpoint, hello) are naturally idempotent.
/// kExtractRange mutates (it removes VMs) so a duplicated extract must
/// not run twice and hand out an empty fragment.
bool SessionTracked(MessageKind kind) {
  switch (kind) {
    case MessageKind::kRegisterVm:
    case MessageKind::kIngestBatch:
    case MessageKind::kExtractRange:
    case MessageKind::kInstallVms:
    case MessageKind::kExpectDelivery:
    case MessageKind::kRecordShed:
    case MessageKind::kAdvanceWatermark:
    case MessageKind::kRestore:
    case MessageKind::kInit:
    // An obs pull drains the tracer (destructive), so a retry whose
    // response the network swallowed must get the cached bytes back, not a
    // second (now empty) capture.
    case MessageKind::kObsSnapshot:
      return true;
    case MessageKind::kPing:
    case MessageKind::kGather:
    case MessageKind::kCheckpoint:
    case MessageKind::kHello:
      return false;
  }
  return false;
}

}  // namespace

ShardService::ShardService(size_t index, const EventCatalog* catalog,
                           const EventWeightModel* weights,
                           StreamingCdiOptions base_options)
    : index_(index),
      catalog_(catalog),
      weights_(weights),
      base_options_(std::move(base_options)),
      options_(base_options_) {}

void ShardService::ResetEngine() {
  engine_.reset();
  owned_weights_.reset();
  last_applied_ = 0;
  cached_id_ = 0;
  cached_response_.clear();
}

std::string ShardService::Handle(const std::string& frame) {
  Metrics().requests->Increment();
  obs::ScopedTimer timer(Metrics().handle_ns);

  auto req_or = DecodeRequestHeader(frame);
  if (!req_or.ok()) {
    Metrics().malformed->Increment();
    // No parseable request id; echo id 0 so the coordinator's stale-frame
    // draining discards it rather than mistaking it for a live response.
    return EncodeStatusResponse(0, MessageKind::kPing, req_or.status());
  }
  RequestFrame req = std::move(req_or).value();

  // Adopt the coordinator's trace context for the duration of the request,
  // so worker spans (the RPC span here and anything the engine opens under
  // it) join the coordinator's trace in the merged fleet view.
  obs::ScopedTraceContext trace_ctx(
      obs::TraceContext{req.trace_id, req.parent_span_id});
  obs::ScopedSpan rpc_span(RpcSpanName(req.kind));
  const RpcMetrics& rpc = WorkerRpcMetrics(req.kind);
  const uint64_t rpc_start_ns = obs::MonotonicNowNs();

  std::string response = [&]() -> std::string {
    const bool tracked = SessionTracked(req.kind);
    if (tracked) {
      // Exact resend of the most recent tracked request: the network (or
      // the chaos layer) swallowed our response. Return the original bytes.
      if (req.request_id == cached_id_ && !cached_response_.empty()) {
        Metrics().duplicates->Increment();
        return cached_response_;
      }
      // Historical duplicate: already applied and acknowledged (a delayed
      // or duplicated frame, or an outbox replay after session resumption).
      // kInit/kRestore are exempt — they legitimately rewind the id space.
      if (req.kind != MessageKind::kInit &&
          req.kind != MessageKind::kRestore &&
          req.request_id <= last_applied_) {
        Metrics().duplicates->Increment();
        return EncodeStatusResponse(req.request_id, req.kind, Status::OK());
      }
    }

    // kObsSnapshot is exempt from the engine guard: the obs registry and
    // tracer exist from process start, and the coordinator pulls fleet obs
    // even from a worker it has not (re)initialized yet.
    if (!engine_.has_value() && req.kind != MessageKind::kHello &&
        req.kind != MessageKind::kInit &&
        req.kind != MessageKind::kObsSnapshot) {
      return EncodeStatusResponse(
          req.request_id, req.kind,
          Status::FailedPrecondition("shard engine not initialized"));
    }

    std::string resp = Dispatch(req, req.reader);

    if (tracked) {
      if (req.kind == MessageKind::kInit ||
          req.kind == MessageKind::kRestore) {
        last_applied_ = 0;
      } else if (req.request_id > last_applied_) {
        last_applied_ = req.request_id;
      }
      cached_id_ = req.request_id;
      cached_response_ = resp;
    }
    return resp;
  }();

  rpc.handle_ns->Record(obs::MonotonicNowNs() - rpc_start_ns);
  rpc.req_bytes->Record(frame.size());
  rpc.resp_bytes->Record(response.size());
  return response;
}

std::string ShardService::Dispatch(const RequestFrame& req, WireReader& r) {
  const auto status_response = [&](const Status& st) {
    return EncodeStatusResponse(req.request_id, req.kind, st);
  };

  switch (req.kind) {
    case MessageKind::kHello: {
      HelloInfo info;
      info.engine_ready = engine_.has_value();
      info.last_applied = last_applied_;
      if (engine_.has_value()) {
        info.watermark = engine_->watermark();
        info.num_vms = engine_->num_vms();
      }
      return EncodeHelloResponse(req.request_id, info);
    }
    case MessageKind::kInit: {
      InitConfig cfg = DecodeInitConfig(r);
      if (!r.ok()) break;
      StreamingCdiOptions opts = base_options_;
      opts.window = cfg.window;
      opts.allowed_lateness = cfg.allowed_lateness;
      opts.num_shards = cfg.engine_shards;
      const EventWeightModel* weights = weights_;
      std::unique_ptr<EventWeightModel> built;
      if (cfg.has_weights) {
        auto model_or = BuildWeightModel(cfg.weights);
        if (!model_or.ok()) return status_response(model_or.status());
        built = std::make_unique<EventWeightModel>(
            std::move(model_or).value());
        weights = built.get();
      }
      if (weights == nullptr) {
        return status_response(Status::InvalidArgument(
            "kInit carries no weight spec and the worker has no injected "
            "weight model"));
      }
      auto engine_or = StreamingCdiEngine::Create(catalog_, weights, opts);
      if (!engine_or.ok()) return status_response(engine_or.status());
      // Commit only after Create succeeded, so a rejected init leaves the
      // service exactly as it was.
      options_ = opts;
      if (built != nullptr) {
        owned_weights_ = std::move(built);
        weights_ = owned_weights_.get();
      }
      engine_.emplace(std::move(engine_or).value());
      // Tracing is turn-on-only from here: a later kInit without the flag
      // (e.g. a session rebuild) must not silently stop an ongoing trace.
      if (cfg.enable_tracing) obs::Tracer::Global().Enable();
      return status_response(Status::OK());
    }
    case MessageKind::kPing: {
      ShardPing ping;
      ping.watermark = engine_->watermark();
      ping.num_vms = engine_->num_vms();
      return EncodePingResponse(req.request_id, ping);
    }
    case MessageKind::kRegisterVm: {
      VmServiceInfo vm = DecodeVmServiceInfo(r);
      if (!r.ok()) break;
      return status_response(engine_->RegisterVm(vm));
    }
    case MessageKind::kIngestBatch: {
      const uint32_t n = r.Count();
      for (uint32_t i = 0; i < n && r.ok(); ++i) {
        const RawEvent ev = DecodeRawEvent(r);
        if (!r.ok()) break;
        const Status st = engine_->Ingest(ev);
        if (!st.ok()) return status_response(st);
      }
      if (!r.ok()) break;
      return status_response(Status::OK());
    }
    case MessageKind::kGather: {
      const int64_t budget_ms = r.I64();
      if (!r.ok()) break;
      const Deadline deadline = budget_ms < 0
                                    ? Deadline()
                                    : Deadline::After(
                                          Duration::Millis(budget_ms));
      auto result_or = engine_->Preview(deadline);
      if (!result_or.ok()) return status_response(result_or.status());
      const DailyCdiResult& result = result_or.value();
      ShardSnapshot snap;
      snap.per_vm = result.per_vm;
      snap.per_event = result.per_event;
      snap.baseline_interruptions = result.fleet_baseline.interruption_count;
      snap.baseline_downtime = result.fleet_baseline.downtime;
      snap.fleet_service_time = result.fleet_service_time;
      snap.resolve_stats = result.resolve_stats;
      snap.quality = result.quality;
      snap.vms_evaluated = result.vms_evaluated;
      snap.vms_skipped = result.vms_skipped;
      snap.vms_failed = result.vms_failed;
      snap.vms_deferred = result.vms_deferred;
      snap.vms_degraded = result.vms_degraded;
      snap.vm_error_samples = result.vm_error_samples;
      snap.first_vm_error = result.first_vm_error;
      snap.watermark = engine_->watermark();
      snap.num_vms = engine_->num_vms();
      return EncodeGatherResponse(req.request_id, snap);
    }
    case MessageKind::kExtractRange: {
      const std::string lo = r.Str();
      const bool has_hi = r.Bool();
      std::string hi = r.Str();
      if (!r.ok()) break;
      const StreamCheckpoint fragment = engine_->ExtractRange(
          lo, has_hi ? std::optional<std::string>(std::move(hi))
                     : std::nullopt);
      return EncodeCheckpointResponse(req.request_id, req.kind, fragment);
    }
    case MessageKind::kInstallVms: {
      const StreamCheckpoint fragment = DecodeCheckpoint(r);
      if (!r.ok()) break;
      return status_response(engine_->InstallVms(fragment));
    }
    case MessageKind::kExpectDelivery: {
      const std::string target = r.Str();
      const uint64_t count = r.U64();
      if (!r.ok()) break;
      engine_->ExpectDelivery(target, count);
      return status_response(Status::OK());
    }
    case MessageKind::kRecordShed: {
      const std::string target = r.Str();
      const uint64_t count = r.U64();
      if (!r.ok()) break;
      engine_->RecordShed(target, count);
      return status_response(Status::OK());
    }
    case MessageKind::kAdvanceWatermark: {
      const TimePoint to = r.Time();
      if (!r.ok()) break;
      engine_->AdvanceWatermarkTo(to);
      return status_response(Status::OK());
    }
    case MessageKind::kCheckpoint:
      return EncodeCheckpointResponse(req.request_id, req.kind,
                                      engine_->Checkpoint());
    case MessageKind::kRestore: {
      StreamCheckpoint ckpt = DecodeCheckpoint(r);
      if (!r.ok()) break;
      auto engine_or =
          StreamingCdiEngine::Restore(ckpt, catalog_, weights_, options_);
      if (!engine_or.ok()) return status_response(engine_or.status());
      engine_.emplace(std::move(engine_or).value());
      return status_response(Status::OK());
    }
    case MessageKind::kObsSnapshot: {
      const bool include_spans = r.Bool();
      if (!r.ok()) break;
      // Drain only when shipping spans; a metrics-only pull must not
      // discard spans a later merged-trace pull would want.
      obs::WorkerObsSnapshot snap =
          obs::CaptureWorkerObs(/*drain_spans=*/include_spans);
      if (!include_spans) snap.spans.clear();
      return EncodeObsSnapshotResponse(req.request_id, snap);
    }
  }
  Metrics().malformed->Increment();
  return status_response(r.status());
}

ShardServer::ShardServer(ShardService* service, SocketListener listener,
                         SocketTransportOptions transport_options)
    : service_(service),
      listener_(std::move(listener)),
      transport_options_(transport_options) {}

ShardServer::~ShardServer() { Stop(); }

void ShardServer::Start() {
  if (running_.load(std::memory_order_acquire)) return;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
}

void ShardServer::Stop() {
  stop_.store(true, std::memory_order_release);
  listener_.Close();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (conn_ != nullptr) conn_->Close();
  }
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void ShardServer::Kill() {
  Stop();
  service_->ResetEngine();
}

void ShardServer::Run() {
  while (!stop_.load(std::memory_order_acquire)) {
    // Short accept ticks so a Stop() between connections is noticed even
    // though Close() already wakes a blocked Accept.
    auto conn_or =
        listener_.Accept(Deadline::After(Duration::Millis(200)),
                         transport_options_);
    if (!conn_or.ok()) {
      if (conn_or.status().code() == StatusCode::kAborted) continue;
      break;  // listener closed
    }
    std::shared_ptr<SocketTransport> conn = std::move(conn_or).value();
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_ = conn;
    }
    while (!stop_.load(std::memory_order_acquire)) {
      auto frame_or = conn->Recv();
      // Any receive error — clean close, reset mid-frame, CRC poison —
      // drops the connection but NOT the engine: the coordinator
      // reconnects and resumes the session.
      if (!frame_or.ok()) break;
      std::string response = service_->Handle(frame_or.value());
      if (!conn->Send(std::move(response)).ok()) break;
    }
    conn->Close();
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_.reset();
    }
  }
  running_.store(false, std::memory_order_release);
}

}  // namespace cdibot::shard
