/// shard_worker: one shard of the CDI fleet as a standalone process.
///
///   shard_worker --listen <unix-socket-path> [--index N]
///
/// Binds the socket, serves the shard protocol until killed. The engine is
/// created by the coordinator's kInit (which carries the window, lateness,
/// engine shards, and the weight-model recipe), so the binary itself needs
/// no CDI configuration — supervision, addressing, and death are the only
/// things decided here.

#include <signal.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <cstdio>
#include <cstdlib>
#include <string>

#include "event/catalog.h"
#include "shard/service.h"
#include "shard/socket_transport.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s --listen <socket-path> [--index N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen_path;
  size_t index = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--listen" && i + 1 < argc) {
      listen_path = argv[++i];
    } else if (arg == "--index" && i + 1 < argc) {
      index = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      return Usage(argv[0]);
    }
  }
  if (listen_path.empty()) return Usage(argv[0]);

  // A dead peer must surface as an EPIPE-style error on write, not kill the
  // process; and if the supervising coordinator dies, die with it rather
  // than leak orphaned workers holding socket paths.
  ::signal(SIGPIPE, SIG_IGN);
#ifdef __linux__
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
  if (::getppid() == 1) return 0;  // supervisor already gone
#endif

  const cdibot::EventCatalog catalog = cdibot::EventCatalog::BuiltIn();
  cdibot::shard::ShardService service(index, &catalog, /*weights=*/nullptr,
                                      cdibot::StreamingCdiOptions{});

  auto listener_or = cdibot::shard::SocketListener::BindUnix(listen_path);
  if (!listener_or.ok()) {
    std::fprintf(stderr, "shard_worker: bind %s: %s\n", listen_path.c_str(),
                 listener_or.status().message().c_str());
    return 1;
  }
  cdibot::shard::ShardServer server(&service,
                                    std::move(listener_or).value());
  server.Start();
  // Serve until killed (SIGKILL from the coordinator, or PDEATHSIG).
  while (true) ::pause();
}
