#ifndef CDIBOT_SHARD_COORDINATOR_H_
#define CDIBOT_SHARD_COORDINATOR_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "flow/backpressure_queue.h"
#include "obs/metrics.h"
#include "shard/channel.h"
#include "shard/message.h"
#include "shard/shard_map.h"
#include "shard/worker.h"

namespace cdibot::shard {

/// Topology and transport configuration for a sharded fleet.
struct ShardTopologyOptions {
  size_t num_shards = 4;
  /// Per-shard engine configuration (window required). Every worker gets a
  /// copy; `engine.pool`, if set, is shared across workers and must outlive
  /// the coordinator.
  StreamingCdiOptions engine;
  /// Ingest frames are batched per shard up to this many events before a
  /// flush; gathers and watermark advances flush implicitly.
  size_t ingest_batch_size = 256;
  /// Per-direction channel capacity (frames).
  size_t channel_capacity = 4096;
  /// Admission control in front of each shard's channel: overload sheds
  /// sheddable-class events (never unavailability) and reports them to the
  /// owning shard as DataQuality::events_shed.
  bool flow_control = false;
  flow::FlowOptions flow;
};

/// Coordinator-side counters (shard.* metrics mirror these).
struct ShardFleetStats {
  size_t num_shards = 0;
  size_t shards_alive = 0;
  uint64_t gathers = 0;
  /// Gathers that completed with at least one shard missing (degraded
  /// DataQuality on the merged result).
  uint64_t degraded_gathers = 0;
  uint64_t rebalances = 0;
  uint64_t vms_moved = 0;
  uint64_t shard_failures = 0;
  uint64_t shards_recovered = 0;
  uint64_t events_routed = 0;
  uint64_t events_shed = 0;
  uint64_t batches_flushed = 0;
  /// Global event-time watermark: min over per-shard watermarks (a dead
  /// shard pins it at its last reported value).
  TimePoint min_watermark;
};

/// Fleet-level CDI over N shard workers behind message-passing channels.
///
/// The coordinator owns the shard map (contiguous VM ranges), routes every
/// registration/event/manifest to its owner shard as serialized frames,
/// and answers fleet queries by scatter/gather: each shard computes its
/// local snapshot, the coordinator merges the partials. The merge is
/// bit-identical to a single-node engine over the same inputs: per-VM rows
/// cross the wire with bit-cast doubles and fold through the canonical
/// ascending-vm_id fleet fold, and the unavailability baseline travels as
/// raw integer sums which merge exactly in any grouping.
///
/// Failure model: a shard killed mid-day (InjectShardFailure, or detected
/// via a closed channel) degrades gathers instead of failing them — its
/// VMs land in vms_deferred and the merged DataQuality is flagged degraded,
/// never silently wrong. RecoverShard rebuilds the worker from the
/// coordinator-held checkpoint plus an outbox replay of every acknowledged
/// mutation since, which restores bit-identical state.
///
/// Rebalance: recuts the map to balanced quantile ranges and hands each
/// moved range off via ExtractRange/InstallVms in the checkpoint format;
/// ownership flips per range only after its transfer succeeded, so an
/// aborted rebalance leaves a consistent (partially moved) fleet.
///
/// Thread safety: all methods are thread-safe. Gathers and ingest take the
/// topology lock shared; rebalance, registration, failure injection and
/// recovery take it exclusive. Each shard's channel is serialized by a
/// per-handle mutex.
class ShardCoordinator {
 public:
  /// `catalog` and `weights` must outlive the coordinator. Spawns and
  /// starts all workers; fails if any engine rejects the options.
  static StatusOr<std::unique_ptr<ShardCoordinator>> Create(
      const EventCatalog* catalog, const EventWeightModel* weights,
      ShardTopologyOptions options);
  ~ShardCoordinator();

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  /// Registers VMs with their owner shards. The first (bulk) registration
  /// on an empty fleet also cuts the shard map into balanced contiguous
  /// ranges over the registered ids; later registrations route by the
  /// existing map (Rebalance recuts).
  Status RegisterVms(const std::vector<VmServiceInfo>& vms);
  Status RegisterVm(const VmServiceInfo& vm);

  /// Routes one event to its owner shard (buffered; see
  /// ShardTopologyOptions::ingest_batch_size). With flow control on, the
  /// event passes the owner's admission queue first and may be shed.
  Status Ingest(const RawEvent& event);
  Status IngestBatch(const std::vector<RawEvent>& events);

  /// Delivery-manifest announcement, routed to the target's owner.
  Status ExpectDelivery(const std::string& target, uint64_t count);

  /// Advances every shard's watermark (never regresses). A recovered shard
  /// is re-advanced to the highest requested value.
  Status AdvanceWatermarkTo(TimePoint t);

  /// Drains admission queues and delivers all buffered events and shed
  /// accounting to the owner shards.
  Status Flush();

  /// Settled fleet snapshot: flush, scatter an unbounded gather to every
  /// shard in parallel, merge. Bit-identical to a single-node engine
  /// Snapshot over the same inputs when all shards respond.
  StatusOr<DailyCdiResult> Snapshot();

  /// Deadline-bounded gather: each shard gets the remaining budget; a
  /// straggler past the grace window is dropped from the merge and its VMs
  /// counted as deferred (degraded result, like a dead shard). Fails only
  /// when no shard responds.
  StatusOr<DailyCdiResult> Preview(const Deadline& deadline);

  /// Fleet Eq.-4 CDI (canonical fold over a settled gather).
  StatusOr<VmCdi> FleetCdi();

  /// Global min-watermark: pings live shards for fresh values; a dead
  /// shard contributes its last known watermark, pinning the global value
  /// until recovery.
  TimePoint Watermark();

  /// Recuts the map to balanced ranges over the current registry and hands
  /// moved ranges off between shards (extract -> install -> flip
  /// ownership, per range). Ends with a checkpoint pass so a later crash
  /// cannot resurrect moved VMs on their old owner. Returns the first
  /// transfer error; already-committed moves stay committed.
  Status Rebalance();

  /// Captures every live shard's checkpoint coordinator-side and clears
  /// its replay outbox.
  Status CheckpointShards();

  /// Simulated crash of one shard: the worker's channel closes and its
  /// in-memory engine is destroyed. Buffered-but-unsent events for the
  /// shard are retained for delivery after recovery.
  Status InjectShardFailure(size_t shard);

  /// Respawns a dead shard: restore from the held checkpoint, replay the
  /// acknowledged-mutation outbox in order, re-advance the watermark, and
  /// install any fragments parked by a failed rebalance transfer. State is
  /// bit-identical to the moment of the last acknowledged mutation.
  Status RecoverShard(size_t shard);

  bool ShardAlive(size_t shard) const;
  ShardMap Map() const;
  ShardFleetStats stats() const;
  size_t num_shards() const { return handles_.size(); }

 private:
  struct OutboxEntry {
    uint64_t request_id = 0;
    std::string frame;
  };

  /// Coordinator-side state for one shard. `mu` serializes the channel
  /// (one in-flight request per shard) and guards everything below it.
  struct Handle {
    mutable std::mutex mu;
    std::unique_ptr<Transport> channel;
    std::unique_ptr<ShardWorker> worker;
    uint64_t next_request_id = 1;
    std::atomic<bool> alive{false};
    /// Last checkpoint captured from the shard; recovery baseline.
    StreamCheckpoint last_checkpoint;
    bool has_checkpoint = false;
    /// Acknowledged mutating frames since the last checkpoint, replayed
    /// verbatim (original request ids) on recovery.
    std::vector<OutboxEntry> outbox;
    /// Ingest buffer not yet sent; survives a shard crash coordinator-side.
    std::vector<RawEvent> pending;
    TimePoint last_watermark;
    obs::Gauge* depth_gauge = nullptr;
  };

  /// A fragment whose install failed on both destination and source during
  /// a rebalance; re-installed into its owner on recovery.
  struct ParkedFragment {
    ShardMap::Range range;
    StreamCheckpoint fragment;
  };

  ShardCoordinator(const EventCatalog* catalog, const EventWeightModel* weights,
                   ShardTopologyOptions options);
  Status StartWorkers();

  /// Sends `frame` and waits for the response with `request_id`,
  /// discarding stale responses of abandoned earlier calls. Marks the
  /// shard dead on a closed channel. Requires h.mu held.
  StatusOr<std::string> CallLocked(Handle& h, uint64_t request_id,
                                   const std::string& frame,
                                   const Deadline& deadline);
  /// CallLocked + status decode; on success appends the frame to the
  /// recovery outbox. Requires h.mu held.
  Status MutateLocked(Handle& h, uint64_t request_id, std::string frame);
  void MarkDead(Handle& h);

  /// Drains shard i's admission queue into its pending buffer. Requires
  /// topology lock (shared suffices).
  void PumpQueueLocked(size_t shard);
  /// Sends shard i's pending events as one ingest batch. Requires h.mu.
  Status FlushPendingLocked(Handle& h);
  /// Pump + pending + shed accounting for every shard. Requires topology
  /// lock (shared suffices).
  Status FlushAllLocked();
  Status CheckpointShardsLocked();
  /// Merged gather implementation. Requires topology lock (shared).
  StatusOr<DailyCdiResult> GatherLocked(const Deadline& deadline);
  /// VMs currently owned by `shard` per the registry. Requires topology
  /// lock (shared).
  size_t OwnedVmCountLocked(size_t shard) const;

  const EventCatalog* catalog_;
  const EventWeightModel* weights_;
  const ShardTopologyOptions options_;

  /// Acquires topo_mu_ shared (readers: gathers, ingest, watermarks).
  std::shared_lock<std::shared_mutex> ReadTopology() const;
  /// Acquires topo_mu_ exclusive (writers: rebalance, registration,
  /// failure injection, recovery).
  std::unique_lock<std::shared_mutex> WriteTopology() const;

  /// Gathers/ingest shared; rebalance/registration/failure/recovery
  /// exclusive. Guards map_, registry_, parked_, and topology changes.
  /// Always acquired through ReadTopology()/WriteTopology(): both pass
  /// through topo_gate_ first, so a waiting writer blocks NEW readers and
  /// cannot starve under a continuous gather/ingest load (glibc's
  /// shared_mutex is reader-preferring by default).
  mutable std::mutex topo_gate_;
  mutable std::shared_mutex topo_mu_;
  ShardMap map_;
  std::map<std::string, VmServiceInfo> registry_;
  std::vector<ParkedFragment> parked_;
  std::vector<std::unique_ptr<Handle>> handles_;

  /// Scatter/gather worker pool (one task per shard).
  std::unique_ptr<ThreadPool> pool_;

  /// Admission queues, one per shard (flow_control only).
  std::vector<std::unique_ptr<flow::BackpressureQueue>> queues_;
  /// Shed counts not yet reported to owner shards (target -> count).
  std::mutex shed_mu_;
  std::map<std::string, uint64_t> shed_pending_;

  /// Highest watermark ever requested; re-applied to recovered shards.
  std::mutex wm_mu_;
  std::optional<TimePoint> wm_target_;

  mutable std::mutex stats_mu_;
  ShardFleetStats stats_;
};

}  // namespace cdibot::shard

#endif  // CDIBOT_SHARD_COORDINATOR_H_
