#ifndef CDIBOT_SHARD_COORDINATOR_H_
#define CDIBOT_SHARD_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/retry.h"
#include "common/thread_pool.h"
#include "flow/backpressure_queue.h"
#include "obs/metrics.h"
#include "shard/channel.h"
#include "shard/host.h"
#include "shard/message.h"
#include "shard/shard_map.h"
#include "shard/socket_transport.h"

namespace cdibot::shard {

/// How the coordinator reaches its workers.
enum class ShardTransportMode {
  /// Worker threads behind in-process channels (the PR-6 topology).
  kInProcess,
  /// Worker threads behind real Unix-domain sockets: wire framing, torn
  /// frames, reconnects — without process-spawn cost.
  kSocketThread,
  /// shard_worker child processes behind Unix-domain sockets: the honest
  /// failure boundary (kill -9, zombies, half-written frames).
  kSocketProcess,
};

/// Reconnect/session tuning. Defaults suit a quiet local network; the
/// chaos suite raises attempt budgets and sets a per-attempt call timeout
/// so swallowed responses retry instead of hanging.
struct ShardSessionOptions {
  /// Full-jitter exponential backoff between reconnect dials.
  RetryOptions reconnect_backoff = {
      .max_attempts = 10,
      .initial_backoff = Duration::Millis(2),
      .backoff_multiplier = 2.0,
      .max_backoff = Duration::Millis(200),
  };
  /// Budget for one dial + handshake step.
  Duration connect_timeout = Duration::Seconds(5);
  /// Per-attempt response timeout. Zero means attempts wait out the
  /// caller's overall deadline (in-process semantics: the only way to miss
  /// a response is a dead peer). Non-zero bounds each attempt so a
  /// response swallowed by the network turns into a retry of the same
  /// request id — the worker's session dedup makes the retry exact.
  Duration call_timeout;
  /// Attempts per logical call (send + response), counting the first.
  size_t max_call_attempts = 8;
  /// Heartbeat probe period; zero disables the heartbeat thread.
  Duration heartbeat_interval;
  /// Response budget for one heartbeat probe.
  Duration heartbeat_timeout = Duration::Seconds(2);
};

/// Topology and transport configuration for a sharded fleet.
struct ShardTopologyOptions {
  size_t num_shards = 4;
  /// Per-shard engine configuration (window required). Every worker gets a
  /// copy; `engine.pool`, if set, is shared across workers and must outlive
  /// the coordinator (in-process and thread modes only — a child process
  /// cannot borrow it and builds its own).
  StreamingCdiOptions engine;
  /// Ingest frames are batched per shard up to this many events before a
  /// flush; gathers and watermark advances flush implicitly.
  size_t ingest_batch_size = 256;
  /// Per-direction channel capacity (frames), in-process mode only.
  size_t channel_capacity = 4096;
  /// Admission control in front of each shard's channel: overload sheds
  /// sheddable-class events (never unavailability) and reports them to the
  /// owning shard as DataQuality::events_shed.
  bool flow_control = false;
  flow::FlowOptions flow;

  ShardTransportMode transport = ShardTransportMode::kInProcess;
  /// Directory for the per-shard Unix sockets (socket modes). Empty: the
  /// coordinator creates a private temp directory and removes it on
  /// destruction.
  std::string socket_dir;
  /// Path to the shard_worker binary (kSocketProcess only).
  std::string worker_binary;
  /// Weight-model recipe sent in kInit. Required for kSocketProcess (a
  /// child process cannot borrow the coordinator's model); optional
  /// elsewhere (workers fall back to the injected model).
  std::optional<WeightSpec> weight_spec;
  /// Sent in kInit: turns each worker's tracer on so its spans are there
  /// to pull when the coordinator assembles a merged fleet trace.
  bool worker_tracing = false;
  ShardSessionOptions session;
  SocketTransportOptions socket;
  /// Chaos hook: wraps every freshly dialed socket transport (socket modes
  /// only). See src/chaos/net_chaos.h.
  SocketDecorator transport_decorator;
};

/// Coordinator-side counters (shard.* metrics mirror these).
struct ShardFleetStats {
  size_t num_shards = 0;
  size_t shards_alive = 0;
  uint64_t gathers = 0;
  /// Gathers that completed with at least one shard missing (degraded
  /// DataQuality on the merged result).
  uint64_t degraded_gathers = 0;
  uint64_t rebalances = 0;
  uint64_t vms_moved = 0;
  uint64_t shard_failures = 0;
  uint64_t shards_recovered = 0;
  uint64_t events_routed = 0;
  uint64_t events_shed = 0;
  uint64_t batches_flushed = 0;
  /// Transport sessions established beyond each shard's first (dials that
  /// followed a dropped connection or a respawn).
  uint64_t reconnects = 0;
  /// Sessions where the worker's engine survived (connection loss only) —
  /// nothing to replay beyond what dedup skips.
  uint64_t sessions_resumed = 0;
  /// Sessions rebuilt from scratch: init + checkpoint restore + outbox
  /// replay (fresh or respawned worker).
  uint64_t sessions_restored = 0;
  /// Per-call attempt retries after a failed/timed-out attempt.
  uint64_t call_retries = 0;
  uint64_t heartbeats = 0;
  uint64_t heartbeat_failures = 0;
  /// Global event-time watermark: min over per-shard watermarks (a dead
  /// shard pins it at its last reported value).
  TimePoint min_watermark;
};

/// Fleet-level CDI over N shard workers behind message-passing transports.
///
/// The coordinator owns the shard map (contiguous VM ranges), routes every
/// registration/event/manifest to its owner shard as serialized frames,
/// and answers fleet queries by scatter/gather: each shard computes its
/// local snapshot, the coordinator merges the partials. The merge is
/// bit-identical to a single-node engine over the same inputs: per-VM rows
/// cross the wire with bit-cast doubles and fold through the canonical
/// ascending-vm_id fleet fold, and the unavailability baseline travels as
/// raw integer sums which merge exactly in any grouping.
///
/// Transport: workers live behind ShardHosts — in-process channels, socket
/// threads, or real child processes (ShardTransportMode). Over sockets the
/// coordinator runs a session layer per shard: connect with full-jitter
/// backoff, kHello handshake to learn whether the worker's engine
/// survived, kInit/kRestore/outbox-replay to rebuild it when it did not,
/// and exactly-once calls (per-handle monotonic request ids + worker-side
/// dedup) so retries after swallowed responses never double-apply.
///
/// Failure model: a shard killed mid-day (InjectShardFailure, or detected
/// via a dead connection that exhausts its reconnect budget) degrades
/// gathers instead of failing them — its VMs land in vms_deferred and the
/// merged DataQuality is flagged degraded, never silently wrong.
/// RecoverShard respawns the host and rebuilds the worker from the
/// coordinator-held checkpoint plus an outbox replay of every acknowledged
/// mutation since, which restores bit-identical state.
///
/// Rebalance: recuts the map to balanced quantile ranges and hands each
/// moved range off via ExtractRange/InstallVms in the checkpoint format;
/// ownership flips per range only after its transfer succeeded, so an
/// aborted rebalance leaves a consistent (partially moved) fleet.
///
/// Thread safety: all methods are thread-safe. Gathers and ingest take the
/// topology lock shared; rebalance, registration, failure injection and
/// recovery take it exclusive. Each shard's transport is serialized by a
/// per-handle mutex.
class ShardCoordinator {
 public:
  /// `catalog` and `weights` must outlive the coordinator. Spawns and
  /// starts all workers; fails if any engine rejects the options.
  static StatusOr<std::unique_ptr<ShardCoordinator>> Create(
      const EventCatalog* catalog, const EventWeightModel* weights,
      ShardTopologyOptions options);
  ~ShardCoordinator();

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  /// Registers VMs with their owner shards. The first (bulk) registration
  /// on an empty fleet also cuts the shard map into balanced contiguous
  /// ranges over the registered ids; later registrations route by the
  /// existing map (Rebalance recuts).
  Status RegisterVms(const std::vector<VmServiceInfo>& vms);
  Status RegisterVm(const VmServiceInfo& vm);

  /// Routes one event to its owner shard (buffered; see
  /// ShardTopologyOptions::ingest_batch_size). With flow control on, the
  /// event passes the owner's admission queue first and may be shed.
  Status Ingest(const RawEvent& event);
  Status IngestBatch(const std::vector<RawEvent>& events);

  /// Delivery-manifest announcement, routed to the target's owner.
  Status ExpectDelivery(const std::string& target, uint64_t count);

  /// Advances every shard's watermark (never regresses). A recovered shard
  /// is re-advanced to the highest requested value.
  Status AdvanceWatermarkTo(TimePoint t);

  /// Drains admission queues and delivers all buffered events and shed
  /// accounting to the owner shards.
  Status Flush();

  /// Settled fleet snapshot: flush, scatter an unbounded gather to every
  /// shard in parallel, merge. Bit-identical to a single-node engine
  /// Snapshot over the same inputs when all shards respond.
  ///
  /// DEPRECATED as a consumer API: prefer serve::CdiQueryService over a
  /// CoordinatorSource — a kFresh query is exactly this gather, plus
  /// caching, staleness bounds, and admission control for repeat readers.
  StatusOr<DailyCdiResult> Snapshot();

  /// Deadline-bounded gather: each shard gets the remaining budget; a
  /// straggler past the grace window is dropped from the merge and its VMs
  /// counted as deferred (degraded result, like a dead shard). Fails only
  /// when no shard responds.
  StatusOr<DailyCdiResult> Preview(const Deadline& deadline);

  /// Fleet Eq.-4 CDI (canonical fold over a settled gather).
  ///
  /// DEPRECATED as a consumer API: prefer serve::CdiQueryService (a
  /// fleet-only query over a CoordinatorSource), which caches the gather
  /// instead of re-scattering on every read.
  StatusOr<VmCdi> FleetCdi();

  /// Global min-watermark: pings live shards for fresh values; a dead
  /// shard contributes its last known watermark, pinning the global value
  /// until recovery.
  TimePoint Watermark();

  /// Recuts the map to balanced ranges over the current registry and hands
  /// moved ranges off between shards (extract -> install -> flip
  /// ownership, per range). Ends with a checkpoint pass so a later crash
  /// cannot resurrect moved VMs on their old owner. Returns the first
  /// transfer error; already-committed moves stay committed.
  Status Rebalance();

  /// Captures every live shard's checkpoint coordinator-side and clears
  /// its replay outbox.
  Status CheckpointShards();

  /// Simulated crash of one shard: its host is killed (in-process: the
  /// channel closes and the engine is destroyed; process mode: SIGKILL).
  /// Buffered-but-unsent events for the shard are retained for delivery
  /// after recovery.
  Status InjectShardFailure(size_t shard);

  /// Respawns a dead shard's host and rebuilds its session: restore from
  /// the held checkpoint, replay the acknowledged-mutation outbox in
  /// order, resolve any in-flight call the crash interrupted, re-advance
  /// the watermark, and install any fragments parked by a failed rebalance
  /// transfer. State is bit-identical to the moment of the last
  /// acknowledged mutation.
  Status RecoverShard(size_t shard);

  /// Pulls every live shard's obs snapshot (metrics at raw-bucket
  /// fidelity, span stats, and — with `include_spans` — the raw spans
  /// drained since the previous pull), each tagged "shard-<i>" and with a
  /// clock offset measured from the pull's own round trip (the worker's
  /// capture timestamp is bracketed by our send and receive; the midpoint
  /// maps its monotonic clock onto ours to within half the RTT). Dead
  /// shards are skipped — a fleet view missing a crashed worker is
  /// degraded, not wrong; fails only when no shard answers. Feed the
  /// result to obs::CaptureFleetObsSnapshot. A finite `deadline` bounds
  /// every per-shard pull (stragglers past the grace window are skipped,
  /// same policy as a deadline-bounded gather).
  StatusOr<std::vector<obs::ProcessObs>> PullWorkerObs(
      bool include_spans = true, const Deadline& deadline = Deadline());

  bool ShardAlive(size_t shard) const;
  ShardMap Map() const;
  ShardFleetStats stats() const;
  size_t num_shards() const { return handles_.size(); }

 private:
  struct OutboxEntry {
    uint64_t request_id = 0;
    std::string frame;
  };

  /// Coordinator-side state for one shard. `mu` serializes the transport
  /// (one in-flight request per shard) and guards everything below it.
  struct Handle {
    mutable std::mutex mu;
    size_t index = 0;
    std::unique_ptr<ShardHost> host;
    std::unique_ptr<Transport> channel;
    uint64_t next_request_id = 1;
    std::atomic<bool> alive{false};
    /// Last checkpoint captured from the shard; recovery baseline.
    StreamCheckpoint last_checkpoint;
    bool has_checkpoint = false;
    /// Acknowledged mutating frames since the last checkpoint, replayed
    /// verbatim (original request ids) on recovery.
    std::vector<OutboxEntry> outbox;
    /// A mutation (or extract) whose outcome is unknown — sent, but the
    /// transport died before a response landed. Resolved by resending the
    /// same id (the worker dedups) before any new traffic touches the
    /// shard; holds the only copy of undelivered ingest events.
    std::optional<OutboxEntry> in_flight;
    /// True once this shard has established at least one session (later
    /// establishes count as reconnects).
    bool ever_connected = false;
    /// Rebuild progress for a session being (re)built. A lossy network can
    /// kill the connection mid-handshake, so the rebuild is resumable: each
    /// establish continues from the last confirmed step instead of
    /// restarting the whole init/restore/replay sequence (the worker keeps
    /// its partially rebuilt engine across connection loss, and its dedup
    /// makes the boundary frame exact). Reset whenever kHello reports the
    /// engine itself is gone.
    enum class RebuildStage { kStart, kInitDone, kRestoreDone };
    RebuildStage rebuild_stage = RebuildStage::kStart;
    /// Outbox entries confirmed replayed in the current rebuild.
    size_t replay_cursor = 0;
    /// True once the session handshake has fully completed; false while a
    /// rebuild is in progress (even across redials).
    bool session_complete = false;
    /// Ingest buffer not yet framed; survives a shard crash
    /// coordinator-side.
    std::vector<RawEvent> pending;
    TimePoint last_watermark;
    obs::Gauge* depth_gauge = nullptr;
    /// Session health, per shard: 1 while a session is live, 0 after the
    /// shard is marked dead; and the replay-outbox depth (frames held for
    /// recovery since the last checkpoint).
    obs::Gauge* connected_gauge = nullptr;
    obs::Gauge* outbox_gauge = nullptr;
  };

  /// A fragment whose install failed on both destination and source during
  /// a rebalance; re-installed into its owner on recovery.
  struct ParkedFragment {
    ShardMap::Range range;
    StreamCheckpoint fragment;
  };

  ShardCoordinator(const EventCatalog* catalog, const EventWeightModel* weights,
                   ShardTopologyOptions options);
  Status StartWorkers();
  std::unique_ptr<ShardHost> MakeHost(size_t shard);

  /// One send+receive attempt on the current channel, discarding stale
  /// responses of abandoned earlier calls. Requires h.mu held.
  StatusOr<std::string> AttemptLocked(Handle& h, uint64_t request_id,
                                      const std::string& frame,
                                      const Deadline& deadline);
  /// The session-aware call: (re)establishes the connection, resolves any
  /// parked in-flight request, then attempts `frame` under the session's
  /// retry budget. Marks the shard dead when the budget ends Unavailable.
  /// Requires h.mu held.
  StatusOr<std::string> CallLocked(Handle& h, uint64_t request_id,
                                   const std::string& frame,
                                   const Deadline& deadline);
  /// CallLocked + status decode; on success appends the frame to the
  /// recovery outbox; on transport failure the frame stays parked in the
  /// in-flight slot. Requires h.mu held.
  Status MutateLocked(Handle& h, uint64_t request_id, std::string frame);
  /// Dials + handshakes a fresh session: kHello, then (for a fresh or
  /// partially rebuilt engine) the remaining kInit / kRestore / outbox
  /// replay steps, resuming from h.rebuild_stage / h.replay_cursor. Sets
  /// h.alive on success. Does not touch the in-flight slot. Requires h.mu
  /// held.
  Status EstablishSessionLocked(Handle& h);
  /// EstablishSessionLocked under the session's attempt budget — each
  /// failed attempt redials and resumes the handshake where it died.
  /// Requires h.mu held.
  Status EstablishWithRetryLocked(Handle& h);
  /// Resolves the parked in-flight call by resending its id: the worker
  /// either dedups (it applied the original) or applies it now. A resolved
  /// extract's fragment is reinstalled into the same shard — the move was
  /// abandoned, the VMs must not evaporate. Requires h.mu held.
  Status ResolveInFlightLocked(Handle& h);
  void MarkDead(Handle& h);
  void HeartbeatLoop();

  /// Drains shard i's admission queue into its pending buffer. Requires
  /// topology lock (shared suffices).
  void PumpQueueLocked(size_t shard);
  /// Sends shard i's pending events as one ingest batch. Requires h.mu.
  Status FlushPendingLocked(Handle& h);
  /// Pump + pending + shed accounting for every shard. Requires topology
  /// lock (shared suffices).
  Status FlushAllLocked();
  Status CheckpointShardsLocked();
  /// Merged gather implementation. Requires topology lock (shared).
  StatusOr<DailyCdiResult> GatherLocked(const Deadline& deadline);
  /// The shared scatter skeleton of the gather and obs-pull paths: one
  /// pool task per shard, each carrying the caller's trace context, run
  /// under the handle lock with dead shards skipped, and handed the
  /// per-shard receive deadline (the caller's remaining budget plus the
  /// straggler grace window, so a slow shard times out coordinator-side
  /// instead of wedging the scatter). Requires topology lock (shared).
  void ScatterLocked(
      const Deadline& deadline,
      const std::function<void(size_t, Handle&, const Deadline&)>& fn);
  /// VMs currently owned by `shard` per the registry. Requires topology
  /// lock (shared).
  size_t OwnedVmCountLocked(size_t shard) const;

  const EventCatalog* catalog_;
  const EventWeightModel* weights_;
  ShardTopologyOptions options_;

  /// Acquires topo_mu_ shared (readers: gathers, ingest, watermarks).
  std::shared_lock<std::shared_mutex> ReadTopology() const;
  /// Acquires topo_mu_ exclusive (writers: rebalance, registration,
  /// failure injection, recovery).
  std::unique_lock<std::shared_mutex> WriteTopology() const;

  /// Gathers/ingest shared; rebalance/registration/failure/recovery
  /// exclusive. Guards map_, registry_, parked_, and topology changes.
  /// Always acquired through ReadTopology()/WriteTopology(): both pass
  /// through topo_gate_ first, so a waiting writer blocks NEW readers and
  /// cannot starve under a continuous gather/ingest load (glibc's
  /// shared_mutex is reader-preferring by default).
  mutable std::mutex topo_gate_;
  mutable std::shared_mutex topo_mu_;
  ShardMap map_;
  std::map<std::string, VmServiceInfo> registry_;
  std::vector<ParkedFragment> parked_;
  std::vector<std::unique_ptr<Handle>> handles_;

  /// Socket directory owned (created) by this coordinator; removed on
  /// destruction. Empty when the caller supplied one.
  std::string owned_socket_dir_;
  std::vector<std::string> socket_paths_;

  /// Scatter/gather worker pool (one task per shard).
  std::unique_ptr<ThreadPool> pool_;

  /// Admission queues, one per shard (flow_control only).
  std::vector<std::unique_ptr<flow::BackpressureQueue>> queues_;
  /// Shed counts not yet reported to owner shards (target -> count).
  std::mutex shed_mu_;
  std::map<std::string, uint64_t> shed_pending_;

  /// Highest watermark ever requested; re-applied to recovered shards.
  std::mutex wm_mu_;
  std::optional<TimePoint> wm_target_;

  /// Heartbeat prober (session.heartbeat_interval > 0 only).
  std::thread heartbeat_thread_;
  std::mutex heartbeat_mu_;
  std::condition_variable heartbeat_cv_;
  bool heartbeat_stop_ = false;

  mutable std::mutex stats_mu_;
  ShardFleetStats stats_;
};

}  // namespace cdibot::shard

#endif  // CDIBOT_SHARD_COORDINATOR_H_
