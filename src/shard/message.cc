#include "shard/message.h"

#include <utility>

#include "obs/trace.h"

namespace cdibot::shard {

namespace {

/// Smallest wire footprint of one element of each obs repeated type (see
/// EncodeWorkerObs for the layouts), bounding Count() reads.
constexpr size_t kMinCounterBytes = 4 + 8;
constexpr size_t kMinGaugeBytes = 4 + 8;
constexpr size_t kMinHistogramBytes = 4 + 4 * 8 + 4;
constexpr size_t kMinBucketBytes = 4 + 8;
constexpr size_t kMinSpanStatBytes = 4 + 3 * 8;
constexpr size_t kMinSpanNameBytes = 4;
constexpr size_t kMinSpanBytes = 4 + 8 + 8 + 4 + 4 + 3 * 8 + 1;

/// Smallest possible wire footprint of one element of each repeated type,
/// used to bound Count() reads against the remaining frame.
constexpr size_t kMinEventBytes = 4 + 8 + 4 + 8 + 1 + 4;
constexpr size_t kMinVmEntryBytes = 4 + 4 + 16;
constexpr size_t kMinTargetQualityBytes = 4 + 4 * 8;
constexpr size_t kMinVmRowBytes = 4 + 4 + (3 * 8 + 8) + (3 * 8 + 1);
constexpr size_t kMinEventRowBytes = 4 + 4 + 1 + 8 + 8 + 4;

void EncodeHeader(WireWriter& w, uint64_t request_id, MessageKind kind) {
  w.U64(request_id);
  w.U32(static_cast<uint32_t>(kind));
}

/// Requests additionally carry the sender's trace context (responses do
/// not: the coordinator already knows which trace its request belonged to).
void EncodeRequestHeader(WireWriter& w, uint64_t request_id,
                         MessageKind kind) {
  EncodeHeader(w, request_id, kind);
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  w.U64(ctx.trace_id);
  w.U64(ctx.span_id);
}

void EncodeVmCdi(WireWriter& w, const VmCdi& cdi) {
  w.F64(cdi.unavailability);
  w.F64(cdi.performance);
  w.F64(cdi.control_plane);
  w.Dur(cdi.service_time);
}

VmCdi DecodeVmCdi(WireReader& r) {
  VmCdi cdi;
  cdi.unavailability = r.F64();
  cdi.performance = r.F64();
  cdi.control_plane = r.F64();
  cdi.service_time = r.Dur();
  return cdi;
}

void EncodeQuality(WireWriter& w, const DataQuality& q) {
  w.U64(q.events_quarantined);
  w.U64(q.events_missing);
  w.U64(q.events_shed);
  w.Bool(q.degraded);
}

DataQuality DecodeQuality(WireReader& r) {
  DataQuality q;
  q.events_quarantined = r.U64();
  q.events_missing = r.U64();
  q.events_shed = r.U64();
  q.degraded = r.Bool();
  return q;
}

void EncodeVmRow(WireWriter& w, const VmCdiRecord& row) {
  w.Str(row.vm_id);
  w.StrMap(row.dims);
  EncodeVmCdi(w, row.cdi);
  EncodeQuality(w, row.quality);
}

VmCdiRecord DecodeVmRow(WireReader& r) {
  VmCdiRecord row;
  row.vm_id = r.Str();
  row.dims = r.StrMap();
  row.cdi = DecodeVmCdi(r);
  row.quality = DecodeQuality(r);
  return row;
}

void EncodeEventRow(WireWriter& w, const EventCdiRecord& row) {
  w.Str(row.vm_id);
  w.Str(row.event_name);
  w.U8(static_cast<uint8_t>(row.category));
  w.F64(row.damage_minutes);
  w.Dur(row.service_time);
  w.StrMap(row.dims);
}

EventCdiRecord DecodeEventRow(WireReader& r) {
  EventCdiRecord row;
  row.vm_id = r.Str();
  row.event_name = r.Str();
  row.category = static_cast<StabilityCategory>(r.U8());
  row.damage_minutes = r.F64();
  row.service_time = r.Dur();
  row.dims = r.StrMap();
  return row;
}

void EncodeResolveStats(WireWriter& w, const ResolveStats& s) {
  w.U64(s.resolved);
  w.U64(s.unknown_dropped);
  w.U64(s.duplicate_details_dropped);
  w.U64(s.dangling_end_dropped);
  w.U64(s.unpaired_start_closed);
}

ResolveStats DecodeResolveStats(WireReader& r) {
  ResolveStats s;
  s.resolved = r.U64();
  s.unknown_dropped = r.U64();
  s.duplicate_details_dropped = r.U64();
  s.dangling_end_dropped = r.U64();
  s.unpaired_start_closed = r.U64();
  return s;
}

void EncodeStatus(WireWriter& w, const Status& st) {
  w.U32(static_cast<uint32_t>(st.code()));
  w.Str(st.message());
}

Status DecodeStatus(WireReader& r) {
  const uint32_t code = r.U32();
  return StatusFromWire(code, r.Str());
}

}  // namespace

const char* MessageKindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kPing:
      return "ping";
    case MessageKind::kRegisterVm:
      return "register_vm";
    case MessageKind::kIngestBatch:
      return "ingest_batch";
    case MessageKind::kGather:
      return "gather";
    case MessageKind::kExtractRange:
      return "extract_range";
    case MessageKind::kInstallVms:
      return "install_vms";
    case MessageKind::kExpectDelivery:
      return "expect_delivery";
    case MessageKind::kRecordShed:
      return "record_shed";
    case MessageKind::kAdvanceWatermark:
      return "advance_watermark";
    case MessageKind::kCheckpoint:
      return "checkpoint";
    case MessageKind::kRestore:
      return "restore";
    case MessageKind::kHello:
      return "hello";
    case MessageKind::kInit:
      return "init";
    case MessageKind::kObsSnapshot:
      return "obs_snapshot";
  }
  return "unknown";
}

Status StatusFromWire(uint32_t code, const std::string& message) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case StatusCode::kInternal:
      return Status::Internal(message);
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(message);
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(message);
    case StatusCode::kAborted:
      return Status::Aborted(message);
    case StatusCode::kUnavailable:
      return Status::Unavailable(message);
    case StatusCode::kDataLoss:
      return Status::DataLoss(message);
  }
  return Status::Internal("unknown wire status code " + std::to_string(code) +
                          ": " + message);
}

void EncodeRawEvent(WireWriter& w, const RawEvent& ev) {
  w.Str(ev.name);
  w.Time(ev.time);
  w.Str(ev.target);
  w.Dur(ev.expire_interval);
  w.U8(static_cast<uint8_t>(ev.level));
  w.StrMap(ev.attrs);
}

RawEvent DecodeRawEvent(WireReader& r) {
  RawEvent ev;
  ev.name = r.Str();
  ev.time = r.Time();
  ev.target = r.Str();
  ev.expire_interval = r.Dur();
  // A level ordinal outside the enum survives decoding on purpose: the
  // worker's engine quarantines it like any other malformed arrival, so
  // a corrupted frame degrades data quality instead of dropping silently.
  ev.level = static_cast<Severity>(r.U8());
  ev.attrs = r.StrMap();
  return ev;
}

void EncodeVmServiceInfo(WireWriter& w, const VmServiceInfo& vm) {
  w.Str(vm.vm_id);
  w.StrMap(vm.dims);
  w.Window(vm.service_period);
}

VmServiceInfo DecodeVmServiceInfo(WireReader& r) {
  VmServiceInfo vm;
  vm.vm_id = r.Str();
  vm.dims = r.StrMap();
  vm.service_period = r.Window();
  return vm;
}

void EncodeCheckpoint(WireWriter& w, const StreamCheckpoint& ckpt) {
  w.Window(ckpt.window);
  w.Time(ckpt.watermark);
  w.Time(ckpt.max_event_time);
  w.U64(ckpt.events_ingested);
  w.U64(ckpt.events_late);
  w.U64(ckpt.events_out_of_window);
  w.U64(ckpt.events_orphaned);
  w.U64(ckpt.vms_recomputed);
  w.U32(static_cast<uint32_t>(ckpt.vms.size()));
  for (const CheckpointVmEntry& vm : ckpt.vms) {
    w.Str(vm.vm_id);
    w.StrMap(vm.dims);
    w.Window(vm.service_period);
  }
  w.U32(static_cast<uint32_t>(ckpt.events.size()));
  for (const RawEvent& ev : ckpt.events) EncodeRawEvent(w, ev);
  w.U32(static_cast<uint32_t>(ckpt.orphan_events.size()));
  for (const RawEvent& ev : ckpt.orphan_events) EncodeRawEvent(w, ev);
  w.U32(static_cast<uint32_t>(ckpt.quarantined_by_reason.size()));
  for (uint64_t count : ckpt.quarantined_by_reason) w.U64(count);
  w.U32(static_cast<uint32_t>(ckpt.target_quality.size()));
  for (const CheckpointTargetQuality& tq : ckpt.target_quality) {
    w.Str(tq.target);
    w.U64(tq.received);
    w.U64(tq.expected);
    w.U64(tq.quarantined);
    w.U64(tq.shed);
  }
}

StreamCheckpoint DecodeCheckpoint(WireReader& r) {
  StreamCheckpoint ckpt;
  ckpt.window = r.Window();
  ckpt.watermark = r.Time();
  ckpt.max_event_time = r.Time();
  ckpt.events_ingested = r.U64();
  ckpt.events_late = r.U64();
  ckpt.events_out_of_window = r.U64();
  ckpt.events_orphaned = r.U64();
  ckpt.vms_recomputed = r.U64();
  uint32_t n = r.Count(kMinVmEntryBytes);
  ckpt.vms.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    CheckpointVmEntry vm;
    vm.vm_id = r.Str();
    vm.dims = r.StrMap();
    vm.service_period = r.Window();
    ckpt.vms.push_back(std::move(vm));
  }
  n = r.Count(kMinEventBytes);
  ckpt.events.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    ckpt.events.push_back(DecodeRawEvent(r));
  }
  n = r.Count(kMinEventBytes);
  ckpt.orphan_events.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    ckpt.orphan_events.push_back(DecodeRawEvent(r));
  }
  n = r.Count(8);
  ckpt.quarantined_by_reason.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    ckpt.quarantined_by_reason.push_back(r.U64());
  }
  n = r.Count(kMinTargetQualityBytes);
  ckpt.target_quality.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    CheckpointTargetQuality tq;
    tq.target = r.Str();
    tq.received = r.U64();
    tq.expected = r.U64();
    tq.quarantined = r.U64();
    tq.shed = r.U64();
    ckpt.target_quality.push_back(std::move(tq));
  }
  return ckpt;
}

void EncodeSnapshot(WireWriter& w, const ShardSnapshot& snapshot) {
  w.U32(static_cast<uint32_t>(snapshot.per_vm.size()));
  for (const VmCdiRecord& row : snapshot.per_vm) EncodeVmRow(w, row);
  w.U32(static_cast<uint32_t>(snapshot.per_event.size()));
  for (const EventCdiRecord& row : snapshot.per_event) EncodeEventRow(w, row);
  w.U64(snapshot.baseline_interruptions);
  w.Dur(snapshot.baseline_downtime);
  w.Dur(snapshot.fleet_service_time);
  EncodeResolveStats(w, snapshot.resolve_stats);
  EncodeQuality(w, snapshot.quality);
  w.U64(snapshot.vms_evaluated);
  w.U64(snapshot.vms_skipped);
  w.U64(snapshot.vms_failed);
  w.U64(snapshot.vms_deferred);
  w.U64(snapshot.vms_degraded);
  w.U32(static_cast<uint32_t>(snapshot.vm_error_samples.size()));
  for (const std::string& sample : snapshot.vm_error_samples) w.Str(sample);
  EncodeStatus(w, snapshot.first_vm_error);
  w.Time(snapshot.watermark);
  w.U64(snapshot.num_vms);
}

ShardSnapshot DecodeSnapshot(WireReader& r) {
  ShardSnapshot snapshot;
  uint32_t n = r.Count(kMinVmRowBytes);
  snapshot.per_vm.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    snapshot.per_vm.push_back(DecodeVmRow(r));
  }
  n = r.Count(kMinEventRowBytes);
  snapshot.per_event.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    snapshot.per_event.push_back(DecodeEventRow(r));
  }
  snapshot.baseline_interruptions = r.U64();
  snapshot.baseline_downtime = r.Dur();
  snapshot.fleet_service_time = r.Dur();
  snapshot.resolve_stats = DecodeResolveStats(r);
  snapshot.quality = DecodeQuality(r);
  snapshot.vms_evaluated = r.U64();
  snapshot.vms_skipped = r.U64();
  snapshot.vms_failed = r.U64();
  snapshot.vms_deferred = r.U64();
  snapshot.vms_degraded = r.U64();
  n = r.Count(4);
  snapshot.vm_error_samples.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    snapshot.vm_error_samples.push_back(r.Str());
  }
  snapshot.first_vm_error = DecodeStatus(r);
  snapshot.watermark = r.Time();
  snapshot.num_vms = r.U64();
  return snapshot;
}

std::string EncodePing(uint64_t request_id) {
  WireWriter w;
  EncodeRequestHeader(w, request_id, MessageKind::kPing);
  return std::move(w).Take();
}

std::string EncodeRegisterVm(uint64_t request_id, const VmServiceInfo& vm) {
  WireWriter w;
  EncodeRequestHeader(w, request_id, MessageKind::kRegisterVm);
  EncodeVmServiceInfo(w, vm);
  return std::move(w).Take();
}

std::string EncodeIngestBatch(uint64_t request_id,
                              const std::vector<RawEvent>& events) {
  WireWriter w;
  EncodeRequestHeader(w, request_id, MessageKind::kIngestBatch);
  w.U32(static_cast<uint32_t>(events.size()));
  for (const RawEvent& ev : events) EncodeRawEvent(w, ev);
  return std::move(w).Take();
}

std::string EncodeGather(uint64_t request_id, int64_t budget_ms) {
  WireWriter w;
  EncodeRequestHeader(w, request_id, MessageKind::kGather);
  w.I64(budget_ms);
  return std::move(w).Take();
}

std::string EncodeExtractRange(uint64_t request_id, const std::string& lo,
                               const std::optional<std::string>& hi) {
  WireWriter w;
  EncodeRequestHeader(w, request_id, MessageKind::kExtractRange);
  w.Str(lo);
  w.Bool(hi.has_value());
  w.Str(hi.has_value() ? *hi : std::string());
  return std::move(w).Take();
}

std::string EncodeInstallVms(uint64_t request_id,
                             const StreamCheckpoint& fragment) {
  WireWriter w;
  EncodeRequestHeader(w, request_id, MessageKind::kInstallVms);
  EncodeCheckpoint(w, fragment);
  return std::move(w).Take();
}

std::string EncodeExpectDelivery(uint64_t request_id,
                                 const std::string& target, uint64_t count) {
  WireWriter w;
  EncodeRequestHeader(w, request_id, MessageKind::kExpectDelivery);
  w.Str(target);
  w.U64(count);
  return std::move(w).Take();
}

std::string EncodeRecordShed(uint64_t request_id, const std::string& target,
                             uint64_t count) {
  WireWriter w;
  EncodeRequestHeader(w, request_id, MessageKind::kRecordShed);
  w.Str(target);
  w.U64(count);
  return std::move(w).Take();
}

std::string EncodeAdvanceWatermark(uint64_t request_id, TimePoint to) {
  WireWriter w;
  EncodeRequestHeader(w, request_id, MessageKind::kAdvanceWatermark);
  w.Time(to);
  return std::move(w).Take();
}

std::string EncodeCheckpointRequest(uint64_t request_id) {
  WireWriter w;
  EncodeRequestHeader(w, request_id, MessageKind::kCheckpoint);
  return std::move(w).Take();
}

std::string EncodeRestore(uint64_t request_id, const StreamCheckpoint& ckpt) {
  WireWriter w;
  EncodeRequestHeader(w, request_id, MessageKind::kRestore);
  EncodeCheckpoint(w, ckpt);
  return std::move(w).Take();
}

std::string EncodeHello(uint64_t request_id) {
  WireWriter w;
  EncodeRequestHeader(w, request_id, MessageKind::kHello);
  return std::move(w).Take();
}

std::string EncodeInit(uint64_t request_id, const Interval& window,
                       Duration allowed_lateness, uint32_t engine_shards,
                       const std::optional<WeightSpec>& weights,
                       bool enable_tracing) {
  WireWriter w;
  EncodeRequestHeader(w, request_id, MessageKind::kInit);
  w.Window(window);
  w.Dur(allowed_lateness);
  w.U32(engine_shards);
  w.Bool(weights.has_value());
  if (weights.has_value()) EncodeWeightSpec(w, *weights);
  w.Bool(enable_tracing);
  return std::move(w).Take();
}

std::string EncodeObsPull(uint64_t request_id, bool include_spans) {
  WireWriter w;
  EncodeRequestHeader(w, request_id, MessageKind::kObsSnapshot);
  w.Bool(include_spans);
  return std::move(w).Take();
}

std::string EncodeStatusResponse(uint64_t request_id, MessageKind kind,
                                 const Status& status) {
  WireWriter w;
  EncodeHeader(w, request_id, kind);
  EncodeStatus(w, status);
  return std::move(w).Take();
}

std::string EncodePingResponse(uint64_t request_id, const ShardPing& ping) {
  WireWriter w;
  EncodeHeader(w, request_id, MessageKind::kPing);
  EncodeStatus(w, Status::OK());
  w.Time(ping.watermark);
  w.U64(ping.num_vms);
  return std::move(w).Take();
}

std::string EncodeGatherResponse(uint64_t request_id,
                                 const ShardSnapshot& snapshot) {
  WireWriter w;
  EncodeHeader(w, request_id, MessageKind::kGather);
  EncodeStatus(w, Status::OK());
  EncodeSnapshot(w, snapshot);
  return std::move(w).Take();
}

std::string EncodeCheckpointResponse(uint64_t request_id, MessageKind kind,
                                     const StreamCheckpoint& ckpt) {
  WireWriter w;
  EncodeHeader(w, request_id, kind);
  EncodeStatus(w, Status::OK());
  EncodeCheckpoint(w, ckpt);
  return std::move(w).Take();
}

std::string EncodeHelloResponse(uint64_t request_id, const HelloInfo& info) {
  WireWriter w;
  EncodeHeader(w, request_id, MessageKind::kHello);
  EncodeStatus(w, Status::OK());
  w.Bool(info.engine_ready);
  w.U64(info.last_applied);
  w.Time(info.watermark);
  w.U64(info.num_vms);
  return std::move(w).Take();
}

std::string EncodeObsSnapshotResponse(uint64_t request_id,
                                      const obs::WorkerObsSnapshot& snap) {
  WireWriter w;
  EncodeHeader(w, request_id, MessageKind::kObsSnapshot);
  EncodeStatus(w, Status::OK());
  EncodeWorkerObs(w, snap);
  return std::move(w).Take();
}

void EncodeWorkerObs(WireWriter& w, const obs::WorkerObsSnapshot& snap) {
  w.U64(snap.now_ns);
  w.U32(static_cast<uint32_t>(snap.counters.size()));
  for (const obs::CounterSnapshot& c : snap.counters) {
    w.Str(c.name);
    w.U64(c.value);
  }
  w.U32(static_cast<uint32_t>(snap.gauges.size()));
  for (const obs::GaugeSnapshot& g : snap.gauges) {
    w.Str(g.name);
    w.F64(g.value);
  }
  w.U32(static_cast<uint32_t>(snap.histograms.size()));
  for (const obs::HistogramBuckets& h : snap.histograms) {
    w.Str(h.name);
    w.U64(h.count);
    w.U64(h.sum);
    w.U64(h.min);
    w.U64(h.max);
    w.U32(static_cast<uint32_t>(h.buckets.size()));
    for (const auto& [index, count] : h.buckets) {
      w.U32(index);
      w.U64(count);
    }
  }
  w.U32(static_cast<uint32_t>(snap.span_stats.size()));
  for (const obs::SpanStat& s : snap.span_stats) {
    w.Str(s.name);
    w.U64(s.count);
    w.U64(s.total_ns);
    w.U64(s.max_ns);
  }
  // Spans intern their names: fleet traces repeat a handful of literals
  // across thousands of spans, so a name table keeps the frame small.
  std::map<std::string_view, uint32_t> name_index;
  std::vector<std::string_view> names;
  for (const obs::PortableSpan& span : snap.spans) {
    if (name_index.emplace(span.name, names.size()).second) {
      names.push_back(span.name);
    }
  }
  w.U32(static_cast<uint32_t>(names.size()));
  for (std::string_view name : names) w.Str(name);
  w.U32(static_cast<uint32_t>(snap.spans.size()));
  for (const obs::PortableSpan& span : snap.spans) {
    w.U32(name_index[span.name]);
    w.U64(span.start_ns);
    w.U64(span.dur_ns);
    w.U32(span.tid);
    w.U32(span.depth);
    w.U64(span.trace_id);
    w.U64(span.span_id);
    w.U64(span.parent_span_id);
    w.Bool(span.instant);
  }
  w.U64(snap.spans_dropped);
  w.Bool(snap.tracing_enabled);
}

obs::WorkerObsSnapshot DecodeWorkerObs(WireReader& r) {
  obs::WorkerObsSnapshot snap;
  snap.now_ns = r.U64();
  uint32_t n = r.Count(kMinCounterBytes);
  snap.counters.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    obs::CounterSnapshot c;
    c.name = r.Str();
    c.value = r.U64();
    snap.counters.push_back(std::move(c));
  }
  n = r.Count(kMinGaugeBytes);
  snap.gauges.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    obs::GaugeSnapshot g;
    g.name = r.Str();
    g.value = r.F64();
    snap.gauges.push_back(std::move(g));
  }
  n = r.Count(kMinHistogramBytes);
  snap.histograms.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    obs::HistogramBuckets h;
    h.name = r.Str();
    h.count = r.U64();
    h.sum = r.U64();
    h.min = r.U64();
    h.max = r.U64();
    const uint32_t buckets = r.Count(kMinBucketBytes);
    h.buckets.reserve(buckets);
    for (uint32_t j = 0; j < buckets && r.ok(); ++j) {
      const uint32_t index = r.U32();
      const uint64_t count = r.U64();
      h.buckets.emplace_back(index, count);
    }
    snap.histograms.push_back(std::move(h));
  }
  n = r.Count(kMinSpanStatBytes);
  snap.span_stats.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    obs::SpanStat s;
    s.name = r.Str();
    s.count = r.U64();
    s.total_ns = r.U64();
    s.max_ns = r.U64();
    snap.span_stats.push_back(std::move(s));
  }
  n = r.Count(kMinSpanNameBytes);
  std::vector<std::string> names;
  names.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) names.push_back(r.Str());
  n = r.Count(kMinSpanBytes);
  snap.spans.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    obs::PortableSpan span;
    const uint32_t name_index = r.U32();
    if (r.ok() && name_index >= names.size()) {
      r.Fail("span name index out of range");
      break;
    }
    if (r.ok()) span.name = names[name_index];
    span.start_ns = r.U64();
    span.dur_ns = r.U64();
    span.tid = r.U32();
    span.depth = r.U32();
    span.trace_id = r.U64();
    span.span_id = r.U64();
    span.parent_span_id = r.U64();
    span.instant = r.Bool();
    snap.spans.push_back(std::move(span));
  }
  snap.spans_dropped = r.U64();
  snap.tracing_enabled = r.Bool();
  return snap;
}

void EncodeWeightSpec(WireWriter& w, const WeightSpec& spec) {
  w.U32(static_cast<uint32_t>(spec.ticket_counts.size()));
  for (const auto& [name, count] : spec.ticket_counts) {
    w.Str(name);
    w.I64(count);
  }
  w.U32(static_cast<uint32_t>(spec.ticket_levels));
  w.U32(static_cast<uint32_t>(spec.options.expert_levels));
  w.U32(static_cast<uint32_t>(spec.options.ticket_levels));
  w.F64(spec.options.alpha_expert);
  w.F64(spec.options.alpha_ticket);
  w.U32(static_cast<uint32_t>(spec.overrides.size()));
  for (const auto& [name, weight] : spec.overrides) {
    w.Str(name);
    w.F64(weight);
  }
}

WeightSpec DecodeWeightSpec(WireReader& r) {
  WeightSpec spec;
  uint32_t n = r.Count(4 + 8);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    std::string name = r.Str();
    spec.ticket_counts[std::move(name)] = r.I64();
  }
  spec.ticket_levels = static_cast<int>(r.U32());
  spec.options.expert_levels = static_cast<int>(r.U32());
  spec.options.ticket_levels = static_cast<int>(r.U32());
  spec.options.alpha_expert = r.F64();
  spec.options.alpha_ticket = r.F64();
  n = r.Count(4 + 8);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    std::string name = r.Str();
    spec.overrides[std::move(name)] = r.F64();
  }
  return spec;
}

StatusOr<EventWeightModel> BuildWeightModel(const WeightSpec& spec) {
  CDIBOT_ASSIGN_OR_RETURN(
      TicketRankModel ticket,
      TicketRankModel::FromCounts(spec.ticket_counts, spec.ticket_levels));
  CDIBOT_ASSIGN_OR_RETURN(EventWeightModel model,
                          EventWeightModel::Build(std::move(ticket),
                                                  spec.options));
  for (const auto& [name, weight] : spec.overrides) {
    CDIBOT_RETURN_IF_ERROR(model.SetOverride(name, weight));
  }
  return model;
}

HelloInfo DecodeHelloInfo(WireReader& r) {
  HelloInfo info;
  info.engine_ready = r.Bool();
  info.last_applied = r.U64();
  info.watermark = r.Time();
  info.num_vms = r.U64();
  return info;
}

InitConfig DecodeInitConfig(WireReader& r) {
  InitConfig config;
  config.window = r.Window();
  config.allowed_lateness = r.Dur();
  config.engine_shards = r.U32();
  config.has_weights = r.Bool();
  if (config.has_weights) config.weights = DecodeWeightSpec(r);
  config.enable_tracing = r.Bool();
  return config;
}

StatusOr<RequestFrame> DecodeRequestHeader(const std::string& frame) {
  RequestFrame req;
  req.reader = WireReader(frame);
  req.request_id = req.reader.U64();
  const uint32_t kind = req.reader.U32();
  req.trace_id = req.reader.U64();
  req.parent_span_id = req.reader.U64();
  CDIBOT_RETURN_IF_ERROR(req.reader.status());
  if (kind < static_cast<uint32_t>(MessageKind::kPing) ||
      kind > static_cast<uint32_t>(MessageKind::kObsSnapshot)) {
    return Status::DataLoss("unknown request kind " + std::to_string(kind));
  }
  req.kind = static_cast<MessageKind>(kind);
  return req;
}

StatusOr<ResponseFrame> DecodeResponseHeader(const std::string& frame) {
  ResponseFrame resp;
  resp.reader = WireReader(frame);
  resp.request_id = resp.reader.U64();
  const uint32_t kind = resp.reader.U32();
  resp.status = DecodeStatus(resp.reader);
  CDIBOT_RETURN_IF_ERROR(resp.reader.status());
  if (kind < static_cast<uint32_t>(MessageKind::kPing) ||
      kind > static_cast<uint32_t>(MessageKind::kObsSnapshot)) {
    return Status::DataLoss("unknown response kind " + std::to_string(kind));
  }
  resp.kind = static_cast<MessageKind>(kind);
  return resp;
}

}  // namespace cdibot::shard
