#ifndef CDIBOT_SHARD_WORKER_H_
#define CDIBOT_SHARD_WORKER_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>

#include "shard/channel.h"
#include "shard/service.h"
#include "stream/streaming_engine.h"

namespace cdibot::shard {

/// One in-process shard node: a ShardService served by a single request
/// loop over a Transport. The worker never touches coordinator memory —
/// every request and response crosses the channel fully serialized, so the
/// exact same service runs unchanged behind a socket (ShardServer) or in a
/// separate process (shard_worker binary).
///
/// The engine is created by the coordinator's kInit request during session
/// establishment, not by Start() — the worker begins life "spawned but
/// empty", like a fresh process.
///
/// Threading: the service loop is one thread; the engine handles one
/// request at a time, in arrival order. Kill() simulates a crash — the
/// channel closes and the engine (all in-memory state since the last
/// checkpoint) is destroyed; the coordinator recovers the shard from its
/// checkpoint plus outbox replay.
class ShardWorker {
 public:
  /// `catalog` and `weights` must outlive the worker. `options` supplies
  /// process-local engine knobs (thread pool); window/lateness/shards
  /// arrive via the coordinator's kInit.
  ShardWorker(size_t index, const EventCatalog* catalog,
              const EventWeightModel* weights, StreamingCdiOptions options,
              std::unique_ptr<Transport> transport);
  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Starts the service loop.
  void Start();

  /// Simulated crash: closes the channel, joins the loop, and destroys
  /// the engine. Idempotent.
  void Kill();

  bool alive() const { return alive_.load(std::memory_order_acquire); }
  size_t index() const { return index_; }

 private:
  void Serve();

  const size_t index_;
  ShardService service_;
  std::unique_ptr<Transport> transport_;
  std::thread thread_;
  std::atomic<bool> alive_{false};
};

}  // namespace cdibot::shard

#endif  // CDIBOT_SHARD_WORKER_H_
