#ifndef CDIBOT_SHARD_WORKER_H_
#define CDIBOT_SHARD_WORKER_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "shard/channel.h"
#include "shard/message.h"
#include "stream/streaming_engine.h"

namespace cdibot::shard {

/// One shard node: a StreamingCdiEngine owning a contiguous VM range,
/// served by a single request loop over a Transport. The worker never
/// touches coordinator memory — every request and response crosses the
/// channel fully serialized, so the same loop would run unchanged behind
/// a socket.
///
/// Threading: the service loop is one thread; the engine handles one
/// request at a time, in arrival order. Kill() simulates a crash — the
/// channel closes and the engine (all in-memory state since the last
/// checkpoint) is destroyed; the coordinator recovers the shard from its
/// checkpoint plus outbox replay.
class ShardWorker {
 public:
  /// `catalog` and `weights` must outlive the worker. `options` configures
  /// the shard-local engine (its internal hash shards, lateness, window).
  ShardWorker(size_t index, const EventCatalog* catalog,
              const EventWeightModel* weights, StreamingCdiOptions options,
              std::unique_ptr<Transport> transport);
  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Creates the engine and starts the service loop. Returns the engine
  /// construction error, if any.
  Status Start();

  /// Simulated crash: closes the channel, joins the loop, and destroys
  /// the engine. Idempotent.
  void Kill();

  bool alive() const { return alive_.load(std::memory_order_acquire); }
  size_t index() const { return index_; }

 private:
  void Serve();
  /// Decodes one request frame, applies it to the engine, and returns the
  /// response frame. Malformed frames and engine errors come back as
  /// status responses — the loop itself never dies on bad input.
  std::string Handle(const std::string& frame);

  const size_t index_;
  const EventCatalog* catalog_;
  const EventWeightModel* weights_;
  StreamingCdiOptions options_;
  std::unique_ptr<Transport> transport_;
  /// Engine state lives only between Start() and Kill() — optional, so a
  /// kill can destroy it deterministically. Only the service thread
  /// touches it while the loop runs.
  std::optional<StreamingCdiEngine> engine_;
  std::thread thread_;
  std::atomic<bool> alive_{false};
};

}  // namespace cdibot::shard

#endif  // CDIBOT_SHARD_WORKER_H_
