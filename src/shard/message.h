#ifndef CDIBOT_SHARD_MESSAGE_H_
#define CDIBOT_SHARD_MESSAGE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cdi/pipeline.h"
#include "common/statusor.h"
#include "obs/fleet.h"
#include "shard/wire.h"
#include "storage/stream_checkpoint.h"
#include "weights/event_weights.h"

namespace cdibot::shard {

/// Request kinds of the coordinator->worker protocol. The numeric values
/// are the wire tags; append-only.
enum class MessageKind : uint32_t {
  kPing = 1,              ///< liveness probe; response carries the watermark
  kRegisterVm = 2,        ///< declare/update one VM's service window
  kIngestBatch = 3,       ///< a batch of raw events routed to this shard
  kGather = 4,            ///< scatter/gather: compute + return ShardSnapshot
  kExtractRange = 5,      ///< rebalance: remove a VM range, return fragment
  kInstallVms = 6,        ///< rebalance: install a fragment from a peer
  kExpectDelivery = 7,    ///< delivery-manifest announcement for a target
  kRecordShed = 8,        ///< upstream admission control shed events
  kAdvanceWatermark = 9,  ///< explicit watermark advance (idle stream)
  kCheckpoint = 10,       ///< return the engine's durable state
  kRestore = 11,          ///< replace the engine with a checkpoint restore
  kHello = 12,            ///< session handshake: probe engine + dedup state
  kInit = 13,             ///< create the engine (options + weight spec)
  kObsSnapshot = 14,      ///< pull the worker's obs snapshot (fleet statusz)
};

/// Stable lowercase name of a kind ("ping", "gather", ...), for metric and
/// span naming. Returns "unknown" only for values outside the enum, which
/// the header decoders already reject.
const char* MessageKindName(MessageKind kind);

/// Everything one shard contributes to a fleet-level gather. The per-VM
/// rows carry the exact CDI doubles (bit-cast on the wire), so the
/// coordinator can run the canonical ascending-vm_id fleet fold over the
/// union of all shards' rows — bit-identical to a single-node snapshot.
/// The baseline travels as its raw integer sums (episode count, downtime,
/// service time), which merge exactly in any order.
struct ShardSnapshot {
  std::vector<VmCdiRecord> per_vm;
  std::vector<EventCdiRecord> per_event;
  uint64_t baseline_interruptions = 0;
  Duration baseline_downtime;
  Duration fleet_service_time;
  ResolveStats resolve_stats;
  DataQuality quality;
  uint64_t vms_evaluated = 0;
  uint64_t vms_skipped = 0;
  uint64_t vms_failed = 0;
  uint64_t vms_deferred = 0;
  uint64_t vms_degraded = 0;
  std::vector<std::string> vm_error_samples;
  Status first_vm_error;
  /// This shard's event-time watermark; the coordinator reduces all
  /// shards' values to the global min-watermark.
  TimePoint watermark;
  uint64_t num_vms = 0;
};

/// Liveness/watermark probe response payload.
struct ShardPing {
  TimePoint watermark;
  uint64_t num_vms = 0;
};

/// kHello response payload: what the coordinator needs to decide between
/// resuming a session (worker survived, only the connection dropped) and
/// rebuilding one (fresh process: init + restore + outbox replay).
struct HelloInfo {
  /// True when the worker still holds a live engine from a previous
  /// session; false for a freshly spawned worker awaiting kInit.
  bool engine_ready = false;
  /// Highest session-tracked request id the worker has applied — resolves
  /// the "was my in-flight mutation applied before the connection died?"
  /// ambiguity exactly.
  uint64_t last_applied = 0;
  TimePoint watermark;
  uint64_t num_vms = 0;
};

/// A serializable recipe for the shard's EventWeightModel. The model itself
/// holds derived state behind private constructors, so what crosses the
/// wire (kInit to an out-of-process worker) is the recipe: ticket counts,
/// level/alpha options, and explicit overrides. BuildWeightModel() on both
/// sides runs the identical arithmetic, so weights — and therefore CDI
/// doubles — are bit-identical across the process boundary.
struct WeightSpec {
  std::map<std::string, int64_t> ticket_counts;
  int ticket_levels = 4;
  EventWeightOptions options;
  std::map<std::string, double> overrides;
};

StatusOr<EventWeightModel> BuildWeightModel(const WeightSpec& spec);

/// kInit request payload: everything a fresh worker needs to construct its
/// engine. `has_weights` is false for in-process/thread workers whose
/// service was constructed with injected catalog+weights pointers.
struct InitConfig {
  Interval window;
  Duration allowed_lateness;
  uint32_t engine_shards = 16;
  bool has_weights = false;
  WeightSpec weights;
  /// Turn the worker's tracer on at init, so its spans are there to pull
  /// when the coordinator gathers fleet obs for a merged trace.
  bool enable_tracing = false;
};

/// A decoded request header; `reader` is positioned at the payload and
/// views the frame backing it (keep the frame alive while decoding).
/// Every request carries the sender's trace context (zeros when the
/// coordinator traced nothing), so worker spans join coordinator traces.
struct RequestFrame {
  uint64_t request_id = 0;
  MessageKind kind = MessageKind::kPing;
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  WireReader reader{std::string_view()};
};

/// A decoded response header, ditto.
struct ResponseFrame {
  uint64_t request_id = 0;
  MessageKind kind = MessageKind::kPing;
  Status status;
  WireReader reader{std::string_view()};
};

/// Rebuilds a Status from its wire (code, message) pair; unknown codes
/// decode as Internal so a version-skewed peer degrades loudly, not
/// silently to OK.
Status StatusFromWire(uint32_t code, const std::string& message);

// --- Request encoders (coordinator side). Each produces one frame:
// {u64 request_id, u32 kind, u64 trace_id, u64 parent_span_id, payload...}.
// The trace ids are read from the calling thread's obs::CurrentTraceContext
// at encode time, so every RPC site propagates context with no per-site
// plumbing (zeros when tracing is off or the thread is outside any span).
std::string EncodePing(uint64_t request_id);
std::string EncodeRegisterVm(uint64_t request_id, const VmServiceInfo& vm);
std::string EncodeIngestBatch(uint64_t request_id,
                              const std::vector<RawEvent>& events);
/// budget_ms < 0 encodes an infinite deadline (settled snapshot); >= 0 is
/// the worker-side compute budget for a deadline-bounded preview.
std::string EncodeGather(uint64_t request_id, int64_t budget_ms);
std::string EncodeExtractRange(uint64_t request_id, const std::string& lo,
                               const std::optional<std::string>& hi);
std::string EncodeInstallVms(uint64_t request_id,
                             const StreamCheckpoint& fragment);
std::string EncodeExpectDelivery(uint64_t request_id,
                                 const std::string& target, uint64_t count);
std::string EncodeRecordShed(uint64_t request_id, const std::string& target,
                             uint64_t count);
std::string EncodeAdvanceWatermark(uint64_t request_id, TimePoint to);
std::string EncodeCheckpointRequest(uint64_t request_id);
std::string EncodeRestore(uint64_t request_id, const StreamCheckpoint& ckpt);
std::string EncodeHello(uint64_t request_id);
std::string EncodeInit(uint64_t request_id, const Interval& window,
                       Duration allowed_lateness, uint32_t engine_shards,
                       const std::optional<WeightSpec>& weights,
                       bool enable_tracing = false);
/// include_spans=false pulls metrics + span stats only (no raw spans).
std::string EncodeObsPull(uint64_t request_id, bool include_spans);

// --- Response encoders (worker side). Frame layout:
// {u64 request_id, u32 kind, u32 status_code, str status_msg, payload...};
// the payload is present only on OK.
std::string EncodeStatusResponse(uint64_t request_id, MessageKind kind,
                                 const Status& status);
std::string EncodePingResponse(uint64_t request_id, const ShardPing& ping);
std::string EncodeGatherResponse(uint64_t request_id,
                                 const ShardSnapshot& snapshot);
std::string EncodeCheckpointResponse(uint64_t request_id, MessageKind kind,
                                     const StreamCheckpoint& ckpt);
std::string EncodeHelloResponse(uint64_t request_id, const HelloInfo& info);
std::string EncodeObsSnapshotResponse(uint64_t request_id,
                                      const obs::WorkerObsSnapshot& snap);

// --- Decoders. Header decoders validate the frame prefix; payload
// decoders consume the positioned reader and surface malformed frames as
// DataLoss through reader.status().
StatusOr<RequestFrame> DecodeRequestHeader(const std::string& frame);
StatusOr<ResponseFrame> DecodeResponseHeader(const std::string& frame);

// --- Value codecs shared by requests and responses. Exposed for the
// round-trip property tests.
void EncodeRawEvent(WireWriter& w, const RawEvent& ev);
RawEvent DecodeRawEvent(WireReader& r);
void EncodeVmServiceInfo(WireWriter& w, const VmServiceInfo& vm);
VmServiceInfo DecodeVmServiceInfo(WireReader& r);
void EncodeCheckpoint(WireWriter& w, const StreamCheckpoint& ckpt);
StreamCheckpoint DecodeCheckpoint(WireReader& r);
void EncodeSnapshot(WireWriter& w, const ShardSnapshot& snapshot);
ShardSnapshot DecodeSnapshot(WireReader& r);
void EncodeWeightSpec(WireWriter& w, const WeightSpec& spec);
WeightSpec DecodeWeightSpec(WireReader& r);
HelloInfo DecodeHelloInfo(WireReader& r);
InitConfig DecodeInitConfig(WireReader& r);
void EncodeWorkerObs(WireWriter& w, const obs::WorkerObsSnapshot& snap);
obs::WorkerObsSnapshot DecodeWorkerObs(WireReader& r);

}  // namespace cdibot::shard

#endif  // CDIBOT_SHARD_MESSAGE_H_
